"""Gate matrix definitions."""

import math

import numpy as np
import pytest

from repro.gates import matrices as gm


UNITARIES = {
    "I": gm.I, "X": gm.X, "Y": gm.Y, "Z": gm.Z, "H": gm.H,
    "S": gm.S, "SDG": gm.SDG, "T": gm.T, "TDG": gm.TDG, "SX": gm.SX,
    "SWAP": gm.SWAP,
}


class TestUnitarity:
    @pytest.mark.parametrize("name", sorted(UNITARIES))
    def test_fixed_gates_unitary(self, name):
        assert gm.is_unitary(UNITARIES[name])

    @pytest.mark.parametrize("theta", [0.0, 0.3, math.pi / 2, math.pi, 5.0])
    def test_rotations_unitary(self, theta):
        for factory in (gm.rx, gm.ry, gm.rz, gm.phase):
            assert gm.is_unitary(factory(theta))

    def test_u3_unitary(self):
        assert gm.is_unitary(gm.u3(0.3, 1.1, 2.2))


class TestAlgebra:
    def test_h_squared_identity(self):
        assert np.allclose(gm.H @ gm.H, gm.I)

    def test_s_squared_is_z(self):
        assert np.allclose(gm.S @ gm.S, gm.Z)

    def test_t_squared_is_s(self):
        assert np.allclose(gm.T @ gm.T, gm.S)

    def test_sx_squared_is_x(self):
        assert np.allclose(gm.SX @ gm.SX, gm.X)

    def test_hzh_is_x(self):
        assert np.allclose(gm.H @ gm.Z @ gm.H, gm.X)

    def test_projectors_sum_to_identity(self):
        assert np.allclose(gm.P0 + gm.P1, gm.I)
        assert np.allclose(gm.P0 @ gm.P0, gm.P0)
        assert np.allclose(gm.P1 @ gm.P1, gm.P1)
        assert not gm.is_unitary(gm.P0)

    def test_phase_equals_rz_up_to_phase(self):
        theta = 0.7
        ratio = gm.phase(theta) @ np.linalg.inv(gm.rz(theta))
        assert np.allclose(ratio, ratio[0, 0] * np.eye(2))


class TestPredicates:
    def test_is_diagonal(self):
        assert gm.is_diagonal(gm.Z)
        assert gm.is_diagonal(gm.S)
        assert gm.is_diagonal(gm.P0)
        assert not gm.is_diagonal(gm.X)
        assert not gm.is_diagonal(gm.H)
