"""Shared benchmark plumbing.

A benchmark run builds a *fresh* QTS (so transition-TDD construction is
included in the measured time, matching the paper's methodology),
computes one image, and reports wall seconds + peak TDD node count —
the two columns of Table I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.image.engine import compute_image
from repro.systems.qts import QuantumTransitionSystem


@dataclass
class BenchRow:
    """One (benchmark, method) cell of Table I."""

    benchmark: str
    method: str
    seconds: float
    max_nodes: int
    dimension: int
    timed_out: bool = False

    def cells(self):
        if self.timed_out:
            return (self.benchmark, self.method, "-", "-")
        return (self.benchmark, self.method, f"{self.seconds:.2f}",
                str(self.max_nodes))


def run_image_benchmark(builder: Callable[[], QuantumTransitionSystem],
                        label: str, method: str,
                        timeout_seconds: Optional[float] = None,
                        **params) -> BenchRow:
    """Run one image computation and collect the Table I columns.

    ``timeout_seconds`` is a *soft* cap checked after the run (pure
    Python cannot preempt a contraction); callers use generous caps and
    pre-sized workloads instead of relying on it.
    """
    qts = builder()
    result = compute_image(qts, method=method, **params)
    row = BenchRow(benchmark=label, method=method,
                   seconds=result.stats.seconds,
                   max_nodes=result.stats.max_nodes,
                   dimension=result.dimension)
    if timeout_seconds is not None and row.seconds > timeout_seconds:
        row.timed_out = True
    return row
