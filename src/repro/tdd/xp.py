"""The array-namespace seam of the batched weight kernel.

Every vectorized weight operation in the TDD kernel goes through the
module-level :data:`xp` namespace instead of importing :mod:`numpy`
directly.  Numpy is the required backend — it ships with the package
and the scalar kernel already depends on it — but routing the batched
arithmetic through one indirection point leaves a documented seam for
a GPU accelerator:

* a torch (or cupy) namespace honouring the small surface below
  (``asarray``, ``where``, ``abs``, ``round``, broadcasting semantics
  and ``complex128`` dtype) can be swapped in with
  :func:`set_namespace` without touching :mod:`repro.tdd.weights`,
  :mod:`repro.tdd.manager` or :mod:`repro.tdd.apply`;
* weight *keys* (unique-table and memo-cache hashes) always go through
  :func:`to_bytes`, which is the one place a device array must land on
  the host — an accelerated namespace overrides it with its own
  device-to-host transfer.

This mirrors the ``Backend`` protocol of :mod:`repro.mc.backends`: the
model-checking layer swaps whole engines, this seam swaps the array
library *inside* the symbolic engine.  Torch is deliberately not
imported here (the container may not have it); an integration gates on
``importlib.util.find_spec("torch")`` and calls :func:`set_namespace`.
"""

from __future__ import annotations

import numpy as np

#: the active array namespace; numpy unless :func:`set_namespace` swaps
#: in an accelerator module with compatible semantics
xp = np

#: the complex dtype every weight vector uses
COMPLEX_DTYPE = np.complex128


def set_namespace(namespace) -> None:
    """Swap the array namespace (the torch-accelerator seam).

    The replacement must provide numpy-compatible ``asarray``,
    ``where``, ``abs``, ``round`` and elementwise complex arithmetic.
    Only module state changes — diagrams built before the swap keep
    their existing weight arrays.
    """
    global xp
    xp = namespace


def get_namespace():
    """The active array namespace (numpy by default)."""
    return xp


def asarray(values):
    """``values`` as a complex weight vector in the active namespace."""
    return xp.asarray(values, dtype=COMPLEX_DTYPE)


def to_bytes(array) -> bytes:
    """Host bytes of a weight vector, for hashable cache/unique keys.

    Accelerated namespaces override the behaviour implicitly: their
    arrays must expose numpy interop (``np.asarray`` triggers the
    device-to-host copy exactly here and nowhere else).
    """
    return np.asarray(array).tobytes()
