"""Birkhoff-von Neumann quantum logic over subspaces.

The paper's motivating specification language ([14] in its reference
list) treats atomic propositions as closed subspaces of the state
space: conjunction is the lattice meet, disjunction the join, and
negation the orthocomplement.  This module is the AST of that
specification language:

* **state formulas** (:class:`Proposition`): :class:`Atomic` (a
  subspace given directly), :class:`Name` (an atom resolved against a
  model's registered subspaces, see
  :meth:`~repro.systems.qts.QuantumTransitionSystem.register_subspace`),
  and the connectives :class:`Meet` (``&``), :class:`Join` (``|``),
  :class:`Not` (``~``);
* **temporal formulas**: :class:`Always` (``AG φ`` — every reachable
  state satisfies φ) and :class:`Eventually` (``EF φ`` — the reachable
  space overlaps φ).

A pure state ``|ψ⟩`` *satisfies* a proposition φ iff ``|ψ⟩`` lies in
the denoted subspace — the standard BvN satisfaction relation.

Specs are checked through the one front door,
:meth:`repro.mc.checker.ModelChecker.check`, which works identically
on the symbolic and dense backends; the module-level
:func:`check_always` / :func:`check_eventually_overlaps` helpers are
thin wrappers over it.  The text syntax (``"AG (inv & ~bad)"``) lives
in :mod:`repro.mc.specs`.
"""

from __future__ import annotations

from repro.errors import SpecError
from repro.subspace.subspace import StateSpace, Subspace
from repro.systems.qts import QuantumTransitionSystem
from repro.tdd.tdd import TDD


class Proposition:
    """A quantum-logic state formula; ``denote(space)`` yields its subspace."""

    def denote(self, space: StateSpace) -> Subspace:
        raise NotImplementedError

    # connective sugar -------------------------------------------------
    def __and__(self, other: "Proposition") -> "Proposition":
        return Meet(self, other)

    def __or__(self, other: "Proposition") -> "Proposition":
        return Join(self, other)

    def __invert__(self) -> "Proposition":
        return Not(self)


class Atomic(Proposition):
    """An atomic proposition: a subspace given directly."""

    def __init__(self, subspace: Subspace, name: str = "p") -> None:
        self.subspace = subspace
        self.name = name

    def denote(self, space: StateSpace) -> Subspace:
        if self.subspace.space is not space:
            raise ValueError(f"atomic {self.name!r} denotes a subspace of "
                             f"a different state space")
        return self.subspace

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other) -> bool:
        return (isinstance(other, Atomic)
                and other.subspace is self.subspace
                and other.name == self.name)

    def __hash__(self) -> int:
        return hash((Atomic, id(self.subspace), self.name))


class Name(Proposition):
    """An atom referenced by name, resolved against a model's registry.

    A :class:`Name` cannot be denoted directly — it is bound to a
    concrete subspace by :func:`repro.mc.specs.resolve` (which
    :meth:`~repro.mc.checker.ModelChecker.check` calls for you),
    looking the name up in the model's registered subspaces.
    """

    def __init__(self, name: str) -> None:
        self.name = name

    def denote(self, space: StateSpace) -> Subspace:
        raise SpecError(
            f"atom {self.name!r} is unresolved; resolve the spec against "
            f"a model first (ModelChecker.check does this automatically)")

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other) -> bool:
        return isinstance(other, Name) and other.name == self.name

    def __hash__(self) -> int:
        return hash((Name, self.name))


class Meet(Proposition):
    """Conjunction: the lattice meet (subspace intersection)."""

    def __init__(self, left: Proposition, right: Proposition) -> None:
        self.left = left
        self.right = right

    def denote(self, space: StateSpace) -> Subspace:
        return self.left.denote(space).meet(self.right.denote(space))

    def __repr__(self) -> str:
        return f"({self.left!r} & {self.right!r})"

    def __eq__(self, other) -> bool:
        return (isinstance(other, Meet) and other.left == self.left
                and other.right == self.right)

    def __hash__(self) -> int:
        return hash((Meet, self.left, self.right))


class Join(Proposition):
    """Disjunction: the lattice join (closed span of the union)."""

    def __init__(self, left: Proposition, right: Proposition) -> None:
        self.left = left
        self.right = right

    def denote(self, space: StateSpace) -> Subspace:
        return self.left.denote(space).join(self.right.denote(space))

    def __repr__(self) -> str:
        return f"({self.left!r} | {self.right!r})"

    def __eq__(self, other) -> bool:
        return (isinstance(other, Join) and other.left == self.left
                and other.right == self.right)

    def __hash__(self) -> int:
        return hash((Join, self.left, self.right))


class Not(Proposition):
    """Negation: the orthocomplement."""

    def __init__(self, inner: Proposition) -> None:
        self.inner = inner

    def denote(self, space: StateSpace) -> Subspace:
        return self.inner.denote(space).complement()

    def __repr__(self) -> str:
        return f"~{self.inner!r}"

    def __eq__(self, other) -> bool:
        return isinstance(other, Not) and other.inner == self.inner

    def __hash__(self) -> int:
        return hash((Not, self.inner))


# ----------------------------------------------------------------------
# temporal operators
# ----------------------------------------------------------------------
class TemporalSpec:
    """A top-level temporal formula over one state formula.

    ``bound`` is the optional step bound of the *bounded* operators
    ``AG[<=k]`` / ``EF[<=k]``: the property is evaluated over the
    space reachable within at most ``k`` transitions instead of the
    full fixpoint.  ``None`` (the default) is the unbounded operator.
    """

    #: the text-syntax keyword ("AG" / "EF")
    keyword: str = "?"

    def __init__(self, inner: Proposition,
                 bound: "int | None" = None) -> None:
        if isinstance(inner, TemporalSpec):
            raise SpecError(f"temporal operators do not nest; "
                            f"{self.keyword} must be outermost")
        if bound is not None and (not isinstance(bound, int) or bound < 1):
            raise SpecError(f"temporal bound must be a positive integer, "
                            f"got {bound!r}")
        self.inner = inner
        self.bound = bound

    def _prefix(self) -> str:
        if self.bound is None:
            return self.keyword
        return f"{self.keyword}[<={self.bound}]"

    def __repr__(self) -> str:
        return f"{self._prefix()} {self.inner!r}"

    def __eq__(self, other) -> bool:
        return (type(other) is type(self) and other.inner == self.inner
                and other.bound == self.bound)

    def __hash__(self) -> int:
        return hash((type(self), self.inner, self.bound))


class Always(TemporalSpec):
    """``AG φ``: every reachable state satisfies φ.

    The bounded form ``AG[<=k] φ`` (``Always(phi, bound=k)``) asserts
    it only for states reachable within ``k`` transitions.
    """

    keyword = "AG"


class Eventually(TemporalSpec):
    """``EF φ``-style: the reachable space overlaps ``[[φ]]``.

    True iff the reachable space is not orthogonal to the denoted
    subspace (a necessary condition for EF φ; exact for 1-dimensional
    reachable spaces).  The bounded form ``EF[<=k] φ``
    (``Eventually(phi, bound=k)``) asks for an overlap within ``k``
    transitions.
    """

    keyword = "EF"


# ----------------------------------------------------------------------
# satisfaction and temporal checks
# ----------------------------------------------------------------------
def satisfies(state: TDD, prop: Proposition, space: StateSpace,
              tol: float = 1e-7) -> bool:
    """BvN satisfaction: ``|state>`` lies in the denoted subspace."""
    return prop.denote(space).contains_state(state, tol)


def _temporal_check(qts: QuantumTransitionSystem, spec, method: str,
                    params: dict) -> bool:
    # split the reachability kwargs the pre-config helpers forwarded
    # to reachable_space from the engine configuration proper
    from repro.mc.checker import ModelChecker
    from repro.mc.config import CheckerConfig
    reach_kwargs = {name: params.pop(name)
                    for name in ("initial", "max_iterations", "frontier")
                    if name in params}
    # ``gc`` was a reachable_space perf knob; check() always collects,
    # so it is accepted for compatibility and has no effect
    params.pop("gc", None)
    config = CheckerConfig.from_kwargs(method=method, **params)
    return ModelChecker(qts, config).check(spec, **reach_kwargs).holds


def check_always(qts: QuantumTransitionSystem, prop: Proposition,
                 method: str = "contraction", **params) -> bool:
    """AG φ: the reachable space is contained in [[φ]].

    A convenience wrapper over
    :meth:`~repro.mc.checker.ModelChecker.check` — use ``check``
    directly for the full :class:`~repro.mc.checker.CheckResult`
    (witness subspace, trace, kernel stats).  ``params`` may mix
    engine parameters with the reachability options ``initial`` /
    ``max_iterations`` / ``frontier`` (``gc`` is accepted for
    compatibility; collection is always on).
    """
    return _temporal_check(qts, Always(prop), method, dict(params))


def check_eventually_overlaps(qts: QuantumTransitionSystem,
                              prop: Proposition,
                              method: str = "contraction",
                              **params) -> bool:
    """Can the system ever produce a state with a component in [[φ]]?

    True iff the reachable space is not orthogonal to the denoted
    subspace.  A convenience wrapper over
    :meth:`~repro.mc.checker.ModelChecker.check` with an
    :class:`Eventually` spec; ``params`` as in :func:`check_always`.
    """
    return _temporal_check(qts, Eventually(prop), method, dict(params))
