"""The :class:`ResultStore`: fixpoints on disk, keyed by content.

On-disk layout (one directory per store)::

    <root>/
      index.sqlite          # the queryable index (see migrate.py)
      blobs/<key>.json      # one JSON blob per entry (tdd/io codec)
      quarantine/           # blobs set aside after failing integrity

An entry is a converged, unbounded reachable-space fixpoint.  Its key
is the sha256 over the four content fingerprints that determine the
result — transition relation, initial subspace, analysis direction,
depth bound (see :func:`~repro.mc.reachability.system_fingerprint` /
:func:`~repro.mc.reachability.subspace_fingerprint`) — so the store is
*content-addressed*: the same physical system rebuilt in a different
manager, process or machine maps to the same entry, and a changed gate
matrix or seed state maps to a different one.

Crash-safety contract:

* **writes are atomic** — a blob is written to a ``*.tmp.<pid>`` file,
  fsynced and ``os.replace``d into place *before* its index row is
  inserted, so a reader either sees a complete blob or no entry at
  all; a crash in between leaves an invisible orphan blob that
  :meth:`ResultStore.gc` sweeps later;
* **reads degrade to misses** — a missing, truncated, bit-flipped or
  undecodable blob (and an index row whose checksum disagrees with the
  blob) is *quarantined*: the file is moved to ``quarantine/``, the
  index row deleted, an audit row recorded, and the lookup reports a
  miss.  Corruption can cost recomputation, never a wrong answer;
* **the index is expendable** — deleting ``index.sqlite`` (or
  corrupting it: it is set aside and rebuilt empty) orphans the blobs,
  which read as misses; ``repro cache import`` re-adopts exported
  entries, and new fixpoints simply repopulate.

The store implements the same ``lookup``/``store`` protocol as the
in-memory :class:`~repro.mc.reachability.ReachabilityCache`, so it
drops into ``ModelChecker.check(reach_cache=...)`` and the sweep
runner unchanged; ``source = "disk"`` is how warm rows are attributed
(the ``store_hit`` sweep column).
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import StoreError
from repro.store.migrate import SCHEMA_VERSION, ensure_schema
from repro.subspace.subspace import Subspace
from repro.systems.qts import QuantumTransitionSystem
from repro.tdd.io import from_dict, payload_digest, to_dict

#: orphan blobs / stale temp files younger than this are left alone by
#: gc: they may belong to a concurrent writer that has not yet
#: inserted its index row
ORPHAN_GRACE_SECONDS = 60.0

_INDEX_NAME = "index.sqlite"
_BLOB_DIR = "blobs"
_QUARANTINE_DIR = "quarantine"
_SQLITE_TIMEOUT = 30.0


def entry_key(system: str, initial: str, direction: str,
              bound: int) -> str:
    """The content address of one fixpoint result."""
    text = f"{system}/{initial}/{direction}/{int(bound)}"
    return hashlib.sha256(text.encode()).hexdigest()


@dataclass
class StoreStats:
    """One snapshot of a store's shape and this session's traffic."""

    entries: int
    total_bytes: int
    hits: int            # lookups served from disk, this session
    misses: int          # lookups answered empty, this session
    total_hits: int      # lifetime hits summed over the index
    quarantined: int     # lifetime quarantine records
    evictions: int       # lifetime evicted entries (meta counter)
    schema_version: int
    root: str

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class GCReport:
    """What one :meth:`ResultStore.gc` pass did."""

    bytes_before: int
    bytes_after: int
    evicted: int
    bytes_freed: int
    orphans_removed: int

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class ResultStore:
    """A disk-backed, content-addressed reachable-space store.

    ``max_bytes`` (optional) is a standing byte budget: every
    :meth:`store` enforces it by evicting least-recently-hit entries
    (the same policy :meth:`gc` applies on demand).  ``hits`` /
    ``misses`` count this instance's lookups, mirroring the in-memory
    cache's counters; lifetime aggregates live in :meth:`stats`.

    Safe for concurrent use from multiple processes: the index is
    SQLite (write lock + busy timeout), blobs only ever appear via
    atomic rename, and every read verifies the blob's content digest
    against the index before serving it.
    """

    source = "disk"

    def __init__(self, root: str,
                 max_bytes: Optional[int] = None) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise StoreError(f"max_bytes must be >= 0, got {max_bytes}")
        self.root = os.path.abspath(root)
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self._blob_dir = os.path.join(self.root, _BLOB_DIR)
        self._quarantine_dir = os.path.join(self.root, _QUARANTINE_DIR)
        try:
            os.makedirs(self._blob_dir, exist_ok=True)
            os.makedirs(self._quarantine_dir, exist_ok=True)
        except OSError as exc:
            raise StoreError(f"cannot create result store at "
                             f"{self.root}: {exc}") from exc
        self._index_path = os.path.join(self.root, _INDEX_NAME)
        self._conn = self._open_index()

    # ------------------------------------------------------------------
    # index plumbing
    # ------------------------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(self._index_path,
                               timeout=_SQLITE_TIMEOUT,
                               isolation_level=None)
        conn.execute("PRAGMA busy_timeout = "
                     f"{int(_SQLITE_TIMEOUT * 1000)}")
        conn.execute("PRAGMA synchronous = NORMAL")
        return conn

    def _open_index(self) -> sqlite3.Connection:
        try:
            conn = self._connect()
            self.schema_version = ensure_schema(conn)
            return conn
        except sqlite3.DatabaseError as exc:
            # a corrupt index is recoverable damage, not a fatal error:
            # set the file aside (audited below) and start empty — the
            # blobs it pointed at become orphans, i.e. misses
            moved = os.path.join(
                self._quarantine_dir,
                f"index.{int(time.time() * 1000)}.sqlite")
            try:
                os.replace(self._index_path, moved)
            except OSError:
                raise StoreError(
                    f"result store index at {self._index_path} is "
                    f"corrupt and could not be set aside: {exc}"
                    ) from exc
            conn = self._connect()
            self.schema_version = ensure_schema(conn)
            self._record_quarantine(conn, key="", reason="index-corrupt",
                                    detail=str(exc), moved_to=moved)
            return conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        row = self._conn.execute(
            "SELECT COUNT(*) FROM entries").fetchone()
        return int(row[0])

    # ------------------------------------------------------------------
    # keys and payloads
    # ------------------------------------------------------------------
    @staticmethod
    def key(qts: QuantumTransitionSystem, initial: Subspace,
            direction: str, bound: int) -> Tuple[str, str, str]:
        """``(entry key, system fp, initial fp)`` for one query."""
        from repro.mc.reachability import (subspace_fingerprint,
                                           system_fingerprint)
        system = system_fingerprint(qts)
        seed = subspace_fingerprint(initial)
        return entry_key(system, seed, direction, bound), system, seed

    @staticmethod
    def _payload(qts: QuantumTransitionSystem, system: str, seed: str,
                 direction: str, bound: int, trace) -> dict:
        return {"schema": SCHEMA_VERSION,
                "system": system,
                "initial": seed,
                "direction": direction,
                "bound": int(bound),
                "num_qubits": qts.num_qubits,
                "dimension": trace.subspace.dimension,
                "iterations": trace.iterations,
                "basis": [to_dict(v) for v in trace.subspace.basis]}

    def _blob_path(self, key: str) -> str:
        return os.path.join(self._blob_dir, f"{key}.json")

    # ------------------------------------------------------------------
    # quarantine
    # ------------------------------------------------------------------
    @staticmethod
    def _record_quarantine(conn: sqlite3.Connection, key: str,
                           reason: str, detail: str = "",
                           moved_to: str = "") -> None:
        conn.execute("INSERT INTO quarantine VALUES (?, ?, ?, ?, ?)",
                     (time.time(), key, reason, detail, moved_to))

    def _quarantine(self, key: str, reason: str,
                    detail: str = "") -> None:
        """Set a bad entry aside: move blob, drop row, audit.

        Every step tolerates the artefact already being gone — two
        readers can race to quarantine the same corrupt blob, and the
        loser must degrade to a plain miss, not an exception.
        """
        moved_to = ""
        blob = self._blob_path(key)
        target = os.path.join(self._quarantine_dir, f"{key}.json")
        try:
            os.replace(blob, target)
            moved_to = target
        except OSError:
            pass  # already moved/deleted by a concurrent reader or gc
        try:
            self._conn.execute("DELETE FROM entries WHERE key=?", (key,))
            self._record_quarantine(self._conn, key, reason, detail,
                                    moved_to)
        except sqlite3.Error:
            pass  # the audit trail is best-effort; the miss is not

    def quarantine_records(self) -> List[dict]:
        rows = self._conn.execute(
            "SELECT at, key, reason, detail, moved_to FROM quarantine "
            "ORDER BY at").fetchall()
        return [{"at": at, "key": key, "reason": reason,
                 "detail": detail, "moved_to": moved_to}
                for at, key, reason, detail, moved_to in rows]

    # ------------------------------------------------------------------
    # the cache protocol (ReachabilityCache-compatible)
    # ------------------------------------------------------------------
    def lookup(self, qts: QuantumTransitionSystem, initial: Subspace,
               direction: str = "forward",
               bound: int = 0) -> Optional[Subspace]:
        """The stored reachable space, re-interned into ``qts``.

        Never raises on damaged entries: any failure between the index
        row and a verified, decoded basis quarantines the entry and
        reports a miss.
        """
        key, system, seed = self.key(qts, initial, direction, bound)
        row = self._conn.execute(
            "SELECT checksum, dimension FROM entries WHERE key=?",
            (key,)).fetchone()
        if row is None:
            self.misses += 1
            return None
        checksum, dimension = row[0], int(row[1])
        try:
            with open(self._blob_path(key), "r",
                      encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            self._quarantine(key, "unreadable", f"{type(exc).__name__}: "
                                                f"{exc}")
            self.misses += 1
            return None
        digest = payload_digest(payload)
        if checksum and digest != checksum:
            self._quarantine(key, "checksum",
                             f"index {checksum[:12]}… != blob "
                             f"{digest[:12]}…")
            self.misses += 1
            return None
        try:
            if (payload["system"] != system
                    or payload["initial"] != seed
                    or payload["direction"] != direction
                    or int(payload["bound"]) != int(bound)
                    or int(payload["num_qubits"]) != qts.num_qubits):
                raise StoreError("blob describes a different fixpoint")
            basis = payload["basis"]
            if len(basis) != int(payload["dimension"]) \
                    or len(basis) != dimension:
                raise StoreError("basis length disagrees with the "
                                 "recorded dimension")
            vectors = [from_dict(qts.manager, data) for data in basis]
            result = qts.space.span(vectors)
            if result.dimension != dimension:
                raise StoreError("re-interned basis lost rank")
        except Exception as exc:  # noqa: BLE001 — miss, never a wrong answer
            self._quarantine(key, "decode", f"{type(exc).__name__}: "
                                            f"{exc}")
            self.misses += 1
            return None
        if not checksum:
            # lazy v0->v1 backfill: adopt the digest of a blob that
            # just read back clean (see migrate._migrate_v0_to_v1)
            self._conn.execute(
                "UPDATE entries SET checksum=? WHERE key=?",
                (digest, key))
        self._conn.execute(
            "UPDATE entries SET hits=hits+1, last_hit=? WHERE key=?",
            (time.time(), key))
        self.hits += 1
        return result

    def store(self, qts: QuantumTransitionSystem, initial: Subspace,
              direction: str, bound: int, trace) -> bool:
        """Persist a finished fixpoint; returns True when written.

        Same admission rule as the in-memory cache: only *converged*,
        *unbounded* runs are sound warm-start seeds — judged from the
        trace itself (``trace.bound``/``trace.converged``), not just
        the caller's ``bound`` argument, so a bounded trace can never
        be laundered into the unbounded key space.
        """
        if not trace.converged or bound != 0 or trace.bound != 0:
            return False
        key, system, seed = self.key(qts, initial, direction, bound)
        row = self._conn.execute("SELECT 1 FROM entries WHERE key=?",
                                 (key,)).fetchone()
        if row is not None:
            return False  # content-addressed: an existing entry is equal
        payload = self._payload(qts, system, seed, direction, bound,
                                trace)
        text = json.dumps(payload, indent=1, sort_keys=True)
        digest = payload_digest(payload)
        blob = self._blob_path(key)
        tmp = f"{blob}.tmp.{os.getpid()}"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, blob)  # the blob is complete before it is
        finally:                   # visible under its final name
            if os.path.exists(tmp):
                os.unlink(tmp)
        now = time.time()
        self._conn.execute(
            "INSERT OR REPLACE INTO entries VALUES "
            "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (key, system, seed, direction, int(bound), digest,
             qts.num_qubits, trace.subspace.dimension, trace.iterations,
             len(text.encode()), now, now, 0))
        if self.max_bytes is not None:
            self._evict_to_budget(self.max_bytes)
        return True

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def total_bytes(self) -> int:
        row = self._conn.execute(
            "SELECT COALESCE(SUM(bytes), 0) FROM entries").fetchone()
        return int(row[0])

    def _bump_meta_counter(self, key: str, amount: int) -> None:
        self._conn.execute(
            "INSERT INTO meta VALUES (?, ?) ON CONFLICT(key) DO UPDATE "
            "SET value = CAST(CAST(value AS INTEGER) + ? AS TEXT)",
            (key, str(amount), amount))

    def _meta_counter(self, key: str) -> int:
        row = self._conn.execute("SELECT value FROM meta WHERE key=?",
                                 (key,)).fetchone()
        return int(row[0]) if row is not None else 0

    def _evict_to_budget(self, max_bytes: int) -> Tuple[int, int]:
        """LRU-by-last-hit eviction down to ``max_bytes``; returns
        ``(entries evicted, bytes freed)``."""
        evicted = freed = 0
        while self.total_bytes() > max_bytes:
            row = self._conn.execute(
                "SELECT key, bytes FROM entries "
                "ORDER BY last_hit ASC, created ASC LIMIT 1").fetchone()
            if row is None:
                break
            key, size = row[0], int(row[1])
            self._conn.execute("DELETE FROM entries WHERE key=?",
                               (key,))
            try:
                os.unlink(self._blob_path(key))
            except OSError:
                pass  # a concurrent gc got there first
            evicted += 1
            freed += size
        if evicted:
            self._bump_meta_counter("evictions", evicted)
        return evicted, freed

    def gc(self, max_bytes: Optional[int] = None) -> GCReport:
        """Evict down to a byte budget and sweep orphan/temp files.

        ``max_bytes=None`` uses the store's standing budget (no
        eviction when neither is set); orphan blobs — complete files
        with no index row, the residue of a crash between blob write
        and index insert — are removed once older than
        :data:`ORPHAN_GRACE_SECONDS`.
        """
        before = self.total_bytes()
        budget = max_bytes if max_bytes is not None else self.max_bytes
        evicted = freed = 0
        if budget is not None:
            evicted, freed = self._evict_to_budget(budget)
        orphans = 0
        known = {row[0] for row in
                 self._conn.execute("SELECT key FROM entries")}
        cutoff = time.time() - ORPHAN_GRACE_SECONDS
        for name in os.listdir(self._blob_dir):
            path = os.path.join(self._blob_dir, name)
            stale_tmp = ".tmp." in name
            orphan = (name.endswith(".json")
                      and name[:-len(".json")] not in known)
            if not (stale_tmp or orphan):
                continue
            try:
                if os.path.getmtime(path) > cutoff:
                    continue
                os.unlink(path)
                orphans += 1
            except OSError:
                continue
        return GCReport(bytes_before=before,
                        bytes_after=self.total_bytes(),
                        evicted=evicted, bytes_freed=freed,
                        orphans_removed=orphans)

    def stats(self) -> StoreStats:
        total_hits = self._conn.execute(
            "SELECT COALESCE(SUM(hits), 0) FROM entries").fetchone()
        quarantined = self._conn.execute(
            "SELECT COUNT(*) FROM quarantine").fetchone()
        return StoreStats(entries=len(self),
                          total_bytes=self.total_bytes(),
                          hits=self.hits, misses=self.misses,
                          total_hits=int(total_hits[0]),
                          quarantined=int(quarantined[0]),
                          evictions=self._meta_counter("evictions"),
                          schema_version=self.schema_version,
                          root=self.root)

    def ls(self) -> List[dict]:
        """Index rows as dicts, most recently hit first."""
        rows = self._conn.execute(
            "SELECT key, system, initial, direction, bound, num_qubits,"
            " dimension, iterations, bytes, created, last_hit, hits "
            "FROM entries ORDER BY last_hit DESC, created DESC")
        names = ("key", "system", "initial", "direction", "bound",
                 "num_qubits", "dimension", "iterations", "bytes",
                 "created", "last_hit", "hits")
        return [dict(zip(names, row)) for row in rows]

    # ------------------------------------------------------------------
    # export / import
    # ------------------------------------------------------------------
    def export_file(self, path: str) -> int:
        """Write every entry's payload to one JSON file; returns count.

        Entries whose blob fails integrity on the way out are
        quarantined and skipped — an export never launders corruption
        into another store.
        """
        payloads: List[dict] = []
        for row in self.ls():
            key, checksum = row["key"], None
            checksum_row = self._conn.execute(
                "SELECT checksum FROM entries WHERE key=?",
                (key,)).fetchone()
            if checksum_row is None:
                continue
            checksum = checksum_row[0]
            try:
                with open(self._blob_path(key), "r",
                          encoding="utf-8") as handle:
                    payload = json.load(handle)
            except (OSError, ValueError) as exc:
                self._quarantine(key, "unreadable",
                                 f"export: {type(exc).__name__}: {exc}")
                continue
            if checksum and payload_digest(payload) != checksum:
                self._quarantine(key, "checksum", "export")
                continue
            payloads.append(payload)
        bundle = {"schema": SCHEMA_VERSION, "kind": "repro-result-store",
                  "entries": payloads}
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(bundle, handle, indent=1, sort_keys=True)
        os.replace(tmp, path)
        return len(payloads)

    def import_file(self, path: str) -> Tuple[int, int]:
        """Merge an exported bundle; returns ``(imported, skipped)``.

        Entries already present (same content address) are skipped;
        malformed bundle structure raises :class:`StoreError`, while a
        single malformed entry is skipped (imports are additive and
        must not be all-or-nothing).
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                bundle = json.load(handle)
        except (OSError, ValueError) as exc:
            raise StoreError(f"cannot read store export {path}: "
                             f"{exc}") from exc
        if (not isinstance(bundle, dict)
                or bundle.get("kind") != "repro-result-store"
                or not isinstance(bundle.get("entries"), list)):
            raise StoreError(f"{path} is not a result-store export")
        if int(bundle.get("schema", 0)) > SCHEMA_VERSION:
            raise StoreError(
                f"export {path} has schema "
                f"{bundle.get('schema')} > supported {SCHEMA_VERSION}")
        imported = skipped = 0
        for payload in bundle["entries"]:
            try:
                key = entry_key(payload["system"], payload["initial"],
                                payload["direction"],
                                int(payload["bound"]))
                basis = payload["basis"]
                assert len(basis) == int(payload["dimension"])
            except (KeyError, TypeError, ValueError, AssertionError):
                skipped += 1
                continue
            row = self._conn.execute(
                "SELECT 1 FROM entries WHERE key=?", (key,)).fetchone()
            if row is not None:
                skipped += 1
                continue
            text = json.dumps(payload, indent=1, sort_keys=True)
            blob = self._blob_path(key)
            tmp = f"{blob}.tmp.{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, blob)
            now = time.time()
            self._conn.execute(
                "INSERT OR REPLACE INTO entries VALUES "
                "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (key, payload["system"], payload["initial"],
                 payload["direction"], int(payload["bound"]),
                 payload_digest(payload), int(payload["num_qubits"]),
                 int(payload["dimension"]),
                 int(payload.get("iterations", 0)),
                 len(text.encode()), now, now, 0))
            imported += 1
        if self.max_bytes is not None:
            self._evict_to_budget(self.max_bytes)
        return imported, skipped

    def __repr__(self) -> str:
        return (f"ResultStore({self.root!r}, entries={len(self)}, "
                f"hits={self.hits}, misses={self.misses})")
