"""Table II regeneration: contraction-partition parameter sweep.

The paper sweeps k1, k2 in 1..15 on 'Grover 15' and reports image
computation time per cell, showing a wide plateau of good parameters
with degradation only when both get large.  This harness runs the same
sweep on a Grover instance sized for pure Python.

The k1 x k2 grid is a :mod:`repro.bench.sweep` spec; ``--jobs N`` fans
the cells over a process pool, ``--out DIR`` makes the grid resumable.

Run:  ``python -m repro.bench.table2 [--qubits 8] [--kmax 8]``
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench.sweep import RunSpec, SweepSpec, run_sweep
from repro.mc.config import CheckerConfig
from repro.utils.tables import format_table


def table2_spec(num_qubits: int = 8, kmax: int = 8,
                iterations: int = 2) -> SweepSpec:
    """The k1 x k2 contraction grid as a sweep spec (row-major)."""
    runs = [RunSpec(model="grover", size=num_qubits,
                    config=CheckerConfig(
                        method="contraction",
                        method_params={"k1": k1, "k2": k2}),
                    model_params={"iterations": iterations},
                    label=f"k{k1}x{k2}")
            for k1 in range(1, kmax + 1)
            for k2 in range(1, kmax + 1)]
    return SweepSpec(name=f"table2-grover{num_qubits}", runs=runs)


def sweep_stats(num_qubits: int = 8, kmax: int = 8,
                iterations: int = 2, jobs: int = 1,
                out_dir: Optional[str] = None) -> List[List[dict]]:
    """``result[k1-1][k2-1]`` = stats record for contraction(k1, k2).

    Each cell is a :mod:`repro.bench.sweep` record — seconds plus the
    cache hit rate and peak/post-GC live node counts.
    """
    spec = table2_spec(num_qubits, kmax, iterations)
    result = run_sweep(spec, jobs=jobs, out_dir=out_dir)
    records = result.records  # spec order == row-major grid order
    return [records[(k1 - 1) * kmax:k1 * kmax]
            for k1 in range(1, kmax + 1)]


def sweep(num_qubits: int = 8, kmax: int = 8,
          iterations: int = 2) -> List[List[float]]:
    """``result[k1-1][k2-1]`` = seconds for contraction(k1, k2)."""
    return [[cell["seconds"] for cell in row]
            for row in sweep_stats(num_qubits, kmax, iterations)]


def format_grid(grid: List[List[float]]) -> str:
    kmax = len(grid)
    headers = ["k1\\k2"] + [str(k2) for k2 in range(1, kmax + 1)]
    rows = [[str(k1 + 1)] + [f"{cell:.2f}" for cell in row]
            for k1, row in enumerate(grid)]
    return format_table(headers, rows)


def format_stats_grid(grid: List[List[dict]]) -> str:
    """Cells as ``seconds (hit%, post-GC/peak live nodes)``."""
    kmax = len(grid)
    headers = ["k1\\k2"] + [str(k2) for k2 in range(1, kmax + 1)]
    rows = []
    for k1, row in enumerate(grid):
        cells = [str(k1 + 1)]
        for cell in row:
            cells.append(f"{cell['seconds']:.2f} "
                         f"({100 * cell['cache_hit_rate']:.0f}%, "
                         f"{cell['live_nodes']}/{cell['peak_live_nodes']})")
        rows.append(cells)
    return format_table(headers, rows)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--qubits", type=int, default=8)
    parser.add_argument("--kmax", type=int, default=8)
    parser.add_argument("--iterations", type=int, default=2)
    parser.add_argument("--jobs", type=int, default=1,
                        help="concurrent grid cells (process pool)")
    parser.add_argument("--out", default=None,
                        help="artifact directory (resumable)")
    args = parser.parse_args(argv)
    grid = sweep_stats(args.qubits, args.kmax, args.iterations,
                       jobs=args.jobs, out_dir=args.out)
    print(f"Table II (reproduction) — contraction partition: time [s] "
          f"(cache hit rate, post-GC/peak live nodes), "
          f"Grover {args.qubits} x{args.iterations} iterations")
    print(format_stats_grid(grid))
    return 0


if __name__ == "__main__":
    sys.exit(main())
