"""The :class:`QuantumTransitionSystem` (paper, Definition 2).

A QTS bundles the ambient state space, the initial subspace and a
family of quantum operations.  Constructing one also fixes the global
TDD index order: all ket/bra state indices and every wire index of
every Kraus circuit are registered up front in the qubit-major order
DESIGN.md describes, so that all diagrams of one system share a single
canonical order.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import SystemError_
from repro.indices.index import Index
from repro.subspace.subspace import StateSpace, Subspace
from repro.systems.operations import QuantumOperation
from repro.tdd.manager import TDDManager
from repro.tdd.tdd import TDD


def _order_key(index: Index):
    # qubit-major, time-minor; the name breaks the x-vs-y (ket-vs-bra)
    # tie so that each bra y_q^0 sorts right after its ket x_q^0.
    return (index.qubit, index.time, index.name)


class QuantumTransitionSystem:
    """``(H, S0, Sigma, T)`` with TDD-backed state space."""

    def __init__(self, num_qubits: int,
                 operations: Sequence[QuantumOperation],
                 manager: Optional[TDDManager] = None,
                 name: str = "qts") -> None:
        operations = list(operations)
        if not operations:
            raise SystemError_("a QTS needs at least one operation")
        for op in operations:
            if op.num_qubits != num_qubits:
                raise SystemError_(
                    f"operation {op.symbol!r} acts on {op.num_qubits} "
                    f"qubits, system has {num_qubits}")
        symbols = [op.symbol for op in operations]
        if len(set(symbols)) != len(symbols):
            raise SystemError_(f"duplicate operation symbols {symbols}")
        self.num_qubits = num_qubits
        self.operations = operations
        self.name = name
        self.manager = manager if manager is not None else TDDManager()
        self.space = StateSpace(self.manager, num_qubits)
        self._register_indices()
        # one-element holder so the adjoint system can share S0 by
        # reference (see the ``initial`` property and :meth:`adjoint`)
        self._initial_cell = [self.space.zero_subspace()]
        #: Named subspaces — the atoms the specification language
        #: resolves (see repro.mc.specs); ``init`` is always available.
        self.named_subspaces: Dict[str, Subspace] = {}
        #: lazily built adjoint system (see :meth:`adjoint`)
        self._adjoint: Optional["QuantumTransitionSystem"] = None

    # ------------------------------------------------------------------
    def _register_indices(self) -> None:
        indices = {}
        for ket, bra in zip(self.space.kets, self.space.bras):
            indices[ket.name] = ket
            indices[bra.name] = bra
        for op in self.operations:
            for circuit in op.kraus_circuits:
                for idx in circuit.all_wire_indices():
                    indices.setdefault(idx.name, idx)
        ordered = sorted(indices.values(), key=_order_key)
        self.manager.register_all(ordered)

    # ------------------------------------------------------------------
    # initial-space helpers
    # ------------------------------------------------------------------
    @property
    def initial(self) -> Subspace:
        """The initial subspace S0; populate via set_initial_* helpers.

        Backed by a cell shared with the adjoint system, so replacing
        either side's initial space is seen by both.
        """
        return self._initial_cell[0]

    @initial.setter
    def initial(self, subspace: Subspace) -> None:
        self._initial_cell[0] = subspace

    def set_initial_states(self, states: Iterable[TDD]) -> "QuantumTransitionSystem":
        self.initial = self.space.span(states)
        return self

    def set_initial_basis_states(self, bit_strings: Iterable[Sequence[int]]
                                 ) -> "QuantumTransitionSystem":
        states = [self.space.basis_state(bits) for bits in bit_strings]
        return self.set_initial_states(states)

    # ------------------------------------------------------------------
    # named subspaces (specification atoms)
    # ------------------------------------------------------------------
    _NAME_PATTERN = r"[A-Za-z_][A-Za-z0-9_]*"

    def register_subspace(self, name: str,
                          subspace: Subspace) -> "QuantumTransitionSystem":
        """Register ``subspace`` as the atom ``name`` for spec checking.

        Names must be identifiers (so the spec parser can reference
        them) other than the reserved temporal keywords and ``init``
        (which always denotes the current initial subspace).
        """
        if not re.fullmatch(self._NAME_PATTERN, name):
            raise SystemError_(f"subspace name {name!r} is not an "
                               f"identifier")
        if name in ("AG", "EF", "init"):
            raise SystemError_(f"subspace name {name!r} is reserved")
        if subspace.space is not self.space:
            raise SystemError_(f"subspace {name!r} lives in a different "
                               f"state space")
        self.named_subspaces[name] = subspace
        return self

    def named_subspace(self, name: str) -> Subspace:
        """Look up a registered atom (``init`` = the initial subspace)."""
        if name == "init":
            return self.initial
        try:
            return self.named_subspaces[name]
        except KeyError:
            available = ", ".join(sorted(["init", *self.named_subspaces]))
            raise SystemError_(
                f"model {self.name!r} has no subspace named {name!r}; "
                f"available atoms: {available}") from None

    # ------------------------------------------------------------------
    # the adjoint system (backward / preimage analysis)
    # ------------------------------------------------------------------
    def adjoint(self) -> "QuantumTransitionSystem":
        """The adjoint system ``(H, S0, Sigma, T^dagger)``.

        Every operation is replaced by its Kraus-dagger adjoint
        (:meth:`~repro.systems.operations.QuantumOperation.adjoint`);
        the manager, the ambient state space, the initial subspace and
        the named-subspace registry are *shared* with this system, so
        any subspace of this system is directly usable as an initial or
        target set of the adjoint one.  Computing images of the adjoint
        system is preimage computation for this one — the transition
        relation of backward reachability.  The result is cached, and
        ``qts.adjoint().adjoint() is qts``.
        """
        if self._adjoint is None:
            adj = QuantumTransitionSystem(
                self.num_qubits,
                [op.adjoint() for op in self.operations],
                manager=self.manager, name=f"{self.name}~")
            # share the ambient space (and everything denoted in it) so
            # Subspace identity checks hold across the pair; the
            # constructor's freshly built space registers no new index
            # names and is simply discarded
            adj.space = self.space
            adj.named_subspaces = self.named_subspaces
            adj._initial_cell = self._initial_cell
            adj._adjoint = self
            self._adjoint = adj
        return self._adjoint

    # ------------------------------------------------------------------
    @property
    def symbols(self) -> List[str]:
        return [op.symbol for op in self.operations]

    def operation(self, symbol: str) -> QuantumOperation:
        for op in self.operations:
            if op.symbol == symbol:
                return op
        raise SystemError_(f"no operation named {symbol!r}")

    def all_kraus_circuits(self) -> List:
        """Every Kraus circuit of every operation — the set K of Alg. 1."""
        out = []
        for op in self.operations:
            out.extend(op.kraus_circuits)
        return out

    def __repr__(self) -> str:
        return (f"QuantumTransitionSystem({self.name!r}, "
                f"qubits={self.num_qubits}, "
                f"operations={self.symbols}, "
                f"initial_dim={self.initial.dimension})")
