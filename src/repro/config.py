"""Global numeric configuration for the repro package.

Tensor decision diagrams require *hashable* edge weights for the unique
table, so complex amplitudes are rounded to a fixed number of decimal
digits before being used as canonicalisation keys.  All tolerances used
anywhere in the package live here so that they can be tuned in one place.
"""

from __future__ import annotations

#: Number of decimal digits kept when rounding complex weights for the
#: TDD unique table.  12 digits keeps double-precision round-off noise out
#: of the canonical form while preserving every amplitude that occurs in
#: the paper's benchmark circuits.
WEIGHT_DECIMALS: int = 12

#: Magnitude below which a complex weight is treated as exactly zero.
WEIGHT_EPS: float = 1e-10

#: Norm below which a candidate basis vector produced by Gram-Schmidt is
#: discarded as already lying in the subspace (paper, Section IV.B).
GS_EPS: float = 1e-8

#: Tolerance for comparing subspace projectors / amplitudes in checks.
CHECK_EPS: float = 1e-7

#: Default parameters for the partition-based image computation schemes,
#: matching the values used for Table I of the paper.
DEFAULT_ADDITION_K: int = 1
DEFAULT_CONTRACTION_K1: int = 4
DEFAULT_CONTRACTION_K2: int = 4
