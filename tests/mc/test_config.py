"""CheckerConfig: validation, round-trips, CLI wiring, legacy shims."""

import argparse
import dataclasses
import warnings

import pytest

from repro.errors import ConfigError, ReproError
from repro.image.sliced import DEFAULT_SLICE_DEPTH
from repro.mc.backends import make_backend
from repro.mc.checker import ModelChecker
from repro.mc.config import BACKENDS, CheckerConfig
from repro.systems import models


class TestValidation:
    def test_defaults_are_valid(self):
        config = CheckerConfig()
        assert config.backend == "tdd"
        assert config.method == "contraction"
        assert config.strategy == "monolithic"

    @pytest.mark.parametrize("field,value", [
        ("backend", "quantum-annealer"), ("method", "nonsense"),
        ("strategy", "nonsense")])
    def test_unknown_names_rejected(self, field, value):
        with pytest.raises(ConfigError, match="unknown"):
            CheckerConfig(**{field: value})

    def test_method_param_mismatch_rejected(self):
        with pytest.raises(ConfigError, match="does not take"):
            CheckerConfig(method="basic", method_params={"k1": 4})
        with pytest.raises(ConfigError, match="contraction"):
            # the error names the methods the parameter belongs to
            CheckerConfig(method="addition", method_params={"k1": 4})

    def test_unknown_method_param_rejected(self):
        with pytest.raises(ConfigError, match="does not take"):
            CheckerConfig(method="contraction",
                          method_params={"granularity": 3})

    def test_valid_method_params_accepted(self):
        config = CheckerConfig(method="hybrid",
                               method_params={"k": 1, "k1": 2, "k2": 2})
        assert config.method_params == {"k": 1, "k1": 2, "k2": 2}

    def test_jobs_requires_sliced_strategy(self):
        with pytest.raises(ConfigError, match="sliced"):
            CheckerConfig(jobs=2)
        assert CheckerConfig(strategy="sliced", jobs=2).jobs == 2

    def test_slice_depth_requires_sliced_strategy(self):
        with pytest.raises(ConfigError, match="sliced"):
            CheckerConfig(slice_depth=1)
        assert CheckerConfig(strategy="sliced", slice_depth=1).slice_depth == 1

    def test_bad_jobs_value_rejected(self):
        with pytest.raises(ConfigError, match="positive"):
            CheckerConfig(strategy="sliced", jobs=0)

    def test_dense_rejects_tdd_only_options(self):
        # the regression for the old silent-drop behaviour: tdd knobs
        # with the dense backend must raise, not vanish
        with pytest.raises(ConfigError, match="tdd-only"):
            CheckerConfig(backend="dense", method="basic")
        with pytest.raises(ConfigError, match="tdd-only"):
            CheckerConfig(backend="dense",
                          method_params={"k1": 4, "k2": 4})
        with pytest.raises(ConfigError, match="tdd-only"):
            CheckerConfig(backend="dense", strategy="sliced", jobs=2)

    def test_dense_accepts_max_qubits(self):
        assert CheckerConfig(backend="dense", max_qubits=8).max_qubits == 8

    def test_tdd_rejects_max_qubits(self):
        with pytest.raises(ConfigError, match="dense-only"):
            CheckerConfig(max_qubits=8)

    def test_frozen(self):
        config = CheckerConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.method = "basic"

    def test_method_params_copied_not_shared(self):
        params = {"k1": 2, "k2": 2}
        config = CheckerConfig(method_params=params)
        params["k1"] = 99
        assert config.method_params["k1"] == 2

    def test_replace_revalidates(self):
        config = CheckerConfig(method="addition", method_params={"k": 2})
        with pytest.raises(ConfigError):
            config.replace(method="basic")
        assert config.replace(method_params={"k": 3}).method_params == \
            {"k": 3}


class TestRoundTrips:
    CONFIGS = [
        CheckerConfig(),
        CheckerConfig(method="addition", method_params={"k": 2}),
        CheckerConfig(method="contraction", strategy="sliced", jobs=4,
                      slice_depth=1, method_params={"k1": 2, "k2": 3}),
        CheckerConfig(backend="dense", max_qubits=10),
    ]

    @pytest.mark.parametrize("config", CONFIGS, ids=str)
    def test_json_round_trip(self, config):
        assert CheckerConfig.from_json(config.to_json()) == config

    @pytest.mark.parametrize("config", CONFIGS, ids=str)
    def test_dict_round_trip(self, config):
        assert CheckerConfig.from_dict(config.as_dict()) == config

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigError, match="unknown"):
            CheckerConfig.from_dict({"backend": "tdd", "metod": "basic"})

    def test_from_json_rejects_non_object(self):
        with pytest.raises(ConfigError):
            CheckerConfig.from_json("[1, 2]")

    def test_describe_mentions_the_knobs(self):
        text = CheckerConfig(strategy="sliced", jobs=4,
                             method_params={"k1": 2, "k2": 2}).describe()
        assert "strategy=sliced" in text
        assert "jobs=4" in text
        assert "k1=2" in text
        dense = CheckerConfig(backend="dense").describe()
        assert "backend=dense" in dense
        assert "method" not in dense  # did not take effect — not echoed


def _cli_args(**overrides) -> argparse.Namespace:
    """A namespace mirroring the CLI defaults for engine flags."""
    defaults = dict(backend="tdd", method="contraction", strategy="monolithic",
                    jobs=None, slice_depth=DEFAULT_SLICE_DEPTH,
                    k=1, k1=4, k2=4)
    defaults.update(overrides)
    return argparse.Namespace(**defaults)


class TestFromCliArgs:
    def test_defaults(self):
        config = CheckerConfig.from_cli_args(_cli_args())
        assert config.backend == "tdd"
        assert config.method_params == {"k1": 4, "k2": 4}

    def test_method_selects_its_params(self):
        config = CheckerConfig.from_cli_args(
            _cli_args(method="addition", k=3))
        assert config.method_params == {"k": 3}

    def test_dense_with_default_flags_is_clean(self):
        # `image ghz --backend dense` must keep working: flags still at
        # their argparse defaults are treated as unset
        config = CheckerConfig.from_cli_args(_cli_args(backend="dense"))
        assert config.backend == "dense"
        assert config.method_params == {}

    def test_dense_with_explicit_tdd_flags_raises(self):
        # the cli.py silent-parameter-drop bug, fixed: each of these
        # previously vanished without a trace
        with pytest.raises(ConfigError, match="tdd-only"):
            CheckerConfig.from_cli_args(
                _cli_args(backend="dense", method="basic"))
        with pytest.raises(ConfigError, match="tdd-only"):
            CheckerConfig.from_cli_args(_cli_args(backend="dense", k1=6))
        with pytest.raises(ConfigError):
            CheckerConfig.from_cli_args(
                _cli_args(backend="dense", jobs=2))

    def test_jobs_without_sliced_raises(self):
        with pytest.raises(ConfigError, match="sliced"):
            CheckerConfig.from_cli_args(_cli_args(jobs=2))

    def test_sliced_flags_flow_through(self):
        config = CheckerConfig.from_cli_args(
            _cli_args(strategy="sliced", jobs=3, slice_depth=1))
        assert (config.strategy, config.jobs, config.slice_depth) == \
            ("sliced", 3, 1)


class TestLegacyShims:
    def test_from_kwargs_drops_mismatches_like_the_old_api(self):
        config = CheckerConfig.from_kwargs(backend="dense",
                                           method="contraction",
                                           k1=2, k2=2, max_qubits=8)
        assert config.backend == "dense"
        assert config.max_qubits == 8
        assert config.method_params == {}
        inline = CheckerConfig.from_kwargs(jobs=4)  # monolithic: dropped
        assert inline.jobs is None

    def test_model_checker_legacy_kwargs_warn_but_work(self):
        qts = models.grover_qts(3, initial="invariant")
        with pytest.warns(DeprecationWarning):
            checker = ModelChecker(qts, method="contraction", k1=2, k2=2)
        assert checker.method == "contraction"
        assert checker.params == {"k1": 2, "k2": 2}
        assert checker.check_invariant(strict=True)

    def test_model_checker_positional_method_still_works(self):
        with pytest.warns(DeprecationWarning):
            checker = ModelChecker(models.ghz_qts(3), "basic")
        assert checker.method == "basic"

    def test_model_checker_config_path_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ModelChecker(models.ghz_qts(3), CheckerConfig(method="basic"))

    def test_model_checker_rejects_config_plus_kwargs(self):
        with pytest.raises(ConfigError, match="not both"):
            ModelChecker(models.ghz_qts(3), CheckerConfig(),
                         method="basic")

    def test_make_backend_legacy_kwargs_warn(self):
        with pytest.warns(DeprecationWarning):
            backend = make_backend("tdd", method="basic")
        assert backend.method == "basic"

    def test_make_backend_config_path_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            backend = make_backend(CheckerConfig(method="basic"))
        assert backend.method == "basic"

    def test_make_backend_from_config(self):
        assert set(BACKENDS) == {"tdd", "dense"}
        assert make_backend(CheckerConfig()).name == "tdd"
        dense = make_backend(CheckerConfig(backend="dense", max_qubits=9))
        assert dense.name == "dense"
        assert dense.max_qubits == 9

    def test_make_backend_rejects_config_plus_kwargs(self):
        with pytest.raises(ConfigError, match="not both"):
            make_backend(CheckerConfig(), method="basic")

    def test_tdd_backend_rejects_config_plus_kwargs(self):
        # a leftover legacy kwarg next to a config must not be
        # silently discarded
        from repro.mc.backends import TDDBackend
        with pytest.raises(ConfigError, match="not both"):
            TDDBackend(CheckerConfig(method="basic"), jobs=4,
                       strategy="sliced")

    def test_checker_config_is_repro_error(self):
        # callers catching the package base class keep working
        with pytest.raises(ReproError):
            CheckerConfig(backend="nonsense")
