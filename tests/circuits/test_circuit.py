"""QuantumCircuit container behaviour."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.errors import CircuitError
from repro.gates import library as gl


class TestConstruction:
    def test_needs_positive_qubits(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(0)

    def test_append_bounds_check(self):
        circuit = QuantumCircuit(2)
        with pytest.raises(CircuitError):
            circuit.h(2)
        with pytest.raises(CircuitError):
            circuit.cx(0, 5)

    def test_fluent_chaining(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).z(1)
        assert circuit.num_gates == 3
        assert [g.name for g in circuit.gates] == ["h", "cx", "z"]

    def test_extend(self):
        circuit = QuantumCircuit(2)
        circuit.extend([gl.h(0), gl.x(1)])
        assert circuit.num_gates == 2


class TestQueries:
    def test_depth(self):
        circuit = QuantumCircuit(3).h(0).h(1).cx(0, 1).h(2)
        assert circuit.depth() == 2

    def test_depth_ignores_scalars(self):
        circuit = QuantumCircuit(1).scalar(0.5).h(0)
        assert circuit.depth() == 1

    def test_multi_qubit_gates(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).ccx(0, 1, 2)
        assert len(circuit.multi_qubit_gates()) == 2

    def test_count_ops(self):
        circuit = QuantumCircuit(2).h(0).h(1).cx(0, 1)
        assert circuit.count_ops() == {"h": 2, "cx": 1}

    def test_is_unitary(self):
        assert QuantumCircuit(2).h(0).cx(0, 1).is_unitary()
        assert not QuantumCircuit(1).proj(0, 0).is_unitary()


class TestComposition:
    def test_copy_is_independent(self):
        a = QuantumCircuit(1).h(0)
        b = a.copy()
        b.x(0)
        assert a.num_gates == 1
        assert b.num_gates == 2

    def test_compose(self):
        a = QuantumCircuit(2).h(0)
        b = QuantumCircuit(2).cx(0, 1)
        combined = a.compose(b)
        assert [g.name for g in combined.gates] == ["h", "cx"]

    def test_compose_width_mismatch(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(2).compose(QuantumCircuit(3))

    def test_inverse_is_adjoint(self):
        from repro.sim.statevector import circuit_unitary
        circuit = QuantumCircuit(2).h(0).t(0).cx(0, 1).s(1)
        u = circuit_unitary(circuit)
        v = circuit_unitary(circuit.inverse())
        assert np.allclose(u @ v, np.eye(4), atol=1e-9)


class TestText:
    def test_to_text_shape(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        text = circuit.to_text()
        lines = text.splitlines()
        assert lines[0] == "qubits 2"
        assert lines[1].startswith("h")
        assert "ctrl[0]" in lines[2]

    def test_anti_control_marker(self):
        circuit = QuantumCircuit(2).cnx([0], 1, [0])
        assert "~0" in circuit.to_text()
