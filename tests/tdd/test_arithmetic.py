"""TDD arithmetic vs numpy, on random dense tensors."""

import numpy as np
import pytest

from repro.indices.index import Index
from repro.tdd import construction as tc

from tests.helpers import fresh_manager, random_tensor

IDX = [f"a{i}" for i in range(4)]


@pytest.fixture
def manager():
    return fresh_manager(IDX)


def build(manager, arr):
    indices = [Index(n) for n in IDX[:arr.ndim]]
    return tc.from_numpy(manager, arr, indices)


class TestAdd:
    def test_add_matches_numpy(self, manager, rng):
        a = random_tensor(rng, 3)
        b = random_tensor(rng, 3)
        result = build(manager, a) + build(manager, b)
        assert np.allclose(result.to_numpy(), a + b)

    def test_add_zero_is_identity(self, manager, rng):
        a = random_tensor(rng, 2)
        ta = build(manager, a)
        zero = tc.zero(manager, ta.indices)
        assert (ta + zero).allclose(ta)
        assert (zero + ta).allclose(ta)

    def test_add_is_commutative_structurally(self, manager, rng):
        a = random_tensor(rng, 3)
        b = random_tensor(rng, 3)
        ta, tb = build(manager, a), build(manager, b)
        assert (ta + tb).root.node is (tb + ta).root.node

    def test_add_cancels_to_zero(self, manager, rng):
        a = random_tensor(rng, 3)
        ta = build(manager, a)
        assert (ta + (-ta)).is_zero

    def test_add_different_index_sets_unions(self, manager, rng):
        # f(a0) + g(a1) is a tensor over {a0, a1}
        f = tc.from_numpy(manager, np.array([1.0, 2.0]), [Index("a0")])
        g = tc.from_numpy(manager, np.array([10.0, 20.0]), [Index("a1")])
        total = f + g
        assert set(total.index_names) == {"a0", "a1"}
        expect = np.array([1.0, 2.0])[:, None] + np.array([10.0, 20.0])[None]
        assert np.allclose(total.to_numpy(), expect)

    def test_subtraction(self, manager, rng):
        a = random_tensor(rng, 3)
        b = random_tensor(rng, 3)
        assert np.allclose((build(manager, a) - build(manager, b)).to_numpy(),
                           a - b)


class TestScaleNegateConj:
    def test_scale(self, manager, rng):
        a = random_tensor(rng, 3)
        assert np.allclose(build(manager, a).scaled(2.5j).to_numpy(),
                           2.5j * a)

    def test_scale_by_zero(self, manager, rng):
        assert build(manager, random_tensor(rng, 2)).scaled(0).is_zero

    def test_negate(self, manager, rng):
        a = random_tensor(rng, 3)
        assert np.allclose((-build(manager, a)).to_numpy(), -a)

    def test_conj(self, manager, rng):
        a = random_tensor(rng, 3)
        assert np.allclose(build(manager, a).conj().to_numpy(), a.conj())

    def test_conj_involution(self, manager, rng):
        t = build(manager, random_tensor(rng, 3))
        assert t.conj().conj().root.node is t.root.node

    def test_conj_of_zero(self, manager):
        assert tc.zero(manager, [Index("a0")]).conj().is_zero


class TestDistributivity:
    def test_scale_distributes_over_add(self, manager, rng):
        a = random_tensor(rng, 3)
        b = random_tensor(rng, 3)
        ta, tb = build(manager, a), build(manager, b)
        left = (ta + tb).scaled(3.0)
        right = ta.scaled(3.0) + tb.scaled(3.0)
        assert left.allclose(right)

    def test_add_associative(self, manager, rng):
        tensors = [build(manager, random_tensor(rng, 3)) for _ in range(3)]
        left = (tensors[0] + tensors[1]) + tensors[2]
        right = tensors[0] + (tensors[1] + tensors[2])
        assert left.allclose(right)
