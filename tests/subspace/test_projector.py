"""Basis decomposition of projector TDDs (paper, Section IV.A)."""

import numpy as np
import pytest

from repro.errors import SubspaceError
from repro.subspace.projector import apply_projector, basis_decompose
from repro.tdd import construction as tc

from tests.helpers import MINUS, PLUS, make_space


class TestBasisDecompose:
    def test_rank_one_projector(self):
        space = make_space(2)
        sub = space.span([space.basis_state([1, 0])])
        recovered = basis_decompose(space, sub.projector)
        assert recovered.dimension == 1
        assert recovered.equals(sub)

    def test_paper_example1(self):
        """Example 1: decomposing the Fig. 1 projector.

        The first extracted column must be the normalised first column
        1/sqrt(3)(|00>+|01>+|10>)|->, the second |11->.
        """
        space = make_space(3)
        s1 = space.product_state([PLUS, PLUS, MINUS])
        s2 = space.product_state(
            [np.array([0., 1.]), np.array([0., 1.]), MINUS])
        sub = space.span([s1, s2])
        recovered = basis_decompose(space, sub.projector)
        assert recovered.dimension == 2
        assert recovered.equals(sub)
        v1 = recovered.basis[0].to_numpy().reshape(-1)
        expect1 = np.kron(
            (np.kron([1, 0], [1, 0]) + np.kron([1, 0], [0, 1])
             + np.kron([0, 1], [1, 0])) / np.sqrt(3), MINUS)
        assert np.isclose(abs(np.vdot(v1, expect1)), 1.0, atol=1e-9)
        v2 = recovered.basis[1].to_numpy().reshape(-1)
        expect2 = np.kron(np.kron([0, 1], [0, 1]), MINUS)
        assert np.isclose(abs(np.vdot(v2, expect2)), 1.0, atol=1e-9)

    def test_random_projector_round_trip(self, rng):
        space = make_space(3)
        states = [space.from_amplitudes(rng.normal(size=8)
                                        + 1j * rng.normal(size=8))
                  for _ in range(4)]
        sub = space.span(states)
        recovered = basis_decompose(space, sub.projector)
        assert recovered.equals(sub)

    def test_zero_projector(self):
        space = make_space(2)
        zero = space.zero_subspace()
        recovered = basis_decompose(space, zero.projector)
        assert recovered.dimension == 0

    def test_full_space_projector(self):
        space = make_space(2)
        sub = space.span([space.basis_state([a, b])
                          for a in (0, 1) for b in (0, 1)])
        recovered = basis_decompose(space, sub.projector)
        assert recovered.dimension == 4

    def test_non_projector_rejected(self):
        space = make_space(1)
        # |0><1| is not a projector: its "column" extraction never
        # deflates to zero cleanly
        ket = tc.basis_state(space.manager, space.kets, [0])
        bra = tc.basis_state(space.manager, space.bras, [1])
        not_projector = ket.product(bra)
        with pytest.raises(SubspaceError):
            basis_decompose(space, not_projector, max_dim=4)

    def test_max_dim_cap(self):
        space = make_space(2)
        sub = space.span([space.basis_state([0, 0]),
                          space.basis_state([1, 1])])
        with pytest.raises(SubspaceError):
            basis_decompose(space, sub.projector, max_dim=1)


class TestApplyProjector:
    def test_apply_matches_dense(self, rng):
        space = make_space(2)
        sub = space.span([space.from_amplitudes(rng.normal(size=4))
                          for _ in range(2)])
        state = space.from_amplitudes(rng.normal(size=4)
                                      + 1j * rng.normal(size=4))
        projected = apply_projector(space, sub.projector, state)
        expect = sub.to_dense() @ state.to_numpy().reshape(-1)
        assert np.allclose(projected.to_numpy().reshape(-1), expect,
                           atol=1e-8)

    def test_projection_fixed_point(self, rng):
        space = make_space(2)
        sub = space.span([space.from_amplitudes(rng.normal(size=4))])
        v = sub.basis[0]
        assert apply_projector(space, sub.projector, v).allclose(v)
