"""TDD-backed subspaces: span, join, containment, projectors."""

import numpy as np
import pytest

from repro.errors import SubspaceError
from repro.sim.subspace_dense import DenseSubspace

from tests.helpers import MINUS, ONE, PLUS, ZERO, make_space


class TestSpan:
    def test_span_single_state(self):
        space = make_space(2)
        sub = space.span([space.basis_state([0, 1])])
        assert sub.dimension == 1

    def test_span_dependent_states(self):
        space = make_space(2)
        psi = space.basis_state([0, 1])
        sub = space.span([psi, psi.scaled(2), psi.scaled(-1j)])
        assert sub.dimension == 1

    def test_span_orthogonal_states(self):
        space = make_space(2)
        sub = space.span([space.basis_state([0, 0]),
                          space.basis_state([1, 1])])
        assert sub.dimension == 2

    def test_zero_subspace(self):
        space = make_space(2)
        sub = space.zero_subspace()
        assert sub.is_zero() and sub.dimension == 0

    def test_state_on_wrong_indices_rejected(self):
        space = make_space(2)
        from repro.tdd import construction as tc
        from repro.indices.index import Index
        rogue_idx = Index("z0_0", qubit=0, time=0)
        space.manager.register(rogue_idx)
        rogue = tc.basis_state(space.manager, [rogue_idx], [0])
        with pytest.raises(SubspaceError):
            space.span([rogue])

    def test_product_state_needs_all_qubits(self):
        space = make_space(2)
        with pytest.raises(SubspaceError):
            space.product_state([PLUS])


class TestProjector:
    def test_projector_matches_dense(self, rng):
        space = make_space(3)
        states = [space.from_amplitudes(rng.normal(size=8)
                                        + 1j * rng.normal(size=8))
                  for _ in range(3)]
        sub = space.span(states)
        dense = DenseSubspace.from_vectors(
            [s.to_numpy().reshape(-1) for s in states], 8)
        assert np.allclose(sub.to_dense(), dense.projector(), atol=1e-8)

    def test_projector_idempotent(self, rng):
        space = make_space(2)
        sub = space.span([space.from_amplitudes(rng.normal(size=4))])
        p = sub.to_dense()
        assert np.allclose(p @ p, p, atol=1e-9)

    def test_project_state(self):
        space = make_space(1)
        sub = space.span([space.basis_state([0])])
        mixed = space.product_state([PLUS])
        projected = sub.project_state(mixed)
        expect = np.array([2 ** -0.5, 0])
        assert np.allclose(projected.to_numpy(), expect)


class TestJoinLaws:
    def test_join_dimension_bounds(self, rng):
        space = make_space(3)
        a = space.span([space.from_amplitudes(rng.normal(size=8))
                        for _ in range(2)])
        b = space.span([space.from_amplitudes(rng.normal(size=8))])
        j = a.join(b)
        assert max(a.dimension, b.dimension) <= j.dimension
        assert j.dimension <= a.dimension + b.dimension

    def test_join_commutative(self, rng):
        space = make_space(2)
        a = space.span([space.from_amplitudes(rng.normal(size=4))])
        b = space.span([space.from_amplitudes(rng.normal(size=4))])
        assert a.join(b).equals(b.join(a))

    def test_join_idempotent(self, rng):
        space = make_space(2)
        a = space.span([space.from_amplitudes(rng.normal(size=4))])
        assert a.join(a).equals(a)

    def test_join_with_zero(self, rng):
        space = make_space(2)
        a = space.span([space.from_amplitudes(rng.normal(size=4))])
        assert a.join(space.zero_subspace()).equals(a)

    def test_join_does_not_mutate(self, rng):
        space = make_space(2)
        a = space.span([space.basis_state([0, 0])])
        b = space.span([space.basis_state([1, 1])])
        a.join(b)
        assert a.dimension == 1

    def test_paper_example2(self):
        """Example 2: completing {|++->} with |11-> yields the |v> of
        the paper and the Fig. 1 projector."""
        space = make_space(3)
        s1 = space.product_state([PLUS, PLUS, MINUS])
        s2 = space.product_state([ONE, ONE, MINUS])
        a = space.span([s1])
        b = space.span([s2])
        joined = a.join(b)
        assert joined.dimension == 2
        v = joined.basis[1].to_numpy().reshape(-1)
        expect = -np.kron(
            (np.kron([1, 0], [1, 0]) + np.kron([1, 0], [0, 1])
             + np.kron([0, 1], [1, 0]) - 3 * np.kron([0, 1], [0, 1])),
            MINUS) / (2 * np.sqrt(3))
        assert np.isclose(abs(np.vdot(v, expect)), 1.0, atol=1e-9)


class TestContainment:
    def test_contains_state(self):
        space = make_space(2)
        sub = space.span([space.basis_state([0, 0]),
                          space.basis_state([0, 1])])
        mixed = space.product_state([ZERO, PLUS])
        assert sub.contains_state(mixed)
        assert not sub.contains_state(space.basis_state([1, 0]))

    def test_contains_zero_state(self):
        space = make_space(1)
        from repro.tdd import construction as tc
        zero_state = tc.zero(space.manager, space.kets)
        sub = space.span([space.basis_state([0])])
        assert sub.contains_state(zero_state)

    def test_contains_and_equals(self):
        space = make_space(2)
        big = space.span([space.basis_state([0, 0]),
                          space.basis_state([1, 1])])
        small = space.span([space.basis_state([0, 0])])
        assert big.contains(small)
        assert not small.contains(big)
        assert not big.equals(small)
        assert big.equals(big.copy())

    def test_cross_space_join_rejected(self):
        s1, s2 = make_space(2), make_space(2)
        a = s1.span([s1.basis_state([0, 0])])
        b = s2.span([s2.basis_state([0, 0])])
        with pytest.raises(SubspaceError):
            a.join(b)


class TestMisc:
    def test_max_basis_nodes(self):
        space = make_space(2)
        sub = space.span([space.basis_state([0, 1])])
        assert sub.max_basis_nodes() >= 3

    def test_from_amplitudes_round_trip(self, rng):
        space = make_space(3)
        amps = rng.normal(size=8) + 1j * rng.normal(size=8)
        state = space.from_amplitudes(amps)
        assert np.allclose(state.to_numpy().reshape(-1), amps)
