"""Global index orders for TDDs.

A TDD is canonical only relative to a fixed linear order on the indices
(paper, Section II.B).  :class:`IndexOrder` owns that order: indices are
registered once and assigned increasing integer *levels*; every TDD node
stores the level of the index it branches on, and all TDD algorithms
recurse on the smaller level first.

The default policy used throughout the package is *qubit-major*: the
wire index ``x_i^j`` sorts by ``(i, j)``, so all indices of one qubit
are adjacent.  This matches the order of the paper's Fig. 1 projector
TDD (x1 y1 x2 y2 x3 y3 with x/y interleaved per qubit) and is what makes
the GHZ and Bernstein-Vazirani TDDs linear in the number of qubits.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.errors import IndexError_
from repro.indices.index import Index


class IndexOrder:
    """A mutable, append-only linear order on :class:`Index` objects."""

    def __init__(self, indices: Iterable[Index] = ()) -> None:
        self._levels: Dict[str, int] = {}
        self._indices: List[Index] = []
        for idx in indices:
            self.register(idx)

    def register(self, index: Index) -> int:
        """Append ``index`` to the order (idempotent); return its level."""
        level = self._levels.get(index.name)
        if level is None:
            level = len(self._indices)
            self._levels[index.name] = level
            self._indices.append(index)
        return level

    def register_all(self, indices: Iterable[Index]) -> None:
        for idx in indices:
            self.register(idx)

    def level(self, index: Index) -> int:
        """The level of a registered index; raises if unknown."""
        try:
            return self._levels[index.name]
        except KeyError:
            raise IndexError_(f"index {index.name!r} is not registered "
                              f"in this order") from None

    def __contains__(self, index: Index) -> bool:
        return index.name in self._levels

    def __len__(self) -> int:
        return len(self._indices)

    def index_at(self, level: int) -> Index:
        return self._indices[level]

    def sorted(self, indices: Iterable[Index]) -> List[Index]:
        """Return ``indices`` sorted by level."""
        return sorted(indices, key=self.level)

    def levels_of(self, indices: Iterable[Index]) -> List[int]:
        return sorted(self.level(i) for i in indices)

    @staticmethod
    def qubit_major(indices: Iterable[Index]) -> "IndexOrder":
        """Build an order sorting wire indices by ``(qubit, time)``.

        Indices lacking circuit coordinates sort after all wire indices,
        alphabetically.
        """
        def key(idx: Index):
            if idx.qubit is None:
                return (1, 0, 0, idx.name)
            return (0, idx.qubit, idx.time if idx.time is not None else 0,
                    idx.name)

        return IndexOrder(sorted(set(indices), key=key))

    @staticmethod
    def time_major(indices: Iterable[Index]) -> "IndexOrder":
        """Build an order sorting wire indices by ``(time, qubit)``."""
        def key(idx: Index):
            if idx.qubit is None:
                return (1, 0, 0, idx.name)
            return (0, idx.time if idx.time is not None else 0, idx.qubit,
                    idx.name)

        return IndexOrder(sorted(set(indices), key=key))

    def __repr__(self) -> str:
        names = ", ".join(i.name for i in self._indices[:8])
        more = "..." if len(self._indices) > 8 else ""
        return f"IndexOrder([{names}{more}], n={len(self._indices)})"


def require_same_order(*orders: Sequence[IndexOrder]) -> None:
    """Raise unless all operands share one IndexOrder object."""
    first = orders[0]
    for other in orders[1:]:
        if other is not first:
            raise IndexError_("operands belong to different index orders")
