"""repro — Image Computation for Quantum Transition Systems.

A complete reimplementation of Hong, Gao, Li, Ying & Ying, *"Image
Computation for Quantum Transition Systems"* (DATE 2025): tensor
decision diagrams with a fully iterative apply kernel (instrumented
operation caches, root-based garbage collection — see
``ARCHITECTURE.md``), quantum circuits as tensor networks, subspace
algebra, quantum transition systems, four image computation algorithms
(basic / addition partition / contraction partition / hybrid) and a
model-checking layer with pluggable backends on top.

Quickstart::

    from repro import models, ModelChecker

    qts = models.grover_qts(4, initial="invariant")
    checker = ModelChecker(qts, method="contraction", k1=4, k2=4)
    assert checker.check_invariant(strict=True)   # T(S) = S

    result = checker.image()              # T(S0) with kernel stats:
    result.stats.cache_hit_rate           #   memo-table hit rate
    result.stats.peak_live_nodes          #   unique-table high water
    result.stats.live_nodes               #   ... after garbage collection

    # corroborate the symbolic engine against the dense statevector
    # reference (small instances only — the dense backend is 2^n):
    assert checker.cross_validate().ok
    dense = ModelChecker(qts, backend="dense")    # same API, dense engine

    # parallel sliced execution: contractions decompose into cofactor
    # subproblems fanned out over a process pool (identical results)
    parallel = ModelChecker(qts, strategy="sliced", jobs=4)
"""

from repro.circuits.circuit import QuantumCircuit
from repro.gates.gate import Gate
from repro.gates import library as gates
from repro.image import (AdditionImageComputer, BasicImageComputer,
                         ContractionImageComputer, ImageEngine, ImageResult,
                         MonolithicExecutor, SlicedExecutor, compute_image,
                         make_computer)
from repro.indices.index import Index, wire
from repro.indices.order import IndexOrder
from repro.mc.backends import (Backend, DenseStatevectorBackend, TDDBackend,
                               cross_validate, make_backend)
from repro.mc.checker import ModelChecker
from repro.mc.reachability import reachable_space
from repro.subspace.subspace import StateSpace, Subspace
from repro.subspace.projector import basis_decompose
from repro.systems import models
from repro.systems.operations import QuantumOperation
from repro.systems.qts import QuantumTransitionSystem
from repro.tdd.manager import TDDManager
from repro.tdd.tdd import TDD

__version__ = "1.0.0"

__all__ = [
    "QuantumCircuit", "Gate", "gates",
    "AdditionImageComputer", "BasicImageComputer",
    "ContractionImageComputer", "ImageEngine", "ImageResult",
    "MonolithicExecutor", "SlicedExecutor", "compute_image",
    "make_computer",
    "Index", "wire", "IndexOrder",
    "Backend", "DenseStatevectorBackend", "TDDBackend",
    "cross_validate", "make_backend",
    "ModelChecker", "reachable_space",
    "StateSpace", "Subspace", "basis_decompose",
    "models", "QuantumOperation", "QuantumTransitionSystem",
    "TDDManager", "TDD",
    "__version__",
]
