"""Reachability analysis of Grover's algorithm.

From the algorithm's input state |+...+>|->, repeated Grover
iterations stay inside the 2-dimensional subspace spanned by the
uniform superposition and the marked state — the invariant the paper's
Section III.A.1 checks.  This example computes the reachability
fixpoint from the input state, confirms it converges to that plane in
one join, and then verifies the safety property "the system never
leaves the invariant subspace" for several circuit widths.

Run:  python examples/reachability_grover.py
"""

import numpy as np

from repro import ModelChecker, models


def main() -> None:
    for n in (3, 4, 5):
        qts = models.grover_qts(n)  # initial = span{|+..+->}
        checker = ModelChecker(qts, method="contraction", k1=4, k2=4)
        trace = checker.reachable()
        print(f"Grover {n}: reachable dims per iteration "
              f"{trace.dimensions} (converged={trace.converged})")
        assert trace.converged
        assert trace.dimension == 2

        # the reachable space equals the invariant subspace of III.A.1
        invariant = models.grover_qts(n, initial="invariant")
        # rebuild the invariant subspace inside *this* system's space
        m = n - 1
        plus = np.array([1, 1]) / np.sqrt(2)
        minus = np.array([1, -1]) / np.sqrt(2)
        one = np.array([0, 1])
        inv = qts.space.span([
            qts.space.product_state([plus] * m + [minus]),
            qts.space.product_state([one] * m + [minus]),
        ])
        print(f"  reachable == invariant subspace: "
              f"{trace.subspace.equals(inv)}")
        assert trace.subspace.equals(inv)

        # safety: nothing outside the plane is ever reached
        assert checker.check_safety(inv)
        print(f"  safety (never leaves the plane): True")


if __name__ == "__main__":
    main()
