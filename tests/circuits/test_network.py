"""Circuit -> tensor network: TDD path vs dense path vs simulator."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import random_circuit
from repro.circuits.network import (circuit_to_dense, circuit_to_tdd,
                                    circuit_to_tdd_network)
from repro.sim.statevector import basis_state_from_int, circuit_unitary
from repro.tdd import construction as tc
from repro.tdd.manager import TDDManager
from repro.utils.bitops import int_to_bits


def apply_operator_tdd(manager, operator, inputs, outputs, basis_int, n):
    """Contract a basis state through an operator TDD; dense result."""
    bits = int_to_bits(basis_int, n)
    psi = tc.basis_state(manager, inputs, bits)
    sum_over = [i for i in inputs if i not in outputs]
    out = psi.contract(operator, sum_over)
    return out.to_numpy().reshape(-1)


@pytest.mark.parametrize("seed", range(5))
def test_random_circuit_tdd_matches_simulator(seed):
    n = 4
    circuit = random_circuit(n, 12, seed=seed)
    u = circuit_unitary(circuit)
    manager = TDDManager()
    operator, inputs, outputs = circuit_to_tdd(circuit, manager)
    for basis in (0, 3, 7, 15):
        got = apply_operator_tdd(manager, operator, inputs, outputs,
                                 basis, n)
        expect = u @ basis_state_from_int(n, basis).reshape(-1)
        assert np.allclose(got, expect, atol=1e-8), (seed, basis)


@pytest.mark.parametrize("seed", range(3))
def test_dense_network_matches_tdd_network(seed):
    circuit = random_circuit(3, 10, seed=seed)
    dense_op, d_in, d_out = circuit_to_dense(circuit)
    manager = TDDManager()
    tdd_op, t_in, t_out = circuit_to_tdd(circuit, manager)
    aligned = dense_op.transpose_like(
        sorted(dense_op.indices, key=manager.order.level))
    assert tuple(i.name for i in aligned.indices) == tdd_op.index_names
    assert np.allclose(aligned.array, tdd_op.to_numpy(), atol=1e-9)


def test_network_open_indices_are_boundary():
    circuit = QuantumCircuit(3).h(0).cx(0, 1).z(2)
    manager = TDDManager()
    network, inputs, outputs = circuit_to_tdd_network(circuit, manager)
    assert network.open_indices == set(inputs) | set(outputs)
    network.validate()


def test_empty_circuit_contracts_to_scalar_one():
    circuit = QuantumCircuit(2)
    manager = TDDManager()
    operator, inputs, outputs = circuit_to_tdd(circuit, manager)
    assert operator.is_scalar
    assert operator.scalar_value() == 1
    assert inputs == outputs


def test_projector_circuit_norm_drops():
    circuit = QuantumCircuit(1).h(0).proj(0, 0)
    u = circuit_unitary(circuit)
    # |0> -> H -> |+> -> proj0 -> |0>/sqrt(2)
    out = u @ np.array([1, 0], dtype=complex)
    assert np.allclose(out, [1 / np.sqrt(2), 0])


def test_observer_reports_intermediates():
    circuit = QuantumCircuit(2).h(0).cx(0, 1).h(1)
    manager = TDDManager()
    sizes = []
    circuit_to_tdd(circuit, manager, observer=lambda t: sizes.append(t.size()))
    assert len(sizes) == circuit.num_gates - 1  # pairwise folds
