"""Table I — Bernstein-Vazirani rows.

Paper: all three methods finish BV100..BV500; max nodes grow linearly
for every method (596..2996 basic, ~n for contraction), contraction
~15x faster.

Reproduction: same linear growth; BV100 runs at the paper's own size
under contraction.
"""

import pytest

from repro.systems import models


@pytest.mark.parametrize("method,params", [
    ("basic", {}),
    ("addition", {"k": 1}),
    ("contraction", {"k1": 4, "k2": 4}),
])
def test_bv30(image_bench, method, params):
    result = image_bench(lambda: models.bv_qts(30), method, **params)
    assert result.dimension == 1


@pytest.mark.parametrize("n", [60, 100])
def test_bv_wide_contraction(image_bench, n):
    """Paper-scale widths under the contraction method."""
    result = image_bench(lambda: models.bv_qts(n), "contraction",
                         k1=4, k2=4)
    assert result.dimension == 1


def test_bv_linear_node_growth():
    from repro.image.engine import compute_image
    nodes = [compute_image(models.bv_qts(n), method="contraction",
                           k1=4, k2=4).stats.max_nodes
             for n in (25, 50, 100)]
    # quadrupling the width must not grow nodes more than ~6x (linear
    # with small constant wobble)
    assert nodes[2] <= 6 * nodes[0]
