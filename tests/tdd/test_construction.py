"""Structured TDD constructors."""

import numpy as np
import pytest

from repro.errors import TDDError
from repro.indices.index import Index
from repro.tdd import construction as tc

from tests.helpers import fresh_manager, random_tensor

NAMES = ["a0", "a1", "a2", "a3"]


@pytest.fixture
def manager():
    return fresh_manager(NAMES)


def idx(*names):
    return [Index(n) for n in names]


class TestFromNumpy:
    def test_round_trip(self, manager, rng):
        arr = random_tensor(rng, 4)
        t = tc.from_numpy(manager, arr, idx(*NAMES))
        assert np.allclose(t.to_numpy(), arr)

    def test_axis_order_respected(self, manager, rng):
        arr = random_tensor(rng, 2)
        # feed axes in reversed label order: axis0=a1, axis1=a0
        t = tc.from_numpy(manager, arr, idx("a1", "a0"))
        # to_numpy returns axes in level order (a0 first)
        assert np.allclose(t.to_numpy(), arr.T)

    def test_canonicity_same_array_same_node(self, manager, rng):
        arr = random_tensor(rng, 3)
        t1 = tc.from_numpy(manager, arr, idx("a0", "a1", "a2"))
        t2 = tc.from_numpy(manager, arr.copy(), idx("a0", "a1", "a2"))
        assert t1.root.node is t2.root.node

    def test_shape_mismatch_raises(self, manager):
        with pytest.raises(TDDError):
            tc.from_numpy(manager, np.zeros((2, 3)), idx("a0", "a1"))

    def test_duplicate_labels_raise(self, manager):
        with pytest.raises(TDDError):
            tc.from_numpy(manager, np.zeros((2, 2)), idx("a0", "a0"))

    def test_zero_array(self, manager):
        t = tc.from_numpy(manager, np.zeros((2, 2)), idx("a0", "a1"))
        assert t.is_zero

    def test_scalar_rank0(self, manager):
        t = tc.from_numpy(manager, np.array(2.5), [])
        assert t.is_scalar and t.scalar_value() == 2.5


class TestDelta:
    def test_two_index_delta_is_identity(self, manager):
        d = tc.delta(manager, idx("a0", "a1"))
        assert np.allclose(d.to_numpy(), np.eye(2))

    def test_three_index_delta(self, manager):
        d = tc.delta(manager, idx("a0", "a1", "a2"))
        expect = np.zeros((2, 2, 2))
        expect[0, 0, 0] = expect[1, 1, 1] = 1
        assert np.allclose(d.to_numpy(), expect)

    def test_one_index_delta_is_ones(self, manager):
        d = tc.delta(manager, idx("a0"))
        assert np.allclose(d.to_numpy(), np.ones(2))

    def test_empty_delta_is_scalar_one(self, manager):
        d = tc.delta(manager, [])
        assert d.is_scalar and d.scalar_value() == 1


class TestIndicator:
    def test_all_ones_indicator(self, manager):
        t = tc.indicator(manager, idx("a0", "a1"))
        expect = np.zeros((2, 2))
        expect[1, 1] = 1
        assert np.allclose(t.to_numpy(), expect)

    def test_all_zeros_indicator(self, manager):
        t = tc.indicator(manager, idx("a0", "a1"), value=0)
        expect = np.zeros((2, 2))
        expect[0, 0] = 1
        assert np.allclose(t.to_numpy(), expect)

    def test_pattern(self, manager):
        t = tc.indicator_pattern(manager, idx("a0", "a1", "a2"), [1, 0, 1])
        arr = t.to_numpy()
        assert arr[1, 0, 1] == 1 and arr.sum() == 1

    def test_pattern_length_mismatch_raises(self, manager):
        with pytest.raises(TDDError):
            tc.indicator_pattern(manager, idx("a0"), [1, 0])


class TestStates:
    def test_basis_state(self, manager):
        t = tc.basis_state(manager, idx("a0", "a1", "a2"), [0, 1, 1])
        arr = t.to_numpy()
        assert arr[0, 1, 1] == 1 and np.abs(arr).sum() == 1

    def test_ones(self, manager):
        t = tc.ones(manager, idx("a0", "a1"))
        assert np.allclose(t.to_numpy(), np.ones((2, 2)))

    def test_identity_matrix(self, manager):
        t = tc.identity(manager, idx("a0", "a2"), idx("a1", "a3"))
        arr = t.to_numpy()  # axes in level order a0,a1,a2,a3
        mat = arr.transpose(0, 2, 1, 3).reshape(4, 4)
        assert np.allclose(mat, np.eye(4))

    def test_identity_shape_mismatch(self, manager):
        with pytest.raises(TDDError):
            tc.identity(manager, idx("a0"), idx("a1", "a2"))

    def test_projector(self, manager):
        t = tc.computational_basis_projector(manager, idx("a0"), idx("a1"),
                                             [1])
        arr = t.to_numpy()
        expect = np.zeros((2, 2))
        expect[1, 1] = 1
        assert np.allclose(arr, expect)

    def test_outer_product(self, manager, rng):
        v = random_tensor(rng, 1)
        ket = tc.from_numpy(manager, v, idx("a0"))
        outer = tc.outer_product(ket, ket, idx("a1"))
        assert np.allclose(outer.to_numpy(), np.outer(v, v.conj()))
