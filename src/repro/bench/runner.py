"""Shared benchmark plumbing.

A benchmark run builds a *fresh* QTS (so transition-TDD construction is
included in the measured time, matching the paper's methodology),
computes one image, and reports wall seconds + peak TDD node count —
the two columns of Table I — plus the kernel instrumentation: cache
hit rate and the peak/post-GC live-node population.

:class:`BenchRow` is the presentation type shared by the table
harnesses; batch execution itself lives in :mod:`repro.bench.sweep`
(the tables are thin wrappers over sweep specs) and
:meth:`BenchRow.from_record` adapts a sweep record into a table row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.image.engine import compute_image
from repro.systems.qts import QuantumTransitionSystem


@dataclass
class BenchRow:
    """One (benchmark, method) cell of Table I."""

    benchmark: str
    method: str
    seconds: float
    max_nodes: int
    dimension: int
    timed_out: bool = False
    #: fraction of operation-cache lookups answered from the memo tables
    cache_hit_rate: float = 0.0
    #: high-water mark of the manager's unique table during the run
    peak_live_nodes: int = 0
    #: unique-table population after the post-run garbage collection
    live_nodes: int = 0
    #: execution strategy the row ran under (see repro.image.sliced)
    strategy: str = "monolithic"

    def metric_cells(self):
        """The per-method table columns: time, max#node, hit%, live/peak."""
        if self.timed_out:
            return ("-", "-", "-", "-")
        return (f"{self.seconds:.2f}", str(self.max_nodes),
                self.hit_rate_percent,
                f"{self.live_nodes}/{self.peak_live_nodes}")

    def cells(self):
        return (self.benchmark, self.method) + self.metric_cells()

    @property
    def hit_rate_percent(self) -> str:
        return f"{100 * self.cache_hit_rate:.0f}%"

    @classmethod
    def from_record(cls, record: dict) -> "BenchRow":
        """Adapt a :mod:`repro.bench.sweep` record into a table row."""
        if record.get("failed"):
            return cls(benchmark=record["label"], method=record["method"],
                       seconds=0.0, max_nodes=0, dimension=0,
                       timed_out=True,
                       strategy=record.get("strategy", "monolithic"))
        return cls(benchmark=record["label"], method=record["method"],
                   seconds=record["seconds"],
                   max_nodes=record["max_nodes"],
                   dimension=record["dimension"],
                   cache_hit_rate=record["cache_hit_rate"],
                   peak_live_nodes=record["peak_live_nodes"],
                   live_nodes=record["live_nodes"],
                   strategy=record.get("strategy", "monolithic"))


def run_image_benchmark(builder: Callable[[], QuantumTransitionSystem],
                        label: str, method: str,
                        timeout_seconds: Optional[float] = None,
                        strategy: str = "monolithic",
                        jobs: Optional[int] = None,
                        **params) -> BenchRow:
    """Run one image computation and collect the Table I columns.

    The escape hatch for ad-hoc builders (tests, custom systems);
    named-model grids go through :mod:`repro.bench.sweep` instead.
    ``timeout_seconds`` is a *soft* cap checked after the run (pure
    Python cannot preempt a contraction); callers use generous caps and
    pre-sized workloads instead of relying on it.
    """
    qts = builder()
    result = compute_image(qts, method=method, strategy=strategy,
                           jobs=jobs, **params)
    row = BenchRow(benchmark=label, method=method,
                   seconds=result.stats.seconds,
                   max_nodes=result.stats.max_nodes,
                   dimension=result.dimension,
                   cache_hit_rate=result.stats.cache_hit_rate,
                   peak_live_nodes=result.stats.peak_live_nodes,
                   live_nodes=result.stats.live_nodes,
                   strategy=strategy)
    if timeout_seconds is not None and row.seconds > timeout_seconds:
        row.timed_out = True
    return row
