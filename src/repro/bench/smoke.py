"""Smoke benchmark: one small Table-1 row per image method, <60 s total.

Runs a single benchmark instance through all four image computation
methods (basic / addition / contraction / hybrid) and prints the Table
I columns plus the kernel instrumentation — cache hit rate and the
post-GC/peak live-node population.  CI runs this to catch perf or
instrumentation regressions without paying for the full Table I grid.

``--strategy sliced [--jobs N]`` runs every method through the sliced
execution strategy (parallel cofactor contraction, see
:mod:`repro.image.sliced`) and appends the *QRW stress case*: the
noisy-walk reachability workload contraction-for-contraction under the
sequential monolithic strategy and again under the requested sliced
configuration, printing both wall clocks and the speedup.

Run:  ``python -m repro.bench.smoke [--model grover] [--size 6]
[--strategy sliced --jobs 4]``
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.bench.runner import run_image_benchmark
from repro.mc.reachability import reachable_space
from repro.systems import models

from repro.utils.tables import format_table

#: method name -> image parameters (Table I settings + the hybrid row)
SMOKE_METHODS: Dict[str, dict] = {
    "basic": {},
    "addition": {"k": 1},
    "contraction": {"k1": 4, "k2": 4},
    "hybrid": {"k": 1, "k1": 4, "k2": 4},
}

_BUILDERS: Dict[str, Callable[[int], object]] = {
    "ghz": models.ghz_qts,
    "bv": models.bv_qts,
    "qft": models.qft_qts,
    "grover": lambda n: models.grover_qts(n, iterations=2),
    "qrw": lambda n: models.qrw_qts(n, 0.1, steps=2),
}

#: the QRW stress case: a noisy-walk reachability fixpoint whose
#: accumulated subspace makes the per-iteration image contractions the
#: dominant cost (dimensions grow 1 -> 15+)
STRESS_MODEL = ("qrw", 6, {"noise_probability": 0.1, "steps": 2})
STRESS_ITERATIONS = 6


def smoke_rows(model: str = "grover", size: int = 6,
               strategy: str = "monolithic",
               jobs: Optional[int] = None) -> List:
    builder = _BUILDERS[model]
    label = f"{model}{size}"
    return [run_image_benchmark(lambda: builder(size), label, method,
                                strategy=strategy, jobs=jobs, **params)
            for method, params in SMOKE_METHODS.items()]


def stress_times(strategy: str = "sliced",
                 jobs: Optional[int] = None) -> Dict[str, float]:
    """Sequential-vs-strategy wall clocks on the QRW stress case."""
    name, size, params = STRESS_MODEL
    out: Dict[str, float] = {}
    for label, kwargs in (("monolithic", {}),
                          (strategy, {"strategy": strategy, "jobs": jobs})):
        qts = models.build_model(name, size, **params)
        trace = reachable_space(qts, "basic",
                                max_iterations=STRESS_ITERATIONS, **kwargs)
        out[label] = trace.stats.seconds
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="grover",
                        choices=sorted(_BUILDERS))
    parser.add_argument("--size", type=int, default=6)
    parser.add_argument("--strategy", default="monolithic",
                        choices=["monolithic", "sliced"])
    parser.add_argument("--jobs", type=int, default=None,
                        help="sliced-strategy worker pool width")
    args = parser.parse_args(argv)
    rows = smoke_rows(args.model, args.size, strategy=args.strategy,
                      jobs=args.jobs)
    headers = ["Benchmark", "method", "time [s]", "max#node", "dim",
               "cache hit%", "live/peak nodes"]
    table = [[row.benchmark, row.method, f"{row.seconds:.2f}",
              str(row.max_nodes), str(row.dimension),
              row.hit_rate_percent,
              f"{row.live_nodes}/{row.peak_live_nodes}"]
             for row in rows]
    print(f"Smoke benchmark — one Table-1 row per method "
          f"(strategy={args.strategy})")
    print(format_table(headers, table))
    # all four methods must compute the same image dimension
    dims = {row.dimension for row in rows}
    if len(dims) != 1:
        print(f"FAIL: methods disagree on image dimension: {dims}")
        return 1
    if args.strategy != "monolithic":
        name, size, _params = STRESS_MODEL
        times = stress_times(args.strategy, args.jobs)
        speedup = times["monolithic"] / max(times[args.strategy], 1e-9)
        print(f"QRW stress case ({name}{size} reachability, "
              f"{STRESS_ITERATIONS} iterations):")
        print(f"  monolithic      = {times['monolithic']:.2f} s")
        print(f"  {args.strategy} jobs={args.jobs or 1}  "
              f"= {times[args.strategy]:.2f} s  "
              f"({speedup:.2f}x vs sequential)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
