"""Monte-Carlo validation of symbolic images and reachability."""

import numpy as np
import pytest

from repro.image.engine import compute_image
from repro.mc.reachability import reachable_space
from repro.mc.simulation import (sample_state, validate_image,
                                 validate_reachability)
from repro.systems import models


class TestSampling:
    def test_unit_norm(self, rng):
        qts = models.grover_qts(4, "invariant")
        v = sample_state(qts.initial, rng)
        assert np.isclose(np.linalg.norm(v), 1.0)

    def test_inside_subspace(self, rng):
        qts = models.grover_qts(4, "invariant")
        v = sample_state(qts.initial, rng)
        from tests.helpers import subspace_to_dense
        assert subspace_to_dense(qts.initial).contains_vector(v)

    def test_zero_subspace_rejected(self, rng):
        qts = models.ghz_qts(3)
        with pytest.raises(ValueError):
            sample_state(qts.space.zero_subspace(), rng)


class TestValidateImage:
    @pytest.mark.parametrize("builder", [
        lambda: models.grover_qts(4),
        lambda: models.bitflip_qts(),
        lambda: models.qrw_qts(4, 0.3),
    ])
    def test_correct_images_validate(self, builder):
        qts = builder()
        image = compute_image(qts, method="contraction").subspace
        qts2 = builder()
        report = validate_image(qts2, _rebuild(qts2, image), samples=10)
        assert report.ok, report.failures

    def test_wrong_image_detected(self):
        qts = models.grover_qts(4)
        # claim the image is the initial space (it is not)
        report = validate_image(qts, qts.initial, samples=5)
        assert not report.ok
        assert report.failures[0]["operation"] == "G"


class TestValidateReachability:
    def test_correct_reachable_validates(self):
        qts = models.qrw_qts(3, 0.3)
        trace = reachable_space(qts, method="basic")
        qts2 = models.qrw_qts(3, 0.3)
        report = validate_reachability(
            qts2, _rebuild(qts2, trace.subspace), steps=4, samples=5)
        assert report.ok, report.failures

    def test_too_small_reachable_detected(self):
        qts = models.qrw_qts(3, 0.3)
        report = validate_reachability(qts, qts.initial, steps=3,
                                       samples=5)
        assert not report.ok


def _rebuild(qts, subspace):
    """Re-span a subspace inside another (identically laid out) QTS."""
    states = [qts.space.from_amplitudes(v.to_numpy().reshape(-1))
              for v in subspace.basis]
    return qts.space.span(states)
