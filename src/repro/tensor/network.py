"""Tensor networks over any tensor backend (TDD or dense).

A :class:`TensorNetwork` is a list of tensors plus a set of *open*
indices (the network's external legs).  Contraction folds tensors
together pairwise; an index shared by the two operands is summed
exactly when it is not open and appears in no other remaining tensor —
this is what makes hyper-edge indices (shared by three or more tensors,
paper Section V.A) work without special cases.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Iterable, List, Optional, Sequence, Set

from repro.errors import TDDError
from repro.indices.index import Index


class TensorNetwork:
    """An open tensor network.

    Parameters
    ----------
    tensors:
        Tensor values exposing ``indices`` and
        ``contract(other, sum_over)``.
    open_indices:
        The external legs; never summed away.
    """

    def __init__(self, tensors: Iterable[object],
                 open_indices: Iterable[Index]) -> None:
        self.tensors: List[object] = list(tensors)
        self.open_indices: Set[Index] = set(open_indices)

    # ------------------------------------------------------------------
    def index_multiplicity(self) -> Counter:
        """How many tensors mention each index."""
        counts: Counter = Counter()
        for tensor in self.tensors:
            for idx in tensor.indices:
                counts[idx] += 1
        return counts

    def all_indices(self) -> Set[Index]:
        out: Set[Index] = set()
        for tensor in self.tensors:
            out.update(tensor.indices)
        return out

    def validate(self) -> None:
        missing = self.open_indices - self.all_indices()
        if missing:
            raise TDDError(f"open indices {sorted(i.name for i in missing)} "
                           f"do not appear in the network")

    # ------------------------------------------------------------------
    def contract_pair(self, pos_a: int, pos_b: int,
                      observer: Optional[Callable[[object], None]] = None,
                      contract_fn: Optional[Callable] = None) -> None:
        """Contract tensors at two positions in place.

        Sums every index shared by the pair that is closed and unused
        elsewhere.  ``contract_fn(a, b, sum_over)`` overrides the plain
        pairwise contraction — this is how the sliced execution
        strategy injects itself into network folds.
        """
        if pos_a == pos_b:
            raise ValueError("cannot contract a tensor with itself")
        a = self.tensors[pos_a]
        b = self.tensors[pos_b]
        counts = self.index_multiplicity()
        shared = set(a.indices) & set(b.indices)
        sum_over = {idx for idx in shared
                    if idx not in self.open_indices and counts[idx] == 2}
        if contract_fn is not None:
            result = contract_fn(a, b, sum_over)
        else:
            result = a.contract(b, sum_over)
        if observer is not None:
            observer(result)
        keep = [t for i, t in enumerate(self.tensors)
                if i not in (pos_a, pos_b)]
        keep.append(result)
        self.tensors = keep

    def contract_all(self,
                     order: Optional[Sequence[int]] = None,
                     observer: Optional[Callable[[object], None]] = None,
                     contract_fn: Optional[Callable] = None) -> object:
        """Fold the whole network into a single tensor.

        ``order`` names tensor positions (into the *original* list); the
        fold contracts them left to right into an accumulator.  By
        default the list order is used.  Disconnected tensors are
        combined with a tensor product, so the fold always succeeds.
        ``contract_fn`` is forwarded to every pairwise step (see
        :meth:`contract_pair`).
        """
        if not self.tensors:
            raise TDDError("cannot contract an empty network")
        work = TensorNetwork(list(self.tensors), set(self.open_indices))
        sequence = list(order) if order is not None else list(
            range(len(work.tensors)))
        if sorted(sequence) != list(range(len(work.tensors))):
            raise ValueError("order must be a permutation of tensor positions")
        # Walk the requested order, always folding the next tensor into
        # the accumulator (which is kept at the end of the list).
        remaining = [work.tensors[i] for i in sequence]
        work.tensors = remaining
        while len(work.tensors) > 1:
            work.contract_pair(0, 1, observer=observer,
                               contract_fn=contract_fn)
            # contract_pair appends the result; rotate it to the front
            work.tensors.insert(0, work.tensors.pop())
        return work.tensors[0]

    def __len__(self) -> int:
        return len(self.tensors)

    def __repr__(self) -> str:
        return (f"TensorNetwork(tensors={len(self.tensors)}, "
                f"open={len(self.open_indices)})")
