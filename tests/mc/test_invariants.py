"""Invariance / image property checks."""

from repro.mc.invariants import (image_contained_in, image_equals,
                                 image_of, is_invariant)
from repro.systems import models


class TestInvariance:
    def test_grover_invariant_strict(self):
        qts = models.grover_qts(4, initial="invariant")
        assert is_invariant(qts, strict=True)

    def test_grover_plus_not_invariant(self):
        # |++-> maps to the marked state, which is NOT in span{|++->}
        qts = models.grover_qts(4)
        assert not is_invariant(qts)

    def test_bitflip_image_shrinks(self):
        qts = models.bitflip_qts()
        image = image_of(qts)
        assert image.dimension == 1
        assert not is_invariant(qts)  # |000000> not in the error span


class TestImageEquals:
    def test_bitflip_corrects_to_zero(self):
        qts = models.bitflip_qts()
        expected = qts.space.span([qts.space.basis_state([0] * 6)])
        assert image_equals(qts, expected)

    def test_ghz_image(self):
        qts = models.ghz_qts(3)
        ghz = qts.space.from_amplitudes(
            [2 ** -0.5, 0, 0, 0, 0, 0, 0, 2 ** -0.5])
        expected = qts.space.span([ghz])
        assert image_equals(qts, expected)


class TestContainment:
    def test_noisy_walk_containment(self):
        """Section III.A.3: T(span{|0>|i>}) is contained in
        span{|0>|i-1>, |1>|i+1>} (the paper states this as equality;
        the image is in fact the 1-dim ray spanned by their
        superposition — see EXPERIMENTS.md)."""
        qts = models.qrw_qts(4, 0.25, start_position=3)
        space = qts.space
        bound = space.span([
            space.basis_state([0, 0, 1, 0]),  # |0>|2>
            space.basis_state([1, 1, 0, 0]),  # |1>|4>
        ])
        assert image_contained_in(qts, bound)
        image = image_of(qts)
        assert image.dimension == 1

    def test_full_space_always_contains(self):
        qts = models.ghz_qts(3)
        full = qts.space.span([qts.space.basis_state(
            [int(b) for b in format(i, "03b")]) for i in range(8)])
        assert image_contained_in(qts, full)
