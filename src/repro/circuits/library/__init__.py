"""The paper's benchmark circuit families (Table I) and case studies."""

from repro.circuits.library.ghz import ghz_circuit
from repro.circuits.library.grover import grover_iteration
from repro.circuits.library.bv import bernstein_vazirani
from repro.circuits.library.qft import qft_circuit
from repro.circuits.library.qrw import (qrw_step, qrw_shift,
                                        qrw_noisy_kraus_circuits)
from repro.circuits.library.bitflip import (bitflip_syndrome_circuit,
                                            bitflip_kraus_circuits,
                                            BITFLIP_OUTCOMES)
from repro.circuits.library.random_circuits import random_circuit
from repro.circuits.library.extensions import (qpe_circuit, w_state_circuit,
                                               cuccaro_adder,
                                               hidden_shift_circuit)

__all__ = [
    "ghz_circuit", "grover_iteration", "bernstein_vazirani", "qft_circuit",
    "qrw_step", "qrw_shift", "qrw_noisy_kraus_circuits",
    "bitflip_syndrome_circuit", "bitflip_kraus_circuits", "BITFLIP_OUTCOMES",
    "random_circuit",
    "qpe_circuit", "w_state_circuit", "cuccaro_adder",
    "hidden_shift_circuit",
]
