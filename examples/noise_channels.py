"""Image computation under different noise channels.

The paper's noisy example uses a bit-flip channel; this example runs
the same walk under every channel in the library — including the
non-unital amplitude damping, which genuinely *changes* the reachable
space (decay toward |0> re-populates states the unitary dynamics
cannot).

Run:  python examples/noise_channels.py
"""

from repro.circuits.library import qrw_step
from repro.image.engine import compute_image
from repro.systems import noise
from repro.systems.qts import QuantumTransitionSystem


def build(channel: str, parameter: float) -> QuantumTransitionSystem:
    step = qrw_step(4)
    op = noise.noisy_operation("T", step, position=1, qubit=0,
                               channel=channel, parameter=parameter)
    qts = QuantumTransitionSystem(4, [op], name=f"qrw4+{channel}")
    qts.set_initial_basis_states([[0, 0, 1, 1]])  # coin 0, position 3
    return qts


def main() -> None:
    print("one-step image of |0>|3> under a noisy walk step")
    print(f"{'channel':20s} {'kraus':>5s} {'dim(T(S))':>9s} "
          f"{'max#node':>8s}")
    for channel in sorted(noise.CHANNELS):
        qts = build(channel, 0.25)
        result = compute_image(qts, method="contraction", k1=4, k2=4)
        kraus = qts.operations[0].num_kraus
        print(f"{channel:20s} {kraus:5d} {result.dimension:9d} "
              f"{result.stats.max_nodes:8d}")

    # the headline: amplitude damping is non-unital, so unlike the
    # paper's bit-flip it enlarges the image
    flip = compute_image(build("bit_flip", 0.25),
                         method="contraction").subspace
    damp = compute_image(build("amplitude_damping", 0.25),
                         method="contraction").subspace
    print(f"\nbit-flip image dim = {flip.dimension}, "
          f"amplitude-damping image dim = {damp.dimension}")
    assert damp.dimension > flip.dimension


if __name__ == "__main__":
    main()
