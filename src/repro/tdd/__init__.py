"""Tensor decision diagrams (TDDs).

A TDD represents a tensor over binary indices as a rooted, weighted,
canonical DAG (Hong et al., TODAES 2022; paper Section II.B).  The
package provides:

* :class:`~repro.tdd.manager.TDDManager` — owns the index order, the
  unique table, the instrumented operation caches and the root-based
  garbage collector; every TDD belongs to exactly one manager.
* :class:`~repro.tdd.tdd.TDD` — an immutable handle (root edge + free
  index set) with ``to_numpy``, ``value``, ``size`` etc.; live handles
  pin their nodes across :meth:`TDDManager.collect`.
* the iterative apply engine (:mod:`repro.tdd.apply`) behind arithmetic
  (:mod:`repro.tdd.arithmetic`), contraction
  (:mod:`repro.tdd.contraction`) and slicing (:mod:`repro.tdd.slicing`)
  — explicit work stacks, no interpreter recursion-limit games;
* structured constructors (:mod:`repro.tdd.construction`) and
  instrumented memo tables (:mod:`repro.tdd.cache`).
"""

from repro.tdd.cache import OperationCache
from repro.tdd.manager import TDDManager
from repro.tdd.tdd import TDD
from repro.tdd.node import Node, Edge

__all__ = ["OperationCache", "TDDManager", "TDD", "Node", "Edge"]
