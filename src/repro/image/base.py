"""Shared plumbing for the image computation algorithms."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.indices.index import Index
from repro.subspace.subspace import StateSpace, Subspace
from repro.systems.qts import QuantumTransitionSystem
from repro.tdd.tdd import TDD
from repro.utils.stats import StatsRecorder


@dataclass
class ImageResult:
    """The outcome of one image computation: ``T(S)`` plus run costs."""

    subspace: Subspace
    stats: StatsRecorder

    @property
    def dimension(self) -> int:
        return self.subspace.dimension


def rename_outputs_to_kets(space: StateSpace, state: TDD,
                           outputs: Sequence[Index]) -> TDD:
    """Relabel a circuit-output state back onto the canonical kets.

    ``outputs[q]`` is the last wire index of qubit *q*; wires never
    advanced by the circuit already carry the ket name and map
    identically.
    """
    mapping = {}
    for qubit, out_idx in enumerate(outputs):
        ket = space.kets[qubit]
        if out_idx != ket:
            mapping[out_idx] = ket
    if not mapping:
        return state
    return state.rename(mapping)


def input_sum_indices(inputs: Sequence[Index],
                      outputs: Sequence[Index]) -> List[Index]:
    """The circuit-input indices consumed by applying the operator.

    Fused wires (diagonal-only qubits) keep a single shared index that
    serves as both input and output and therefore must stay free.
    """
    output_set = set(outputs)
    return [idx for idx in inputs if idx not in output_set]


class ImageComputerBase:
    """Common state for the four algorithms: system + per-circuit caches.

    Every computer routes its transition-relation contractions through
    ``self.executor`` (monolithic in-process by default; the engine
    swaps in a :class:`~repro.image.sliced.SlicedExecutor` when the
    sliced strategy is selected), so parallel sliced execution composes
    with each algorithm without touching its partitioning logic.

    Multi-circuit Kraus families are applied through the **batched**
    weight kernel by default (``self.batched``): the family is stacked
    into one vector-weight operator (:mod:`repro.image.batched`) and
    every basis state takes a single contraction for the whole family
    instead of one per branch.  ``batched=False`` restores the scalar
    per-branch loop (the two produce canonically identical states; see
    the property tests).
    """

    method: str = "abstract"

    def __init__(self, qts: QuantumTransitionSystem) -> None:
        from repro.image.sliced import MonolithicExecutor
        self.qts = qts
        #: pluggable contraction executor (see :mod:`repro.image.sliced`)
        self.executor = MonolithicExecutor()
        #: apply multi-Kraus families through the batched kernel
        self.batched = True
        #: peak nodes observed while building cached operator diagrams
        self.build_stats = StatsRecorder()
        self._monolithic_ops = {}
        self._families = {}

    def image(self, subspace: Optional[Subspace] = None,
              stats: Optional[StatsRecorder] = None) -> ImageResult:
        """Compute ``T(S)`` (defaults: ``S`` = the system's initial space)."""
        return self.partial_image(subspace, self.qts.all_kraus_circuits(),
                                  stats)

    def partial_image(self, subspace: Optional[Subspace],
                      circuits: Sequence,
                      stats: Optional[StatsRecorder] = None) -> ImageResult:
        """The image restricted to a subset of the Kraus circuits.

        ``T(S)`` is the join of per-circuit contributions (Proposition
        1), so restricting ``circuits`` to one operation's Kraus family
        yields that operation's partial image — the unit of work a
        fixpoint driver schedules (see :mod:`repro.mc.drivers`).  With
        every circuit of the system this *is* ``image``.
        """
        if subspace is None:
            subspace = self.qts.initial
        if stats is None:
            stats = StatsRecorder()
        circuits = list(circuits)
        result = Subspace(self.qts.space)
        if self.batched and len(circuits) > 1:
            family = self.family_for(circuits, stats)
            for state in subspace.basis:
                for image_state in family.images(state, self.executor,
                                                 self.qts.space, stats):
                    stats.observe_tdd(image_state)
                    added = result.add_state(image_state)
                    if added is not None:
                        stats.observe_tdd(added)
            stats.observe_nodes(result.projector.size())
            return ImageResult(result, stats)
        for state in subspace.basis:
            for circuit in circuits:
                for image_state in self._circuit_images(state, circuit,
                                                        stats):
                    stats.observe_tdd(image_state)
                    added = result.add_state(image_state)
                    if added is not None:
                        stats.observe_tdd(added)
        stats.observe_nodes(result.projector.size())
        return ImageResult(result, stats)

    # ------------------------------------------------------------------
    # batched-family machinery (shared by all four methods)
    # ------------------------------------------------------------------
    def monolithic_operator_for(self, circuit, stats: StatsRecorder):
        """The cached monolithic ``(operator, inputs, outputs)`` triple.

        Partition methods avoid monolithic operators for their *scalar*
        per-circuit work; the batched family path reuses this shared
        cache because stacking requires whole-circuit operators.
        """
        from repro.circuits.network import circuit_to_tdd
        key = id(circuit)
        entry = self._monolithic_ops.get(key)
        if entry is None:
            entry = circuit_to_tdd(circuit, self.qts.manager,
                                   observer=self.build_stats.observe_tdd)
            self._monolithic_ops[key] = entry
        stats.merge(self.build_stats)
        return entry

    def family_for(self, circuits: Sequence, stats: StatsRecorder):
        """The cached :class:`~repro.image.batched.BatchedFamily`."""
        from repro.image.batched import build_family
        key = tuple(id(c) for c in circuits)
        family = self._families.get(key)
        if family is None:
            family = build_family(self, circuits, stats)
            self._families[key] = family
        return family

    # subclasses implement: all images of one basis state under the
    # Kraus circuit (one TDD for a plain circuit; partition methods may
    # fold several contributions before yielding)
    def _circuit_images(self, state: TDD, circuit,
                        stats: StatsRecorder):
        raise NotImplementedError
