"""The ModelChecker facade."""

from repro.mc.checker import ModelChecker
from repro.systems import models


class TestChecker:
    def test_image(self):
        checker = ModelChecker(models.bitflip_qts(), method="basic")
        result = checker.image()
        assert result.dimension == 1
        assert result.stats.seconds >= 0

    def test_reachable(self):
        checker = ModelChecker(models.qrw_qts(3, 0.2),
                               method="contraction", k1=2, k2=2)
        trace = checker.reachable()
        assert trace.converged

    def test_check_invariant(self):
        qts = models.grover_qts(4, initial="invariant")
        checker = ModelChecker(qts, method="addition", k=1)
        assert checker.check_invariant(strict=True)

    def test_check_image_equals(self):
        qts = models.bitflip_qts()
        checker = ModelChecker(qts, method="basic")
        expected = qts.space.span([qts.space.basis_state([0] * 6)])
        assert checker.check_image_equals(expected)

    def test_check_safety_grover(self):
        qts = models.grover_qts(4, initial="invariant")
        checker = ModelChecker(qts, method="contraction", k1=2, k2=2)
        assert checker.check_safety(qts.initial)

    def test_check_safety_violated(self):
        qts = models.qrw_qts(3, 0.2)
        checker = ModelChecker(qts, method="basic")
        # the walk escapes its initial 1-dim space immediately
        assert not checker.check_safety(qts.initial, max_iterations=2)

    def test_method_params_passed_through(self):
        checker = ModelChecker(models.ghz_qts(3), method="contraction",
                               k1=1, k2=1)
        assert checker.image().dimension == 1
