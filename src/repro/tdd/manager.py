"""The TDD manager: unique table, normalisation and operation caches.

Every TDD computation happens inside one :class:`TDDManager`.  The
manager owns

* the global :class:`~repro.indices.order.IndexOrder` the diagrams are
  canonical against,
* the *unique table* interning nodes (structural equality becomes
  object identity),
* memoisation caches for addition and contraction, and
* counters used by the benchmark harness (peak live nodes, total nodes
  made).

Normalisation rule (DESIGN.md Section 3): when a node is created, its two
outgoing edge weights are divided by the weight of largest magnitude
(ties resolved toward the low edge), which becomes the weight of the
incoming edge.  Together with interning this makes the representation
canonical for a fixed index order.
"""

from __future__ import annotations

import sys
from typing import Dict, Iterable, Optional, Tuple

from repro.indices.index import Index
from repro.indices.order import IndexOrder
from repro.tdd import weights as wt
from repro.tdd.node import Edge, Node, TERMINAL_LEVEL

#: TDD recursion is level-deep; benchmark circuits easily exceed the
#: default interpreter limit, so managers raise it on construction.
_MIN_RECURSION_LIMIT = 100_000


class TDDManager:
    """Owner of all nodes, caches and the index order for a family of TDDs."""

    def __init__(self, order: Optional[IndexOrder] = None) -> None:
        if sys.getrecursionlimit() < _MIN_RECURSION_LIMIT:
            sys.setrecursionlimit(_MIN_RECURSION_LIMIT)
        self.order = order if order is not None else IndexOrder()
        self.terminal = Node(TERMINAL_LEVEL, None, None)
        self._unique: Dict[tuple, Node] = {}
        self._add_cache: Dict[tuple, Edge] = {}
        self._cont_cache: Dict[tuple, Edge] = {}
        #: total number of distinct non-terminal nodes ever interned
        self.nodes_made: int = 0

    # ------------------------------------------------------------------
    # index registration
    # ------------------------------------------------------------------
    def register(self, index: Index) -> int:
        """Register ``index`` in the manager's order; return its level."""
        return self.order.register(index)

    def register_all(self, indices: Iterable[Index]) -> None:
        self.order.register_all(indices)

    def level(self, index: Index) -> int:
        return self.order.level(index)

    # ------------------------------------------------------------------
    # edges and nodes
    # ------------------------------------------------------------------
    def zero_edge(self) -> Edge:
        return Edge(0j, self.terminal)

    def scalar_edge(self, value: complex) -> Edge:
        value = complex(value)
        if value == 0:
            return self.zero_edge()
        return Edge(value, self.terminal)

    def make_edge(self, weight: complex, node: Node) -> Edge:
        """Build an edge (exact-zero weight ⇒ the zero edge).

        Outer weights are kept at full precision: clamping or rounding
        here would be scale-dependent and destroy small amplitudes
        (e.g. 2^-n/2 root weights of wide superpositions).  Rounding
        happens only on the normalised child weights in
        :meth:`make_node`.
        """
        if weight == 0:
            return self.zero_edge()
        return Edge(complex(weight), node)

    def make_node(self, level: int, low: Edge, high: Edge) -> Edge:
        """Intern a node branching on ``level``; returns a normalised edge.

        Applies the two TDD reduction rules: a node whose outgoing edges
        are identical is redundant (return the common edge), and edge
        weights are normalised by the largest-magnitude weight.  The
        normalised (relative) child weights are rounded to the canonical
        grid; children negligible *relative to their sibling* are
        clamped to zero, which is what keeps float cancellation noise
        out of the diagrams.
        """
        w0 = complex(low.weight)
        w1 = complex(high.weight)
        if w0 == 0 and w1 == 0:
            return self.zero_edge()
        if w0 == w1 and low.node is high.node:
            return Edge(w0, low.node)
        # normalisation: divide by the larger-magnitude weight (tie: low)
        if abs(w0) >= abs(w1):
            norm = w0
        else:
            norm = w1
        nw0 = wt.canonical(w0 / norm)
        nw1 = wt.canonical(w1 / norm)
        n0 = low.node if not wt.is_zero(nw0) else self.terminal
        n1 = high.node if not wt.is_zero(nw1) else self.terminal
        key = (level, wt.key(nw0), id(n0), wt.key(nw1), id(n1))
        node = self._unique.get(key)
        if node is None:
            node = Node(level, Edge(nw0, n0), Edge(nw1, n1))
            self._unique[key] = node
            self.nodes_made += 1
        return Edge(norm, node)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @property
    def live_nodes(self) -> int:
        """Number of distinct non-terminal nodes currently interned."""
        return len(self._unique)

    def clear_caches(self) -> None:
        """Drop the operation memo tables (keeps interned nodes)."""
        self._add_cache.clear()
        self._cont_cache.clear()

    def reset(self) -> None:
        """Drop all nodes and caches.  Outstanding TDDs become invalid."""
        self._unique.clear()
        self.clear_caches()
        self.nodes_made = 0

    # ------------------------------------------------------------------
    # operations (thin wrappers; implementations live in sibling modules)
    # ------------------------------------------------------------------
    def add(self, a: Edge, b: Edge) -> Edge:
        from repro.tdd.arithmetic import add_edges
        return add_edges(self, a, b)

    def contract(self, a: Edge, b: Edge, sum_levels: Tuple[int, ...]) -> Edge:
        from repro.tdd.contraction import contract_edges
        return contract_edges(self, a, b, sum_levels)

    def __repr__(self) -> str:
        return (f"TDDManager(indices={len(self.order)}, "
                f"live_nodes={self.live_nodes})")
