"""Verifying the bit-flip error-correcting circuit (paper, Fig. 3).

The transition system has one operation with four Kraus circuits (one
per syndrome measurement outcome) — a *dynamic* quantum circuit.  The
builder registers two spec atoms: ``errors`` (the single-bit-flip
error states, the initial space) and ``codeword`` (span{|000000>}).
The correctness property is

    T( span{|100>, |010>, |001>} (x) |000> ) = span{|000000>}

i.e. every single bit-flip error state is mapped back to the codeword
space, with syndrome ancillas reset.  We check it with the paper's own
contraction-partition parameters for this circuit (k1 = 3, k2 = 2),
express the temporal content as specs — ``EF codeword`` (correction
happens) and ``AG (errors | codeword)`` (the system never visits
anything but error states and the codeword) — and also verify a
*superposition* codeword survives an error.

Run:  python examples/error_correction.py
"""

import numpy as np

from repro import CheckerConfig, ModelChecker, compute_image, models


def main() -> None:
    qts = models.bitflip_qts()
    print(f"System: {qts}")
    print(f"Kraus circuits (measurement branches): "
          f"{qts.operation('correct').num_kraus}")

    config = CheckerConfig(method="contraction",
                           method_params={"k1": 3, "k2": 2})
    checker = ModelChecker(qts, config)

    # --- the paper's property ----------------------------------------
    expected = qts.named_subspace("codeword")
    ok = checker.check_image_equals(expected)
    print(f"T(error states) = span{{|000000>}}: {ok}")
    assert ok

    # --- the same content as temporal specifications -----------------
    corrected = checker.check("EF codeword")
    print(f"EF codeword (correction reaches the code space): "
          f"{corrected.verdict}")
    assert corrected.holds

    confined = checker.check("AG (errors | codeword)")
    print(f"AG (errors | codeword) (nothing else is ever visited): "
          f"{confined.verdict}  [reachable dims {confined.dimensions}]")
    assert confined.holds

    # after one step the system has left the error states for good:
    # checking from the codeword space, AG codeword holds
    stays = checker.check("AG codeword",
                          initial=qts.named_subspace("codeword"))
    print(f"AG codeword from the code space: {stays.verdict}")
    assert stays.holds

    # --- a corrupted logical superposition is restored ---------------
    # encode a|000> + b|111>, flip qubit 1, run the corrector
    a, b = 0.6, 0.8
    amplitudes = np.zeros(64, dtype=complex)
    amplitudes[0b010_000] = a  # X1 applied to |000>|000>
    amplitudes[0b101_000] = b  # X1 applied to |111>|000>
    corrupted = qts.space.span([qts.space.from_amplitudes(amplitudes)])
    image = compute_image(qts, subspace=corrupted, config=config).subspace
    restored = np.zeros(64, dtype=complex)
    restored[0b000_000] = a
    restored[0b111_000] = b
    target = qts.space.span([qts.space.from_amplitudes(restored)])
    print(f"corrupted codeword restored: {image.equals(target)}")
    assert image.equals(target)


if __name__ == "__main__":
    main()
