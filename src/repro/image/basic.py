"""The basic image computation algorithm (paper, Algorithm 1).

Every Kraus circuit is contracted into a single (monolithic) operator
TDD; the image of a subspace is the join of ``cont(|psi>, E)`` over all
basis states ``|psi>`` and Kraus operators ``E``.  The operator TDDs
are cached so that repeated image computations (reachability fixpoints)
pay the — potentially exponential — contraction only once.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.image.base import (ImageComputerBase, input_sum_indices,
                              rename_outputs_to_kets)
from repro.indices.index import Index
from repro.tdd.tdd import TDD
from repro.utils.stats import StatsRecorder


class BasicImageComputer(ImageComputerBase):
    """Algorithm 1: monolithic operator TDD per Kraus circuit."""

    method = "basic"

    # ------------------------------------------------------------------
    def operator_for(self, circuit: QuantumCircuit,
                     stats: StatsRecorder
                     ) -> Tuple[TDD, List[Index], List[Index]]:
        # one shared cache with the batched-family path (see base class)
        return self.monolithic_operator_for(circuit, stats)

    # ------------------------------------------------------------------
    def _circuit_images(self, state: TDD, circuit: QuantumCircuit,
                        stats: StatsRecorder) -> Iterator[TDD]:
        operator, inputs, outputs = self.operator_for(circuit, stats)
        sum_over = input_sum_indices(inputs, outputs)
        image_state = self.executor.contract(state, operator, sum_over,
                                             stats)
        stats.contractions += 1
        stats.observe_tdd(image_state)
        yield rename_outputs_to_kets(self.qts.space, image_state, outputs)
