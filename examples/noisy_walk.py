"""Reachability of a noisy quantum random walk (paper, Section III.A.3).

A walker on an 8-cycle (1 coin + 3 position qubits) with a bit-flip
channel on the coin after each Hadamard.  The example

1. computes the one-step image of span{|0>|3>} and confirms the
   paper's containment  T(S) <= span{|0>|2>, |1>|4>}  — noting that
   the image is in fact the 1-dimensional ray spanned by the
   superposition (the X error fixes |+>, as the paper itself remarks),
2. runs the reachability fixpoint and shows the walk eventually fills
   the whole 16-dimensional space,
3. compares noiseless and noisy reachable spaces.

Run:  python examples/noisy_walk.py
"""

from repro import ModelChecker, compute_image, models


def main() -> None:
    qts = models.qrw_qts(4, noise_probability=0.25, start_position=3)
    print(f"System: {qts}")

    # --- one-step image ----------------------------------------------
    image = compute_image(qts, method="contraction", k1=4,
                          k2=4).subspace
    bound = qts.space.span([
        qts.space.basis_state([0, 0, 1, 0]),   # |0>|2>
        qts.space.basis_state([1, 1, 0, 0]),   # |1>|4>
    ])
    print(f"T(span{{|0>|3>}}) dimension: {image.dimension}")
    print(f"contained in span{{|0>|2>, |1>|4>}}: {bound.contains(image)}")
    assert bound.contains(image)

    # --- reachability fixpoint ---------------------------------------
    checker = ModelChecker(qts, method="contraction", k1=4, k2=4)
    trace = checker.reachable()
    print(f"reachable dimensions per iteration: {trace.dimensions}")
    print(f"walk fills the space: {trace.dimension == 16}")
    assert trace.dimension == 16

    # --- noise does not change what is reachable here ----------------
    clean = ModelChecker(models.qrw_qts(4, 0.0, start_position=3),
                         method="contraction", k1=4, k2=4).reachable()
    print(f"noiseless reachable dimension: {clean.dimension} "
          f"(same: {clean.dimension == trace.dimension})")


if __name__ == "__main__":
    main()
