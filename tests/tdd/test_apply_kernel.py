"""The iterative apply kernel: depth stress and recursive-free guarantees.

The seed implementation recursed one Python frame per TDD level and
bumped ``sys.setrecursionlimit`` to 100k from ``TDDManager.__init__``;
the iterative engine must handle benchmark-scale diagrams under the
interpreter's *default* limit of 1000, with no global side effects.
"""

import sys

import numpy as np
import pytest

from repro.indices.index import Index
from repro.systems import models
from repro.tdd import construction as tc
from repro.tdd.manager import TDDManager
from repro.tdd.slicing import first_nonzero_assignment, slice_edge

from tests.helpers import fresh_manager

#: enough levels that one frame per level would overflow the default
#: interpreter stack several times over
DEEP = 3000


@pytest.fixture
def default_recursion_limit():
    """Clamp the interpreter to its default limit for the test body."""
    old = sys.getrecursionlimit()
    sys.setrecursionlimit(1000)
    try:
        yield
    finally:
        sys.setrecursionlimit(old)


def _deep_manager(count: int = DEEP) -> TDDManager:
    return fresh_manager([f"v{i:05d}" for i in range(count)])


def _deep_indices(manager: TDDManager, count: int = DEEP):
    return [manager.order.index_at(level) for level in range(count)]


class TestManagerSideEffects:
    def test_constructor_leaves_recursion_limit_alone(self):
        old = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(1000)
            TDDManager()
            assert sys.getrecursionlimit() == 1000
        finally:
            sys.setrecursionlimit(old)

    def test_no_setrecursionlimit_in_src(self):
        # the kernel contract: nothing under src/ touches the limit
        import pathlib
        import repro
        src = pathlib.Path(repro.__file__).parent
        offenders = [p for p in src.rglob("*.py")
                     if "setrecursionlimit" in p.read_text()]
        assert offenders == []


class TestDeepDiagrams:
    def test_deep_add(self, default_recursion_limit):
        m = _deep_manager()
        idx = _deep_indices(m)
        a = tc.basis_state(m, idx, [0] * DEEP)
        b = tc.basis_state(m, idx, [1] * DEEP)
        total = a + b
        assert total.value({i: 0 for i in idx}) == 1
        assert total.value({i: 1 for i in idx}) == 1
        mixed = {i: (0 if n % 2 else 1) for n, i in enumerate(idx)}
        assert total.value(mixed) == 0

    def test_deep_contract(self, default_recursion_limit):
        m = _deep_manager()
        idx = _deep_indices(m)
        bits = [i % 2 for i in range(DEEP)]
        state = tc.basis_state(m, idx, bits)
        # <state|state> sums over every level — full-depth contraction
        overlap = state.conj().contract(state, idx)
        assert overlap.scalar_value() == pytest.approx(1)

    def test_deep_product_and_size(self, default_recursion_limit):
        m = _deep_manager()
        idx = _deep_indices(m)
        half = DEEP // 2
        left = tc.basis_state(m, idx[:half], [0] * half)
        right = tc.basis_state(m, idx[half:], [1] * (DEEP - half))
        product = left.product(right)
        assert product.size() == DEEP + 1
        assert product.rank == DEEP

    def test_deep_conjugate_and_rename(self, default_recursion_limit):
        m = fresh_manager([f"v{i:05d}" for i in range(DEEP)]
                          + [f"w{i:05d}" for i in range(DEEP)])
        idx = [m.order.index_at(level) for level in range(DEEP)]
        new = [m.order.index_at(level) for level in range(DEEP, 2 * DEEP)]
        state = tc.basis_state(m, idx, [1] * DEEP).scaled(1j)
        conj = state.conj()
        assert conj.value({i: 1 for i in idx}) == pytest.approx(-1j)
        renamed = state.rename(dict(zip(idx, new)))
        assert renamed.value({i: 1 for i in new}) == pytest.approx(1j)

    def test_deep_slice_and_nonzero_path(self, default_recursion_limit):
        m = _deep_manager()
        idx = _deep_indices(m)
        bits = [1] * DEEP
        state = tc.basis_state(m, idx, bits)
        target = DEEP // 2
        sliced = slice_edge(m, state.root, target, 1)
        assert not sliced.is_zero
        assert slice_edge(m, state.root, target, 0).is_zero
        found = first_nonzero_assignment(
            state.root, frozenset(range(DEEP)))
        assert found == {level: 1 for level in range(DEEP)}


class TestBenchmarkScale:
    def test_qrw64_image_under_default_limit(self, default_recursion_limit):
        """The ISSUE acceptance case: 64-qubit QRW contraction."""
        qts = models.qrw_qts(64, 0.1, steps=1)
        from repro.image.engine import compute_image
        result = compute_image(qts, method="contraction", k1=4, k2=4)
        assert result.dimension == 1
        assert result.stats.max_nodes > 0
        # instrumentation flows through for the deep instance too
        assert result.stats.cache_misses > 0
        assert result.stats.peak_live_nodes >= result.stats.live_nodes

    def test_ghz128_image_under_default_limit(self, default_recursion_limit):
        qts = models.ghz_qts(128)
        from repro.image.engine import compute_image
        result = compute_image(qts, method="contraction", k1=4, k2=4)
        assert result.dimension == 1


class TestDeepSerialisation:
    def test_deep_io_round_trip(self, default_recursion_limit):
        from repro.tdd.io import from_dict, to_dict, to_dot
        m = _deep_manager()
        idx = _deep_indices(m)
        state = tc.basis_state(m, idx, [i % 2 for i in range(DEEP)])
        data = to_dict(state)
        rebuilt = from_dict(m, data)
        assert rebuilt.same_as(state)
        dot = to_dot(state)
        assert dot.count("shape=oval") == DEEP


class TestEquivalenceWithDense:
    def test_add_matches_numpy(self, rng, default_recursion_limit):
        m = fresh_manager(list("abcdef"))
        idx = [Index(n) for n in "abcdef"]
        x = rng.normal(size=(2,) * 6) + 1j * rng.normal(size=(2,) * 6)
        y = rng.normal(size=(2,) * 6) + 1j * rng.normal(size=(2,) * 6)
        tx = tc.from_numpy(m, x, idx)
        ty = tc.from_numpy(m, y, idx)
        np.testing.assert_allclose((tx + ty).to_numpy(), x + y, atol=1e-8)

    def test_contract_matches_numpy(self, rng, default_recursion_limit):
        m = fresh_manager(list("abcde"))
        a, b, c, d, e = (Index(n) for n in "abcde")
        x = rng.normal(size=(2, 2, 2)) + 1j * rng.normal(size=(2, 2, 2))
        y = rng.normal(size=(2, 2, 2)) + 1j * rng.normal(size=(2, 2, 2))
        tx = tc.from_numpy(m, x, [a, b, c])
        ty = tc.from_numpy(m, y, [c, d, e])
        out = tx.contract(ty, [c])
        expect = np.einsum("abc,cde->abde", x, y)
        np.testing.assert_allclose(out.to_numpy(), expect, atol=1e-8)
