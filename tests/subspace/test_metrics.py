"""Subspace metrics."""

import math

import numpy as np
import pytest

from repro.subspace.metrics import (chordal_distance, principal_angles,
                                    projector_distance, subspace_fidelity)

from tests.helpers import make_space


class TestProjectorDistance:
    def test_zero_for_equal(self, rng):
        space = make_space(2)
        a = space.span([space.from_amplitudes(rng.normal(size=4))])
        assert projector_distance(a, a) == pytest.approx(0.0, abs=1e-7)

    def test_orthogonal_rank_one(self):
        space = make_space(1)
        a = space.span([space.basis_state([0])])
        b = space.span([space.basis_state([1])])
        # ||P1 - P2||_F = sqrt(2) for orthogonal rank-1 projectors
        assert projector_distance(a, b) == pytest.approx(math.sqrt(2))

    def test_matches_dense(self, rng):
        space = make_space(2)
        a = space.span([space.from_amplitudes(rng.normal(size=4))
                        for _ in range(2)])
        b = space.span([space.from_amplitudes(rng.normal(size=4))])
        expect = np.linalg.norm(a.to_dense() - b.to_dense())
        assert projector_distance(a, b) == pytest.approx(expect, abs=1e-7)

    def test_symmetric(self, rng):
        space = make_space(2)
        a = space.span([space.from_amplitudes(rng.normal(size=4))])
        b = space.span([space.from_amplitudes(rng.normal(size=4))])
        assert projector_distance(a, b) == pytest.approx(
            projector_distance(b, a))


class TestFidelity:
    def test_equal_subspaces(self, rng):
        space = make_space(2)
        a = space.span([space.from_amplitudes(rng.normal(size=4))
                        for _ in range(2)])
        assert subspace_fidelity(a, a) == pytest.approx(1.0)

    def test_orthogonal(self):
        space = make_space(1)
        a = space.span([space.basis_state([0])])
        b = space.span([space.basis_state([1])])
        assert subspace_fidelity(a, b) == pytest.approx(0.0)

    def test_zero_subspaces(self):
        space = make_space(1)
        z = space.zero_subspace()
        assert subspace_fidelity(z, z) == 1.0
        a = space.span([space.basis_state([0])])
        assert subspace_fidelity(z, a) == 0.0

    def test_in_unit_interval(self, rng):
        space = make_space(2)
        a = space.span([space.from_amplitudes(rng.normal(size=4))
                        for _ in range(2)])
        b = space.span([space.from_amplitudes(rng.normal(size=4))])
        fidelity = subspace_fidelity(a, b)
        assert 0.0 <= fidelity <= 1.0


class TestPrincipalAngles:
    def test_identical_rays(self):
        space = make_space(1)
        a = space.span([space.basis_state([0])])
        assert principal_angles(a, a) == pytest.approx([0.0])

    def test_orthogonal_rays(self):
        space = make_space(1)
        a = space.span([space.basis_state([0])])
        b = space.span([space.basis_state([1])])
        assert principal_angles(a, b) == pytest.approx([math.pi / 2])

    def test_forty_five_degrees(self):
        space = make_space(1)
        a = space.span([space.basis_state([0])])
        plus = space.from_amplitudes(np.array([1, 1]) / np.sqrt(2))
        b = space.span([plus])
        assert principal_angles(a, b) == pytest.approx([math.pi / 4])

    def test_empty_for_zero(self):
        space = make_space(1)
        a = space.span([space.basis_state([0])])
        assert principal_angles(a, space.zero_subspace()) == []

    def test_chordal_distance_consistent(self):
        space = make_space(1)
        a = space.span([space.basis_state([0])])
        plus = space.from_amplitudes(np.array([1, 1]) / np.sqrt(2))
        b = space.span([plus])
        assert chordal_distance(a, b) == pytest.approx(
            math.sin(math.pi / 4))
