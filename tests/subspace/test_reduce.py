"""Partial trace of projectors."""

import numpy as np
import pytest

from repro.errors import SubspaceError
from repro.subspace.reduce import (reduced_density, reduced_density_matrix,
                                   reduced_support)

from tests.helpers import make_space, subspace_to_dense


class TestReducedDensity:
    def test_product_state_factorises(self):
        space = make_space(2)
        sub = space.span([space.basis_state([0, 1])])
        rho = reduced_density_matrix(sub, [0])
        assert np.allclose(rho, [[1, 0], [0, 0]])
        rho1 = reduced_density_matrix(sub, [1])
        assert np.allclose(rho1, [[0, 0], [0, 1]])

    def test_bell_state_reduces_to_mixed(self):
        space = make_space(2)
        bell = space.from_amplitudes(
            np.array([1, 0, 0, 1]) / np.sqrt(2))
        sub = space.span([bell])
        rho = reduced_density_matrix(sub, [0])
        assert np.allclose(rho, np.eye(2) / 2)

    def test_trace_preserved(self, rng):
        space = make_space(3)
        sub = space.span([space.from_amplitudes(rng.normal(size=8))
                          for _ in range(2)])
        rho = reduced_density_matrix(sub, [0, 2])
        # trace of the projector = dimension; partial trace keeps it
        assert np.isclose(np.trace(rho).real, sub.dimension)

    def test_matches_dense_partial_trace(self, rng):
        space = make_space(3)
        sub = space.span([space.from_amplitudes(
            rng.normal(size=8) + 1j * rng.normal(size=8))])
        got = reduced_density_matrix(sub, [0, 1])
        full = subspace_to_dense(sub).projector().reshape(2, 2, 2, 2, 2, 2)
        expect = np.einsum("abcdec->abde", full).reshape(4, 4)
        assert np.allclose(got, expect, atol=1e-8)

    def test_keep_all_is_projector(self, rng):
        space = make_space(2)
        sub = space.span([space.from_amplitudes(rng.normal(size=4))])
        rho = reduced_density_matrix(sub, [0, 1])
        assert np.allclose(rho, sub.to_dense(), atol=1e-9)

    def test_out_of_range_rejected(self):
        space = make_space(2)
        sub = space.span([space.basis_state([0, 0])])
        with pytest.raises(SubspaceError):
            reduced_density(sub, [5])


class TestReducedSupport:
    def test_bitflip_data_register(self):
        """The paper's III.A.2 property restricted to data qubits: the
        image's data-register support is exactly span{|000>}."""
        from repro.image.engine import compute_image
        from repro.systems import models
        qts = models.bitflip_qts()
        image = compute_image(qts, method="basic").subspace
        support = reduced_support(image, [0, 1, 2])
        assert support.dimension == 1
        expect = np.zeros(8)
        expect[0] = 1
        assert support.contains_vector(expect)

    def test_entangled_support_dimension(self):
        space = make_space(2)
        bell = space.from_amplitudes(np.array([1, 0, 0, 1]) / np.sqrt(2))
        sub = space.span([bell])
        support = reduced_support(sub, [0])
        assert support.dimension == 2  # maximally mixed

    def test_zero_subspace(self):
        space = make_space(2)
        support = reduced_support(space.zero_subspace(), [0])
        assert support.dimension == 0
