"""Hypothesis properties of the subspace algebra."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.subspace.projector import basis_decompose

from tests.helpers import make_space, subspace_to_dense

N_QUBITS = 2
DIM = 2 ** N_QUBITS


def vectors_strategy(count):
    # A well-separated value grid: rank decisions (keep vs drop a
    # Gram-Schmidt residual) are only stable when no direction sits at
    # the tolerance threshold, so components like 6e-8 are excluded by
    # construction.  Rank structure stays fully general.
    grid = st.sampled_from([-2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0])
    return st.lists(arrays(np.float64, (DIM,), elements=grid),
                    min_size=1, max_size=count)


def span_of(space, raw_vectors):
    states = [space.from_amplitudes(v.astype(complex))
              for v in raw_vectors if np.linalg.norm(v) > 1e-6]
    return space.span(states)


class TestJoinLaws:
    @given(vectors_strategy(3), vectors_strategy(3))
    def test_commutative(self, va, vb):
        space = make_space(N_QUBITS)
        a, b = span_of(space, va), span_of(space, vb)
        assert a.join(b).equals(b.join(a))

    @given(vectors_strategy(2), vectors_strategy(2), vectors_strategy(2))
    def test_associative(self, va, vb, vc):
        space = make_space(N_QUBITS)
        a, b, c = (span_of(space, v) for v in (va, vb, vc))
        left = a.join(b).join(c)
        right = a.join(b.join(c))
        assert left.equals(right)

    @given(vectors_strategy(3))
    def test_idempotent(self, va):
        space = make_space(N_QUBITS)
        a = span_of(space, va)
        assert a.join(a).equals(a)

    @given(vectors_strategy(2), vectors_strategy(2))
    def test_upper_bound(self, va, vb):
        space = make_space(N_QUBITS)
        a, b = span_of(space, va), span_of(space, vb)
        j = a.join(b)
        assert j.contains(a) and j.contains(b)

    @given(vectors_strategy(3), vectors_strategy(3))
    def test_join_keeps_existing_basis_as_untouched_prefix(self, va, vb):
        # frontier-mode reachability slices grown.basis[dim:] and spans
        # it as the new frontier — sound only if join leaves the left
        # operand's basis as an untouched prefix and every appended
        # vector is orthogonal to the left operand
        space = make_space(N_QUBITS)
        a, b = span_of(space, va), span_of(space, vb)
        j = a.join(b)
        assert len(j.basis) >= len(a.basis)
        assert all(kept is original
                   for kept, original in zip(j.basis, a.basis))
        dense_a = subspace_to_dense(a)
        for added in j.basis[a.dimension:]:
            vector = added.to_numpy().reshape(-1)
            projected = dense_a.projector() @ vector
            assert np.linalg.norm(projected) < 1e-7

    @given(vectors_strategy(3))
    def test_projector_hermitian_idempotent(self, va):
        space = make_space(N_QUBITS)
        a = span_of(space, va)
        p = a.to_dense()
        assert np.allclose(p, p.conj().T, atol=1e-8)
        assert np.allclose(p @ p, p, atol=1e-8)

    @given(vectors_strategy(3))
    def test_decompose_roundtrip(self, va):
        space = make_space(N_QUBITS)
        a = span_of(space, va)
        recovered = basis_decompose(space, a.projector)
        assert recovered.equals(a)

    @given(vectors_strategy(3))
    def test_dimension_matches_dense_rank(self, va):
        space = make_space(N_QUBITS)
        a = span_of(space, va)
        dense = subspace_to_dense(a)
        assert a.dimension == dense.dimension
