"""Named gate factories."""

import numpy as np
import pytest

from repro.gates import library as gl
from repro.gates import matrices as gm


class TestFactories:
    def test_single_qubit_names_and_targets(self):
        for name in ("h", "x", "y", "z", "s", "t", "sx", "sdg", "tdg"):
            gate = getattr(gl, name)(3)
            assert gate.targets == (3,)
            assert gate.name == name

    def test_rotations_carry_angle(self):
        assert np.allclose(gl.rx(0.5, 0).matrix, gm.rx(0.5))
        assert np.allclose(gl.rz(1.5, 0).matrix, gm.rz(1.5))
        assert np.allclose(gl.p(2.5, 0).matrix, gm.phase(2.5))

    def test_controlled_factories(self):
        assert gl.cx(0, 1).controls == (0,)
        assert gl.cz(2, 5).targets == (5,)
        assert gl.ccx(0, 1, 2).controls == (0, 1)
        assert gl.cnx([3, 4, 5], 6).controls == (3, 4, 5)

    def test_cnx_anti_controls(self):
        gate = gl.cnx([0, 1], 2, control_states=[0, 0])
        assert gate.control_states == (0, 0)

    def test_cnz(self):
        gate = gl.cnz([0, 1], 2)
        assert np.allclose(gate.matrix, gm.Z)
        assert gate.diagonal

    def test_proj_outcomes(self):
        assert np.allclose(gl.proj(0, 0).matrix, gm.P0)
        assert np.allclose(gl.proj(0, 1).matrix, gm.P1)
        with pytest.raises(ValueError):
            gl.proj(0, 2)

    def test_kraus_scaled(self):
        assert np.allclose(gl.scaled_i(0, 0.5).matrix, 0.5 * gm.I)
        assert np.allclose(gl.scaled_x(0, 0.5).matrix, 0.5 * gm.X)

    def test_scalar_gate_is_zero_qubit(self):
        gate = gl.scalar(1j)
        assert gate.is_scalar
        assert gate.qubits == ()

    def test_matrix_gate(self):
        mat = np.kron(gm.H, gm.X)
        gate = gl.matrix_gate("hx", (1, 2), mat)
        assert gate.targets == (1, 2)
        assert np.allclose(gate.matrix, mat)

    def test_u3(self):
        gate = gl.u3(0.1, 0.2, 0.3, 0)
        assert gm.is_unitary(gate.matrix)

    def test_cnu(self):
        gate = gl.cnu([0, 1], 2, gm.H, name="cch")
        assert gate.name == "cch"
        assert not gate.diagonal
