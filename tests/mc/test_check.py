"""The unified check() verb: one CheckResult shape on every engine."""

import pytest

from repro.errors import SpecError
from repro.mc.checker import ModelChecker
from repro.mc.config import CheckerConfig
from repro.mc.logic import Always, Atomic
from repro.mc.specs import parse_spec
from repro.systems import models

#: every symbolic configuration of the acceptance matrix: the four
#: image methods, monolithic and sliced
TDD_CONFIGS = [
    CheckerConfig(method="basic"),
    CheckerConfig(method="addition", method_params={"k": 1}),
    CheckerConfig(method="contraction", method_params={"k1": 2, "k2": 2}),
    CheckerConfig(method="hybrid",
                  method_params={"k": 1, "k1": 2, "k2": 2}),
    CheckerConfig(method="basic", strategy="sliced"),
    CheckerConfig(method="contraction", strategy="sliced",
                  method_params={"k1": 2, "k2": 2}),
]

ALL_CONFIGS = TDD_CONFIGS + [CheckerConfig(backend="dense")]


class TestVerdictsAcrossEngines:
    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=str)
    def test_ag_inv_holds_everywhere(self, config):
        result = ModelChecker(models.grover_qts(3), config).check("AG inv")
        assert result.holds
        assert result.verdict == "holds"
        assert result.reachable_dimension == 2
        assert result.converged

    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=str)
    def test_ef_marked_holds_everywhere(self, config):
        result = ModelChecker(models.grover_qts(3), config).check(
            "EF marked")
        assert result.holds
        assert result.witness is not None
        assert result.witness_dimension >= 1

    def test_string_and_ast_specs_agree(self):
        qts = models.grover_qts(3)
        checker = ModelChecker(qts, CheckerConfig(method="basic"))
        via_text = checker.check("AG inv")
        via_ast = checker.check(parse_spec("AG inv"))
        assert via_text.holds == via_ast.holds
        assert via_text.spec == via_ast.spec == "AG inv"


class TestAlways:
    def test_violation_carries_escaping_directions(self):
        qts = models.grover_qts(3)
        result = ModelChecker(qts, CheckerConfig(method="basic")).check(
            "AG marked")
        assert not result.holds
        assert result.witness is not None
        assert result.witness_dimension >= 1
        # the witness directions are reachable but outside the target
        marked = qts.named_subspace("marked")
        for vector in result.witness.basis:
            assert result.witness.space is qts.space
            assert not marked.contains_state(vector)

    def test_connectives_in_specs(self):
        qts = models.grover_qts(3)
        checker = ModelChecker(qts, CheckerConfig(method="basic"))
        assert checker.check("AG (plus | marked)").holds
        assert not checker.check("AG (inv & marked)").holds
        assert checker.check("EF (inv & marked)").holds

    def test_negation_spec(self):
        qts = models.grover_qts(3)
        checker = ModelChecker(qts, CheckerConfig(method="basic"))
        # the walk never reaches the ancilla-|+> ray
        assert checker.check("AG ~ancilla_plus").holds

    def test_max_iterations_bounds_the_fixpoint(self):
        qts = models.qrw_qts(3, 0.2)
        checker = ModelChecker(qts, CheckerConfig(method="basic"))
        bounded = checker.check("AG init", max_iterations=1)
        assert not bounded.holds
        assert bounded.iterations == 1


class TestEventually:
    def test_orthogonal_target_is_violated(self):
        result = ModelChecker(models.grover_qts(3),
                              CheckerConfig(method="basic")).check(
            "EF ancilla_plus")
        assert not result.holds
        assert result.witness is None

    def test_witness_lies_inside_the_target(self):
        qts = models.grover_qts(3)
        result = ModelChecker(qts, CheckerConfig(method="basic")).check(
            "EF marked")
        marked = qts.named_subspace("marked")
        assert result.witness is not None
        for vector in result.witness.basis:
            assert marked.contains_state(vector)


class TestBareProposition:
    def test_now_kind_checks_the_initial_space(self):
        qts = models.grover_qts(3, initial="invariant")
        checker = ModelChecker(qts, CheckerConfig(method="basic"))
        assert checker.check("inv").holds
        assert checker.check("inv").kind == "now"
        assert not checker.check("marked").holds

    def test_no_reachability_iterations(self):
        qts = models.grover_qts(3)
        result = ModelChecker(qts, CheckerConfig(method="basic")).check(
            "init")
        assert result.iterations == 0


class TestCheckResultShape:
    def test_config_echo_and_as_dict(self):
        config = CheckerConfig(method="contraction",
                               method_params={"k1": 2, "k2": 2})
        result = ModelChecker(models.grover_qts(3), config).check("AG inv")
        assert result.config is config
        flat = result.as_dict()
        assert flat["verdict"] == "holds"
        assert flat["spec"] == "AG inv"
        assert flat["config"]["method"] == "contraction"
        assert "cache_hits" in flat

    def test_repr_is_informative(self):
        result = ModelChecker(models.grover_qts(3),
                              CheckerConfig(method="basic")).check("AG inv")
        assert "AG inv" in repr(result)
        assert "holds" in repr(result)

    def test_kernel_stats_recorded_on_tdd(self):
        result = ModelChecker(models.grover_qts(3),
                              CheckerConfig(method="basic")).check("AG inv")
        assert result.stats.seconds > 0
        assert result.stats.cache_hits + result.stats.cache_misses > 0

    def test_invalid_spec_type_rejected(self):
        checker = ModelChecker(models.ghz_qts(3),
                               CheckerConfig(method="basic"))
        with pytest.raises(SpecError):
            checker.check(42)


class TestChecksOnTopOfCheck:
    def test_invariant_matches_direct_spec(self):
        qts = models.grover_qts(3, initial="invariant")
        checker = ModelChecker(qts, CheckerConfig(method="basic"))
        assert checker.check_invariant() == \
            checker.check(Always(Atomic(qts.initial, "S"))).holds

    def test_safety_is_ag(self):
        qts = models.grover_qts(3)
        checker = ModelChecker(qts, CheckerConfig(method="basic"))
        inv = qts.named_subspace("inv")
        assert checker.check_safety(inv) == \
            checker.check(Always(Atomic(inv, "inv"))).holds

    def test_cross_validate_spec_agreement(self):
        qts = models.grover_qts(3)
        checker = ModelChecker(qts, CheckerConfig(
            method="contraction", method_params={"k1": 2, "k2": 2}))
        report = checker.cross_validate(spec="AG inv")
        assert report.ok
        assert report.tdd_verdict == report.dense_verdict == "holds"
        # and a violated spec also agrees across engines
        report = checker.cross_validate(spec="AG marked")
        assert report.ok
        assert report.tdd_verdict == "violated"

    def test_temporal_helpers_route_through_check(self):
        qts = models.grover_qts(3)
        from repro.mc.logic import check_always, check_eventually_overlaps
        assert check_always(qts, Atomic(qts.named_subspace("inv"), "inv"),
                            method="basic")
        assert check_eventually_overlaps(
            qts, Atomic(qts.named_subspace("marked"), "marked"),
            method="basic")

    def test_temporal_helpers_keep_reachability_kwargs(self):
        # regression: the pre-config helpers forwarded these to
        # reachable_space; the config shim must not eat them
        qts = models.qrw_qts(3, 0.2)
        from repro.mc.logic import check_always, check_eventually_overlaps
        start = Atomic(qts.named_subspace("start"), "start")
        assert not check_always(qts, start, method="basic",
                                max_iterations=2)
        assert check_eventually_overlaps(qts, start, method="basic",
                                         frontier=True)
        # the old gc knob is tolerated (collection is always on)
        assert check_eventually_overlaps(qts, start, method="basic",
                                         gc=False)

    def test_invariant_uses_one_fixpoint_round(self):
        # T(S) <= S is decided by a single join step — a non-invariant
        # subspace must not trigger a run-to-saturation fixpoint
        qts = models.qrw_qts(3, 0.2)
        checker = ModelChecker(qts, CheckerConfig(method="basic"))
        result = checker.check(Always(Atomic(qts.initial, "S")),
                               initial=qts.initial, max_iterations=1)
        assert not result.holds
        assert result.iterations == 1
        assert not checker.check_invariant()
