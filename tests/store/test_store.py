"""The disk-backed result store: API, persistence, budget, bundles.

Corruption/fault-injection lives in ``test_corruption.py``; the
multi-process hammering in ``test_concurrency.py``; round-trip
property tests in ``tests/property/test_store_roundtrip.py``.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time

import pytest

from repro.errors import StoreError
from repro.mc.checker import ModelChecker
from repro.mc.config import CheckerConfig
from repro.mc.reachability import reachable_space
from repro.store import SCHEMA_VERSION, ResultStore
from repro.store.migrate import ensure_schema
from repro.systems import models
from tests.helpers import subspace_to_dense


@pytest.fixture
def store(tmp_path):
    with ResultStore(tmp_path / "store") as st:
        yield st


def _populated(store, build=lambda: models.qrw_qts(3, 0.2)):
    qts = build()
    trace = reachable_space(qts, method="basic")
    assert store.store(qts, qts.initial, "forward", 0, trace)
    return qts, trace


class TestStoreBasics:
    def test_miss_then_hit_across_instances(self, tmp_path, store):
        qts, trace = _populated(store)
        assert store.lookup(models.ghz_qts(3),
                            models.ghz_qts(3).initial) is None
        store.close()
        # a fresh process would see exactly this: new instance, new
        # manager, same directory
        with ResultStore(tmp_path / "store") as reopened:
            rebuilt = models.qrw_qts(3, 0.2)
            warm = reopened.lookup(rebuilt, rebuilt.initial)
            assert warm is not None
            assert warm.space is rebuilt.space
            assert subspace_to_dense(warm).equals(
                subspace_to_dense(trace.subspace))
            assert reopened.hits == 1

    def test_store_is_idempotent_per_key(self, store):
        qts, trace = _populated(store)
        assert len(store) == 1
        assert store.store(qts, qts.initial, "forward", 0,
                           trace) is False
        assert len(store) == 1

    def test_admission_rule_judges_the_trace(self, store):
        # same regression as the in-memory cache: a bounded or
        # truncated trace must be refused even when the caller claims
        # bound=0
        qts = models.qrw_qts(3, 0.2)
        bounded = reachable_space(qts, method="basic", bound=1)
        truncated = reachable_space(qts, method="basic",
                                    max_iterations=1)
        assert store.store(qts, qts.initial, "forward", 0,
                           bounded) is False
        assert store.store(qts, qts.initial, "forward", 0,
                           truncated) is False
        assert store.store(qts, qts.initial, "forward", 1,
                           bounded) is False
        assert len(store) == 0

    def test_bounded_query_misses_unbounded_entry(self, store):
        qts, _ = _populated(store)
        assert store.lookup(qts, qts.initial, bound=2) is None
        assert store.lookup(qts, qts.initial, bound=0) is not None

    def test_warm_start_collapses_iterations(self, store):
        qts, cold = _populated(store)
        assert cold.iterations > 1
        rebuilt = models.qrw_qts(3, 0.2)
        warm_space = store.lookup(rebuilt, rebuilt.initial)
        warm = reachable_space(rebuilt, method="contraction", k1=2,
                               k2=2, warm_start=warm_space)
        assert warm.iterations == 1
        assert warm.converged
        assert warm.dimension == cold.dimension

    def test_checker_protocol_and_source_attribution(self, tmp_path):
        assert ResultStore.source == "disk"
        config = CheckerConfig(method="basic")
        with ResultStore(tmp_path / "store") as st:
            cold = ModelChecker(models.grover_qts(3), config).check(
                "AG inv", reach_cache=st)
        with ResultStore(tmp_path / "store") as st:
            warm = ModelChecker(models.grover_qts(3), config).check(
                "AG inv", reach_cache=st)
        assert cold.stats.extra["cache_warm"] is False
        assert warm.stats.extra["cache_warm"] is True
        assert warm.stats.extra["cache_source"] == "disk"
        assert warm.holds == cold.holds
        assert warm.reachable_dimension == cold.reachable_dimension

    def test_ls_and_stats_shape(self, store):
        qts, trace = _populated(store)
        assert store.lookup(qts, qts.initial) is not None
        rows = store.ls()
        assert len(rows) == 1
        row = rows[0]
        assert row["dimension"] == trace.dimension
        assert row["num_qubits"] == qts.num_qubits
        assert row["direction"] == "forward"
        assert row["bound"] == 0
        assert row["hits"] == 1
        assert row["bytes"] > 0
        stats = store.stats()
        assert stats.entries == 1
        assert stats.total_bytes == row["bytes"]
        assert stats.hits == 1 and stats.misses == 0
        assert stats.total_hits == 1
        assert stats.schema_version == SCHEMA_VERSION
        assert stats.quarantined == 0


class TestEvictionAndGC:
    def test_lru_eviction_respects_last_hit(self, tmp_path):
        with ResultStore(tmp_path / "store") as st:
            first = models.ghz_qts(3)
            first_trace = reachable_space(first, method="basic")
            st.store(first, first.initial, "forward", 0, first_trace)
            second = models.qrw_qts(3, 0.2)
            st.store(second, second.initial, "forward", 0,
                     reachable_space(second, method="basic"))
            # make `first` the more recently hit entry, then shrink the
            # budget so only one survives
            st._conn.execute("UPDATE entries SET last_hit = last_hit"
                             " - 1000")
            assert st.lookup(first, first.initial) is not None
            report = st.gc(max_bytes=st.ls()[0]["bytes"])
            assert report.evicted >= 1
            assert st.lookup(first, first.initial) is not None
            assert st.lookup(second, second.initial) is None
            assert st.stats().evictions == report.evicted

    def test_standing_budget_enforced_on_store(self, tmp_path):
        with ResultStore(tmp_path / "store", max_bytes=1) as st:
            qts = models.ghz_qts(3)
            st.store(qts, qts.initial, "forward", 0,
                     reachable_space(qts, method="basic"))
            assert len(st) == 0
            assert st.stats().evictions == 1

    def test_gc_sweeps_aged_orphans_but_not_fresh_ones(self, store):
        _populated(store)
        blob_dir = os.path.join(store.root, "blobs")
        fresh = os.path.join(blob_dir, "0" * 64 + ".json")
        aged = os.path.join(blob_dir, "1" * 64 + ".json")
        stale_tmp = os.path.join(blob_dir, "2" * 64 + ".json.tmp.999")
        for path in (fresh, aged, stale_tmp):
            with open(path, "w", encoding="utf-8") as handle:
                handle.write("{}")
        past = time.time() - 3600
        os.utime(aged, (past, past))
        os.utime(stale_tmp, (past, past))
        report = store.gc()
        assert report.orphans_removed == 2
        assert os.path.exists(fresh)          # inside the grace period
        assert not os.path.exists(aged)
        assert not os.path.exists(stale_tmp)
        assert len(store) == 1                # real entry untouched

    def test_negative_budget_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            ResultStore(tmp_path / "store", max_bytes=-1)


class TestExportImport:
    def test_bundle_round_trip(self, tmp_path, store):
        qts, trace = _populated(store)
        bundle = tmp_path / "bundle.json"
        assert store.export_file(str(bundle)) == 1
        with ResultStore(tmp_path / "other") as other:
            assert other.import_file(str(bundle)) == (1, 0)
            # re-import is additive, not duplicating
            assert other.import_file(str(bundle)) == (0, 1)
            rebuilt = models.qrw_qts(3, 0.2)
            warm = other.lookup(rebuilt, rebuilt.initial)
            assert warm is not None
            assert subspace_to_dense(warm).equals(
                subspace_to_dense(trace.subspace))

    def test_import_rejects_foreign_files(self, tmp_path, store):
        not_a_bundle = tmp_path / "junk.json"
        not_a_bundle.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(StoreError):
            store.import_file(str(not_a_bundle))
        with pytest.raises(StoreError):
            store.import_file(str(tmp_path / "missing.json"))

    def test_import_skips_malformed_entries(self, tmp_path, store):
        _populated(store)
        bundle = tmp_path / "bundle.json"
        store.export_file(str(bundle))
        data = json.loads(bundle.read_text())
        data["entries"].append({"system": "x"})  # missing fields
        bundle.write_text(json.dumps(data))
        with ResultStore(tmp_path / "other") as other:
            assert other.import_file(str(bundle)) == (1, 1)

    def test_import_refuses_newer_schema(self, tmp_path, store):
        bundle = tmp_path / "bundle.json"
        bundle.write_text(json.dumps({
            "kind": "repro-result-store",
            "schema": SCHEMA_VERSION + 1, "entries": []}))
        with pytest.raises(StoreError):
            store.import_file(str(bundle))


def _make_v0_store(root, qts, trace) -> str:
    """Hand-build a pre-versioning (v0) store directory."""
    from repro.store.store import entry_key
    from repro.mc.reachability import (subspace_fingerprint,
                                       system_fingerprint)
    from repro.tdd.io import to_dict
    os.makedirs(os.path.join(root, "blobs"))
    system = system_fingerprint(qts)
    seed = subspace_fingerprint(qts.initial)
    key = entry_key(system, seed, "forward", 0)
    payload = {"schema": 1, "system": system, "initial": seed,
               "direction": "forward", "bound": 0,
               "num_qubits": qts.num_qubits,
               "dimension": trace.subspace.dimension,
               "iterations": trace.iterations,
               "basis": [to_dict(v) for v in trace.subspace.basis]}
    text = json.dumps(payload, indent=1, sort_keys=True)
    with open(os.path.join(root, "blobs", f"{key}.json"), "w",
              encoding="utf-8") as handle:
        handle.write(text)
    conn = sqlite3.connect(os.path.join(root, "index.sqlite"))
    # v0 layout: entries without checksum, no meta, no quarantine
    conn.execute("""
        CREATE TABLE entries (
            key TEXT PRIMARY KEY, system TEXT NOT NULL,
            initial TEXT NOT NULL, direction TEXT NOT NULL,
            bound INTEGER NOT NULL, num_qubits INTEGER NOT NULL,
            dimension INTEGER NOT NULL, iterations INTEGER NOT NULL,
            bytes INTEGER NOT NULL, created REAL NOT NULL,
            last_hit REAL NOT NULL, hits INTEGER NOT NULL DEFAULT 0
        )""")
    now = time.time()
    conn.execute("INSERT INTO entries VALUES "
                 "(?, ?, ?, ?, 0, ?, ?, ?, ?, ?, ?, 0)",
                 (key, system, seed, "forward", qts.num_qubits,
                  trace.subspace.dimension, trace.iterations,
                  len(text.encode()), now, now))
    conn.commit()
    conn.close()
    return key


class TestMigration:
    def test_v0_store_upgrades_and_serves(self, tmp_path):
        root = str(tmp_path / "legacy")
        qts = models.qrw_qts(3, 0.2)
        trace = reachable_space(qts, method="basic")
        key = _make_v0_store(root, qts, trace)
        with ResultStore(root) as st:
            assert st.schema_version == SCHEMA_VERSION
            # checksum is lazily backfilled on the first verified read
            row = st._conn.execute(
                "SELECT checksum FROM entries WHERE key=?",
                (key,)).fetchone()
            assert row[0] == ""
            rebuilt = models.qrw_qts(3, 0.2)
            warm = st.lookup(rebuilt, rebuilt.initial)
            assert warm is not None
            assert subspace_to_dense(warm).equals(
                subspace_to_dense(trace.subspace))
            row = st._conn.execute(
                "SELECT checksum FROM entries WHERE key=?",
                (key,)).fetchone()
            assert len(row[0]) == 64  # digest adopted
        # and the adopted checksum now guards the blob like a v1 one
        with ResultStore(root) as st:
            assert st.lookup(models.qrw_qts(3, 0.2),
                             models.qrw_qts(3, 0.2).initial) is not None

    def test_migration_is_idempotent(self, tmp_path):
        root = str(tmp_path / "legacy")
        qts = models.ghz_qts(3)
        _make_v0_store(root, qts, reachable_space(qts, method="basic"))
        for _ in range(3):
            with ResultStore(root) as st:
                assert st.schema_version == SCHEMA_VERSION
                assert len(st) == 1

    def test_newer_schema_refused_loudly(self, tmp_path):
        root = tmp_path / "future"
        root.mkdir()
        conn = sqlite3.connect(root / "index.sqlite")
        ensure_schema(conn)
        conn.execute("UPDATE meta SET value=? WHERE key='schema_version'",
                     (str(SCHEMA_VERSION + 1),))
        conn.commit()
        conn.close()
        with pytest.raises(StoreError, match="newer"):
            ResultStore(str(root))
