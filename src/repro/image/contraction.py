"""Contraction-partition image computation (paper, Section V.B).

Each Kraus circuit is cut into blocks by
:func:`~repro.image.partition.partition_circuit`; every block is
contracted once into a small TDD.  The image of a state is then the
contraction of the network ``{|psi>, phi_1, ..., phi_k}`` folded in
circuit time order (state first, then blocks by column) — the
monolithic operator TDD is never materialised, which is why the peak
node count stays small (linearly bounded for QFT/BV/GHZ/QRW in the
paper's Table I).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.network import register_circuit_indices
from repro.config import DEFAULT_CONTRACTION_K1, DEFAULT_CONTRACTION_K2
from repro.image.base import ImageComputerBase, rename_outputs_to_kets
from repro.image.partition import Block, partition_circuit
from repro.indices.index import Index
from repro.systems.qts import QuantumTransitionSystem
from repro.tdd.tdd import TDD
from repro.tensor.network import TensorNetwork
from repro.tensor.ordering import greedy_order
from repro.utils.stats import StatsRecorder


class ContractionImageComputer(ImageComputerBase):
    """Section V.B: block-partitioned contraction."""

    method = "contraction"

    def __init__(self, qts: QuantumTransitionSystem,
                 k1: int = DEFAULT_CONTRACTION_K1,
                 k2: int = DEFAULT_CONTRACTION_K2,
                 order_policy: str = "sequential") -> None:
        super().__init__(qts)
        if order_policy not in ("sequential", "greedy"):
            raise ValueError("order_policy must be 'sequential' or 'greedy'")
        self.k1 = k1
        self.k2 = k2
        self.order_policy = order_policy
        self._blocks: Dict[int, Tuple[List[TDD], List[Index],
                                      List[Index]]] = {}
        self.build_stats = StatsRecorder()

    # ------------------------------------------------------------------
    def blocks_for(self, circuit: QuantumCircuit, stats: StatsRecorder
                   ) -> Tuple[List[TDD], List[Index], List[Index]]:
        """Contract each block of the circuit into one TDD (cached)."""
        key = id(circuit)
        if key not in self._blocks:
            register_circuit_indices(circuit, self.qts.manager)
            wirings, inputs, outputs = circuit.wirings()
            blocks = partition_circuit(circuit, self.k1, self.k2)
            boundary = self._boundary_indices(blocks, inputs, outputs)
            block_tdds: List[TDD] = []
            for block in blocks:
                tensors = [w.gate.to_tdd(self.qts.manager,
                                         w.control_indices, w.target_in,
                                         w.target_out)
                           for w in block.wirings]
                open_set = set()
                for tensor in tensors:
                    open_set.update(set(tensor.indices) & boundary[block.key])
                network = TensorNetwork(tensors, open_set)
                block_tdd = network.contract_all(
                    observer=self.build_stats.observe_tdd)
                block_tdds.append(block_tdd)
            self._blocks[key] = (block_tdds, inputs, outputs)
            self.build_stats.extra["blocks"] = len(blocks)
        stats.merge(self.build_stats)
        stats.extra.setdefault("blocks", self.build_stats.extra.get("blocks"))
        return self._blocks[key]

    @staticmethod
    def _boundary_indices(blocks: List[Block], inputs, outputs
                          ) -> Dict[Tuple[int, int], set]:
        """Per block: its indices that are visible outside the block."""
        usage: Dict[Index, set] = {}
        for block in blocks:
            for wiring in block.wirings:
                for idx in wiring.indices:
                    usage.setdefault(idx, set()).add(block.key)
        external = set(inputs) | set(outputs)
        out: Dict[Tuple[int, int], set] = {}
        for block in blocks:
            mine = set()
            for wiring in block.wirings:
                mine.update(wiring.indices)
            out[block.key] = {idx for idx in mine
                              if idx in external or len(usage[idx]) > 1}
        return out

    # ------------------------------------------------------------------
    def _circuit_images(self, state: TDD, circuit: QuantumCircuit,
                        stats: StatsRecorder) -> Iterator[TDD]:
        block_tdds, inputs, outputs = self.blocks_for(circuit, stats)
        tensors = [state] + list(block_tdds)
        network = TensorNetwork(tensors, set(outputs))
        order = None
        if self.order_policy == "greedy":
            order = greedy_order(tensors, network.open_indices)
        image_state = network.contract_all(
            order=order, observer=stats.observe_tdd,
            contract_fn=lambda a, b, s: self.executor.contract(
                a, b, s, stats))
        stats.contractions += len(block_tdds)
        yield rename_outputs_to_kets(self.qts.space, image_state, outputs)
