"""Lattice operations: complement, meet, overlap (BvN quantum logic)."""

import numpy as np
import pytest

from repro.errors import SubspaceError

from tests.helpers import make_space


class TestComplement:
    def test_dimension(self):
        space = make_space(2)
        sub = space.span([space.basis_state([0, 0])])
        comp = sub.complement()
        assert comp.dimension == 3

    def test_orthogonality(self):
        space = make_space(2)
        sub = space.span([space.basis_state([0, 1]),
                          space.basis_state([1, 0])])
        comp = sub.complement()
        assert sub.is_orthogonal_to(comp)

    def test_involution(self, rng):
        space = make_space(2)
        sub = space.span([space.from_amplitudes(rng.normal(size=4))
                          for _ in range(2)])
        assert sub.complement().complement().equals(sub)

    def test_complement_of_zero_is_full(self):
        space = make_space(2)
        comp = space.zero_subspace().complement()
        assert comp.dimension == 4

    def test_projectors_sum_to_identity(self, rng):
        space = make_space(2)
        sub = space.span([space.from_amplitudes(rng.normal(size=4))])
        total = sub.to_dense() + sub.complement().to_dense()
        assert np.allclose(total, np.eye(4), atol=1e-8)


class TestMeet:
    def test_overlapping_planes(self):
        space = make_space(2)
        # span{|00>,|01>} meet span{|00>,|10>} = span{|00>}
        a = space.span([space.basis_state([0, 0]),
                        space.basis_state([0, 1])])
        b = space.span([space.basis_state([0, 0]),
                        space.basis_state([1, 0])])
        m = a.meet(b)
        assert m.dimension == 1
        assert m.contains_state(space.basis_state([0, 0]))

    def test_disjoint_meet_is_zero(self):
        space = make_space(1)
        a = space.span([space.basis_state([0])])
        b = space.span([space.basis_state([1])])
        assert a.meet(b).dimension == 0

    def test_meet_with_self(self, rng):
        space = make_space(2)
        a = space.span([space.from_amplitudes(rng.normal(size=4))
                        for _ in range(2)])
        assert a.meet(a).equals(a)

    def test_meet_matches_dense(self, rng):
        space = make_space(2)
        a = space.span([space.from_amplitudes(rng.normal(size=4))
                        for _ in range(3)])
        b = space.span([space.from_amplitudes(rng.normal(size=4))
                        for _ in range(2)])
        m = a.meet(b)
        # dense: intersection via projector kernel
        pa, pb = a.to_dense(), b.to_dense()
        values, vectors = np.linalg.eigh((np.eye(4) - pa)
                                         + (np.eye(4) - pb))
        kernel = vectors[:, values < 1e-9]
        assert m.dimension == kernel.shape[1]

    def test_non_distributivity_witness(self):
        """Quantum logic is not distributive — the classic witness:
        for non-orthogonal rays, a ^ (b v c) != (a ^ b) v (a ^ c)."""
        space = make_space(1)
        plus = space.from_amplitudes(np.array([1, 1]) / np.sqrt(2))
        a = space.span([plus])
        b = space.span([space.basis_state([0])])
        c = space.span([space.basis_state([1])])
        left = a.meet(b.join(c))       # a ^ H = a (dim 1)
        right = a.meet(b).join(a.meet(c))  # 0 v 0 = 0
        assert left.dimension == 1
        assert right.dimension == 0


class TestOverlap:
    def test_orthogonal_zero(self):
        space = make_space(1)
        a = space.span([space.basis_state([0])])
        b = space.span([space.basis_state([1])])
        assert a.overlap(b) == pytest.approx(0.0, abs=1e-9)

    def test_identical_equals_dimension(self):
        space = make_space(2)
        a = space.span([space.basis_state([0, 0]),
                        space.basis_state([1, 1])])
        assert a.overlap(a) == pytest.approx(2.0, abs=1e-8)

    def test_matches_dense_trace(self, rng):
        space = make_space(2)
        a = space.span([space.from_amplitudes(rng.normal(size=4))])
        b = space.span([space.from_amplitudes(rng.normal(size=4))])
        expect = np.trace(a.to_dense() @ b.to_dense()).real
        assert a.overlap(b) == pytest.approx(expect, abs=1e-8)

    def test_zero_subspace(self):
        space = make_space(1)
        a = space.span([space.basis_state([0])])
        assert a.overlap(space.zero_subspace()) == 0.0

    def test_cross_space_rejected(self):
        s1, s2 = make_space(1), make_space(1)
        a = s1.span([s1.basis_state([0])])
        b = s2.span([s2.basis_state([0])])
        with pytest.raises(SubspaceError):
            a.overlap(b)
