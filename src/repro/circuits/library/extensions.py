"""Extension circuit families beyond the paper's five benchmarks.

These exercise the image computation engine on structurally different
workloads: phase estimation (QFT + controlled powers), W-state
preparation (rotations + controls), ripple-carry arithmetic (deep CX /
CCX chains — the Cuccaro adder) and the Fourier-free hidden-shift
circuit.  They back the repository's ablation benches and extra
examples.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library.qft import qft_circuit
from repro.errors import CircuitError
from repro.gates import library as gl


def qpe_circuit(counting_qubits: int, phase: float) -> QuantumCircuit:
    """Quantum phase estimation of ``U = P(2*pi*phase)`` (one target).

    Qubits ``0..counting_qubits-1`` form the counting register; the
    last qubit carries the eigenstate |1> of the phase gate.  The
    inverse QFT on the counting register is inlined (without swaps, so
    the readout is bit-reversed — standard for benchmark use).
    """
    if counting_qubits < 1:
        raise CircuitError("QPE needs at least one counting qubit")
    n = counting_qubits + 1
    target = counting_qubits
    circuit = QuantumCircuit(n, f"qpe{counting_qubits}")
    for q in range(counting_qubits):
        circuit.h(q)
    for q in range(counting_qubits):
        # counting qubit q controls U^(2^q): the little-endian phase
        # accumulation matches the swap-free inverse QFT below, so the
        # register reads out the phase big-endian with no extra
        # reversal.
        power = 2 ** q
        theta = 2 * math.pi * phase * power
        circuit.cp(theta, q, target)
    inverse_qft = qft_circuit(counting_qubits).inverse()
    circuit.extend(inverse_qft.gates)
    return circuit


def w_state_circuit(num_qubits: int) -> QuantumCircuit:
    """Prepare the W state (uniform single-excitation superposition).

    The standard cascade: rotate amplitude into qubit ``i`` with a
    controlled Ry, then shift the excitation with CX.  Starting from
    |10...0> (the initial subspace supplies the leading X).
    """
    if num_qubits < 2:
        raise CircuitError("W state needs at least two qubits")
    circuit = QuantumCircuit(num_qubits, f"wstate{num_qubits}")
    circuit.x(0)
    for i in range(num_qubits - 1):
        remaining = num_qubits - i
        theta = 2 * math.acos(math.sqrt(1.0 / remaining))
        # controlled-Ry(theta) from qubit i onto i+1
        circuit.append(gl.cnu([i], i + 1, _ry_matrix(theta), name="cry"))
        circuit.cx(i + 1, i)
    return circuit


def _ry_matrix(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def cuccaro_adder(register_size: int) -> QuantumCircuit:
    """The CDKM (Cuccaro) ripple-carry adder: |a>|b> -> |a>|a+b>.

    Register layout: ancilla carry-in (qubit 0), then interleaved
    ``b_i, a_i`` from least significant, then carry-out — the standard
    2n+2-qubit in-place adder built from CX and CCX only.
    """
    if register_size < 1:
        raise CircuitError("adder needs at least 1-bit registers")
    n = register_size
    total = 2 * n + 2
    circuit = QuantumCircuit(total, f"cuccaro{n}")

    def b(i):   # b_i qubit (result register)
        return 1 + 2 * i

    def a(i):   # a_i qubit
        return 2 + 2 * i

    carry_in = 0
    carry_out = total - 1

    # MAJ cascades
    def maj(c, bq, aq):
        circuit.cx(aq, bq)
        circuit.cx(aq, c)
        circuit.ccx(c, bq, aq)

    def uma(c, bq, aq):
        circuit.ccx(c, bq, aq)
        circuit.cx(aq, c)
        circuit.cx(c, bq)

    maj(carry_in, b(0), a(0))
    for i in range(1, n):
        maj(a(i - 1), b(i), a(i))
    circuit.cx(a(n - 1), carry_out)
    for i in range(n - 1, 0, -1):
        uma(a(i - 1), b(i), a(i))
    uma(carry_in, b(0), a(0))
    return circuit


def hidden_shift_circuit(num_qubits: int,
                         shift: Optional[Sequence[int]] = None
                         ) -> QuantumCircuit:
    """A bent-function hidden-shift circuit (CZ-dual-function form).

    For the Maiorana-McFarland bent function ``f(x, y) = x . y`` the
    circuit ``H^n (Z-shift) CZ-layer H^n CZ-layer (shift) H^n`` maps
    |0...0> to |s> — a Clifford benchmark with heavy diagonal layers
    (hyper-edge dense, like QFT).  ``num_qubits`` must be even.
    """
    if num_qubits % 2 != 0 or num_qubits < 2:
        raise CircuitError("hidden shift needs an even qubit count >= 2")
    half = num_qubits // 2
    if shift is None:
        shift = [1] * num_qubits
    shift = list(shift)
    if len(shift) != num_qubits:
        raise CircuitError("shift length mismatch")
    circuit = QuantumCircuit(num_qubits, f"hiddenshift{num_qubits}")

    def cz_layer():
        for i in range(half):
            circuit.cz(i, half + i)

    def shift_layer():
        for q, bit in enumerate(shift):
            if bit:
                circuit.x(q)

    for q in range(num_qubits):
        circuit.h(q)
    shift_layer()
    cz_layer()
    shift_layer()
    for q in range(num_qubits):
        circuit.h(q)
    cz_layer()
    for q in range(num_qubits):
        circuit.h(q)
    return circuit
