"""Subspaces of the Hilbert space, represented through TDDs.

A subspace is stored as an orthonormal basis of TDD state vectors
together with its projector TDD (paper, Section IV).  The package
provides the paper's two core subroutines: basis decomposition of a
projector via leftmost non-zero columns (Section IV.A) and the
Gram-Schmidt join of subspaces (Section IV.B).
"""

from repro.subspace.subspace import Subspace, StateSpace
from repro.subspace.projector import apply_projector, basis_decompose
from repro.subspace.join import join, orthonormalize
from repro.subspace.metrics import (chordal_distance, principal_angles,
                                    projector_distance, subspace_fidelity)
from repro.subspace.reduce import (reduced_density, reduced_density_matrix,
                                   reduced_support)

__all__ = ["Subspace", "StateSpace", "apply_projector", "basis_decompose",
           "join", "orthonormalize",
           "chordal_distance", "principal_angles", "projector_distance",
           "subspace_fidelity",
           "reduced_density", "reduced_density_matrix", "reduced_support"]
