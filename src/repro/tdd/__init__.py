"""Tensor decision diagrams (TDDs).

A TDD represents a tensor over binary indices as a rooted, weighted,
canonical DAG (Hong et al., TODAES 2022; paper Section II.B).  The
package provides:

* :class:`~repro.tdd.manager.TDDManager` — owns the index order, the
  unique table and the operation caches; every TDD belongs to exactly
  one manager.
* :class:`~repro.tdd.tdd.TDD` — an immutable handle (root edge + free
  index set) with ``to_numpy``, ``value``, ``size`` etc.
* arithmetic (:mod:`repro.tdd.arithmetic`), contraction
  (:mod:`repro.tdd.contraction`), slicing (:mod:`repro.tdd.slicing`) and
  structured constructors (:mod:`repro.tdd.construction`).
"""

from repro.tdd.manager import TDDManager
from repro.tdd.tdd import TDD
from repro.tdd.node import Node, Edge

__all__ = ["TDDManager", "TDD", "Node", "Edge"]
