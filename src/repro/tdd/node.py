"""TDD nodes and edges.

A :class:`Node` branches on one index (identified by its integer level
in the manager's :class:`~repro.indices.order.IndexOrder`) and has two
outgoing weighted edges: ``low`` for index value 0 (drawn blue in the
paper's figures) and ``high`` for index value 1 (red).  The unique
terminal node carries the sentinel level :data:`TERMINAL_LEVEL` and
represents the constant tensor 1.

Nodes are interned by the manager's unique table: structural equality
implies object identity, so all TDD algorithms compare nodes with
``is``.
"""

from __future__ import annotations

import sys
from typing import Optional

#: Sentinel level of the terminal node; larger than any index level.
TERMINAL_LEVEL: int = sys.maxsize


class Node:
    """An interned TDD node.  Do not construct directly; use the manager."""

    __slots__ = ("level", "low", "high")

    def __init__(self, level: int, low: Optional["Edge"],
                 high: Optional["Edge"]) -> None:
        self.level = level
        self.low = low
        self.high = high

    @property
    def is_terminal(self) -> bool:
        return self.level == TERMINAL_LEVEL

    def __repr__(self) -> str:
        if self.is_terminal:
            return "Node(terminal)"
        return f"Node(level={self.level})"


class Edge:
    """A weighted edge pointing at an interned node.

    The tensor denoted by an edge is ``weight`` times the tensor denoted
    by its node.  A weight of exactly 0 always points at the terminal.

    ``weight`` is either a python ``complex`` (scalar diagrams, the
    ``parallel_shape == ()`` degenerate case) or a numpy vector of
    shape ``parallel_shape`` (batched diagrams — one slot per parallel
    tensor slice; see :mod:`repro.tdd.weights`).  The manager never
    constructs an edge whose weight vector is zero in *every* slot:
    all-zero weights collapse to the scalar zero edge, so the
    ``is_zero`` test stays one comparison on the scalar hot path.
    """

    __slots__ = ("weight", "node")

    def __init__(self, weight: complex, node: Node) -> None:
        self.weight = weight
        self.node = node

    @property
    def is_zero(self) -> bool:
        w = self.weight
        if type(w) is complex:
            return w == 0
        # batched weight vector; all-zero vectors are collapsed to the
        # scalar zero edge on construction, but keep exact semantics
        return not w.any()

    def same_as(self, other: "Edge") -> bool:
        """Structural equality (valid because nodes are interned)."""
        if self.node is not other.node:
            return False
        w, v = self.weight, other.weight
        if type(w) is complex and type(v) is complex:
            return w == v
        from repro.tdd import weights as _wt
        return _wt.equal(w, v)

    def __repr__(self) -> str:
        return f"Edge({self.weight!r}, {self.node!r})"
