"""TDD slicing and non-zero path search."""

import numpy as np
import pytest

from repro.errors import TDDError
from repro.indices.index import Index
from repro.tdd import construction as tc
from repro.tdd.slicing import first_nonzero_assignment

from tests.helpers import fresh_manager, random_tensor

NAMES = ["a0", "a1", "a2", "a3"]


@pytest.fixture
def manager():
    return fresh_manager(NAMES)


def idx(*names):
    return [Index(n) for n in names]


class TestSlice:
    def test_slice_top_index(self, manager, rng):
        arr = random_tensor(rng, 3)
        t = tc.from_numpy(manager, arr, idx("a0", "a1", "a2"))
        for bit in (0, 1):
            sliced = t.slice({Index("a0"): bit})
            assert np.allclose(sliced.to_numpy(), arr[bit])
            assert set(sliced.index_names) == {"a1", "a2"}

    def test_slice_middle_index(self, manager, rng):
        arr = random_tensor(rng, 3)
        t = tc.from_numpy(manager, arr, idx("a0", "a1", "a2"))
        sliced = t.slice({Index("a1"): 1})
        assert np.allclose(sliced.to_numpy(), arr[:, 1])

    def test_slice_multiple(self, manager, rng):
        arr = random_tensor(rng, 4)
        t = tc.from_numpy(manager, arr, idx(*NAMES))
        sliced = t.slice({Index("a0"): 1, Index("a2"): 0})
        assert np.allclose(sliced.to_numpy(), arr[1, :, 0])

    def test_slice_all_gives_scalar(self, manager, rng):
        arr = random_tensor(rng, 2)
        t = tc.from_numpy(manager, arr, idx("a0", "a1"))
        sliced = t.slice({Index("a0"): 1, Index("a1"): 0})
        assert sliced.is_scalar
        assert np.isclose(sliced.scalar_value(), arr[1, 0])

    def test_slice_index_tensor_ignores(self, manager, rng):
        # slicing an index the diagram does not branch on: value keeps
        arr = random_tensor(rng, 1)
        t = tc.from_numpy(manager, arr, idx("a0"))
        ones = tc.ones(manager, idx("a1"))
        combined = t.product(ones)
        sliced = combined.slice({Index("a1"): 1})
        assert np.allclose(sliced.to_numpy(), arr)

    def test_slice_non_free_raises(self, manager, rng):
        t = tc.from_numpy(manager, random_tensor(rng, 1), idx("a0"))
        with pytest.raises(TDDError):
            t.slice({Index("a3"): 0})

    def test_slice_invalid_value_raises(self, manager, rng):
        t = tc.from_numpy(manager, random_tensor(rng, 1), idx("a0"))
        with pytest.raises(ValueError):
            t.slice({Index("a0"): 2})

    def test_sum_of_slices_reconstructs(self, manager, rng):
        arr = random_tensor(rng, 3)
        t = tc.from_numpy(manager, arr, idx("a0", "a1", "a2"))
        total = t.slice({Index("a1"): 0}) + t.slice({Index("a1"): 1})
        assert np.allclose(total.to_numpy(), arr.sum(axis=1))


class TestFirstNonzero:
    def test_zero_tensor_returns_none(self, manager):
        zero = tc.zero(manager, idx("a0", "a1"))
        levels = frozenset([0, 1])
        assert first_nonzero_assignment(zero.root, levels) is None

    def test_basis_state_found(self, manager):
        t = tc.basis_state(manager, idx("a0", "a1", "a2"), [1, 0, 1])
        levels = frozenset(manager.level(i) for i in idx("a0", "a1", "a2"))
        assignment = first_nonzero_assignment(t.root, levels)
        assert assignment == {0: 1, 1: 0, 2: 1}

    def test_prefers_leftmost_zero_branch(self, manager, rng):
        arr = np.zeros((2, 2), dtype=complex)
        arr[0, 1] = 1.0
        arr[1, 0] = 1.0
        t = tc.from_numpy(manager, arr, idx("a0", "a1"))
        assignment = first_nonzero_assignment(
            t.root, frozenset([manager.level(Index("a0"))]))
        # column a0=0 is non-zero (entry (0,1)); leftmost wins
        assert assignment[manager.level(Index("a0"))] == 0

    def test_partial_targets(self, manager, rng):
        arr = np.zeros((2, 2), dtype=complex)
        arr[1, 0] = 2.0  # only a0=1 column non-zero
        t = tc.from_numpy(manager, arr, idx("a0", "a1"))
        level0 = manager.level(Index("a0"))
        assignment = first_nonzero_assignment(t.root, frozenset([level0]))
        assert assignment == {level0: 1}

    def test_unconstrained_levels_omitted(self, manager):
        # tensor constant in a0: assignment may omit it
        ones = tc.ones(manager, idx("a0"))
        level0 = manager.level(Index("a0"))
        assignment = first_nonzero_assignment(ones.root, frozenset([level0]))
        assert assignment == {}

    def test_slice_at_found_assignment_is_nonzero(self, manager, rng):
        arr = random_tensor(rng, 3)
        arr[0] = 0  # kill the a0=0 block
        t = tc.from_numpy(manager, arr, idx("a0", "a1", "a2"))
        level0 = manager.level(Index("a0"))
        assignment = first_nonzero_assignment(t.root, frozenset([level0]))
        bit = assignment[level0]
        assert bit == 1
        assert not t.slice({Index("a0"): bit}).is_zero
