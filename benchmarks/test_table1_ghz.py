"""Table I — GHZ rows.

Paper: GHZ is easy for everyone (500 qubits in < 4 s); all methods
linear in max nodes, addition slightly lighter than basic.

Reproduction: same linearity; GHZ100 runs at paper size.
"""

import pytest

from repro.systems import models


@pytest.mark.parametrize("method,params", [
    ("basic", {}),
    ("addition", {"k": 1}),
    ("contraction", {"k1": 4, "k2": 4}),
])
def test_ghz30(image_bench, method, params):
    result = image_bench(lambda: models.ghz_qts(30), method, **params)
    assert result.dimension == 1


@pytest.mark.parametrize("n", [60, 100])
def test_ghz_wide_contraction(image_bench, n):
    result = image_bench(lambda: models.ghz_qts(n), "contraction",
                         k1=4, k2=4)
    assert result.dimension == 1


def test_ghz_linear_node_growth():
    from repro.image.engine import compute_image
    nodes = [compute_image(models.ghz_qts(n), method="contraction",
                           k1=4, k2=4).stats.max_nodes
             for n in (25, 50, 100)]
    assert nodes[2] <= 6 * nodes[0]
