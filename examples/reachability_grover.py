"""Reachability analysis of Grover's algorithm via temporal specs.

From the algorithm's input state |+...+>|->, repeated Grover
iterations stay inside the 2-dimensional subspace spanned by the
uniform superposition and the marked state — the invariant the paper's
Section III.A.1 checks.  The grover builder registers that plane as
the spec atom ``inv`` (and its spanning rays as ``plus``/``marked``),
so the property is one ``check`` call: ``AG inv``.  This example runs
it for several circuit widths, inspects the reachability trace inside
the returned ``CheckResult``, and contrasts it with a spec that fails
(``AG plus`` — the walk leaves the input ray immediately, and the
result carries the escaping directions as a witness).

Run:  python examples/reachability_grover.py
"""

from repro import CheckerConfig, ModelChecker, models


def main() -> None:
    config = CheckerConfig(method="contraction",
                           method_params={"k1": 4, "k2": 4})
    for n in (3, 4, 5):
        qts = models.grover_qts(n)  # initial = span{|+..+->}
        checker = ModelChecker(qts, config)

        # safety: the system never leaves the invariant plane
        result = checker.check("AG inv")
        print(f"Grover {n}: AG inv = {result.verdict}, reachable dims "
              f"per iteration {result.dimensions} "
              f"(converged={result.converged})")
        assert result.holds
        assert result.reachable_dimension == 2

        # the reachable space is exactly the plane: both rays overlap it
        assert checker.check("EF marked").holds
        assert checker.check("EF plus").holds

        # a violated safety property comes back with a witness
        escape = checker.check("AG plus")
        print(f"  AG plus = {escape.verdict} "
              f"(witness dim {escape.witness_dimension}: the reachable "
              f"directions outside the input ray)")
        assert not escape.holds
        assert escape.witness_dimension >= 1


if __name__ == "__main__":
    main()
