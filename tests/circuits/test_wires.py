"""Wire-index assignment: reuse on controls and diagonal gates."""

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.wires import WireTracker, wire_circuit
from repro.gates import library as gl
from repro.indices.index import wire


class TestWireTracker:
    def test_nondiagonal_advances(self):
        tracker = WireTracker(2)
        wiring = tracker.wire_gate(gl.h(0))
        assert wiring.target_in == (wire(0, 0),)
        assert wiring.target_out == (wire(0, 1),)
        assert tracker.current(0) == wire(0, 1)
        assert tracker.current(1) == wire(1, 0)

    def test_diagonal_reuses(self):
        tracker = WireTracker(1)
        wiring = tracker.wire_gate(gl.z(0))
        assert wiring.target_in == wiring.target_out == (wire(0, 0),)
        assert tracker.current(0) == wire(0, 0)

    def test_control_reuses_target_advances(self):
        tracker = WireTracker(2)
        wiring = tracker.wire_gate(gl.cx(0, 1))
        assert wiring.control_indices == (wire(0, 0),)
        assert wiring.target_in == (wire(1, 0),)
        assert wiring.target_out == (wire(1, 1),)
        assert tracker.current(0) == wire(0, 0)

    def test_cz_reuses_everything(self):
        tracker = WireTracker(2)
        wiring = tracker.wire_gate(gl.cz(0, 1))
        assert wiring.control_indices == (wire(0, 0),)
        assert wiring.target_in == (wire(1, 0),)
        assert wiring.target_out == (wire(1, 0),)

    def test_gate_indices_deduplicated(self):
        tracker = WireTracker(2)
        wiring = tracker.wire_gate(gl.cz(0, 1))
        assert len(wiring.indices) == 2


class TestWireCircuit:
    def test_inputs_outputs(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).z(2)
        wirings, inputs, outputs = wire_circuit(3, circuit.gates)
        assert inputs == [wire(0, 0), wire(1, 0), wire(2, 0)]
        # qubit 0: H advanced once; CX control reused -> x0_1
        # qubit 1: CX target advanced -> x1_1
        # qubit 2: Z diagonal -> x2_0 (fused input/output)
        assert outputs == [wire(0, 1), wire(1, 1), wire(2, 0)]

    def test_chained_gate_sharing(self):
        circuit = QuantumCircuit(1).h(0).h(0)
        wirings, inputs, outputs = wire_circuit(1, circuit.gates)
        assert wirings[0].target_out == wirings[1].target_in

    def test_empty_circuit(self):
        wirings, inputs, outputs = wire_circuit(2, [])
        assert wirings == []
        assert inputs == outputs

    def test_paper_fig2_index_counts(self):
        """Fig. 2 labels the 3-qubit Grover iteration's tensor indices:
        5 on qubit 1, 9 on qubit 2 (0-based: 8 advances) and 2 on qubit
        3 — our decomposition must produce the same wire-time pattern:
        controls/diagonals reuse, H/X/CCX targets advance."""
        from repro.circuits.library import grover_iteration
        circuit = grover_iteration(3)
        wirings, inputs, outputs = wire_circuit(3, circuit.gates)
        # qubit 2 (ancilla, 0-based) only the oracle CCX advances it
        assert outputs[2] == wire(2, 1)
        # qubit 0 is advanced by H,X,X,H (4 advances; CCX/CnX reuse it)
        assert outputs[0] == wire(0, 4)
        # qubit 1 is advanced by H,X,H,X(target of CnX),H,X,H
        assert outputs[1].time >= 6
