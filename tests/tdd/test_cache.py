"""The instrumented :class:`OperationCache`: counters, bounds, purge."""

import numpy as np
import pytest

from repro.indices.index import Index
from repro.indices.order import IndexOrder
from repro.tdd import construction as tc
from repro.tdd.cache import OperationCache
from repro.tdd.manager import TDDManager

from tests.helpers import fresh_manager, random_tensor


class TestCounters:
    def test_miss_then_hit(self):
        cache = OperationCache("test")
        assert cache.get(("k",)) is None
        cache.put(("k",), 42)
        assert cache.get(("k",)) == 42
        assert cache.misses == 1
        assert cache.hits == 1
        assert cache.lookups == 2
        assert cache.hit_rate == 0.5

    def test_idle_hit_rate_is_zero(self):
        assert OperationCache("test").hit_rate == 0.0

    def test_clear_keeps_stats(self):
        cache = OperationCache("test")
        cache.put(("k",), 1)
        cache.get(("k",))
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1
        cache.reset_stats()
        assert cache.hits == cache.misses == 0

    def test_stats_dict(self):
        cache = OperationCache("add")
        cache.get(("missing",))
        stats = cache.stats()
        assert stats["name"] == "add"
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.0


class TestBoundedSize:
    def test_fifo_eviction(self):
        cache = OperationCache("test", max_size=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.put(("c",), 3)  # evicts ("a",)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get(("a",)) is None
        assert cache.get(("c",)) == 3

    def test_overwrite_does_not_evict(self):
        cache = OperationCache("test", max_size=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.put(("a",), 10)
        assert cache.evictions == 0
        assert cache.get(("a",)) == 10

    def test_invalid_bound_rejected(self):
        with pytest.raises(ValueError):
            OperationCache("test", max_size=0)

    def test_bounded_manager_still_correct(self, rng):
        """Eviction may cost recomputation, never correctness."""
        unbounded = fresh_manager(list("abcdef"))
        bounded = TDDManager(IndexOrder([Index(n) for n in "abcdef"]),
                             cache_size=8)
        idx = [Index(n) for n in "abcdef"]
        x = random_tensor(rng, 6)
        y = random_tensor(rng, 6)
        expect = (tc.from_numpy(unbounded, x, idx)
                  + tc.from_numpy(unbounded, y, idx)).to_numpy()
        got = (tc.from_numpy(bounded, x, idx)
               + tc.from_numpy(bounded, y, idx)).to_numpy()
        np.testing.assert_allclose(got, expect, atol=1e-8)
        assert len(bounded.add_cache) <= 8
        assert bounded.add_cache.evictions > 0


class TestPurge:
    def test_purge_without_extractor_clears(self):
        cache = OperationCache("test")
        cache.put(("a",), 1)
        assert cache.purge({123}) == 1
        assert len(cache) == 0

    def test_purge_keeps_live_ids(self):
        cache = OperationCache(
            "test", key_ids=lambda key, value: (key[0], id(value)))
        alive = object()
        dead = object()
        cache.put((id(alive),), alive)
        cache.put((id(dead),), dead)
        dropped = cache.purge({id(alive)})
        assert dropped == 1
        assert cache._table == {(id(alive),): alive}


class TestManagerIntegration:
    def test_manager_cache_counters_roll_up(self, rng):
        m = fresh_manager(list("abcd"))
        idx = [Index(n) for n in "abcd"]
        x = tc.from_numpy(m, random_tensor(rng, 4), idx)
        y = tc.from_numpy(m, random_tensor(rng, 4), idx)
        _ = x + y
        counters = m.cache_counters()
        assert counters["misses"] > 0
        _ = x + y  # replay: the top-level entry hits
        assert m.cache_counters()["hits"] > counters["hits"]

    def test_clear_caches_drops_entries(self, rng):
        m = fresh_manager(list("abcd"))
        idx = [Index(n) for n in "abcd"]
        x = tc.from_numpy(m, random_tensor(rng, 4), idx)
        y = tc.from_numpy(m, random_tensor(rng, 4), idx)
        _ = x + y
        assert len(m.add_cache) > 0
        m.clear_caches()
        assert len(m.add_cache) == 0
        assert len(m.cont_cache) == 0
