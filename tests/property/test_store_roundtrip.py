"""Store round-trip properties: persist, reload, and nothing changes.

Three layers, from codec to fixpoint:

* random scalar-weight TDDs and batched (vector-weight) stacks survive
  the ``tdd/io`` dict codec that the store serialises payloads
  through — including a detour through canonical JSON text, which is
  exactly what lands on disk;
* random small subspaces written to a :class:`ResultStore` come back
  dense-identical from a fresh instance with a fresh manager;
* a warm start loaded from disk reproduces the cold fixpoint — same
  subspace, one confirming iteration — on the multi-Kraus table-1
  families (bitflip syndrome extraction, depolarizing-noise GHZ).
"""

from __future__ import annotations

import json
import tempfile

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.mc.reachability import ReachabilityTrace, reachable_space
from repro.store import ResultStore
from repro.systems import models
from repro.systems.noise import noisy_operation
from repro.systems.qts import QuantumTransitionSystem
from repro.tdd import batch
from repro.tdd import construction as tc
from repro.tdd.io import canonical_json, from_dict, payload_digest, \
    to_dict
from repro.indices.index import Index
from tests.helpers import fresh_manager, subspace_to_dense

N_QUBITS = 2
DIM = 2 ** N_QUBITS

#: well-separated amplitudes (see test_subspace_properties) so span
#: rank decisions stay away from the tolerance threshold
GRID = st.sampled_from([-2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0])
COMPLEX_GRID = st.tuples(GRID, GRID).map(lambda p: complex(*p))


def _roundtrip(manager, tdd):
    """dict -> canonical JSON text -> parsed dict -> re-interned TDD."""
    data = json.loads(canonical_json(to_dict(tdd)))
    return from_dict(manager, data)


class TestCodecRoundTrip:
    @given(arrays(np.complex128, (DIM,), elements=COMPLEX_GRID))
    def test_scalar_weights(self, amplitudes):
        m = fresh_manager(["a0", "a1"])
        t = tc.from_numpy(m, amplitudes.reshape(2, 2),
                          [Index("a0"), Index("a1")])
        m2 = fresh_manager(["a0", "a1"])
        back = _roundtrip(m2, t)
        assert np.allclose(back.to_numpy(), t.to_numpy())
        # content addressing depends on the codec being deterministic
        assert payload_digest(to_dict(back)) == payload_digest(to_dict(t))

    @given(st.lists(arrays(np.complex128, (DIM,),
                           elements=COMPLEX_GRID),
                    min_size=2, max_size=4))
    def test_batched_weights(self, slot_amplitudes):
        # the batched kernel's vector edge weights must survive the
        # codec slot-for-slot: stack -> dict -> JSON -> dict -> unstack
        m = fresh_manager(["a0", "a1"])
        slots = [tc.from_numpy(m, a.reshape(2, 2),
                               [Index("a0"), Index("a1")])
                 for a in slot_amplitudes]
        stacked = batch.stack(slots)
        m2 = fresh_manager(["a0", "a1"])
        back = _roundtrip(m2, stacked)
        for slot, original in enumerate(slots):
            recovered = batch.unstack(back, len(slots))[slot]
            assert np.allclose(recovered.to_numpy(),
                               original.to_numpy())
        assert payload_digest(to_dict(back)) == \
            payload_digest(to_dict(stacked))


class TestSubspaceRoundTrip:
    @given(st.lists(arrays(np.float64, (DIM,), elements=GRID),
                    min_size=1, max_size=3))
    @settings(max_examples=15)
    def test_random_subspace_survives_the_store(self, raw_vectors):
        def span(qts):
            states = [qts.space.from_amplitudes(v.astype(complex))
                      for v in raw_vectors
                      if np.linalg.norm(v) > 1e-6]
            return qts.space.span(states)

        qts = models.ghz_qts(N_QUBITS)
        subspace = span(qts)
        if subspace.dimension == 0:
            return  # nothing to persist
        trace = ReachabilityTrace(subspace=subspace, converged=True)
        with tempfile.TemporaryDirectory() as tmp:
            with ResultStore(tmp) as store:
                assert store.store(qts, subspace, "forward", 0, trace)
            rebuilt = models.ghz_qts(N_QUBITS)
            with ResultStore(tmp) as store:
                warm = store.lookup(rebuilt, span(rebuilt))
            assert warm is not None
            assert warm.space is rebuilt.space
            assert warm.dimension == subspace.dimension
            assert subspace_to_dense(warm).equals(
                subspace_to_dense(subspace))


def _noisy_ghz() -> QuantumTransitionSystem:
    """A four-branch depolarizing variant of the GHZ preparation."""
    base = models.ghz_qts(3)
    circuit = base.operations[0].kraus_circuits[0]
    op = noisy_operation("g", circuit, position=1, qubit=0,
                         channel="depolarizing", parameter=0.25)
    qts = QuantumTransitionSystem(base.num_qubits, [op],
                                  name="noisy_ghz")
    qts.set_initial_basis_states([[0] * base.num_qubits])
    return qts


FAMILIES = {
    "bitflip": lambda: models.bitflip_qts(),
    "noisy_ghz": _noisy_ghz,
}


class TestWarmEqualsCold:
    def _assert_warm_equals_cold(self, tmp_path, build):
        cold_qts = build()
        cold = reachable_space(cold_qts, method="contraction")
        assert cold.converged
        with ResultStore(tmp_path / "store") as store:
            assert store.store(cold_qts, cold_qts.initial, "forward", 0,
                               cold)
        # a different process: fresh store instance, rebuilt system,
        # different image method — the fixpoint must not care
        rebuilt = build()
        with ResultStore(tmp_path / "store") as store:
            seed = store.lookup(rebuilt, rebuilt.initial)
        assert seed is not None
        warm = reachable_space(rebuilt, method="basic", warm_start=seed)
        assert warm.iterations == 1
        assert warm.converged
        assert warm.dimension == cold.dimension
        assert subspace_to_dense(warm.subspace).equals(
            subspace_to_dense(cold.subspace))

    def test_bitflip(self, tmp_path):
        self._assert_warm_equals_cold(tmp_path, FAMILIES["bitflip"])

    def test_noisy_ghz(self, tmp_path):
        self._assert_warm_equals_cold(tmp_path, FAMILIES["noisy_ghz"])
