"""End-to-end pipelines stitching the subsystems together.

These are the "downstream user" flows: import a circuit from QASM and
model-check it; lower a circuit and benchmark it; validate a symbolic
result with Monte-Carlo simulation; restrict a property to a
sub-register with partial trace.
"""

import numpy as np
import pytest

from repro.circuits.qasm import parse_qasm
from repro.image.engine import compute_image
from repro.mc.reachability import reachable_space
from repro.mc.simulation import validate_image
from repro.systems.operations import QuantumOperation
from repro.systems.qts import QuantumTransitionSystem

from tests.helpers import (assert_subspace_matches_dense,
                           dense_image_oracle, subspace_to_dense)

GHZ_QASM = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0], q[1];
cx q[1], q[2];
"""


class TestQasmToModelChecking:
    def test_imported_circuit_image(self):
        circuit = parse_qasm(GHZ_QASM)
        qts = QuantumTransitionSystem(
            3, [QuantumOperation.unitary("u", circuit)])
        qts.set_initial_basis_states([[0, 0, 0]])
        image = compute_image(qts, method="contraction").subspace
        ghz = qts.space.from_amplitudes(
            np.array([1, 0, 0, 0, 0, 0, 0, 1]) / np.sqrt(2))
        assert image.dimension == 1
        assert image.contains_state(ghz)

    def test_imported_circuit_reachability(self):
        circuit = parse_qasm(GHZ_QASM)
        qts = QuantumTransitionSystem(
            3, [QuantumOperation.unitary("u", circuit)])
        qts.set_initial_basis_states([[0, 0, 0]])
        trace = reachable_space(qts, method="contraction", frontier=True)
        assert trace.converged


class TestLoweringPipeline:
    @pytest.mark.parametrize("method", ["basic", "contraction", "hybrid"])
    def test_lowered_qrw_all_methods(self, method):
        from repro.circuits.decompose import decompose_circuit
        from repro.circuits.library import qrw_step

        def build(lowered):
            circuit = qrw_step(3)
            if lowered:
                circuit = decompose_circuit(circuit, keep_ccx=True)
            qts = QuantumTransitionSystem(
                3, [QuantumOperation.unitary("T", circuit)])
            qts.set_initial_basis_states([[0, 0, 1]])
            return qts

        expected = dense_image_oracle(build(True))
        result = compute_image(build(True), method=method)
        assert_subspace_matches_dense(result.subspace, expected)
        # and lowering preserved the image of the original circuit
        original = compute_image(build(False), method=method)
        assert subspace_to_dense(original.subspace).equals(
            subspace_to_dense(result.subspace))


class TestValidationPipeline:
    def test_symbolic_image_survives_monte_carlo(self):
        from repro.systems import models
        qts = models.qrw_qts(4, 0.2, steps=2)
        image = compute_image(qts, method="contraction").subspace
        report = validate_image(qts, image, samples=15, seed=3)
        assert report.ok, report.failures

    def test_reduced_property_pipeline(self):
        """Bit-flip correction checked on the data register only,
        through reachability + partial trace."""
        from repro.subspace.reduce import reduced_support
        from repro.systems import models
        qts = models.bitflip_qts()
        trace = reachable_space(qts, method="contraction", k1=3, k2=2)
        support = reduced_support(trace.subspace, [0, 1, 2])
        # reachable data states: the three error states (initial) plus
        # the corrected codeword |000>
        assert support.dimension == 4

    def test_extension_model_reachability(self):
        from repro.systems import models
        qts = models.w_state_qts(3)
        trace = reachable_space(qts, method="basic")
        assert trace.converged
        assert trace.subspace.contains(qts.initial)


class TestQuantumLogicPipeline:
    def test_logic_over_imported_circuit(self):
        from repro.mc.logic import Atomic, check_always
        circuit = parse_qasm(GHZ_QASM)
        qts = QuantumTransitionSystem(
            3, [QuantumOperation.unitary("u", circuit)])
        qts.set_initial_basis_states([[0, 0, 0]])
        # the parity-even subspace contains |000>, GHZ and everything
        # the GHZ circuit reaches from them... use the full space as a
        # trivially-true AG and a single ray as a false one
        full = qts.space.span([
            qts.space.basis_state([int(b) for b in format(i, "03b")])
            for i in range(8)])
        assert check_always(qts, Atomic(full, "true"), method="basic")
        ray = Atomic(qts.space.span([qts.space.basis_state([0, 0, 0])]),
                     "zero")
        assert not check_always(qts, ray, method="basic")
