"""Counterexample witness traces for temporal specifications.

A verdict alone ("AG inv is violated") tells an engineer *that* the
system misbehaves, not *how*.  This module turns a failed ``AG`` (or a
satisfied ``EF``) into an executable counterexample: a concrete path of
operation symbols ``sigma_1 ... sigma_k`` together with the
intermediate subspaces it traverses, such that replaying the
operations *forward* from the initial space reproduces the violation
(or reaches the target).

The construction is the standard symbolic-model-checking one, adapted
to subspaces:

1. **Layering.**  Re-run the forward fixpoint keeping every layer
   ``S_0 <= S_1 <= ...`` and stop at the first layer ``S_k`` whose
   basis exposes the violation (a direction escaping ``[[phi]]`` for
   ``AG``, a component inside it for ``EF``).  That direction is the
   *seed* state ``v_k``.
2. **Backward walk.**  For ``i = k .. 1`` find an operation ``sigma``
   and a Kraus circuit ``E`` with ``P_{S_{i-1}} E^dagger v_i != 0`` —
   by ``<v_i|E|u> = <E^dagger v_i|u>`` that projection *is* a
   predecessor state ``v_{i-1}`` in the previous layer whose image
   under ``sigma`` overlaps ``v_i``.  The adjoint Kraus circuits come
   from :meth:`~repro.systems.operations.QuantumOperation.adjoint`.
3. **Forward replay.**  Starting from ``span{v_0} <= S_0``, apply the
   recorded operations in order and check the final subspace really
   exhibits the violation/overlap — the trace is only reported
   ``valid`` when the replay confirms it.

Everything here runs on the shared TDD subspace machinery (both
checker backends return the same TDD-backed subspaces), so the same
spec yields the *same* trace — symbols, length, subspace dimensions —
whichever backend produced the verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.network import circuit_to_tdd
from repro.image.base import input_sum_indices, rename_outputs_to_kets
from repro.indices.index import Index
from repro.subspace.subspace import Subspace
from repro.systems.qts import QuantumTransitionSystem
from repro.tdd.tdd import TDD


@dataclass
class WitnessTrace:
    """A concrete counterexample path with its replay validation.

    ``symbols[i]`` is the operation applied between ``subspaces[i]``
    and ``subspaces[i + 1]``; ``states`` are the single backward-walk
    states ``v_0 .. v_k`` (one ray per step), while ``subspaces`` are
    the forward-replay spans (an operation with several Kraus branches
    can fan a ray out into a higher-dimensional subspace).  ``valid``
    is True iff the forward replay reproduced the violation (``AG``)
    or the target overlap (``EF``).
    """

    kind: str                       # "AG" | "EF"
    symbols: List[str] = field(default_factory=list)
    states: List[TDD] = field(default_factory=list)
    subspaces: List[Subspace] = field(default_factory=list)
    valid: bool = False

    @property
    def length(self) -> int:
        return len(self.symbols)

    def as_dict(self) -> dict:
        """The flat trace columns of ``CheckResult.as_dict``."""
        return {"trace_length": self.length,
                "trace_symbols": ";".join(self.symbols),
                "trace_valid": self.valid,
                "trace_dimensions": [s.dimension for s in self.subspaces]}

    def __repr__(self) -> str:
        path = " -> ".join(self.symbols) if self.symbols else "<initial>"
        status = "valid" if self.valid else "INVALID"
        return f"WitnessTrace({self.kind}: {path}, {status})"


class _CircuitApplier:
    """Apply single Kraus circuits to ket states, caching operators.

    The monolithic operator TDD of each circuit is built once per
    extraction (witness traces live on small failing instances, where
    the monolithic diagram is affordable) and shared between the
    layering, the backward walk and the replay.
    """

    def __init__(self, qts: QuantumTransitionSystem) -> None:
        self.qts = qts
        self._operators: Dict[int, Tuple[TDD, List[Index], List[Index]]] = {}

    def apply(self, circuit: QuantumCircuit, state: TDD) -> TDD:
        key = id(circuit)
        if key not in self._operators:
            self._operators[key] = circuit_to_tdd(circuit, self.qts.manager)
        operator, inputs, outputs = self._operators[key]
        sum_over = input_sum_indices(inputs, outputs)
        image_state = state.contract(operator, sum_over)
        return rename_outputs_to_kets(self.qts.space, image_state, outputs)


def _seed_in_vectors(vectors, target: Subspace, kind: str,
                     tol: float) -> Optional[TDD]:
    """The violating/overlapping direction exposed by basis vectors.

    For ``AG`` the seed is the (normalised) residual of a basis vector
    outside the target; for ``EF`` its projection into the target.
    ``None`` when no vector exposes anything above ``tol``.
    """
    for vector in vectors:
        projected = target.project_state(vector)
        component = projected if kind == "EF" else vector - projected
        norm = component.norm()
        if norm > tol:
            return component.scaled(1.0 / norm)
    return None


def _trace_condition(subspace: Subspace, target: Subspace, kind: str,
                     tol: float) -> bool:
    """Does the final replay subspace reproduce the verdict?"""
    return _seed_in_vectors(subspace.basis, target, kind, tol) is not None


def extract_witness_trace(qts: QuantumTransitionSystem,
                          kind: str,
                          target: Subspace,
                          initial: Optional[Subspace] = None,
                          tol: float = 1e-7,
                          bound: int = 0) -> Optional[WitnessTrace]:
    """Build a counterexample trace for a violated ``AG`` / holding ``EF``.

    ``target`` is the denoted subspace ``[[phi]]`` of the spec body;
    ``kind`` selects what counts as the event ("AG": a reachable
    direction escapes the target, "EF": a reachable direction overlaps
    it).  ``bound`` limits the layering depth exactly like the bounded
    operators (0 = saturation).  Returns ``None`` when no event is
    reachable — i.e. when the corresponding verdict would not call for
    a trace in the first place.
    """
    applier = _CircuitApplier(qts)
    start = initial if initial is not None else qts.initial

    # 1. forward layering up to the first event (or saturation) — only
    # the frontier (basis vectors added in the previous round) needs
    # re-imaging, since layers are cumulative, Subspace.join keeps the
    # existing basis as an untouched prefix, and the image operator
    # distributes over joins
    layers: List[Subspace] = [start]
    seed = _seed_in_vectors(start.basis, target, kind, tol)
    limit = bound if bound > 0 else 2 ** qts.num_qubits
    frontier_start = 0
    while seed is None:
        if len(layers) > limit:
            return None
        current = layers[-1]
        grown = current.copy()
        frontier = current.basis[frontier_start:]
        for op in qts.operations:
            for circuit in op.kraus_circuits:
                for vector in frontier:
                    grown.add_state(applier.apply(circuit, vector))
        if grown.dimension == current.dimension:
            return None  # saturated without the event: nothing to show
        frontier_start = current.dimension
        layers.append(grown)
        # pre-frontier vectors were already checked in earlier rounds
        seed = _seed_in_vectors(grown.basis[frontier_start:], target,
                                kind, tol)

    # 2. backward walk: predecessors through the adjoint Kraus family
    k = len(layers) - 1
    states: List[Optional[TDD]] = [None] * k + [seed]
    symbols: List[str] = [""] * k
    for i in range(k, 0, -1):
        best: Optional[Tuple[float, TDD, str]] = None
        for op in qts.operations:
            for circuit in op.adjoint().kraus_circuits:
                pulled = applier.apply(circuit, states[i])
                if pulled.norm() <= tol:
                    continue
                predecessor = layers[i - 1].project_state(pulled)
                norm = predecessor.norm()
                if norm > tol and (best is None or norm > best[0]):
                    best = (norm, predecessor.scaled(1.0 / norm),
                            op.symbol)
        if best is None:
            # no Kraus pull-back meets the previous layer: the event
            # first appeared at layer k, so this is only reachable
            # through tolerance corner cases — report "no trace"
            # rather than a path the replay would reject
            return None
        states[i - 1] = best[1]
        symbols[i - 1] = best[2]

    # 3. forward replay validates the path
    replay = qts.space.span([states[0]])
    subspaces = [replay]
    for symbol in symbols:
        op = qts.operation(symbol)
        step = qts.space.span(
            [applier.apply(circuit, vector)
             for circuit in op.kraus_circuits
             for vector in replay.basis])
        subspaces.append(step)
        replay = step
    valid = _trace_condition(replay, target, kind, tol)
    return WitnessTrace(kind=kind, symbols=symbols,
                        states=[s for s in states if s is not None],
                        subspaces=subspaces, valid=valid)
