"""The iterative apply engine: explicit-work-stack TDD traversals.

Every structural TDD algorithm in this package used to be written as a
level-deep recursion, which forced the manager to raise the interpreter
recursion limit (benchmark circuits register thousands of levels).
This module replaces that with two explicit-stack schemes, so the whole
kernel runs under the interpreter's *default* recursion limit:

* a **binary apply** machine (:func:`add_apply`, :func:`contract_apply`)
  that simulates the recursion with ENTER/EXIT frames on a work stack
  and a value stack, memoised in the manager's instrumented
  :class:`~repro.tdd.cache.OperationCache` tables;
* a **unary rewrite** machine (:func:`unary_apply`) — a memoised
  postorder rebuild used by conjugation, renaming and slicing.

The result edges are bit-for-bit the same as the old recursive code:
the traversal order, normalisation and cache keys are unchanged; only
the call stack moved to the heap.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING, Tuple

from repro.tdd import weights as wt
from repro.tdd.node import Edge, Node

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tdd.manager import TDDManager

#: work-stack frame tags
_ENTER = 0
_EXIT = 1
#: contraction EXIT variants (which combine step to run)
_COMBINE_NODE = 2
_COMBINE_SUM = 3
_COMBINE_FACTOR = 4


def slice_pair(manager: "TDDManager", edge: Edge,
               level: int) -> Tuple[Edge, Edge]:
    """The (x=0, x=1) cofactors of ``edge`` w.r.t. the index at ``level``.

    Assumes ``level <= edge.node.level``: either the edge branches on
    exactly this level, or it does not depend on it at all.
    """
    node = edge.node
    if node.level != level:
        return edge, edge
    low = manager.make_edge(edge.weight * node.low.weight, node.low.node)
    high = manager.make_edge(edge.weight * node.high.weight, node.high.node)
    return low, high


# ----------------------------------------------------------------------
# binary apply: addition
# ----------------------------------------------------------------------
def add_apply(manager: "TDDManager", a: Edge, b: Edge) -> Edge:
    """Pointwise sum of two edges (iterative, memoised)."""
    cache = manager.add_cache
    make_edge = manager.make_edge
    stack = [(_ENTER, a, b)]
    values = []
    while stack:
        frame = stack.pop()
        if frame[0] == _ENTER:
            _, a, b = frame
            if a.is_zero:
                values.append(make_edge(b.weight, b.node))
                continue
            if b.is_zero:
                values.append(make_edge(a.weight, a.node))
                continue
            if a.node is b.node:
                values.append(make_edge(a.weight + b.weight, a.node))
                continue
            # Raw (full-precision) keys: rounding here could alias two
            # different weights onto one cache entry and silently
            # return a wrong sum.  Batched weights key on their exact
            # bytes; a scalar/batched pair cannot compare its keys
            # (float vs str tag), so the scalar operand goes first.
            ka = wt.cache_key(a.weight, id(a.node))
            kb = wt.cache_key(b.weight, id(b.node))
            scalar_a = type(a.weight) is complex
            if scalar_a == (type(b.weight) is complex):
                key = (ka, kb) if ka <= kb else (kb, ka)
            elif scalar_a:
                key = (ka, kb)
            else:
                key = (kb, ka)
            cached = cache.get(key)
            if cached is not None:
                values.append(cached)
                continue
            level = min(a.node.level, b.node.level)
            a0, a1 = slice_pair(manager, a, level)
            b0, b1 = slice_pair(manager, b, level)
            stack.append((_EXIT, key, level))
            stack.append((_ENTER, a1, b1))
            stack.append((_ENTER, a0, b0))
        else:
            _, key, level = frame
            high = values.pop()
            low = values.pop()
            result = manager.make_node(level, low, high)
            cache.put(key, result)
            values.append(result)
    return values[0]


# ----------------------------------------------------------------------
# binary apply: contraction
# ----------------------------------------------------------------------
def contract_apply(manager: "TDDManager", a: Edge, b: Edge,
                   levels: Tuple[int, ...]) -> Edge:
    """Contract two edges over the sorted ``levels`` (iterative).

    Weights are factored out on entry so the memo key is
    ``(node, node, remaining-sum-levels)``; the EXIT frame re-applies
    the factored weight, exactly mirroring the recursive formulation.
    """
    cache = manager.cont_cache
    make_edge = manager.make_edge
    stack = [(_ENTER, a, b, levels)]
    values = []
    while stack:
        frame = stack.pop()
        tag = frame[0]
        if tag == _ENTER:
            _, a, b, levels = frame
            if a.is_zero or b.is_zero:
                values.append(manager.zero_edge())
                continue
            weight = a.weight * b.weight
            na, nb = a.node, b.node
            if na.is_terminal and nb.is_terminal:
                # make_edge, not scalar_edge: ``weight`` may be a
                # batched vector
                values.append(
                    make_edge(weight * (2 ** len(levels)), manager.terminal))
                continue
            ka, kb = id(na), id(nb)
            key = (ka, kb, levels) if ka <= kb else (kb, ka, levels)
            cached = cache.get(key)
            if cached is not None:
                values.append(make_edge(cached.weight * weight, cached.node))
                continue
            unit_a = Edge(1 + 0j, na)
            unit_b = Edge(1 + 0j, nb)
            top = min(na.level, nb.level)
            if levels and levels[0] < top:
                # Neither operand depends on this summed index: factor 2.
                stack.append((_COMBINE_FACTOR, key, weight))
                stack.append((_ENTER, unit_a, unit_b, levels[1:]))
            elif levels and levels[0] == top:
                remaining = levels[1:]
                a0, a1 = slice_pair(manager, unit_a, top)
                b0, b1 = slice_pair(manager, unit_b, top)
                stack.append((_COMBINE_SUM, key, weight))
                stack.append((_ENTER, a1, b1, remaining))
                stack.append((_ENTER, a0, b0, remaining))
            else:
                a0, a1 = slice_pair(manager, unit_a, top)
                b0, b1 = slice_pair(manager, unit_b, top)
                stack.append((_COMBINE_NODE, key, weight, top))
                stack.append((_ENTER, a1, b1, levels))
                stack.append((_ENTER, a0, b0, levels))
        elif tag == _COMBINE_FACTOR:
            _, key, weight = frame
            inner = values.pop()
            result = make_edge(2 * inner.weight, inner.node)
            cache.put(key, result)
            values.append(make_edge(result.weight * weight, result.node))
        elif tag == _COMBINE_SUM:
            _, key, weight = frame
            high = values.pop()
            low = values.pop()
            result = add_apply(manager, low, high)
            cache.put(key, result)
            values.append(make_edge(result.weight * weight, result.node))
        else:  # _COMBINE_NODE
            _, key, weight, top = frame
            high = values.pop()
            low = values.pop()
            result = manager.make_node(top, low, high)
            cache.put(key, result)
            values.append(make_edge(result.weight * weight, result.node))
    return values[0]


# ----------------------------------------------------------------------
# unary rewrite: memoised postorder rebuild
# ----------------------------------------------------------------------
def unary_apply(manager: "TDDManager", edge: Edge,
                rebuild: Callable[[Node, Edge, Edge], Edge],
                shortcut: Optional[Callable[[Node], Optional[Edge]]] = None,
                weight_map: Callable[[complex], complex] = lambda w: w
                ) -> Edge:
    """Rebuild the diagram under ``edge`` bottom-up without recursion.

    ``rebuild(node, low, high)`` combines the already-rewritten child
    edges of an inner node into its replacement edge; ``shortcut(node)``
    may return a replacement immediately (terminal nodes always
    short-circuit to the unit edge); ``weight_map`` transforms every
    edge weight on the way down (e.g. complex conjugation).
    """
    if edge.is_zero:
        return manager.zero_edge()
    memo = {}
    zero = manager.zero_edge()
    make_edge = manager.make_edge

    def rewritten_child(e: Edge) -> Edge:
        if e.is_zero:
            return zero
        inner = memo[id(e.node)]
        return make_edge(weight_map(e.weight) * inner.weight, inner.node)

    stack = [(_ENTER, edge.node)]
    while stack:
        tag, node = stack.pop()
        if tag == _ENTER:
            if id(node) in memo:
                continue
            if node.is_terminal:
                memo[id(node)] = Edge(1 + 0j, node)
                continue
            if shortcut is not None:
                replacement = shortcut(node)
                if replacement is not None:
                    memo[id(node)] = replacement
                    continue
            stack.append((_EXIT, node))
            for child in (node.high, node.low):
                if not child.is_zero and id(child.node) not in memo:
                    stack.append((_ENTER, child.node))
        else:
            memo[id(node)] = rebuild(node, rewritten_child(node.low),
                                     rewritten_child(node.high))
    inner = memo[id(edge.node)]
    return make_edge(weight_map(edge.weight) * inner.weight, inner.node)
