"""Standalone join helpers."""

import numpy as np

from repro.subspace.join import join, join_all, orthonormalize

from tests.helpers import make_space


class TestOrthonormalize:
    def test_produces_orthonormal_basis(self, rng):
        space = make_space(3)
        states = [space.from_amplitudes(rng.normal(size=8))
                  for _ in range(3)]
        sub = orthonormalize(space, states)
        for i, a in enumerate(sub.basis):
            for j, b in enumerate(sub.basis):
                expect = 1.0 if i == j else 0.0
                assert np.isclose(abs(a.inner(b)), expect, atol=1e-8)

    def test_handles_duplicates(self):
        space = make_space(2)
        psi = space.basis_state([1, 0])
        sub = orthonormalize(space, [psi, psi, psi])
        assert sub.dimension == 1


class TestJoin:
    def test_join_function(self):
        space = make_space(2)
        a = space.span([space.basis_state([0, 0])])
        b = space.span([space.basis_state([0, 1])])
        assert join(a, b).dimension == 2

    def test_join_all(self):
        space = make_space(2)
        subs = [space.span([space.basis_state([i >> 1, i & 1])])
                for i in range(3)]
        combined = join_all(space, subs)
        assert combined.dimension == 3

    def test_join_all_empty(self):
        space = make_space(2)
        assert join_all(space, []).dimension == 0
