"""Ablation benches for the design choices DESIGN.md calls out.

Not part of the paper's tables; these quantify (a) the contraction
fold-order policy, (b) the addition-partition slice count k, and
(c) the cost of hyper-edge index reuse being disabled is not
measurable here (reuse is structural), so instead we measure the
block-cache effect on repeated images (reachability's workhorse).
"""

import pytest

from repro.image.engine import make_computer
from repro.systems import models
from repro.utils.stats import StatsRecorder


def grover():
    return models.grover_qts(8, iterations=2)


class TestOrderPolicy:
    @pytest.mark.parametrize("policy", ["sequential", "greedy"])
    def test_fold_order(self, image_bench, policy):
        result = image_bench(grover, "contraction", k1=4, k2=4,
                             order_policy=policy)
        assert result.dimension >= 1


class TestAdditionK:
    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_slice_count(self, image_bench, k):
        result = image_bench(grover, "addition", k=k)
        assert result.dimension >= 1


class TestBlockCache:
    def test_repeated_image_amortises_blocks(self, benchmark):
        """Second and later images reuse the cached block TDDs —
        the effect reachability relies on."""
        qts = models.qrw_qts(6, 0.1, steps=4)
        computer = make_computer(qts, "contraction", k1=4, k2=4)
        stats = StatsRecorder()
        first = computer.image(None, stats)  # builds + caches blocks

        def warm_image():
            return computer.image(first.subspace, StatsRecorder())

        benchmark.pedantic(warm_image, rounds=3, iterations=1)
