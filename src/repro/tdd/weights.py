"""Complex edge-weight canonicalisation — scalar and batched.

TDD canonicity requires weights to be usable as dictionary keys, so
every weight stored in a node is first clamped to zero if negligible
and then rounded to :data:`repro.config.WEIGHT_DECIMALS` digits.  All
weight handling shared by the TDD algorithms lives here.

Weights come in two shapes (see DESIGN.md and the TddPy exemplars):

* a **scalar** python ``complex`` — the classic one-tensor diagram,
  the ``parallel_shape == ()`` degenerate case;
* a **batched** numpy vector of shape ``parallel_shape`` (one slot per
  parallel tensor slice, e.g. one per Kraus operator of a family),
  processed by the ``*_array`` counterparts below, which apply exactly
  the scalar clamp-then-round rule elementwise.

The array functions route through :mod:`repro.tdd.xp` (the
array-namespace indirection that is the torch-accelerator seam).
"""

from __future__ import annotations

import numpy as np

from repro.config import WEIGHT_DECIMALS, WEIGHT_EPS
from repro.tdd import xp as _xp

WeightKey = tuple


def canonical(value: complex) -> complex:
    """Clamp-and-round ``value`` to the canonical weight grid.

    Only valid for *normalised* weights (magnitude <= 1, i.e. the child
    weights stored inside nodes): the clamp threshold is absolute, so
    applying it to unnormalised outer weights would destroy genuinely
    tiny amplitudes such as the 2^-n/2 of a wide uniform superposition.

    The clamp runs *before* the round: a component below
    :data:`~repro.config.WEIGHT_EPS` is zeroed even when rounding to
    :data:`~repro.config.WEIGHT_DECIMALS` digits alone would keep it.

    >>> canonical(1e-14 + 1j * (0.5 + 1e-15))
    0.5j
    """
    re = value.real
    im = value.imag
    if abs(re) < WEIGHT_EPS:
        re = 0.0
    if abs(im) < WEIGHT_EPS:
        im = 0.0
    # ``+ 0.0`` folds -0.0 into +0.0 so keys are unambiguous.
    return complex(round(re, WEIGHT_DECIMALS) + 0.0,
                   round(im, WEIGHT_DECIMALS) + 0.0)


def key(value: complex) -> WeightKey:
    """Hashable key of an (already canonical) weight."""
    return (value.real, value.imag)


def is_zero(value: complex) -> bool:
    return value.real == 0.0 and value.imag == 0.0


# ----------------------------------------------------------------------
# batched (parallel_shape != ()) counterparts
# ----------------------------------------------------------------------
def canonical_array(values) -> np.ndarray:
    """Elementwise :func:`canonical` over a weight vector.

    Same clamp-before-round ordering, same -0.0 folding, applied to
    every parallel slot at once through the active array namespace.
    """
    values = _xp.asarray(values)
    ns = _xp.xp
    re = values.real
    im = values.imag
    re = ns.where(ns.abs(re) < WEIGHT_EPS, 0.0, re)
    im = ns.where(ns.abs(im) < WEIGHT_EPS, 0.0, im)
    # ``+ 0.0`` folds -0.0 into +0.0, exactly like the scalar rule
    re = ns.round(re, WEIGHT_DECIMALS) + 0.0
    im = ns.round(im, WEIGHT_DECIMALS) + 0.0
    return re + 1j * im


def key_array(values) -> WeightKey:
    """Hashable key of an (already canonical) weight vector.

    Tagged with a leading marker so array keys and scalar ``(re, im)``
    keys can never collide in one table, and tuple comparison between
    the two kinds stays well-defined (marker first, bytes second).
    """
    return ("b", _xp.to_bytes(values))


def is_zero_array(values) -> bool:
    """True iff every parallel slot is exactly zero."""
    return not values.any()


def parallel_shape(value) -> tuple:
    """The parallel shape of a weight: ``()`` for scalars."""
    if isinstance(value, np.ndarray):
        return value.shape
    return ()


# ----------------------------------------------------------------------
# shape-polymorphic dispatch helpers (hot-path friendly: one type test)
# ----------------------------------------------------------------------
def any_key(value) -> WeightKey:
    """:func:`key` or :func:`key_array`, by weight shape."""
    if type(value) is complex:
        return (value.real, value.imag)
    return ("b", _xp.to_bytes(value))


def cache_key(value, node_id: int) -> tuple:
    """The memo-cache key triple of a raw (full-precision) weight.

    Scalar weights key on their exact component floats, batched ones on
    their exact bytes — never on rounded values, which could alias two
    different weights onto one cache entry and return a wrong result.
    The node id sits last so cache purges can read it off either form.
    """
    if type(value) is complex:
        return (value.real, value.imag, node_id)
    return ("b", _xp.to_bytes(value), node_id)


def any_is_zero(value) -> bool:
    """:func:`is_zero` or :func:`is_zero_array`, by weight shape."""
    if type(value) is complex:
        return value.real == 0.0 and value.imag == 0.0
    return not value.any()


def equal(a, b) -> bool:
    """Exact weight equality across scalar/batched shapes."""
    if type(a) is complex and type(b) is complex:
        return a == b
    return bool(np.array_equal(np.asarray(a), np.asarray(b)))
