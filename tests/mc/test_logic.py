"""The BvN quantum-logic layer over model checking."""

import numpy as np
import pytest

from repro.mc.logic import (Atomic, check_always,
                            check_eventually_overlaps, satisfies)
from repro.systems import models

from tests.helpers import MINUS, PLUS


def grover_props():
    qts = models.grover_qts(3, initial="invariant")
    space = qts.space
    one = np.array([0., 1.])
    marked = Atomic(space.span([space.product_state([one, one, MINUS])]),
                    "marked")
    plane = Atomic(qts.initial, "invariant_plane")
    return qts, space, marked, plane


class TestConnectives:
    def test_atomic_denote(self):
        qts, space, marked, plane = grover_props()
        assert marked.denote(space).dimension == 1

    def test_join_denote(self):
        qts, space, marked, plane = grover_props()
        assert (marked | plane).denote(space).dimension == 2

    def test_meet_denote(self):
        qts, space, marked, plane = grover_props()
        # the marked ray lies inside the plane: meet = marked
        meet = (marked & plane).denote(space)
        assert meet.dimension == 1

    def test_not_denote(self):
        qts, space, marked, plane = grover_props()
        assert (~marked).denote(space).dimension == 7

    def test_repr(self):
        qts, space, marked, plane = grover_props()
        text = repr((marked & ~plane) | plane)
        assert "marked" in text and "~" in text

    def test_cross_space_atomic_rejected(self):
        qts1, space1, marked, _ = grover_props()
        qts2 = models.grover_qts(3, initial="invariant")
        with pytest.raises(ValueError):
            marked.denote(qts2.space)


class TestSatisfaction:
    def test_state_in_subspace(self):
        qts, space, marked, plane = grover_props()
        one = np.array([0., 1.])
        state = space.product_state([one, one, MINUS])
        assert satisfies(state, marked, space)
        assert satisfies(state, plane, space)
        assert not satisfies(state, ~marked, space)

    def test_superposition_satisfies_join_not_atoms(self):
        qts, space, marked, plane = grover_props()
        psi = space.product_state([PLUS, PLUS, MINUS])
        assert satisfies(psi, plane, space)
        assert not satisfies(psi, marked, space)


class TestTemporal:
    def test_always_invariant_plane(self):
        qts, space, marked, plane = grover_props()
        assert check_always(qts, plane, method="basic")

    def test_always_marked_fails(self):
        qts, space, marked, plane = grover_props()
        assert not check_always(qts, marked, method="basic")

    def test_eventually_overlaps_marked(self):
        # from |++->, Grover reaches the marked state
        qts = models.grover_qts(3)
        space = qts.space
        one = np.array([0., 1.])
        marked = Atomic(space.span([space.product_state(
            [one, one, MINUS])]), "marked")
        assert check_eventually_overlaps(qts, marked, method="basic")

    def test_eventually_orthogonal_fails(self):
        # the Grover dynamics never leaves the |-> ancilla sector:
        # states with ancilla |+> stay unreachable
        qts = models.grover_qts(3)
        space = qts.space
        one = np.array([0., 1.])
        unreachable = Atomic(space.span([space.product_state(
            [one, one, PLUS])]), "ancilla_plus")
        assert not check_eventually_overlaps(qts, unreachable,
                                             method="basic")
