"""Tensor index algebra: named indices and global index orders."""

from repro.indices.index import Index, wire
from repro.indices.order import IndexOrder

__all__ = ["Index", "wire", "IndexOrder"]
