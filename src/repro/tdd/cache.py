"""Instrumented operation caches for the TDD kernel.

Every memoised TDD operation (addition, contraction) stores its results
in an :class:`OperationCache`: a dictionary with hit/miss/eviction
counters, an optional size bound with FIFO eviction, and a ``purge``
hook the manager's garbage collector uses to drop entries that mention
reclaimed nodes.

Cache keys embed raw ``id(node)`` values (interning makes object
identity the node identity), so a cache entry is only valid while every
node it references is still interned.  ``key_ids`` captures which ids a
given ``(key, value)`` pair depends on; :meth:`purge` keeps exactly the
entries whose ids are all still live.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional


class OperationCache:
    """A memo table with statistics and optional bounded size.

    Parameters
    ----------
    name:
        Label used in stats dictionaries (``"add"``, ``"cont"``).
    max_size:
        When set, the table never holds more than this many entries;
        inserting into a full table evicts in insertion (FIFO) order.
        Correctness is unaffected — an evicted entry is simply
        recomputed on the next miss.
    key_ids:
        ``(key, value) -> iterable of node ids`` the entry references;
        required for :meth:`purge` to be usable.
    """

    __slots__ = ("name", "max_size", "hits", "misses", "evictions",
                 "_table", "_key_ids")

    def __init__(self, name: str, max_size: Optional[int] = None,
                 key_ids: Optional[Callable[[tuple, object],
                                            Iterable[int]]] = None) -> None:
        if max_size is not None and max_size <= 0:
            raise ValueError("max_size must be positive (or None)")
        self.name = name
        self.max_size = max_size
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._table: Dict[tuple, object] = {}
        self._key_ids = key_ids

    # ------------------------------------------------------------------
    def get(self, key: tuple):
        """Look up ``key``, counting the hit or miss."""
        value = self._table.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, key: tuple, value) -> None:
        """Insert an entry, evicting the oldest one when full."""
        table = self._table
        if (self.max_size is not None and key not in table
                and len(table) >= self.max_size):
            table.pop(next(iter(table)))
            self.evictions += 1
        table[key] = value

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._table)

    def __contains__(self, key: tuple) -> bool:
        return key in self._table

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the table (0.0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._table.clear()

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def purge(self, live_ids) -> int:
        """Drop entries referencing node ids outside ``live_ids``.

        Called after a mark-and-sweep: a reclaimed node's id may be
        reused by a future allocation, so any entry mentioning a dead id
        must go.  Returns the number of entries dropped.
        """
        if self._key_ids is None:
            dropped = len(self._table)
            self._table.clear()
            return dropped
        key_ids = self._key_ids
        keep = {key: value for key, value in self._table.items()
                if all(i in live_ids for i in key_ids(key, value))}
        dropped = len(self._table) - len(keep)
        self._table = keep
        return dropped

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        return {
            "name": self.name,
            "size": len(self._table),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }

    def __repr__(self) -> str:
        return (f"OperationCache({self.name!r}, size={len(self._table)}, "
                f"hits={self.hits}, misses={self.misses})")
