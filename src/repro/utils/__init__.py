"""Small shared utilities: timing, statistics, bit helpers, tables."""

from repro.utils.timing import Stopwatch
from repro.utils.stats import StatsRecorder
from repro.utils.bitops import int_to_bits, bits_to_int
from repro.utils.tables import format_table

__all__ = [
    "Stopwatch",
    "StatsRecorder",
    "int_to_bits",
    "bits_to_int",
    "format_table",
]
