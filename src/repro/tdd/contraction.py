"""TDD contraction.

``contract_edges(m, a, b, sum_levels)`` computes the tensor

    C[free] = sum over the indices in ``sum_levels`` of  A · B,

the fundamental tensor-network operation (paper, Section II.B).  Shared
indices that are *not* summed remain free (this is what hyper-edge
indices shared by three or more tensors need).  A summed index that
neither operand depends on contributes a factor 2 per the definition of
summation over {0, 1}.

The recursion processes levels in the global order; weights are
factored out so the memo key is ``(node, node, remaining-sum-levels)``,
which gives high hit rates across repeated image computations.
"""

from __future__ import annotations

from typing import Tuple

from repro.tdd.arithmetic import add_edges, slice_pair
from repro.tdd.manager import TDDManager
from repro.tdd.node import Edge, TERMINAL_LEVEL


def contract_edges(manager: TDDManager, a: Edge, b: Edge,
                   sum_levels: Tuple[int, ...]) -> Edge:
    """Contract two edges over the (sorted) levels in ``sum_levels``."""
    sum_levels = tuple(sorted(sum_levels))
    return _cont(manager, a, b, sum_levels)


def _cont(manager: TDDManager, a: Edge, b: Edge,
          levels: Tuple[int, ...]) -> Edge:
    if a.is_zero or b.is_zero:
        return manager.zero_edge()
    weight = a.weight * b.weight
    na, nb = a.node, b.node
    if na.is_terminal and nb.is_terminal:
        return manager.scalar_edge(weight * (2 ** len(levels)))
    ka, kb = id(na), id(nb)
    key = ("cont", ka, kb, levels) if ka <= kb else ("cont", kb, ka, levels)
    cached = manager._cont_cache.get(key)
    if cached is not None:
        return manager.make_edge(cached.weight * weight, cached.node)

    unit_a = Edge(1 + 0j, na)
    unit_b = Edge(1 + 0j, nb)
    top = min(na.level, nb.level)
    if levels and levels[0] < top:
        # Neither operand depends on this summed index: factor 2.
        inner = _cont(manager, unit_a, unit_b, levels[1:])
        result = manager.make_edge(2 * inner.weight, inner.node)
    elif levels and levels[0] == top:
        remaining = levels[1:]
        a0, a1 = slice_pair(manager, unit_a, top)
        b0, b1 = slice_pair(manager, unit_b, top)
        result = add_edges(manager,
                           _cont(manager, a0, b0, remaining),
                           _cont(manager, a1, b1, remaining))
    else:
        a0, a1 = slice_pair(manager, unit_a, top)
        b0, b1 = slice_pair(manager, unit_b, top)
        result = manager.make_node(top,
                                   _cont(manager, a0, b0, levels),
                                   _cont(manager, a1, b1, levels))
    manager._cont_cache[key] = result
    return manager.make_edge(result.weight * weight, result.node)
