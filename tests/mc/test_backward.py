"""Backward (preimage) analysis, bounded specs and witness traces.

The acceptance bar of the subsystem: backward checks agree with
forward ones, bounded checks stop at the bound, and a failing ``AG``
(or a satisfied ``EF``) yields a counterexample trace whose forward
replay reproduces the event — with identical verdicts and trace
lengths on the ``tdd`` and ``dense`` backends.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.mc.checker import ModelChecker
from repro.mc.config import CheckerConfig
from repro.mc.reachability import reachable_space
from repro.mc.witness import extract_witness_trace
from repro.systems import models

from tests.helpers import subspace_to_dense

TDD = CheckerConfig(method="basic")
DENSE = CheckerConfig(backend="dense")


class TestAdjointSystem:
    def test_adjoint_operations_are_kraus_daggers(self):
        qts = models.bitflip_qts()
        for op, adj in zip(qts.operations, qts.adjoint().operations):
            for mat, amat in zip(op.kraus_matrices(),
                                 adj.kraus_matrices()):
                assert np.allclose(amat, mat.conj().T)

    def test_adjoint_is_cached_and_involutive(self):
        qts = models.grover_qts(3)
        adj = qts.adjoint()
        assert qts.adjoint() is adj
        assert adj.adjoint() is qts
        op = qts.operations[0]
        assert op.adjoint().adjoint() is op

    def test_adjoint_shares_space_and_atoms(self):
        qts = models.grover_qts(3)
        adj = qts.adjoint()
        assert adj.space is qts.space
        assert adj.named_subspace("marked") is qts.named_subspace("marked")
        assert adj.initial is qts.initial

    def test_adjoint_tracks_initial_space_updates(self):
        qts = models.ghz_qts(3)
        qts.adjoint()
        qts.set_initial_basis_states([[1, 1, 1]])
        assert qts.adjoint().initial is qts.initial


class TestBackwardReachability:
    def test_unitary_preimage_roundtrip(self):
        # for a unitary op the backward space from T(S0) contains S0
        qts = models.ghz_qts(3)
        forward = reachable_space(qts, method="basic")
        backward = reachable_space(qts, method="basic",
                                   initial=forward.subspace,
                                   direction="backward")
        assert backward.subspace.contains(qts.initial)
        assert backward.direction == "backward"

    @pytest.mark.parametrize("method,params", [
        ("basic", {}),
        ("addition", {"k": 1}),
        ("contraction", {"k1": 2, "k2": 2}),
        ("hybrid", {"k": 1, "k1": 2, "k2": 2}),
    ])
    def test_all_methods_agree_backward(self, method, params):
        def run(run_method, run_params):
            qts = models.qrw_qts(3, 0.2)
            return reachable_space(qts, method=run_method,
                                   initial=qts.named_subspace("start"),
                                   direction="backward", **run_params)
        base = run("basic", {})
        trace = run(method, params)
        assert trace.dimensions == base.dimensions
        assert subspace_to_dense(trace.subspace).equals(
            subspace_to_dense(base.subspace))

    def test_sliced_strategy_matches_monolithic_backward(self):
        mono = reachable_space(models.qrw_qts(3, 0.2), method="basic",
                               direction="backward")
        sliced = reachable_space(models.qrw_qts(3, 0.2), method="basic",
                                 direction="backward", strategy="sliced")
        assert sliced.dimensions == mono.dimensions
        d1 = subspace_to_dense(mono.subspace)
        d2 = subspace_to_dense(sliced.subspace)
        assert d1.equals(d2)

    def test_dense_backend_matches_tdd_backward(self):
        qts = models.qrw_qts(3, 0.2)
        start = qts.named_subspace("start")
        symbolic = reachable_space(qts, method="basic", initial=start,
                                   direction="backward")
        from repro.mc.backends import DenseStatevectorBackend
        dense = DenseStatevectorBackend().reachable(
            qts, initial=start, direction="backward")
        assert dense.dimensions == symbolic.dimensions
        assert subspace_to_dense(dense.subspace).equals(
            subspace_to_dense(symbolic.subspace))

    def test_bound_limits_image_steps(self):
        qts = models.qrw_qts(3, 0.2)
        trace = reachable_space(qts, method="basic", bound=2)
        assert trace.iterations <= 2
        assert trace.bound == 2
        full = reachable_space(models.qrw_qts(3, 0.2), method="basic")
        assert trace.dimension <= full.dimension

    def test_bound_tighter_than_max_iterations_wins(self):
        qts = models.qrw_qts(3, 0.2)
        trace = reachable_space(qts, method="basic", max_iterations=5,
                                bound=1)
        assert trace.iterations == 1


class TestBackwardCheck:
    @pytest.mark.parametrize("config", [TDD, DENSE], ids=["tdd", "dense"])
    @pytest.mark.parametrize("spec,expected", [
        ("AG inv", True),
        ("AG plus", False),
        ("AG marked", False),
        ("EF marked", True),
        ("EF ancilla_plus", False),
        ("AG ~ancilla_plus", True),
    ])
    def test_backward_agrees_with_forward(self, config, spec, expected):
        qts = models.grover_qts(3)
        forward = ModelChecker(qts, config).check(spec)
        back = ModelChecker(models.grover_qts(3),
                            config.replace(direction="backward")
                            ).check(spec)
        assert forward.holds == back.holds == expected
        assert back.direction == "backward"

    def test_backward_witness_lies_in_initial_space(self):
        qts = models.grover_qts(3)
        result = ModelChecker(
            qts, TDD.replace(direction="backward")).check("AG plus")
        assert not result.holds
        assert result.witness is not None
        for vector in result.witness.basis:
            assert qts.initial.contains_state(vector)

    def test_backward_full_space_ag_trivially_holds(self):
        # [[phi]]^perp is the zero subspace: nothing to walk back from
        qts = models.grover_qts(3)
        full = qts.space.span(
            [qts.space.basis_state([int(b) for b in f"{i:03b}"])
             for i in range(8)])
        qts.register_subspace("full", full)
        result = ModelChecker(
            qts, TDD.replace(direction="backward")).check("AG full")
        assert result.holds
        assert result.reachable_dimension == 0

    def test_backward_bounded_terminates_within_k(self):
        for config in (TDD, DENSE):
            result = ModelChecker(
                models.qrw_qts(3, 0.2),
                config.replace(direction="backward", bound=2)
            ).check("EF start")
            assert result.iterations <= 2
            assert result.bound == 2


class TestBoundedSpecs:
    def test_spec_bound_limits_iterations(self):
        qts = models.qrw_qts(3, 0.2)
        result = ModelChecker(qts, TDD).check("AG[<=1] init")
        assert result.iterations <= 1
        assert result.bound == 1
        assert result.spec == "AG[<=1] init"

    def test_spec_bound_wins_over_config_bound(self):
        qts = models.qrw_qts(3, 0.2)
        result = ModelChecker(qts, TDD.replace(bound=5)).check(
            "AG[<=1] init")
        assert result.bound == 1

    def test_bounded_ef_needs_enough_steps(self):
        # the GHZ target is reached in one step, so EF[<=1] holds and
        # a bound of 1 is also where AG zero first fails
        qts = models.ghz_qts(3)
        checker = ModelChecker(qts, TDD)
        assert checker.check("EF[<=1] target").holds
        assert not checker.check("AG[<=1] zero").holds

    def test_bounded_verdicts_agree_across_backends(self):
        for spec in ("EF[<=1] codeword", "AG[<=1] errors"):
            tdd = ModelChecker(models.bitflip_qts(), TDD).check(spec)
            dense = ModelChecker(models.bitflip_qts(), DENSE).check(spec)
            assert tdd.holds == dense.holds
            assert tdd.trace_length == dense.trace_length


class TestWitnessTraces:
    @pytest.mark.parametrize("config", [TDD, DENSE], ids=["tdd", "dense"])
    def test_failed_ag_on_grover_yields_valid_trace(self, config):
        qts = models.grover_qts(3)
        result = ModelChecker(qts, config).check("AG plus")
        assert not result.holds
        trace = result.witness_trace
        assert trace is not None and trace.valid
        assert trace.symbols == ["G"]
        assert [s.dimension for s in trace.subspaces] == [1, 1]

    @pytest.mark.parametrize("config", [TDD, DENSE], ids=["tdd", "dense"])
    def test_failed_ag_on_bitflip_yields_valid_trace(self, config):
        result = ModelChecker(models.bitflip_qts(), config).check(
            "AG errors")
        assert not result.holds
        trace = result.witness_trace
        assert trace is not None and trace.valid
        assert trace.symbols == ["correct"]

    def test_trace_identical_across_backends(self):
        for spec in ("AG plus", "AG errors", "EF codeword"):
            model = (models.bitflip_qts() if "errors" in spec
                     or "codeword" in spec else models.grover_qts(3))
            other = (models.bitflip_qts() if "errors" in spec
                     or "codeword" in spec else models.grover_qts(3))
            tdd = ModelChecker(model, TDD).check(spec)
            dense = ModelChecker(other, DENSE).check(spec)
            assert tdd.verdict == dense.verdict
            assert tdd.trace_length == dense.trace_length
            t1, t2 = tdd.witness_trace, dense.witness_trace
            assert (t1 is None) == (t2 is None)
            if t1 is not None:
                assert t1.symbols == t2.symbols
                assert t1.valid and t2.valid

    def test_forward_replay_reproduces_the_violation(self):
        qts = models.grover_qts(3)
        result = ModelChecker(qts, TDD).check("AG plus")
        trace = result.witness_trace
        plus = qts.named_subspace("plus")
        # the final replay subspace escapes the claimed invariant
        final = trace.subspaces[-1]
        assert any(not plus.contains_state(v) for v in final.basis)
        # and the replay started inside the initial space
        assert qts.initial.contains(trace.subspaces[0])

    def test_satisfied_ef_trace_reaches_the_target(self):
        qts = models.bitflip_qts()
        result = ModelChecker(qts, TDD).check("EF codeword")
        assert result.holds
        trace = result.witness_trace
        assert trace is not None and trace.valid
        codeword = qts.named_subspace("codeword")
        final = trace.subspaces[-1]
        assert any(codeword.project_state(v).norm() > 1e-7
                   for v in final.basis)

    def test_violation_in_initial_space_gives_empty_trace(self):
        result = ModelChecker(models.bitflip_qts(), TDD).check(
            "AG codeword")
        assert not result.holds
        trace = result.witness_trace
        assert trace is not None and trace.valid
        assert trace.length == 0

    def test_no_trace_when_spec_holds(self):
        result = ModelChecker(models.grover_qts(3), TDD).check("AG inv")
        assert result.holds
        assert result.witness_trace is None

    def test_witness_trace_can_be_skipped(self):
        result = ModelChecker(models.grover_qts(3), TDD).check(
            "AG plus", witness_trace=False)
        assert not result.holds
        assert result.witness_trace is None

    def test_extractor_returns_none_without_event(self):
        qts = models.grover_qts(3)
        assert extract_witness_trace(qts, "AG",
                                     qts.named_subspace("inv")) is None
        assert extract_witness_trace(
            qts, "EF", qts.named_subspace("ancilla_plus")) is None

    def test_as_dict_carries_trace_columns(self):
        flat = ModelChecker(models.grover_qts(3), TDD).check(
            "AG plus").as_dict()
        assert flat["direction"] == "forward"
        assert flat["bound"] == 0
        assert flat["trace_length"] == 1
        assert flat["trace_symbols"] == "G"
        assert flat["trace_valid"] is True
        held = ModelChecker(models.grover_qts(3), TDD).check(
            "AG inv").as_dict()
        assert held["trace_length"] == 0
        assert held["trace_symbols"] == ""


class TestCrossValidationWithTraces:
    def test_cross_validate_compares_trace_lengths(self):
        qts = models.grover_qts(3)
        checker = ModelChecker(qts, CheckerConfig(
            method="contraction", method_params={"k1": 2, "k2": 2}))
        report = checker.cross_validate(spec="AG plus")
        assert report.ok
        assert report.tdd_trace_length == report.dense_trace_length == 1


class TestConfigSurface:
    def test_direction_and_bound_validate(self):
        with pytest.raises(ConfigError):
            CheckerConfig(direction="sideways")
        with pytest.raises(ConfigError):
            CheckerConfig(bound=-1)
        with pytest.raises(ConfigError):
            CheckerConfig(bound="three")

    def test_direction_and_bound_round_trip(self):
        config = CheckerConfig(direction="backward", bound=3)
        again = CheckerConfig.from_json(config.to_json())
        assert again == config
        assert again.direction == "backward" and again.bound == 3

    def test_describe_mentions_non_defaults(self):
        text = CheckerConfig(direction="backward", bound=2).describe()
        assert "direction=backward" in text
        assert "bound=2" in text
        assert "direction" not in CheckerConfig().describe()

    def test_dense_accepts_direction_and_bound(self):
        config = CheckerConfig(backend="dense", direction="backward",
                               bound=1)
        assert config.direction == "backward"
