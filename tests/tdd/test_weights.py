"""Unit tests for weight canonicalisation — scalar and batched."""

import numpy as np
import pytest

from repro.config import WEIGHT_DECIMALS, WEIGHT_EPS
from repro.tdd import weights as wt


class TestCanonical:
    def test_rounds_real_and_imag(self):
        value = wt.canonical(0.1234567890123456 + 1j * 0.9876543210987654)
        assert value == complex(round(0.1234567890123456, 12),
                                round(0.9876543210987654, 12))

    def test_clamps_tiny_real(self):
        assert wt.canonical(1e-14 + 0.5j) == 0.5j

    def test_clamps_tiny_imag(self):
        assert wt.canonical(0.5 + 1e-14j) == 0.5 + 0j

    def test_folds_negative_zero(self):
        value = wt.canonical(complex(-0.0, -0.0))
        assert wt.key(value) == (0.0, 0.0)

    def test_folds_negative_zero_from_clamp(self):
        # a clamped negative component must not leave a -0.0 behind:
        # (re, im) keys distinguish 0.0 from -0.0 by their sign bit
        value = wt.canonical(complex(-1e-14, 0.5))
        assert wt.key(value) == (0.0, 0.5)
        assert not np.signbit(value.real)

    def test_clamp_runs_before_round(self):
        # |component| < WEIGHT_EPS is zeroed even though rounding to
        # WEIGHT_DECIMALS digits alone would keep it: 5e-11 rounds to
        # 5e-11 at 12 digits, but the clamp (eps=1e-10) fires first
        component = WEIGHT_EPS / 2
        assert round(component, WEIGHT_DECIMALS) != 0.0
        assert wt.canonical(complex(component, 1.0)) == 1j

    def test_keeps_values_above_eps(self):
        value = wt.canonical(complex(WEIGHT_EPS * 10, 0))
        assert value.real != 0.0

    def test_exact_one(self):
        assert wt.canonical(1 + 0j) == 1 + 0j


class TestKeyAndZero:
    def test_key_is_hashable_tuple(self):
        key = wt.key(wt.canonical(0.25 - 0.75j))
        assert key == (0.25, -0.75)
        hash(key)

    def test_is_zero(self):
        assert wt.is_zero(0j)
        assert not wt.is_zero(1 + 0j)


class TestCanonicalArray:
    def test_matches_scalar_canonical_elementwise(self):
        values = np.array([1e-14 + 0.5j, 0.5 + 1e-14j, complex(-0.0, -0.0),
                           1 + 0j, 0.1234567890123456 + 0.25j,
                           complex(-1e-14, 0.5), complex(WEIGHT_EPS / 2, 1)])
        result = wt.canonical_array(values)
        for got, raw in zip(result, values):
            assert complex(got) == wt.canonical(complex(raw))

    def test_folds_negative_zero(self):
        result = wt.canonical_array(np.array([complex(-0.0, -0.0)]))
        assert not np.signbit(result[0].real)
        assert not np.signbit(result[0].imag)

    def test_clamp_runs_before_round(self):
        result = wt.canonical_array(np.array([complex(WEIGHT_EPS / 2, 1.0)]))
        assert complex(result[0]) == 1j

    def test_key_array_tagged(self):
        values = wt.canonical_array(np.array([0.5 + 0j, 0.25j]))
        key = wt.key_array(values)
        assert key[0] == "b"
        hash(key)

    def test_key_array_distinguishes_sign_of_zero(self):
        # canonical_array folds -0.0; raw byte keys would not, which is
        # why only canonical vectors may be interned
        plus = wt.canonical_array(np.array([complex(0.0, 0.0)]))
        minus = wt.canonical_array(np.array([complex(-0.0, -0.0)]))
        assert wt.key_array(plus) == wt.key_array(minus)

    def test_is_zero_array(self):
        assert wt.is_zero_array(np.zeros(3, dtype=complex))
        assert not wt.is_zero_array(np.array([0j, 1j, 0j]))


class TestDispatchHelpers:
    def test_parallel_shape(self):
        assert wt.parallel_shape(1 + 0j) == ()
        assert wt.parallel_shape(np.zeros(4, dtype=complex)) == (4,)

    def test_any_key_matches_specialised(self):
        assert wt.any_key(0.5 - 0.5j) == wt.key(0.5 - 0.5j)
        values = np.array([1j, 2j])
        assert wt.any_key(values) == wt.key_array(values)

    def test_cache_key_node_id_position(self):
        # cache purges read the node id at index 2 of either form
        assert wt.cache_key(0.5 + 0.25j, 42)[2] == 42
        assert wt.cache_key(np.array([1j]), 42)[2] == 42

    def test_any_is_zero(self):
        assert wt.any_is_zero(0j)
        assert not wt.any_is_zero(1j)
        assert wt.any_is_zero(np.zeros(2, dtype=complex))
        assert not wt.any_is_zero(np.array([0j, 1e-30j]))

    def test_equal(self):
        assert wt.equal(1j, 1j)
        assert not wt.equal(1j, -1j)
        assert wt.equal(np.array([1j, 0j]), np.array([1j, 0j]))
        assert not wt.equal(np.array([1j, 0j]), np.array([1j, 1j]))

    def test_approx_equal_is_gone(self):
        # removed dead API; kept here so a reintroduction is deliberate
        assert not hasattr(wt, "approx_equal")


class TestRoundingParity:
    @pytest.mark.parametrize("value", [
        0.1234567890123456, 0.9999999999994999,
        0.3333333333333333, 2 ** -40, 0.0000000000005,
    ])
    def test_np_round_matches_python_round(self, value):
        # the batched kernel rounds through the array namespace; the
        # scalar kernel through python round().  Both are IEEE
        # round-half-even at WEIGHT_DECIMALS digits — this pins the
        # assumption the canonical-parity guarantee rests on.
        assert float(np.round(value, WEIGHT_DECIMALS)) == round(
            value, WEIGHT_DECIMALS)

    def test_known_half_way_divergence(self):
        # np.round (scale, round, unscale) and python round (correctly
        # rounded decimal) CAN disagree when a weight sits within one
        # ulp of a half-way point at digit 13.  Documented limitation:
        # canonical parity between the scalar and batched kernels is
        # exact except on such adversarial values, which the property
        # tests show do not arise in the table-1 families.
        value = 1.0000000000005001
        assert float(np.round(value, WEIGHT_DECIMALS)) != round(
            value, WEIGHT_DECIMALS)
