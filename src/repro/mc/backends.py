"""Pluggable computation backends for model checking.

The :class:`~repro.mc.checker.ModelChecker` (and the CLI) can run every
check on one of two interchangeable engines:

* ``tdd`` — the symbolic TDD kernel (the paper's algorithms; scales
  with diagram size, not Hilbert-space dimension), or
* ``dense`` — the :mod:`repro.sim` statevector reference (explicitly
  exponential; Kraus matrices applied to dense basis vectors, subspaces
  closed by SVD).

Both return the same result types (``ImageResult`` /
``ReachabilityTrace`` over TDD-backed subspaces), so results
cross-validate structurally: :func:`cross_validate` runs an image on
both backends and compares dimension and projector equality.  This is
the production-style guard rail for the symbolic engine — any
divergence on a small instance pinpoints a kernel bug before it ships
at a scale where the dense oracle can no longer follow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol

from repro.errors import ReproError
from repro.image.base import ImageResult
from repro.image.engine import METHODS, compute_image
from repro.image.sliced import DEFAULT_SLICE_DEPTH, STRATEGIES
from repro.mc.reachability import ReachabilityTrace, reachable_space
from repro.subspace.subspace import Subspace
from repro.systems.qts import QuantumTransitionSystem
from repro.utils.stats import StatsRecorder
from repro.utils.timing import Stopwatch

BACKENDS = ("tdd", "dense")

#: dense simulation is exponential; refuse silly sizes loudly
DENSE_MAX_QUBITS = 14


class Backend(Protocol):
    """One engine that can compute images and reachable spaces."""

    name: str

    def compute_image(self, qts: QuantumTransitionSystem,
                      subspace: Optional[Subspace] = None) -> ImageResult:
        """``T(S)`` with run statistics."""
        ...

    def reachable(self, qts: QuantumTransitionSystem,
                  initial: Optional[Subspace] = None,
                  max_iterations: int = 0,
                  frontier: bool = False) -> ReachabilityTrace:
        """The reachability fixpoint from ``initial`` (default ``S0``)."""
        ...


class TDDBackend:
    """The symbolic backend: delegates to the image/mc engine.

    ``strategy`` / ``jobs`` / ``slice_depth`` select the execution
    strategy of :mod:`repro.image.sliced` (monolithic sequential
    contraction vs. parallel cofactor slicing); the remaining params
    are the method parameters (``k``, ``k1``, ``k2``, ...).
    """

    name = "tdd"

    def __init__(self, method: str = "contraction",
                 strategy: str = "monolithic",
                 jobs: Optional[int] = None,
                 slice_depth: int = DEFAULT_SLICE_DEPTH,
                 **params) -> None:
        if method not in METHODS:
            raise ReproError(f"unknown image method {method!r}; "
                             f"choose from {METHODS}")
        if strategy not in STRATEGIES:
            raise ReproError(f"unknown strategy {strategy!r}; "
                             f"choose from {STRATEGIES}")
        self.method = method
        self.strategy = strategy
        self.jobs = jobs
        self.slice_depth = slice_depth
        self.params = dict(params)

    def compute_image(self, qts: QuantumTransitionSystem,
                      subspace: Optional[Subspace] = None) -> ImageResult:
        return compute_image(qts, subspace, self.method,
                             strategy=self.strategy, jobs=self.jobs,
                             slice_depth=self.slice_depth, **self.params)

    def reachable(self, qts: QuantumTransitionSystem,
                  initial: Optional[Subspace] = None,
                  max_iterations: int = 0,
                  frontier: bool = False) -> ReachabilityTrace:
        return reachable_space(qts, self.method, initial=initial,
                               max_iterations=max_iterations,
                               frontier=frontier, strategy=self.strategy,
                               jobs=self.jobs, slice_depth=self.slice_depth,
                               **self.params)

    def __repr__(self) -> str:
        return (f"TDDBackend(method={self.method!r}, "
                f"strategy={self.strategy!r})")


class DenseStatevectorBackend:
    """The dense reference backend (exponential; small instances only).

    Images are computed with explicit Kraus matrices on dense basis
    vectors (:class:`~repro.sim.subspace_dense.DenseSubspace`); the
    resulting orthonormal basis is lifted back into TDD states so the
    result type matches the symbolic backend exactly.
    """

    name = "dense"

    def __init__(self, max_qubits: int = DENSE_MAX_QUBITS) -> None:
        self.max_qubits = max_qubits

    # ------------------------------------------------------------------
    def _check_size(self, qts: QuantumTransitionSystem) -> None:
        if qts.num_qubits > self.max_qubits:
            raise ReproError(
                f"dense backend refuses {qts.num_qubits} qubits "
                f"(> {self.max_qubits}); it is exponential — use the "
                f"tdd backend, or raise max_qubits explicitly")

    @staticmethod
    def _kraus_matrices(qts: QuantumTransitionSystem) -> list:
        return [matrix for op in qts.operations
                for matrix in op.kraus_matrices()]

    @staticmethod
    def _to_dense(subspace: Subspace):
        from repro.sim.subspace_dense import DenseSubspace
        dim = 2 ** subspace.space.num_qubits
        vectors = [v.to_numpy().reshape(-1) for v in subspace.basis]
        return DenseSubspace.from_vectors(vectors, dim)

    @staticmethod
    def _to_subspace(qts: QuantumTransitionSystem, dense) -> Subspace:
        states = [qts.space.from_amplitudes(dense.basis[:, column])
                  for column in range(dense.dimension)]
        return qts.space.span(states)

    # ------------------------------------------------------------------
    def compute_image(self, qts: QuantumTransitionSystem,
                      subspace: Optional[Subspace] = None) -> ImageResult:
        self._check_size(qts)
        if subspace is None:
            subspace = qts.initial
        stats = StatsRecorder()
        stats.extra["backend"] = self.name
        watch = Stopwatch().start()
        dense = self._to_dense(subspace).image(self._kraus_matrices(qts))
        result = self._to_subspace(qts, dense)
        stats.seconds = watch.stop()
        stats.observe_nodes(result.projector.size())
        return ImageResult(result, stats)

    def reachable(self, qts: QuantumTransitionSystem,
                  initial: Optional[Subspace] = None,
                  max_iterations: int = 0,
                  frontier: bool = False) -> ReachabilityTrace:
        # frontier iteration is a symbolic-cost optimisation; the dense
        # fixpoint is cheap enough to always use the full space.
        del frontier
        self._check_size(qts)
        current = initial if initial is not None else qts.initial
        if current.dimension == 0:
            raise ReproError("reachability from the zero subspace is "
                             "trivial; set an initial space first")
        kraus = self._kraus_matrices(qts)
        dense = self._to_dense(current)
        trace = ReachabilityTrace(subspace=current,
                                  dimensions=[dense.dimension])
        trace.stats.extra["backend"] = self.name
        limit = max_iterations if max_iterations > 0 else 2 ** qts.num_qubits
        watch = Stopwatch().start()
        for _ in range(limit):
            grown = dense.join(dense.image(kraus))
            trace.iterations += 1
            trace.dimensions.append(grown.dimension)
            converged = grown.dimension == dense.dimension
            dense = grown
            if converged:
                break
        else:
            trace.converged = False
        trace.subspace = self._to_subspace(qts, dense)
        trace.stats.observe_nodes(trace.subspace.projector.size())
        trace.stats.seconds = watch.stop()
        return trace

    def __repr__(self) -> str:
        return f"DenseStatevectorBackend(max_qubits={self.max_qubits})"


#: parameters that only concern one backend; each backend tolerates the
#: other's so swapping ``backend=`` is a drop-in change
_TDD_ONLY_PARAMS = frozenset({"k", "k1", "k2", "order_policy",
                              "strategy", "jobs", "slice_depth"})
_DENSE_ONLY_PARAMS = frozenset({"max_qubits"})


def make_backend(name: str = "tdd", method: str = "contraction",
                 **params) -> Backend:
    """Instantiate a backend by name (``method``/``params`` feed tdd)."""
    if name == "tdd":
        tdd_params = {key: value for key, value in params.items()
                      if key not in _DENSE_ONLY_PARAMS}
        return TDDBackend(method=method, **tdd_params)
    if name == "dense":
        dense_params = {key: value for key, value in params.items()
                        if key not in _TDD_ONLY_PARAMS}
        return DenseStatevectorBackend(**dense_params)
    raise ReproError(f"unknown backend {name!r}; choose from {BACKENDS}")


# ----------------------------------------------------------------------
# cross-validation
# ----------------------------------------------------------------------
@dataclass
class CrossValidation:
    """Outcome of comparing the same image on two backends."""

    tdd_dimension: int
    dense_dimension: int
    agree: bool
    tdd_seconds: float
    dense_seconds: float

    @property
    def ok(self) -> bool:
        return self.agree

    def __repr__(self) -> str:
        status = "agree" if self.agree else "DISAGREE"
        return (f"CrossValidation({status}: tdd dim={self.tdd_dimension}, "
                f"dense dim={self.dense_dimension})")


def cross_validate(qts: QuantumTransitionSystem,
                   subspace: Optional[Subspace] = None,
                   method: str = "contraction",
                   tol: float = 1e-7, **params) -> CrossValidation:
    """Run ``T(S)`` on both backends and compare the resulting subspaces.

    Agreement means equal dimension *and* mutual containment of the two
    subspaces (projector equality up to ``tol``).  ``params`` may mix
    method parameters and dense options — each backend takes its own.
    """
    symbolic = make_backend("tdd", method=method,
                            **params).compute_image(qts, subspace)
    dense = make_backend("dense", **params).compute_image(qts, subspace)
    agree = (symbolic.subspace.dimension == dense.subspace.dimension
             and symbolic.subspace.equals(dense.subspace, tol))
    return CrossValidation(
        tdd_dimension=symbolic.subspace.dimension,
        dense_dimension=dense.subspace.dimension,
        agree=agree,
        tdd_seconds=symbolic.stats.seconds,
        dense_seconds=dense.stats.seconds)
