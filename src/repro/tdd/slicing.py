"""TDD slicing and non-zero path search.

Slicing fixes one index to a constant (paper, Section II.B); it is the
workhorse of the addition-partition scheme and of the basis
decomposition of projectors (Section IV.A), which locates the *leftmost
non-zero path* of a projector TDD to extract its first non-zero column.

Both operations run on the explicit-stack machinery from
:mod:`repro.tdd.apply` — no Python recursion, so they work on diagrams
of arbitrary depth under the default interpreter recursion limit.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterator, Optional, Sequence, Tuple

from repro.tdd.apply import unary_apply
from repro.tdd.manager import TDDManager
from repro.tdd.node import Edge, Node


def slice_edge(manager: TDDManager, edge: Edge, level: int, value: int) -> Edge:
    """The tensor of ``edge`` with the index at ``level`` fixed to ``value``.

    The resulting edge no longer depends on that index.
    """
    if value not in (0, 1):
        raise ValueError(f"slice value must be 0 or 1, got {value!r}")

    def shortcut(node: Node) -> Optional[Edge]:
        if node.level > level:
            # below the sliced index: subtree unchanged
            return Edge(1 + 0j, node)
        if node.level == level:
            chosen = node.high if value else node.low
            return manager.make_edge(chosen.weight, chosen.node)
        return None

    return unary_apply(
        manager, edge,
        rebuild=lambda node, low, high: manager.make_node(node.level,
                                                          low, high),
        shortcut=shortcut)


def slice_many(manager: TDDManager, edge: Edge,
               assignment: Dict[int, int]) -> Edge:
    """Slice several levels at once (applied top-down)."""
    result = edge
    for level in sorted(assignment):
        result = slice_edge(manager, result, level, assignment[level])
    return result


def cofactor_assignments(levels: Sequence[int]
                         ) -> Iterator[Dict[int, int]]:
    """All ``2^k`` assignments of ``levels``, in lexicographic bit order.

    The deterministic enumeration order matters: the sliced image
    strategy adds cofactor results back together in this order whether
    they were computed inline or on a process pool, so the recombined
    diagram is identical for every ``--jobs`` setting.
    """
    ordered = sorted(levels)
    for bits in itertools.product((0, 1), repeat=len(ordered)):
        yield dict(zip(ordered, bits))


def enumerate_cofactors(manager: TDDManager, edge: Edge,
                        levels: Sequence[int]
                        ) -> Iterator[Tuple[Dict[int, int], Edge]]:
    """Yield ``(assignment, sliced edge)`` over all assignments of
    ``levels``.

    The cofactors sum back to the original tensor over the sliced
    indices: ``T = sum_b T|_{levels=b}`` whenever the sliced indices
    are summed away afterwards — the identity behind both the
    addition-partition scheme and the parallel sliced image strategy.
    """
    for assignment in cofactor_assignments(levels):
        yield assignment, slice_many(manager, edge, assignment)


def first_nonzero_assignment(edge: Edge,
                             target_levels: FrozenSet[int]
                             ) -> Optional[Dict[int, int]]:
    """Leftmost assignment of ``target_levels`` with a non-zero slice.

    Returns a partial assignment ``{level: bit}`` such that slicing
    ``edge`` on it yields a non-zero tensor, preferring 0 before 1 at
    every target index (the paper's "leftmost non-zero path").  Levels
    in ``target_levels`` that the diagram does not branch on are
    unconstrained and omitted (callers treat them as 0).  Returns
    ``None`` iff the edge denotes the zero tensor.
    """
    if edge.is_zero:
        return None
    # Backtracking DFS with an explicit frame stack.  Each frame is
    # ``[node, tried]`` where ``tried`` is 0 (nothing yet), 1 (descended
    # low) or 2 (descended high); the successful path is read off the
    # frames when the terminal is reached.
    frames = [[edge.node, 0]]
    while frames:
        node, tried = frames[-1]
        if node.is_terminal:
            assignment: Dict[int, int] = {}
            for frame_node, frame_tried in frames[:-1]:
                if frame_node.level in target_levels:
                    assignment[frame_node.level] = frame_tried - 1
            return assignment
        if tried == 0 and not node.low.is_zero:
            frames[-1][1] = 1
            frames.append([node.low.node, 0])
        elif tried <= 1 and not node.high.is_zero:
            frames[-1][1] = 2
            frames.append([node.high.node, 0])
        else:
            frames.pop()
    return None
