"""Uniform entry point for image computation.

Two orthogonal choices select how an image ``T(S)`` is computed:

* the **method** — which of the paper's four algorithms partitions the
  transition relation (``basic``, ``addition``, ``contraction``,
  ``hybrid``), and
* the **strategy** — how the resulting contractions execute:
  ``monolithic`` (sequential, in-process) or ``sliced`` (cofactor
  decomposition along top summed index levels, optionally fanned out
  over a process pool — see :mod:`repro.image.sliced`).

:class:`ImageEngine` bundles a method computer with an execution
strategy and owns the strategy's worker-pool lifecycle; the
module-level :func:`compute_image` remains the one-shot convenience
wrapper used throughout the benchmarks and the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.errors import ReproError
from repro.image.addition import AdditionImageComputer
from repro.image.base import ImageComputerBase, ImageResult
from repro.image.basic import BasicImageComputer
from repro.image.contraction import ContractionImageComputer
from repro.image.hybrid import HybridImageComputer
from repro.image.sliced import DEFAULT_SLICE_DEPTH, make_executor
from repro.subspace.subspace import Subspace
from repro.systems.qts import QuantumTransitionSystem
from repro.utils.stats import StatsRecorder
from repro.utils.timing import Stopwatch

METHODS = ("basic", "addition", "contraction", "hybrid")

#: image orientations: forward computes ``T(S)``, backward the
#: preimage ``T^dagger(S)`` (images of the adjoint system)
DIRECTIONS = ("forward", "backward")


def validate_direction(direction: str) -> str:
    """The single point of direction validation.

    Every layer that takes a ``direction`` — the engine, the backends,
    ``reachable_space`` — funnels through this check, so the error
    message is spelled once and callers simply propagate the
    :class:`~repro.errors.ReproError`.
    """
    if direction not in DIRECTIONS:
        raise ReproError(f"unknown direction {direction!r}; "
                         f"choose from {DIRECTIONS}")
    return direction


def make_computer(qts: QuantumTransitionSystem, method: str = "basic",
                  **params) -> ImageComputerBase:
    """Instantiate an image computer by method name.

    ``params``: ``k`` for addition, ``k1``/``k2``/``order_policy`` for
    contraction, all of them for hybrid.
    """
    if method == "basic":
        if params:
            raise ReproError(f"basic method takes no parameters, got "
                             f"{sorted(params)}")
        return BasicImageComputer(qts)
    if method == "addition":
        return AdditionImageComputer(qts, **params)
    if method == "contraction":
        return ContractionImageComputer(qts, **params)
    if method == "hybrid":
        return HybridImageComputer(qts, **params)
    raise ReproError(f"unknown image method {method!r}; "
                     f"choose from {METHODS}")


@dataclass
class ImageTask:
    """One schedulable unit of image work.

    The image operator distributes over operations (Proposition 1):
    ``T(S) = v_sigma T_sigma(S)``, so one task carries the whole Kraus
    family of one operation applied to one source subspace.  Drivers
    (:mod:`repro.mc.drivers`) decide how the tasks of a fixpoint round
    are scheduled and how their partial images recombine; running a
    task routes every contraction through the engine's executor, so
    sliced/pooled execution applies per task with no extra plumbing.
    """

    symbol: str
    circuits: Sequence
    source: Subspace
    computer: ImageComputerBase

    def run(self, stats: Optional[StatsRecorder] = None) -> ImageResult:
        """The partial image ``T_sigma(source)`` with run stats."""
        return self.computer.partial_image(self.source, self.circuits,
                                           stats)

    def __repr__(self) -> str:
        return (f"ImageTask({self.symbol!r}, kraus={len(self.circuits)}, "
                f"source_dim={self.source.dimension})")


class ImageEngine:
    """An image computer bound to an execution strategy.

    The engine wires a :class:`~repro.image.sliced` executor into the
    chosen method's computer and owns the executor's process pool; use
    it as a context manager (or call :meth:`close`) when
    ``strategy="sliced"`` with ``jobs > 1`` so workers are reaped
    deterministically.  Reusing one engine across calls reuses the
    computer's cached operator diagrams *and* the executor's cofactor
    slices — the intended shape for reachability fixpoints and sweeps.

    ``direction="backward"`` switches the engine to *preimage* mode:
    the computer is built against the adjoint system
    (:meth:`~repro.systems.qts.QuantumTransitionSystem.adjoint`), so
    every method partitions — and every strategy executes — the
    Kraus-dagger transition relation, with the adjoint operator TDDs
    cached across calls exactly like the forward ones.
    """

    def __init__(self, qts: QuantumTransitionSystem,
                 method: str = "basic",
                 strategy: str = "monolithic",
                 jobs: Optional[int] = None,
                 slice_depth: int = DEFAULT_SLICE_DEPTH,
                 direction: str = "forward",
                 batched: bool = True,
                 config=None,
                 **params) -> None:
        if config is not None:
            # a repro.mc.config.CheckerConfig: the validated single
            # source of truth — it overrides the loose kwargs entirely
            if params or method != "basic" or strategy != "monolithic" \
                    or jobs is not None or slice_depth != DEFAULT_SLICE_DEPTH \
                    or direction != "forward" or batched is not True:
                raise ReproError("pass either config= or the individual "
                                 "method/strategy keyword arguments, "
                                 "not both")
            if config.backend != "tdd":
                raise ReproError(
                    f"ImageEngine runs the symbolic tdd engine; got a "
                    f"config for backend={config.backend!r}")
            method = config.method
            strategy = config.strategy
            jobs = config.jobs
            slice_depth = config.slice_depth
            direction = config.direction
            batched = config.batched
            params = dict(config.method_params)
        validate_direction(direction)
        self.qts = qts
        self.method = method
        self.strategy = strategy
        self.jobs = jobs
        self.slice_depth = slice_depth
        self.direction = direction
        self.batched = batched
        #: the system whose transition relation is contracted — the
        #: adjoint one in preimage mode (same manager, same space)
        self.system = qts if direction == "forward" else qts.adjoint()
        self.computer = make_computer(self.system, method, **params)
        self.computer.batched = batched
        self.computer.executor = make_executor(
            strategy, qts.manager, jobs=jobs, slice_depth=slice_depth)

    @property
    def executor(self):
        return self.computer.executor

    # ------------------------------------------------------------------
    def image_tasks(self, source: Subspace) -> Iterator[ImageTask]:
        """One :class:`ImageTask` per operation of the system.

        In backward mode the tasks are built against the adjoint
        operations, so running them computes per-operation *preimages*.
        The join of all task results equals ``computer.image(source)``
        (same dimension and mutual containment; the Gram-Schmidt basis
        may differ with the combine order).
        """
        for op in self.system.operations:
            yield ImageTask(symbol=op.symbol, circuits=op.kraus_circuits,
                            source=source, computer=self.computer)

    def combined_image_task(self, source: Subspace) -> ImageTask:
        """One task spanning *every* operation's Kraus family.

        With batching on, running this task stacks all circuits of the
        system into a single vector-weight operator, so a whole
        fixpoint iteration costs one kernel invocation per basis state
        (the opsharded driver's batched fast path).
        """
        circuits = []
        for op in self.system.operations:
            circuits.extend(op.kraus_circuits)
        return ImageTask(symbol="*", circuits=circuits,
                         source=source, computer=self.computer)

    # ------------------------------------------------------------------
    def compute_image(self, subspace: Optional[Subspace] = None,
                      gc: bool = True) -> ImageResult:
        """Compute ``T(S)`` and record the full kernel cost profile."""
        stats = StatsRecorder()
        if self.strategy != "monolithic":
            stats.extra["strategy"] = self.strategy
        manager = self.qts.manager
        baseline = manager.cache_counters()
        watch = Stopwatch().start()
        result = self.computer.image(subspace, stats)
        stats.seconds = watch.stop()
        if gc:
            manager.collect()
        stats.record_manager(manager, baseline)
        return result

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the strategy's worker pool (idempotent)."""
        self.computer.executor.close()

    def __enter__(self) -> "ImageEngine":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ImageEngine(method={self.method!r}, "
                f"strategy={self.strategy!r}, jobs={self.jobs}, "
                f"direction={self.direction!r})")


def compute_image(qts: QuantumTransitionSystem,
                  subspace: Optional[Subspace] = None,
                  method: str = "basic", gc: bool = True,
                  strategy: str = "monolithic",
                  jobs: Optional[int] = None,
                  slice_depth: int = DEFAULT_SLICE_DEPTH,
                  direction: str = "forward",
                  batched: bool = True,
                  config=None,
                  **params) -> ImageResult:
    """One-shot ``T(S)`` — or preimage ``T^dagger(S)`` — with run stats.

    Engine configuration comes either from a validated
    :class:`repro.mc.config.CheckerConfig` (``config=...``, the
    preferred spelling) or from the individual keyword arguments;
    ``direction="backward"`` computes the preimage (the image under
    the adjoint Kraus family).

    The returned :class:`ImageResult` stats carry wall time, peak TDD
    node count, operation-cache hit/miss counts for this run, sliced
    strategy counters (cofactors executed / shipped to the pool) and —
    after the post-run garbage collection (skipped with ``gc=False``) —
    the peak and surviving live-node populations of the manager.
    """
    with ImageEngine(qts, method, strategy=strategy, jobs=jobs,
                     slice_depth=slice_depth, direction=direction,
                     batched=batched, config=config, **params) as engine:
        return engine.compute_image(subspace, gc=gc)
