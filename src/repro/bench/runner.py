"""Shared benchmark plumbing.

A benchmark run builds a *fresh* QTS (so transition-TDD construction is
included in the measured time, matching the paper's methodology),
computes one image, and reports wall seconds + peak TDD node count —
the two columns of Table I — plus the kernel instrumentation added by
the iterative apply refactor: operation-cache hit rate and the
peak/post-GC live-node population of the manager.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.image.engine import compute_image
from repro.systems.qts import QuantumTransitionSystem


@dataclass
class BenchRow:
    """One (benchmark, method) cell of Table I."""

    benchmark: str
    method: str
    seconds: float
    max_nodes: int
    dimension: int
    timed_out: bool = False
    #: fraction of operation-cache lookups answered from the memo tables
    cache_hit_rate: float = 0.0
    #: high-water mark of the manager's unique table during the run
    peak_live_nodes: int = 0
    #: unique-table population after the post-run garbage collection
    live_nodes: int = 0

    def metric_cells(self):
        """The per-method table columns: time, max#node, hit%, live/peak."""
        if self.timed_out:
            return ("-", "-", "-", "-")
        return (f"{self.seconds:.2f}", str(self.max_nodes),
                self.hit_rate_percent,
                f"{self.live_nodes}/{self.peak_live_nodes}")

    def cells(self):
        return (self.benchmark, self.method) + self.metric_cells()

    @property
    def hit_rate_percent(self) -> str:
        return f"{100 * self.cache_hit_rate:.0f}%"


def run_image_benchmark(builder: Callable[[], QuantumTransitionSystem],
                        label: str, method: str,
                        timeout_seconds: Optional[float] = None,
                        **params) -> BenchRow:
    """Run one image computation and collect the Table I columns.

    ``timeout_seconds`` is a *soft* cap checked after the run (pure
    Python cannot preempt a contraction); callers use generous caps and
    pre-sized workloads instead of relying on it.
    """
    qts = builder()
    result = compute_image(qts, method=method, **params)
    row = BenchRow(benchmark=label, method=method,
                   seconds=result.stats.seconds,
                   max_nodes=result.stats.max_nodes,
                   dimension=result.dimension,
                   cache_hit_rate=result.stats.cache_hit_rate,
                   peak_live_nodes=result.stats.peak_live_nodes,
                   live_nodes=result.stats.live_nodes)
    if timeout_seconds is not None and row.seconds > timeout_seconds:
        row.timed_out = True
    return row
