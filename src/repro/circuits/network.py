"""Circuit → tensor network conversion (TDD or dense backends).

The functions here realise the paper's "quantum circuits are tensor
networks" view (Section II.B, Fig. 2): each gate becomes one tensor
whose legs are wire indices assigned by
:mod:`repro.circuits.wires`, and the circuit's external legs (qubit
inputs ``x_i^0`` and outputs) stay open.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.indices.index import Index
from repro.tdd.manager import TDDManager
from repro.tdd.tdd import TDD
from repro.tdd import construction as tc
from repro.tensor.dense import DenseTensor
from repro.tensor.network import TensorNetwork


def register_circuit_indices(circuit: QuantumCircuit,
                             manager: TDDManager) -> None:
    """Register every wire index of ``circuit``, qubit-major.

    Must be called before building any gate TDD of the circuit so the
    global order is the (qubit, time) order DESIGN.md fixes.
    """
    manager.register_all(circuit.all_wire_indices())


def circuit_to_tdd_network(circuit: QuantumCircuit, manager: TDDManager
                           ) -> Tuple[TensorNetwork, List[Index], List[Index]]:
    """One TDD per gate; open legs are the circuit inputs and outputs."""
    register_circuit_indices(circuit, manager)
    wirings, inputs, outputs = circuit.wirings()
    tensors = [w.gate.to_tdd(manager, w.control_indices, w.target_in,
                             w.target_out)
               for w in wirings]
    if not tensors:
        tensors = [tc.scalar(manager, 1)]
    network = TensorNetwork(tensors, set(inputs) | set(outputs))
    return network, inputs, outputs


def circuit_to_dense_network(circuit: QuantumCircuit
                             ) -> Tuple[TensorNetwork, List[Index],
                                        List[Index]]:
    """Dense twin of :func:`circuit_to_tdd_network` (reference oracle)."""
    import numpy as np

    wirings, inputs, outputs = circuit.wirings()
    tensors = [w.gate.to_dense(w.control_indices, w.target_in, w.target_out)
               for w in wirings]
    if not tensors:
        tensors = [DenseTensor(np.array(1 + 0j), ())]
    network = TensorNetwork(tensors, set(inputs) | set(outputs))
    return network, inputs, outputs


def circuit_to_tdd(circuit: QuantumCircuit, manager: TDDManager,
                   observer=None
                   ) -> Tuple[TDD, List[Index], List[Index]]:
    """Contract the whole circuit into one (monolithic) operator TDD.

    This is what the *basic* image computation algorithm does first; the
    partition schemes exist to avoid it.  ``observer`` (if given) is
    called with every intermediate TDD, letting the caller track the
    peak node count.
    """
    network, inputs, outputs = circuit_to_tdd_network(circuit, manager)
    operator = network.contract_all(observer=observer)
    if not isinstance(operator, TDD):  # pragma: no cover - type guard
        raise TypeError("expected a TDD from the network contraction")
    return operator, inputs, outputs


def circuit_to_dense(circuit: QuantumCircuit
                     ) -> Tuple[DenseTensor, List[Index], List[Index]]:
    """Dense twin of :func:`circuit_to_tdd` (small circuits only)."""
    network, inputs, outputs = circuit_to_dense_network(circuit)
    operator = network.contract_all()
    return operator, inputs, outputs
