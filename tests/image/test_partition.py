"""Circuit block partitioning (Section V.B cut rule)."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import (bitflip_syndrome_circuit, ghz_circuit,
                                    grover_iteration)
from repro.errors import PartitionError
from repro.image.partition import (Block, num_bands, partition_circuit,
                                   partition_summary)


class TestCutRule:
    def test_invalid_parameters(self):
        circuit = ghz_circuit(4)
        with pytest.raises(PartitionError):
            partition_circuit(circuit, 0, 1)
        with pytest.raises(PartitionError):
            partition_circuit(circuit, 1, 0)

    def test_every_gate_in_exactly_one_block(self):
        circuit = grover_iteration(5)
        blocks = partition_circuit(circuit, 2, 2)
        total = sum(len(b) for b in blocks)
        assert total == circuit.num_gates

    def test_wide_k1_single_band(self):
        circuit = ghz_circuit(4)
        blocks = partition_circuit(circuit, 10, 100)
        assert len(blocks) == 1
        assert blocks[0].band == 0

    def test_band_assignment(self):
        circuit = QuantumCircuit(4).h(0).h(3)
        blocks = partition_circuit(circuit, 2, 10)
        bands = sorted(b.band for b in blocks)
        assert bands == [0, 1]

    def test_vertical_cut_after_k2_crossings(self):
        # CX(0,1) with k1=1 crosses bands; k2=1 cuts after every one
        circuit = QuantumCircuit(2).cx(0, 1).cx(0, 1).cx(0, 1)
        blocks = partition_circuit(circuit, 1, 1)
        columns = {b.column for b in blocks}
        assert columns == {0, 1, 2}

    def test_no_cut_when_k2_large(self):
        circuit = QuantumCircuit(2).cx(0, 1).cx(0, 1).cx(0, 1)
        blocks = partition_circuit(circuit, 1, 10)
        assert {b.column for b in blocks} == {0}

    def test_single_qubit_gates_never_cross(self):
        circuit = QuantumCircuit(4)
        for q in range(4):
            circuit.h(q).x(q)
        blocks = partition_circuit(circuit, 2, 1)
        assert {b.column for b in blocks} == {0}

    def test_bitflip_paper_example(self):
        """Paper Section V.B: the Fig. 3 syndrome circuit with
        k1 = 3, k2 = 2 is cut into blocks spanning 2 bands and 3
        columns (the six CX gates all cross the horizontal cut)."""
        circuit = bitflip_syndrome_circuit()
        blocks = partition_circuit(circuit, 3, 2)
        summary = partition_summary(blocks)
        assert summary["columns"] == 3
        bands = {b.band for b in blocks}
        assert bands == {0}  # all CX homes are data qubits (band 0)
        assert sum(len(b) for b in blocks) == 6

    def test_ordering_by_column_then_band(self):
        circuit = grover_iteration(6)
        blocks = partition_circuit(circuit, 2, 2)
        keys = [b.key for b in blocks]
        assert keys == sorted(keys)

    def test_scalar_gate_lands_in_band_zero(self):
        circuit = QuantumCircuit(3).scalar(0.5).h(2)
        blocks = partition_circuit(circuit, 1, 1)
        scalar_blocks = [b for b in blocks
                         if any(w.gate.is_scalar for w in b.wirings)]
        assert scalar_blocks[0].band == 0


class TestHelpers:
    def test_num_bands(self):
        assert num_bands(ghz_circuit(10), 4) == 3
        assert num_bands(ghz_circuit(8), 4) == 2

    def test_summary(self):
        blocks = [Block(0, 0, []), Block(1, 0, []), Block(0, 1, [])]
        summary = partition_summary(blocks)
        assert summary["blocks"] == 3
        assert summary["columns"] == 2
