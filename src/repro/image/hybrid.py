"""Hybrid partition image computation.

The paper presents addition partition and contraction partition as
alternatives, but they compose naturally (both are "partitions of the
transition tensor" in the classical sense of [8]): first slice the
``k`` highest-degree internal indices (addition), then contract each of
the ``2^k`` sliced circuits *blockwise* (contraction) instead of
monolithically.  The image of a state is the sum over slices of the
state-through-blocks contraction.

This is an extension beyond the paper's experiments, benchmarked in
``benchmarks/test_ablation_partition.py``; correctness follows from
the same linearity (Proposition 1) and block-contraction equality used
by the two base schemes, and is differentially tested against them.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.network import (circuit_to_tdd_network,
                                    register_circuit_indices)
from repro.config import (DEFAULT_ADDITION_K, DEFAULT_CONTRACTION_K1,
                          DEFAULT_CONTRACTION_K2)
from repro.image.addition import select_slice_indices
from repro.image.base import ImageComputerBase, rename_outputs_to_kets
from repro.image.contraction import ContractionImageComputer
from repro.image.partition import partition_circuit
from repro.indices.index import Index
from repro.systems.qts import QuantumTransitionSystem
from repro.tdd.tdd import TDD
from repro.tensor.network import TensorNetwork
from repro.utils.stats import StatsRecorder


class HybridImageComputer(ImageComputerBase):
    """Addition slicing over contraction-partitioned blocks."""

    method = "hybrid"

    def __init__(self, qts: QuantumTransitionSystem,
                 k: int = DEFAULT_ADDITION_K,
                 k1: int = DEFAULT_CONTRACTION_K1,
                 k2: int = DEFAULT_CONTRACTION_K2) -> None:
        super().__init__(qts)
        if k < 0:
            raise ValueError("k must be non-negative")
        self.k = k
        self.k1 = k1
        self.k2 = k2
        #: circuit id -> (per-slice block TDD lists, inputs, outputs)
        self._slices: Dict[int, Tuple[List[List[TDD]], List[Index],
                                      List[Index]]] = {}
        self.build_stats = StatsRecorder()

    # ------------------------------------------------------------------
    def slices_for(self, circuit: QuantumCircuit, stats: StatsRecorder
                   ) -> Tuple[List[List[TDD]], List[Index], List[Index]]:
        key = id(circuit)
        if key not in self._slices:
            manager = self.qts.manager
            register_circuit_indices(circuit, manager)
            # pick slice indices from the whole-circuit index graph
            network, inputs, outputs = circuit_to_tdd_network(circuit,
                                                              manager)
            sliced_indices = select_slice_indices(network, self.k)
            blocks = partition_circuit(circuit, self.k1, self.k2)
            boundary = ContractionImageComputer._boundary_indices(
                blocks, inputs, outputs)
            all_parts: List[List[TDD]] = []
            for bits in itertools.product((0, 1),
                                          repeat=len(sliced_indices)):
                assignment = dict(zip(sliced_indices, bits))
                part_tdds: List[TDD] = []
                for block in blocks:
                    tensors = []
                    for wiring in block.wirings:
                        tensor = wiring.gate.to_tdd(
                            manager, wiring.control_indices,
                            wiring.target_in, wiring.target_out)
                        local = {idx: bit
                                 for idx, bit in assignment.items()
                                 if idx in set(tensor.indices)}
                        if local:
                            tensor = tensor.slice(local)
                        tensors.append(tensor)
                    open_set = set()
                    block_boundary = boundary[block.key] - set(assignment)
                    for tensor in tensors:
                        open_set.update(set(tensor.indices)
                                        & block_boundary)
                    block_network = TensorNetwork(tensors, open_set)
                    part_tdds.append(block_network.contract_all(
                        observer=self.build_stats.observe_tdd))
                all_parts.append(part_tdds)
            self._slices[key] = (all_parts, inputs, outputs)
        stats.merge(self.build_stats)
        return self._slices[key]

    # ------------------------------------------------------------------
    def _circuit_images(self, state: TDD, circuit: QuantumCircuit,
                        stats: StatsRecorder) -> Iterator[TDD]:
        all_parts, inputs, outputs = self.slices_for(circuit, stats)
        total = None
        for part_tdds in all_parts:
            network = TensorNetwork([state] + part_tdds, set(outputs))
            contribution = network.contract_all(
                observer=stats.observe_tdd,
                contract_fn=lambda a, b, s: self.executor.contract(
                    a, b, s, stats))
            stats.contractions += len(part_tdds)
            total = (contribution if total is None
                     else total + contribution)
            stats.observe_tdd(total)
        if len(all_parts) > 1:
            stats.additions += len(all_parts) - 1
        yield rename_outputs_to_kets(self.qts.space, total, outputs)
