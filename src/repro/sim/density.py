"""Dense density-matrix evolution and support computation.

A quantum operation is a set of Kraus circuits (paper, Section III.A);
here each circuit is flattened to its full matrix and applied as
``rho' = sum_j E_j rho E_j^dagger``.  ``support_basis`` extracts an
orthonormal basis of ``supp(rho)`` — the subspace the paper's image
semantics is defined through (Definition 1).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.sim.statevector import circuit_unitary


def channel_matrices(kraus_circuits: Sequence[QuantumCircuit]
                     ) -> List[np.ndarray]:
    """The dense Kraus matrices of a list of Kraus circuits."""
    return [circuit_unitary(c) for c in kraus_circuits]


def apply_kraus(rho: np.ndarray,
                kraus: Sequence[np.ndarray]) -> np.ndarray:
    """``sum_j E_j rho E_j^dagger``."""
    out = np.zeros_like(rho)
    for e in kraus:
        out += e @ rho @ e.conj().T
    return out


def density_from_states(states: Sequence[np.ndarray]) -> np.ndarray:
    """The (unnormalised) mixture ``sum_i |v_i><v_i|`` of flat vectors."""
    dim = states[0].reshape(-1).shape[0]
    rho = np.zeros((dim, dim), dtype=complex)
    for state in states:
        v = state.reshape(-1)
        rho += np.outer(v, v.conj())
    return rho


def support_basis(rho: np.ndarray, tol: float = 1e-9) -> np.ndarray:
    """Orthonormal basis (columns) of ``supp(rho)``.

    ``rho`` must be Hermitian positive semi-definite; eigenvectors with
    eigenvalue above ``tol`` span the support.
    """
    values, vectors = np.linalg.eigh(rho)
    keep = values > tol
    return vectors[:, keep]
