"""Documentation sync checks: the README must track the actual CLI.

A snapshot-style test: the subcommands and key flags that
``python -m repro --help`` (and the subparsers) advertise must all be
documented in README.md, so the CLI reference cannot silently drift.
"""

import os
import re

import pytest

from repro.cli import main
from repro.image.engine import METHODS
from repro.image.sliced import STRATEGIES
from repro.mc.backends import BACKENDS
from repro.systems import models

README = os.path.join(os.path.dirname(__file__), os.pardir, "README.md")


@pytest.fixture(scope="module")
def readme() -> str:
    with open(README, "r", encoding="utf-8") as handle:
        return handle.read()


def help_text(capsys, argv) -> str:
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 0
    return capsys.readouterr().out


class TestReadmeExists:
    def test_readme_present(self, readme):
        assert "Image Computation for Quantum Transition Systems" in readme


class TestCliReferenceInSync:
    def test_every_subcommand_documented(self, capsys, readme):
        text = help_text(capsys, ["--help"])
        match = re.search(r"\{([a-z0-9,]+)\}", text)
        assert match, "no subcommand list in --help output"
        subcommands = match.group(1).split(",")
        assert set(subcommands) == {"image", "reach", "check", "invariant",
                                    "crosscheck", "sweep", "cache",
                                    "table1", "table2", "smoke"}
        for name in subcommands:
            assert f"`{name}`" in readme, \
                f"subcommand {name!r} missing from the README CLI reference"

    def test_image_flags_documented(self, capsys, readme):
        text = help_text(capsys, ["image", "--help"])
        for flag in ("--size", "--method", "--backend", "--strategy",
                     "--jobs", "--slice-depth", "--k1", "--k2",
                     "--direction", "--bound"):
            assert flag in text
            assert flag.lstrip("-").replace("-", "") in \
                readme.replace("-", ""), \
                f"flag {flag} missing from README"

    def test_check_flags_documented(self, capsys, readme):
        text = help_text(capsys, ["check", "--help"])
        for flag in ("--spec", "--max-iterations", "--backend",
                     "--strategy", "--direction", "--bound", "--driver"):
            assert flag in text
            assert flag.lstrip("-").replace("-", "") in \
                readme.replace("-", ""), \
                f"flag {flag} missing from README"

    def test_reach_flags_documented(self, capsys, readme):
        text = help_text(capsys, ["reach", "--help"])
        for flag in ("--frontier", "--direction", "--bound", "--driver",
                     "--store"):
            assert flag in text
            assert flag.lstrip("-").replace("-", "") in \
                readme.replace("-", ""), \
                f"flag {flag} missing from README"

    def test_cache_subcommands_documented(self, capsys, readme):
        text = help_text(capsys, ["cache", "--help"])
        for verb in ("ls", "stats", "gc", "export", "import"):
            assert verb in text
            assert f"cache {verb}" in readme, \
                f"'repro cache {verb}' missing from README"
        gc_text = help_text(capsys, ["cache", "gc", "--help"])
        assert "--max-bytes" in gc_text
        assert "--max-bytes" in readme

    def test_sweep_flags_documented(self, capsys, readme):
        text = help_text(capsys, ["sweep", "--help"])
        for flag in ("--spec", "--models", "--sizes", "--methods",
                     "--backends", "--strategies", "--directions",
                     "--bounds", "--drivers", "--check", "--jobs",
                     "--out", "--no-resume", "--no-warm-start"):
            assert flag in text
            assert flag in readme, f"flag {flag} missing from README"

    def test_choices_documented(self, readme):
        from repro.image.engine import DIRECTIONS
        from repro.mc.drivers import DRIVERS
        for method in METHODS:
            assert method in readme
        for strategy in STRATEGIES:
            assert strategy in readme
        for backend in BACKENDS:
            assert backend in readme
        for direction in DIRECTIONS:
            assert direction in readme
        for driver in DRIVERS:
            assert driver in readme

    def test_models_documented(self, readme):
        # every CLI-selectable model appears in the README
        from repro.cli import _MODELS
        for model in _MODELS:
            assert f"`{model}`" in readme, \
                f"model {model!r} missing from README"
        # and the registry backs them all
        assert set(_MODELS) <= set(models.MODEL_BUILDERS)


class TestQuickstartCommands:
    def test_quickstart_commands_parse(self, readme):
        """Every `python -m repro ...` line in the README must at least
        survive argument parsing (run with --help appended where the
        run itself would be slow)."""
        commands = re.findall(r"python -m repro ([^\n\\]*)", readme)
        assert commands, "README quickstart lost its CLI examples"
        import shlex
        from repro.cli import main as cli_main
        for tail in commands:
            argv = shlex.split(tail.strip())
            if not argv or argv[0].startswith("<"):
                continue
            # parse-only probe: swap in --help and expect a clean exit
            with pytest.raises(SystemExit) as excinfo:
                cli_main([argv[0], "--help"])
            assert excinfo.value.code == 0, argv
