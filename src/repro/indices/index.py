"""Named tensor indices.

Every tensor leg in this package is identified by an :class:`Index`.  A
quantum circuit viewed as a tensor network (paper, Fig. 2) labels its
legs ``x_i^j`` — the *j*-th index on qubit *i*.  We keep those
coordinates on the index object so that order policies and the circuit
partitioner can reason about qubit/time locality, but identity (equality
and hashing) is by name alone: two indices with the same name are the
same leg.
"""

from __future__ import annotations

from typing import Optional


class Index:
    """An immutable named tensor index taking values in {0, 1}.

    Parameters
    ----------
    name:
        Globally unique identifier for the leg.
    qubit, time:
        Optional circuit coordinates: ``x_i^j`` has ``qubit=i``,
        ``time=j``.  Purely advisory; identity is by ``name``.
    """

    __slots__ = ("name", "qubit", "time")

    def __init__(self, name: str, qubit: Optional[int] = None,
                 time: Optional[int] = None) -> None:
        if not name:
            raise ValueError("index name must be non-empty")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "qubit", qubit)
        object.__setattr__(self, "time", time)

    def __setattr__(self, *_args) -> None:  # pragma: no cover - guard
        raise AttributeError("Index is immutable")

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Index):
            return self.name == other.name
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.name)

    def __repr__(self) -> str:
        return f"Index({self.name!r})"

    def __str__(self) -> str:
        return self.name


def wire(qubit: int, time: int) -> Index:
    """The circuit wire index ``x_qubit^time`` (paper notation ``x_i^j``).

    >>> wire(2, 0).name
    'x2_0'
    """
    return Index(f"x{qubit}_{time}", qubit=qubit, time=time)
