"""The fixpoint driver layer: schedules, task API, warm-start cache."""

import pytest

from repro.errors import ConfigError, ReproError
from repro.image.engine import ImageEngine
from repro.mc.backends import DenseStatevectorBackend, make_backend
from repro.mc.checker import ModelChecker
from repro.mc.config import CheckerConfig
from repro.mc.drivers import (DEFAULT_DRIVER, DRIVERS, FrontierDriver,
                              OpShardedDriver, SequentialDriver,
                              make_driver, resolve_driver, tree_join)
from repro.mc.reachability import (ReachabilityCache, reachable_space,
                                   subspace_fingerprint,
                                   system_fingerprint)
from repro.systems import models

from tests.helpers import subspace_to_dense

#: the tier-2 model families at driver-test sizes
FAMILIES = [
    ("ghz", lambda: models.ghz_qts(3)),
    ("bv", lambda: models.bv_qts(3)),
    ("grover", lambda: models.grover_qts(3)),
    ("qft", lambda: models.qft_qts(3)),
    ("qrw", lambda: models.qrw_qts(3, 0.2)),
]


def equal_spaces(a, b):
    """Same dimension and mutual containment."""
    return (a.dimension == b.dimension
            and a.contains(b) and b.contains(a))


class TestImageTasks:
    def test_one_task_per_operation(self):
        qts = models.bitflip_qts()
        with ImageEngine(qts, "basic") as engine:
            tasks = list(engine.image_tasks(qts.initial))
        assert [t.symbol for t in tasks] == qts.symbols
        assert all(len(t.circuits) == op.num_kraus
                   for t, op in zip(tasks, qts.operations))

    def test_task_join_equals_monolithic_image(self):
        qts = models.qrw_qts(3, 0.2)
        with ImageEngine(qts, "basic") as engine:
            whole = engine.computer.image(qts.initial).subspace
            partials = [task.run().subspace
                        for task in engine.image_tasks(qts.initial)]
        assert equal_spaces(tree_join(partials), whole)

    def test_backward_tasks_use_adjoint_operations(self):
        qts = models.ghz_qts(3)
        with ImageEngine(qts, "basic", direction="backward") as engine:
            tasks = list(engine.image_tasks(qts.initial))
        assert [t.symbol for t in tasks] == qts.adjoint().symbols

    def test_partial_image_with_all_circuits_is_image(self):
        qts = models.grover_qts(3)
        with ImageEngine(qts, "basic") as engine:
            full = engine.computer.image(qts.initial).subspace
            partial = engine.computer.partial_image(
                qts.initial, qts.all_kraus_circuits()).subspace
        assert equal_spaces(full, partial)


class TestTreeJoin:
    def test_single_item(self):
        qts = models.ghz_qts(2)
        assert tree_join([qts.initial]) is qts.initial

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            tree_join([])

    def test_matches_sequential_fold(self):
        qts = models.qrw_qts(3, 0.2)
        spans = [qts.space.span([v]) for v in
                 reachable_space(qts, method="basic").subspace.basis]
        folded = spans[0]
        for span in spans[1:]:
            folded = folded.join(span)
        assert equal_spaces(tree_join(spans), folded)


class TestDriverRegistry:
    def test_names(self):
        assert DRIVERS == ("sequential", "opsharded", "frontier")
        assert DEFAULT_DRIVER == "sequential"

    @pytest.mark.parametrize("name,cls", [
        ("sequential", SequentialDriver),
        ("opsharded", OpShardedDriver),
        ("frontier", FrontierDriver),
    ])
    def test_make_driver(self, name, cls):
        driver = make_driver(name)
        assert isinstance(driver, cls)
        assert driver.name == name

    def test_unknown_driver_rejected(self):
        with pytest.raises(ReproError, match="unknown driver"):
            make_driver("nonsense")

    def test_config_validates_driver(self):
        with pytest.raises(ConfigError, match="unknown driver"):
            CheckerConfig(driver="nonsense")

    def test_config_driver_round_trip(self):
        config = CheckerConfig(driver="opsharded")
        assert CheckerConfig.from_json(config.to_json()) == config
        assert "driver=opsharded" in config.describe()
        assert "driver" not in CheckerConfig().describe()

    def test_dense_config_accepts_driver(self):
        config = CheckerConfig(backend="dense", driver="frontier")
        assert config.driver == "frontier"

    def test_frontier_flag_resolves(self):
        assert resolve_driver(None, True) == "frontier"
        assert resolve_driver(None, False) == "sequential"
        assert resolve_driver("sequential", True) == "frontier"
        assert resolve_driver("opsharded", False) == "opsharded"

    def test_frontier_flag_contradiction_rejected(self):
        with pytest.raises(ReproError, match="frontier"):
            resolve_driver("opsharded", True)

    def test_reachable_space_rejects_contradiction(self):
        with pytest.raises(ReproError, match="frontier"):
            reachable_space(models.ghz_qts(2), method="basic",
                            frontier=True, driver="opsharded")


class TestDriverEquality:
    @pytest.mark.parametrize("family,builder", FAMILIES)
    def test_opsharded_matches_sequential(self, family, builder):
        qts = builder()
        seq = reachable_space(qts, method="basic")
        shard = reachable_space(qts, method="basic", driver="opsharded")
        assert shard.dimensions == seq.dimensions
        assert equal_spaces(shard.subspace, seq.subspace)
        assert subspace_to_dense(shard.subspace).equals(
            subspace_to_dense(seq.subspace))

    @pytest.mark.parametrize("driver", DRIVERS)
    def test_drivers_agree_backward(self, driver):
        qts = models.qrw_qts(3, 0.2)

        def run(name):
            return reachable_space(qts, method="basic",
                                   initial=qts.named_subspace("start"),
                                   direction="backward", driver=name)
        base = run("sequential")
        trace = run(driver)
        assert trace.dimensions == base.dimensions
        assert equal_spaces(trace.subspace, base.subspace)

    def test_frontier_driver_equals_frontier_flag(self):
        qts = models.qrw_qts(3, 0.2)
        flag = reachable_space(qts, method="basic", frontier=True)
        driver = reachable_space(qts, method="basic", driver="frontier")
        assert driver.dimensions == flag.dimensions
        assert driver.stats.contractions == flag.stats.contractions
        assert equal_spaces(driver.subspace, flag.subspace)

    def test_opsharded_with_sliced_strategy_shares_executor(self):
        qts = models.qrw_qts(3, 0.2)
        seq = reachable_space(qts, method="basic")
        shard = reachable_space(qts, method="basic",
                                driver="opsharded", strategy="sliced")
        assert equal_spaces(shard.subspace, seq.subspace)
        assert shard.stats.slices > 0          # the one shared executor
        assert shard.stats.extra["shards"] > 0

    def test_opsharded_records_driver_extra(self):
        trace = reachable_space(models.ghz_qts(3), method="basic",
                                driver="opsharded")
        assert trace.stats.extra["driver"] == "opsharded"

    @pytest.mark.parametrize("driver", DRIVERS)
    def test_dense_backend_honours_driver(self, driver):
        symbolic = reachable_space(models.qrw_qts(3, 0.2), method="basic")
        dense = DenseStatevectorBackend().reachable(
            models.qrw_qts(3, 0.2), driver=driver)
        assert dense.dimensions == symbolic.dimensions
        assert subspace_to_dense(dense.subspace).equals(
            subspace_to_dense(symbolic.subspace))

    def test_checker_config_driver_same_verdict(self):
        for driver in DRIVERS:
            config = CheckerConfig(method="basic", driver=driver)
            result = ModelChecker(models.grover_qts(3), config).check(
                "AG inv")
            assert result.holds
            assert result.reachable_dimension == 2

    def test_make_backend_dense_picks_up_driver(self):
        backend = make_backend(CheckerConfig(backend="dense",
                                             driver="opsharded"))
        assert backend.driver == "opsharded"

    @pytest.mark.parametrize("driver", DRIVERS)
    def test_witness_traces_work_under_every_driver(self, driver):
        config = CheckerConfig(method="basic", driver=driver)
        result = ModelChecker(models.grover_qts(3), config).check(
            "AG plus")
        assert not result.holds
        assert result.witness_trace is not None
        assert result.witness_trace.valid
        assert result.witness_trace.length >= 1


class TestDirectionValidationSinglePoint:
    def test_engine_rejects_unknown_direction(self):
        with pytest.raises(ReproError, match="unknown direction"):
            ImageEngine(models.ghz_qts(2), "basic", direction="sideways")

    def test_reachable_space_propagates_engine_error(self):
        with pytest.raises(ReproError, match="unknown direction"):
            reachable_space(models.ghz_qts(2), method="basic",
                            direction="sideways")

    def test_dense_backend_same_message(self):
        with pytest.raises(ReproError, match="unknown direction"):
            DenseStatevectorBackend().reachable(models.ghz_qts(2),
                                                direction="sideways")


class TestReachabilityTraceRepr:
    def test_repr_fields(self):
        trace = reachable_space(models.qrw_qts(3, 0.2), method="basic")
        text = repr(trace)
        assert f"dim={trace.dimension}" in text
        assert f"iterations={trace.iterations}" in text
        assert "converged=True" in text
        assert "direction='forward'" in text

    def test_dimensions_delta(self):
        trace = reachable_space(models.qrw_qts(3, 0.2), method="basic")
        assert len(trace.dimensions_delta) == trace.iterations
        assert all(delta >= 0 for delta in trace.dimensions_delta)
        assert trace.dimensions[0] + sum(trace.dimensions_delta) == \
            trace.dimension


class TestReachabilityCache:
    def test_system_fingerprint_stable_across_rebuilds(self):
        assert system_fingerprint(models.grover_qts(3)) == \
            system_fingerprint(models.grover_qts(3))
        assert system_fingerprint(models.grover_qts(3)) != \
            system_fingerprint(models.grover_qts(4))

    def test_subspace_fingerprint_tracks_content(self):
        qts = models.ghz_qts(3)
        other = models.ghz_qts(3)
        assert subspace_fingerprint(qts.initial) == \
            subspace_fingerprint(other.initial)
        other.set_initial_basis_states([[1, 1, 1]])
        assert subspace_fingerprint(qts.initial) != \
            subspace_fingerprint(other.initial)

    def test_store_and_lookup_across_managers(self):
        cache = ReachabilityCache()
        first = models.qrw_qts(3, 0.2)
        trace = reachable_space(first, method="basic")
        cache.store(first, first.initial, "forward", 0, trace)
        rebuilt = models.qrw_qts(3, 0.2)
        warm = cache.lookup(rebuilt, rebuilt.initial)
        assert warm is not None
        assert warm.space is rebuilt.space
        assert subspace_to_dense(warm).equals(
            subspace_to_dense(trace.subspace))

    def test_lookup_misses_on_different_key(self):
        cache = ReachabilityCache()
        qts = models.qrw_qts(3, 0.2)
        trace = reachable_space(qts, method="basic")
        cache.store(qts, qts.initial, "forward", 0, trace)
        assert cache.lookup(qts, qts.initial, direction="backward") is None
        assert cache.lookup(qts, qts.initial, bound=2) is None
        assert cache.lookup(models.ghz_qts(3),
                            models.ghz_qts(3).initial) is None

    def test_bounded_and_unconverged_runs_not_stored(self):
        cache = ReachabilityCache()
        qts = models.qrw_qts(3, 0.2)
        bounded = reachable_space(qts, method="basic", bound=1)
        cache.store(qts, qts.initial, "forward", 1, bounded)
        truncated = reachable_space(qts, method="basic", max_iterations=1)
        cache.store(qts, qts.initial, "forward", 0, truncated)
        assert len(cache) == 0

    def test_warm_start_collapses_iterations(self):
        cold = reachable_space(models.qrw_qts(3, 0.2), method="basic")
        assert cold.iterations > 1
        qts = models.qrw_qts(3, 0.2)
        cache = ReachabilityCache()
        cache.store(qts, qts.initial, "forward", 0, cold)
        warm_space = cache.lookup(qts, qts.initial)
        warm = reachable_space(qts, method="contraction", k1=2, k2=2,
                               warm_start=warm_space)
        assert warm.iterations == 1
        assert warm.converged
        assert warm.dimension == cold.dimension
        assert subspace_to_dense(warm.subspace).equals(
            subspace_to_dense(cold.subspace))

    def test_check_with_cache_marks_warm_rows(self):
        cache = ReachabilityCache()
        cold = ModelChecker(models.grover_qts(3),
                            CheckerConfig(method="basic")).check(
            "AG inv", reach_cache=cache)
        warm = ModelChecker(models.grover_qts(3),
                            CheckerConfig(method="contraction",
                                          method_params={"k1": 2,
                                                         "k2": 2})).check(
            "AG inv", reach_cache=cache)
        assert cold.stats.extra["cache_warm"] is False
        assert warm.stats.extra["cache_warm"] is True
        assert warm.holds == cold.holds
        assert warm.reachable_dimension == cold.reachable_dimension

    def test_backward_check_warm_start(self):
        cache = ReachabilityCache()
        config = CheckerConfig(method="basic", direction="backward")
        cold = ModelChecker(models.grover_qts(3), config).check(
            "AG plus", reach_cache=cache)
        warm = ModelChecker(
            models.grover_qts(3),
            CheckerConfig(method="contraction",
                          method_params={"k1": 2, "k2": 2},
                          direction="backward")).check(
            "AG plus", reach_cache=cache)
        assert cold.stats.extra["cache_warm"] is False
        assert warm.stats.extra["cache_warm"] is True
        assert warm.verdict == cold.verdict

    def test_bounded_specs_bypass_the_cache(self):
        cache = ReachabilityCache()
        config = CheckerConfig(method="basic")
        ModelChecker(models.qrw_qts(3, 0.2), config).check(
            "EF[<=2] start", reach_cache=cache)
        assert len(cache) == 0

    def test_bounded_trace_cannot_launder_into_unbounded_key(self):
        # regression: store() used to trust the caller's ``bound``
        # argument alone, so a depth-limited trace handed over with
        # bound=0 landed under the unbounded key — and later seeded
        # unbounded fixpoints with a non-closed subspace.  The guard
        # must judge the *trace* (trace.bound), not the caller.
        cache = ReachabilityCache()
        qts = models.qrw_qts(3, 0.2)
        bounded = reachable_space(qts, method="basic", bound=1)
        assert bounded.bound == 1
        cache.store(qts, qts.initial, "forward", 0, bounded)
        assert len(cache) == 0
        assert cache.lookup(qts, qts.initial) is None

    def test_bounded_query_never_consumes_unbounded_entry(self):
        # the bound is part of the key: a depth-limited query must not
        # be served the saturated reachable space (it would overshoot)
        cache = ReachabilityCache()
        qts = models.qrw_qts(3, 0.2)
        trace = reachable_space(qts, method="basic")
        cache.store(qts, qts.initial, "forward", 0, trace)
        assert len(cache) == 1
        assert cache.lookup(qts, qts.initial, bound=1) is None
        assert cache.lookup(qts, qts.initial, bound=0) is not None

    def test_bounded_check_neither_pollutes_nor_consumes(self):
        # end-to-end over check(): an AG[<=k] run against a cache that
        # already holds the unbounded entry must not touch it at all
        cache = ReachabilityCache()
        config = CheckerConfig(method="basic")
        ModelChecker(models.qrw_qts(3, 0.2), config).check(
            "AG start", reach_cache=cache)
        assert len(cache) == 1
        hits_before = cache.hits
        bounded = ModelChecker(models.qrw_qts(3, 0.2), config).check(
            "AG[<=1] start", reach_cache=cache)
        assert "cache_warm" not in bounded.stats.extra
        assert len(cache) == 1
        assert cache.hits == hits_before

    def test_warm_rows_attribute_their_source(self):
        assert ReachabilityCache.source == "memory"
        cache = ReachabilityCache()
        config = CheckerConfig(method="basic")
        cold = ModelChecker(models.grover_qts(3), config).check(
            "AG inv", reach_cache=cache)
        warm = ModelChecker(models.grover_qts(3), config).check(
            "AG inv", reach_cache=cache)
        assert "cache_source" not in cold.stats.extra
        assert warm.stats.extra["cache_source"] == "memory"
