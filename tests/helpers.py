"""Shared test helpers: spaces, oracles, random tensors."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.indices.index import Index
from repro.indices.order import IndexOrder
from repro.sim.subspace_dense import DenseSubspace
from repro.subspace.subspace import StateSpace, Subspace
from repro.systems.qts import QuantumTransitionSystem
from repro.tdd.manager import TDDManager


def fresh_manager(index_names: Sequence[str] = ()) -> TDDManager:
    """A manager with the given indices pre-registered in list order."""
    return TDDManager(IndexOrder([Index(n) for n in index_names]))


def make_space(num_qubits: int) -> StateSpace:
    """A state space with interleaved ket/bra registration."""
    manager = TDDManager()
    space = StateSpace(manager, num_qubits)
    for ket, bra in zip(space.kets, space.bras):
        manager.register(ket)
        manager.register(bra)
    return space


def random_tensor(rng: np.random.Generator, rank: int,
                  complex_valued: bool = True) -> np.ndarray:
    shape = (2,) * rank
    arr = rng.normal(size=shape)
    if complex_valued:
        arr = arr + 1j * rng.normal(size=shape)
    return arr


def dense_image_oracle(qts: QuantumTransitionSystem,
                       subspace: Subspace = None) -> DenseSubspace:
    """The image computed entirely with dense linear algebra."""
    if subspace is None:
        subspace = qts.initial
    kraus = []
    for op in qts.operations:
        kraus.extend(op.kraus_matrices())
    vectors = [v.to_numpy().reshape(-1) for v in subspace.basis]
    dense = DenseSubspace.from_vectors(vectors, 2 ** qts.num_qubits)
    return dense.image(kraus)


def subspace_to_dense(subspace: Subspace) -> DenseSubspace:
    dim = 2 ** subspace.space.num_qubits
    vectors = [v.to_numpy().reshape(-1) for v in subspace.basis]
    return DenseSubspace.from_vectors(vectors, dim)


def assert_subspace_matches_dense(subspace: Subspace,
                                  expected: DenseSubspace) -> None:
    got = subspace_to_dense(subspace)
    assert got.dimension == expected.dimension, (
        f"dimension {got.dimension} != expected {expected.dimension}")
    assert got.equals(expected), "projectors differ"


PLUS = np.array([1, 1], dtype=complex) / np.sqrt(2)
MINUS = np.array([1, -1], dtype=complex) / np.sqrt(2)
ZERO = np.array([1, 0], dtype=complex)
ONE = np.array([0, 1], dtype=complex)
