"""The :class:`ModelChecker` facade and the uniform :class:`CheckResult`.

A checker bundles a QTS with one validated
:class:`~repro.mc.config.CheckerConfig` — the single source of truth
for engine configuration (backend, image method, execution strategy,
worker pool, per-method parameters) — and exposes **one verb for every
specification**: :meth:`ModelChecker.check` takes a temporal spec
(text like ``"AG (inv & ~bad)"`` or an AST from
:mod:`repro.mc.logic`) and returns a :class:`CheckResult` carrying the
verdict, the violating/witness subspace and its dimension, the
reachability trace, the kernel cost profile and the config echo — the
same shape on the symbolic TDD backend and the dense statevector
reference.

The older fine-grained checks (:meth:`image`, :meth:`reachable`,
:meth:`check_invariant`, :meth:`check_safety`,
:meth:`cross_validate`) remain and are implemented on the same
machinery.  The legacy keyword constructor
(``ModelChecker(qts, method=..., k1=..., backend=...)``) still works
but emits a :class:`DeprecationWarning` — pass a ``CheckerConfig``
instead::

    config = CheckerConfig(method="contraction",
                           method_params={"k1": 4, "k2": 4})
    result = ModelChecker(qts, config).check("AG inv")
    assert result.holds

See ``examples/quickstart.py`` and ``examples/reachability_grover.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.config import CHECK_EPS
from repro.errors import SpecError
from repro.image.base import ImageResult
from repro.mc.backends import CrossValidation, cross_validate, make_backend
from repro.mc.config import CheckerConfig, coerce_config
from repro.mc.invariants import invariant_holds
from repro.mc.logic import Always, Atomic, Proposition, TemporalSpec
from repro.mc.reachability import ReachabilityCache, ReachabilityTrace
from repro.mc.witness import WitnessTrace, extract_witness_trace
from repro.subspace.subspace import Subspace
from repro.systems.qts import QuantumTransitionSystem
from repro.utils.stats import StatsRecorder


@dataclass
class CheckResult:
    """The uniform outcome of :meth:`ModelChecker.check`.

    One shape for every spec kind and every backend:

    * ``holds`` / ``verdict`` — the boolean verdict and its string form;
    * ``witness`` — for a violated ``AG`` spec, the span of the
      reachable directions that escape the property; for a satisfied
      ``EF`` spec, the span of the reachable components inside the
      target (``None`` when there is nothing to show); on a backward
      check, the span of the *initial* directions that can reach the
      event;
    * ``witness_trace`` — the executable counterexample for a violated
      ``AG`` / satisfied ``EF``: a path of operation symbols and
      intermediate subspaces, validated by forward replay (see
      :mod:`repro.mc.witness`);
    * ``dimensions`` / ``iterations`` / ``converged`` — the
      reachability trace behind a temporal verdict (the backward trace
      when ``direction="backward"``);
    * ``direction`` / ``bound`` — the analysis orientation and the
      effective step bound (0 = unbounded; a spec-level ``AG[<=k]``
      bound wins over the config's);
    * ``stats`` — the kernel cost profile (wall time, peak nodes,
      cache hit/miss, GC, sliced-strategy counters);
    * ``config`` — the exact engine configuration that produced this
      result, echoed back for artifacts and reproducibility.
    """

    spec: str
    kind: str                       # "AG" | "EF" | "now"
    holds: bool
    model: str
    config: CheckerConfig
    reachable_dimension: int = 0
    dimensions: List[int] = field(default_factory=list)
    iterations: int = 0
    converged: bool = True
    witness: Optional[Subspace] = None
    witness_trace: Optional[WitnessTrace] = None
    direction: str = "forward"
    bound: int = 0
    stats: StatsRecorder = field(default_factory=StatsRecorder)

    @property
    def verdict(self) -> str:
        return "holds" if self.holds else "violated"

    @property
    def witness_dimension(self) -> int:
        return self.witness.dimension if self.witness is not None else 0

    @property
    def trace_length(self) -> int:
        return (self.witness_trace.length
                if self.witness_trace is not None else 0)

    @property
    def seconds(self) -> float:
        return self.stats.seconds

    def as_dict(self) -> dict:
        """A flat JSON-able summary (sweep artifacts, CSV rows)."""
        out = {"spec": self.spec, "kind": self.kind,
               "verdict": self.verdict, "holds": self.holds,
               "model": self.model,
               "reachable_dimension": self.reachable_dimension,
               "witness_dimension": self.witness_dimension,
               "iterations": self.iterations,
               "converged": self.converged,
               "direction": self.direction,
               "bound": self.bound,
               "config": self.config.as_dict()}
        if self.witness_trace is not None:
            out.update(self.witness_trace.as_dict())
        else:
            out.update({"trace_length": 0, "trace_symbols": "",
                        "trace_valid": False, "trace_dimensions": []})
        out.update(self.stats.as_dict())
        return out

    def __repr__(self) -> str:
        return (f"CheckResult({self.spec!r}: {self.verdict}, "
                f"reachable dim={self.reachable_dimension}, "
                f"witness dim={self.witness_dimension})")


class ModelChecker:
    """Model checking driver for one quantum transition system."""

    def __init__(self, qts: QuantumTransitionSystem,
                 config: Union[CheckerConfig, str, None] = None,
                 **legacy) -> None:
        if isinstance(config, str):
            # the pre-config positional spelling ModelChecker(qts, "basic")
            legacy.setdefault("method", config)
            config = None
        self.qts = qts
        self.config = coerce_config(config, legacy, owner="ModelChecker")
        self.backend = make_backend(self.config)

    # legacy attribute echoes -----------------------------------------
    @property
    def method(self) -> str:
        return self.config.method

    @property
    def strategy(self) -> str:
        return self.config.strategy

    @property
    def jobs(self) -> Optional[int]:
        return self.config.jobs

    @property
    def params(self) -> dict:
        return dict(self.config.method_params)

    # ------------------------------------------------------------------
    def image(self, subspace: Optional[Subspace] = None,
              direction: Optional[str] = None) -> ImageResult:
        """One-step image ``T(S)`` — or preimage — with run statistics."""
        return self.backend.compute_image(
            self.qts, subspace,
            direction=direction if direction is not None
            else self.config.direction)

    def reachable(self, max_iterations: int = 0,
                  frontier: bool = False,
                  direction: Optional[str] = None,
                  bound: Optional[int] = None,
                  driver: Optional[str] = None,
                  warm_start: Optional[Subspace] = None
                  ) -> ReachabilityTrace:
        """The reachable subspace from the initial space.

        ``direction``/``bound``/``driver`` default to the checker's
        config: ``backward`` computes the space of states that can
        *reach* ``S0`` (the preimage fixpoint), a positive ``bound``
        stops after that many image steps, and ``driver`` picks the
        fixpoint schedule (:mod:`repro.mc.drivers`).  ``warm_start``
        seeds the fixpoint with a subspace known to be reachable.
        """
        return self.backend.reachable(
            self.qts, max_iterations=max_iterations, frontier=frontier,
            direction=direction if direction is not None
            else self.config.direction,
            bound=bound if bound is not None else self.config.bound,
            driver=driver if driver is not None else self.config.driver,
            warm_start=warm_start)

    def cross_validate(self, subspace: Optional[Subspace] = None,
                       tol: float = 1e-7, spec=None) -> CrossValidation:
        """Compare this checker's computation against the dense reference.

        Without ``spec``: one image per backend; with ``spec``: one
        full :meth:`check` per backend (verdicts must agree).
        """
        if self.config.backend == "tdd":
            tdd_config = self.config
        else:
            tdd_config = CheckerConfig()
        return cross_validate(self.qts, subspace, tol=tol, spec=spec,
                              config=tdd_config,
                              max_qubits=self.config.max_qubits or None)

    # ------------------------------------------------------------------
    # the unified specification check
    # ------------------------------------------------------------------
    def check(self, spec, initial: Optional[Subspace] = None,
              max_iterations: int = 0, frontier: bool = False,
              tol: float = CHECK_EPS,
              direction: Optional[str] = None,
              bound: Optional[int] = None,
              witness_trace: bool = True,
              reach_cache: Optional[ReachabilityCache] = None
              ) -> CheckResult:
        """Check a temporal specification; one verb, one result shape.

        ``spec`` is a spec string (``"AG inv"``, ``"EF[<=3] target"``,
        ``"AG (inv & ~bad)"`` — parsed by
        :func:`repro.mc.specs.parse_spec`) or an AST from
        :mod:`repro.mc.logic`.  Named atoms resolve against the
        subspaces the model registered (plus ``init``).  Semantics:

        * ``AG φ`` — the reachable space from ``initial`` (default
          ``S0``) is contained in ``[[φ]]``; on violation the result
          carries the escaping directions as ``witness`` and an
          executable counterexample as ``witness_trace``;
        * ``EF φ`` — some reachable direction has a component in
          ``[[φ]]`` (above ``tol``); when it holds the overlap
          components are the ``witness`` and the path reaching them
          the ``witness_trace``;
        * a bare proposition — ``initial`` (default ``S0``) is
          contained in ``[[φ]]`` *now*, no reachability involved.

        ``direction``/``bound`` default to the checker's config.  With
        ``direction="backward"`` the temporal checks run as *backward*
        reachability: the fixpoint starts from the event set
        (``[[φ]]^perp`` for ``AG``, ``[[φ]]`` for ``EF``) under the
        adjoint transition relation, and the verdict is decided by
        whether that backward-reachable space meets the initial one —
        equivalent to the forward verdict, and often cheaper when the
        event set is small.  A positive ``bound`` (or a spec-level
        ``AG[<=k]``/``EF[<=k]`` bound, which wins) limits the fixpoint
        to ``k`` image steps in either direction.

        Runs on whichever backend this checker is configured for; the
        verdicts — and the witness traces, which are built on the
        shared subspace machinery — are backend-independent by
        construction.  ``witness_trace=False`` skips counterexample
        extraction.

        ``reach_cache`` (an in-memory
        :class:`~repro.mc.reachability.ReachabilityCache` or a
        disk-backed :class:`~repro.store.ResultStore` — both speak the
        same ``lookup``/``store`` protocol) warm-starts
        the reachability fixpoint behind an unbounded temporal check:
        on an exact key hit — same transition relation, same fixpoint
        seed, same direction — the cached reachable space seeds the
        iteration, which then collapses to one confirming round; a
        miss stores the converged result for later runs.  The sweep
        runner uses this to share reachability across configurations
        that differ only in image method or execution strategy; a hit
        is recorded as ``stats.extra["cache_warm"]``.
        """
        from repro.mc.specs import parse_spec, resolve, to_text
        if isinstance(spec, str):
            spec = parse_spec(spec)
        elif not isinstance(spec, (Proposition, TemporalSpec)):
            raise SpecError(f"check() takes a spec string or AST, "
                            f"got {type(spec).__name__}")
        spec = resolve(spec, self.qts)
        text = to_text(spec)
        space = self.qts.space
        direction = (direction if direction is not None
                     else self.config.direction)

        if isinstance(spec, TemporalSpec):
            if spec.bound is not None:
                effective_bound = spec.bound
            elif bound is not None:
                effective_bound = bound
            else:
                effective_bound = self.config.bound
            target = spec.inner.denote(space)
            kind = spec.keyword
            start = initial if initial is not None else self.qts.initial
            if direction == "backward":
                trace, holds, witness = self._check_backward(
                    spec, target, start, max_iterations, frontier,
                    effective_bound, tol, reach_cache)
            else:
                trace = self._reachable_with_cache(
                    start, initial, max_iterations, frontier,
                    "forward", effective_bound, reach_cache)
                reached = trace.subspace
                if isinstance(spec, Always):
                    holds = target.contains(reached, tol)
                    witness = None if holds else _escaping_directions(
                        reached, target, tol)
                else:
                    # verdict and witness from the same criterion: some
                    # reachable basis vector has a component in the
                    # target above tol
                    witness = _overlap_witness(reached, target, tol)
                    holds = witness is not None
            trace_obj = None
            needs_trace = (kind == Always.keyword) != holds
            if witness_trace and needs_trace:
                trace_obj = extract_witness_trace(
                    self.qts, kind, target, initial=start, tol=tol,
                    bound=effective_bound)
            return CheckResult(
                spec=text, kind=kind, holds=holds,
                model=self.qts.name, config=self.config,
                reachable_dimension=trace.subspace.dimension,
                dimensions=list(trace.dimensions),
                iterations=trace.iterations,
                converged=trace.converged,
                witness=witness, witness_trace=trace_obj,
                direction=direction, bound=effective_bound,
                stats=trace.stats)

        # a bare proposition: satisfaction of the initial space, now
        target = spec.denote(space)
        start = initial if initial is not None else self.qts.initial
        holds = target.contains(start, tol)
        witness = None if holds else _escaping_directions(start, target, tol)
        return CheckResult(
            spec=text, kind="now", holds=holds,
            model=self.qts.name, config=self.config,
            reachable_dimension=start.dimension,
            dimensions=[start.dimension],
            witness=witness, direction=direction)

    def _reachable_with_cache(self, seed: Subspace,
                              initial: Optional[Subspace],
                              max_iterations: int, frontier: bool,
                              direction: str, bound: int,
                              reach_cache) -> ReachabilityTrace:
        """The fixpoint behind a temporal check, warm-started if possible.

        ``seed`` is the subspace the fixpoint actually starts from
        (``initial``-or-``S0`` forward, the event set backward) — the
        cache key.  Only unbounded, untruncated fixpoints are cached:
        a bounded reachable set is not closed, so seeding another
        bounded run with it would overshoot.
        """
        cacheable = (reach_cache is not None and bound == 0
                     and max_iterations == 0)
        warm = (reach_cache.lookup(self.qts, seed, direction, 0)
                if cacheable else None)
        trace = self.backend.reachable(
            self.qts, initial=initial, max_iterations=max_iterations,
            frontier=frontier, direction=direction, bound=bound,
            warm_start=warm)
        if cacheable:
            trace.stats.extra["cache_warm"] = warm is not None
            if warm is not None:
                # "memory" (ReachabilityCache) or "disk" (ResultStore) —
                # the sweep runner's store_hit column keys on this
                trace.stats.extra["cache_source"] = getattr(
                    reach_cache, "source", "memory")
            else:
                reach_cache.store(self.qts, seed, direction, 0, trace)
        return trace

    def _check_backward(self, spec: TemporalSpec, target: Subspace,
                        start: Subspace, max_iterations: int,
                        frontier: bool, bound: int, tol: float,
                        reach_cache=None):
        """Temporal verdict by backward (preimage) reachability.

        The event set is ``[[φ]]^perp`` for ``AG`` (a state escapes φ
        iff it has a component in the orthocomplement) and ``[[φ]]``
        for ``EF``; the verdict is decided by whether the backward-
        reachable space from the event set — under the adjoint Kraus
        family — meets the initial space (``<v|E u> = <E^dagger v|u>``
        makes the two formulations equivalent).  The witness is the
        span of the initial directions that can reach the event.
        """
        event = (target.complement() if isinstance(spec, Always)
                 else target)
        if event.dimension == 0:
            # AG of the full space holds, EF of the zero space fails —
            # with nothing to walk back from
            trace = ReachabilityTrace(subspace=event, dimensions=[0],
                                      direction="backward", bound=bound)
            trace.stats.extra["direction"] = "backward"
            return trace, isinstance(spec, Always), None
        trace = self._reachable_with_cache(
            event, event, max_iterations, frontier, "backward", bound,
            reach_cache)
        witness = _overlap_witness(trace.subspace, start, tol)
        overlaps = witness is not None
        holds = not overlaps if isinstance(spec, Always) else overlaps
        return trace, holds, witness

    # ------------------------------------------------------------------
    # subspace-level checks, reimplemented on top of check()
    # ------------------------------------------------------------------
    def check_invariant(self, subspace: Optional[Subspace] = None,
                        strict: bool = False) -> bool:
        """Does the system stay inside ``S`` (``T(S) <= S``)?

        Equivalent to checking ``AG S`` from initial space ``S``, and
        one fixpoint round decides it (``S v T(S) <= S`` iff
        ``T(S) <= S``), so this costs a single image computation like
        the direct comparison did.  ``strict`` requires ``T(S) = S``;
        equality needs the image itself, so that path compares one
        image directly (same single-image cost).
        """
        if subspace is None:
            subspace = self.qts.initial
        if strict:
            # invariance is a forward-image notion by definition, so a
            # backward-configured checker must not substitute the
            # preimage here
            image = self.backend.compute_image(
                self.qts, subspace, direction="forward").subspace
            return invariant_holds(image, subspace, strict)
        return self.check(Always(Atomic(subspace, "S")), initial=subspace,
                          max_iterations=1, direction="forward").holds

    def check_image_equals(self, expected: Subspace,
                           subspace: Optional[Subspace] = None) -> bool:
        image = self.backend.compute_image(
            self.qts, subspace, direction="forward").subspace
        return image.equals(expected)

    def check_safety(self, bound: Subspace,
                     max_iterations: int = 0) -> bool:
        """Is every reachable state inside ``bound``?  (``AG bound``)"""
        return self.check(Always(Atomic(bound, "bound")),
                          max_iterations=max_iterations).holds

    def __repr__(self) -> str:
        return (f"ModelChecker({self.qts.name!r}, method={self.method!r}, "
                f"backend={self.backend.name!r})")


# ----------------------------------------------------------------------
# witness construction
# ----------------------------------------------------------------------
def _witness_span(reached: Subspace, target: Subspace, tol: float,
                  inside: bool) -> Optional[Subspace]:
    """The span of each reached basis vector's component w.r.t. target.

    ``inside=True`` keeps the projections onto the target (the overlap
    witness of a satisfied ``EF``); ``inside=False`` keeps the
    residuals outside it (the escaping directions of a violated
    ``AG``).  Components with norm below ``tol`` are noise and are
    dropped; ``None`` means nothing survived.
    """
    components = []
    for vector in reached.basis:
        projected = target.project_state(vector)
        component = projected if inside else vector - projected
        norm = component.norm()
        if norm > tol:
            components.append(component.scaled(1.0 / norm))
    if not components:
        return None
    return reached.space.span(components)


def _escaping_directions(reached: Subspace, target: Subspace,
                         tol: float) -> Optional[Subspace]:
    return _witness_span(reached, target, tol, inside=False)


def _overlap_witness(reached: Subspace, target: Subspace,
                     tol: float) -> Optional[Subspace]:
    return _witness_span(reached, target, tol, inside=True)
