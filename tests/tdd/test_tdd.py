"""The TDD wrapper: values, size, norms, renaming, comparisons."""

import numpy as np
import pytest

from repro.errors import TDDError
from repro.indices.index import Index
from repro.tdd import construction as tc

from tests.helpers import fresh_manager, random_tensor

NAMES = ["a0", "a1", "a2", "b0", "b1", "b2"]


@pytest.fixture
def manager():
    return fresh_manager(NAMES)


def idx(*names):
    return [Index(n) for n in names]


class TestValue:
    def test_value_matches_numpy(self, manager, rng):
        arr = random_tensor(rng, 3)
        t = tc.from_numpy(manager, arr, idx("a0", "a1", "a2"))
        for a in range(2):
            for b in range(2):
                for c in range(2):
                    got = t.value({"a0": a, "a1": b, "a2": c})
                    assert np.isclose(got, arr[a, b, c])

    def test_value_accepts_string_keys(self, manager):
        t = tc.basis_state(manager, idx("a0"), [1])
        assert t.value({"a0": 1}) == 1
        assert t.value({"a0": 0}) == 0

    def test_missing_index_raises(self, manager, rng):
        t = tc.from_numpy(manager, random_tensor(rng, 2), idx("a0", "a1"))
        with pytest.raises(TDDError):
            t.value({"a0": 0})

    def test_paper_fig1_value(self):
        # the Fig. 1 projector entry phi(110111) = -1/2 after weights;
        # reconstructed here through the dense path
        from tests.helpers import make_space
        space = make_space(3)
        plus = np.array([1, 1]) / np.sqrt(2)
        minus = np.array([1, -1]) / np.sqrt(2)
        s1 = space.product_state([plus, plus, minus])
        s2 = space.product_state([np.array([0., 1.]), np.array([0., 1.]),
                                  minus])
        sub = space.span([s1, s2])
        # P(x=110, y=111) = -3/6 = -1/2 entry of the paper's matrix P
        value = sub.projector.value({
            "x0_0": 1, "x1_0": 1, "x2_0": 0,
            "y0_0": 1, "y1_0": 1, "y2_0": 1})
        assert np.isclose(value, -0.5)


class TestSizeAndShape:
    def test_scalar_size_is_one(self, manager):
        assert tc.scalar(manager, 2.0).size() == 1

    def test_zero_size_is_one(self, manager):
        assert tc.zero(manager, idx("a0")).size() == 1

    def test_basis_state_size_linear(self, manager):
        t = tc.basis_state(manager, idx("a0", "a1", "a2"), [1, 1, 0])
        assert t.size() == 4  # three nodes + terminal

    def test_rank_and_indices_sorted(self, manager, rng):
        t = tc.from_numpy(manager, random_tensor(rng, 2), idx("a1", "a0"))
        assert t.rank == 2
        assert t.index_names == ("a0", "a1")


class TestNormInner:
    def test_norm_matches_numpy(self, manager, rng):
        arr = random_tensor(rng, 3)
        t = tc.from_numpy(manager, arr, idx("a0", "a1", "a2"))
        assert np.isclose(t.norm(), np.linalg.norm(arr))

    def test_inner_matches_numpy(self, manager, rng):
        a = random_tensor(rng, 2)
        b = random_tensor(rng, 2)
        ta = tc.from_numpy(manager, a, idx("a0", "a1"))
        tb = tc.from_numpy(manager, b, idx("a0", "a1"))
        assert np.isclose(ta.inner(tb), np.vdot(a, b))

    def test_inner_requires_same_indices(self, manager, rng):
        ta = tc.from_numpy(manager, random_tensor(rng, 1), idx("a0"))
        tb = tc.from_numpy(manager, random_tensor(rng, 1), idx("a1"))
        with pytest.raises(TDDError):
            ta.inner(tb)

    def test_normalized(self, manager, rng):
        t = tc.from_numpy(manager, random_tensor(rng, 2), idx("a0", "a1"))
        assert np.isclose(t.normalized().norm(), 1.0)

    def test_normalize_zero_raises(self, manager):
        with pytest.raises(TDDError):
            tc.zero(manager, idx("a0")).normalized()


class TestRename:
    def test_rename_preserving_order(self, manager, rng):
        arr = random_tensor(rng, 3)
        t = tc.from_numpy(manager, arr, idx("a0", "a1", "a2"))
        renamed = t.rename({"a0": "b0", "a1": "b1", "a2": "b2"})
        assert renamed.index_names == ("b0", "b1", "b2")
        assert np.allclose(renamed.to_numpy(), arr)

    def test_rename_partial(self, manager, rng):
        arr = random_tensor(rng, 2)
        t = tc.from_numpy(manager, arr, idx("a0", "a1"))
        renamed = t.rename({"a1": "a2"})
        assert renamed.index_names == ("a0", "a2")
        assert np.allclose(renamed.to_numpy(), arr)

    def test_rename_order_violation_raises(self, manager, rng):
        arr = random_tensor(rng, 2)
        t = tc.from_numpy(manager, arr, idx("a0", "a1"))
        with pytest.raises(TDDError):
            t.rename({"a0": "b2", "a1": "b0"})  # would swap order

    def test_rename_zero(self, manager):
        t = tc.zero(manager, idx("a0"))
        assert t.rename({"a0": "b0"}).is_zero


class TestComparison:
    def test_same_as_canonical(self, manager, rng):
        arr = random_tensor(rng, 3)
        t1 = tc.from_numpy(manager, arr, idx("a0", "a1", "a2"))
        t2 = tc.from_numpy(manager, arr.copy(), idx("a0", "a1", "a2"))
        assert t1.root.node is t2.root.node

    def test_allclose_tolerates_noise(self, manager, rng):
        arr = random_tensor(rng, 3)
        t1 = tc.from_numpy(manager, arr, idx("a0", "a1", "a2"))
        t2 = tc.from_numpy(manager, arr + 1e-12, idx("a0", "a1", "a2"))
        assert t1.allclose(t2)

    def test_allclose_detects_difference(self, manager, rng):
        arr = random_tensor(rng, 2)
        t1 = tc.from_numpy(manager, arr, idx("a0", "a1"))
        t2 = tc.from_numpy(manager, arr + 0.5, idx("a0", "a1"))
        assert not t1.allclose(t2)

    def test_cross_manager_raises(self, rng):
        m1 = fresh_manager(["a0"])
        m2 = fresh_manager(["a0"])
        t1 = tc.from_numpy(m1, random_tensor(rng, 1), idx("a0"))
        t2 = tc.from_numpy(m2, random_tensor(rng, 1), idx("a0"))
        with pytest.raises(TDDError):
            t1 + t2
