"""The compute_image entry point and method registry."""

import pytest

from repro.errors import ReproError
from repro.image.engine import METHODS, compute_image, make_computer
from repro.systems import models


class TestRegistry:
    def test_methods_tuple(self):
        assert set(METHODS) == {"basic", "addition", "contraction",
                                "hybrid"}

    def test_make_computer_each_method(self):
        qts = models.ghz_qts(3)
        assert make_computer(qts, "basic").method == "basic"
        assert make_computer(qts, "addition", k=2).method == "addition"
        assert make_computer(qts, "contraction", k1=2,
                             k2=3).method == "contraction"

    def test_unknown_method(self):
        with pytest.raises(ReproError):
            make_computer(models.ghz_qts(3), "quantum-magic")

    def test_basic_rejects_params(self):
        with pytest.raises(ReproError):
            make_computer(models.ghz_qts(3), "basic", k=1)


class TestComputeImage:
    def test_records_time(self):
        result = compute_image(models.ghz_qts(3), method="basic")
        assert result.stats.seconds > 0

    def test_all_methods_same_dimension(self):
        dims = set()
        for method, params in (("basic", {}), ("addition", {"k": 1}),
                               ("contraction", {"k1": 2, "k2": 2})):
            result = compute_image(models.grover_qts(4), method=method,
                                   **params)
            dims.add(result.dimension)
        assert len(dims) == 1
