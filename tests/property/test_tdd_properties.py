"""Hypothesis property tests for the TDD core.

These pin the algebraic laws the image computation algorithms rely on:
canonicity, linearity, contraction/einsum agreement and slicing
consistency, on arbitrary random tensors.
"""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.indices.index import Index
from repro.tdd import construction as tc

from tests.helpers import fresh_manager

NAMES = ["p0", "p1", "p2", "p3"]


def tensor_strategy(rank: int):
    finite = st.floats(min_value=-4, max_value=4, allow_nan=False,
                       allow_infinity=False, width=32)
    return arrays(np.float64, (2,) * rank, elements=finite)


def build(manager, arr, names):
    return tc.from_numpy(manager, arr.astype(complex),
                         [Index(n) for n in names])


class TestCanonicity:
    @given(tensor_strategy(3))
    def test_roundtrip(self, arr):
        m = fresh_manager(NAMES)
        t = build(m, arr, NAMES[:3])
        assert np.allclose(t.to_numpy(), arr, atol=1e-9)

    @given(tensor_strategy(3))
    def test_same_tensor_same_node(self, arr):
        m = fresh_manager(NAMES)
        t1 = build(m, arr, NAMES[:3])
        t2 = build(m, arr.copy(), NAMES[:3])
        assert t1.root.node is t2.root.node

    @given(tensor_strategy(2), st.sampled_from([2.0, -1.0, 0.5, 3.0]))
    def test_scaling_reuses_node(self, arr, factor):
        # canonical form: w * T and T share the node structure
        m = fresh_manager(NAMES)
        t1 = build(m, arr, NAMES[:2])
        t2 = build(m, factor * arr, NAMES[:2])
        if not t1.is_zero:
            assert t1.root.node is t2.root.node


class TestLinearity:
    @given(tensor_strategy(3), tensor_strategy(3))
    def test_add(self, a, b):
        m = fresh_manager(NAMES)
        out = build(m, a, NAMES[:3]) + build(m, b, NAMES[:3])
        assert np.allclose(out.to_numpy(), a + b, atol=1e-8)

    @given(tensor_strategy(3))
    def test_add_inverse(self, a):
        m = fresh_manager(NAMES)
        t = build(m, a, NAMES[:3])
        assert (t + (-t)).is_zero

    @given(tensor_strategy(2), tensor_strategy(2), tensor_strategy(2))
    def test_contract_distributes(self, a, b, c):
        m = fresh_manager(NAMES)
        ta = build(m, a, ["p0", "p1"])
        tb = build(m, b, ["p1", "p2"])
        tcc = build(m, c, ["p1", "p2"])
        left = ta.contract(tb + tcc, [Index("p1")])
        right = ta.contract(tb, [Index("p1")]) + ta.contract(
            tcc, [Index("p1")])
        assert left.allclose(right, tol=1e-6)


class TestContraction:
    @given(tensor_strategy(2), tensor_strategy(2))
    def test_matches_einsum(self, a, b):
        m = fresh_manager(NAMES)
        ta = build(m, a, ["p0", "p1"])
        tb = build(m, b, ["p1", "p2"])
        out = ta.contract(tb, [Index("p1")])
        assert np.allclose(out.to_numpy(), np.einsum("ij,jk->ik", a, b),
                           atol=1e-8)

    @given(tensor_strategy(3))
    def test_slice_sum_recomposes(self, a):
        m = fresh_manager(NAMES)
        t = build(m, a, NAMES[:3])
        for name in NAMES[:3]:
            s0 = t.slice({Index(name): 0})
            s1 = t.slice({Index(name): 1})
            assert np.allclose((s0 + s1).to_numpy(),
                               a.sum(axis=NAMES[:3].index(name)),
                               atol=1e-8)

    @given(tensor_strategy(3))
    def test_norm_matches(self, a):
        m = fresh_manager(NAMES)
        t = build(m, a, NAMES[:3])
        assert np.isclose(t.norm(), np.linalg.norm(a), atol=1e-8)
