"""Hybrid (slice + block) image computation."""

import pytest

from repro.image.engine import compute_image
from repro.image.hybrid import HybridImageComputer
from repro.systems import models

from tests.helpers import assert_subspace_matches_dense, dense_image_oracle

MODELS = {
    "ghz4": lambda: models.ghz_qts(4),
    "grover4": lambda: models.grover_qts(4),
    "bv5": lambda: models.bv_qts(5),
    "qft4": lambda: models.qft_qts(4),
    "qrw4": lambda: models.qrw_qts(4, 0.3),
    "bitflip": lambda: models.bitflip_qts(),
}


@pytest.mark.parametrize("name", sorted(MODELS))
@pytest.mark.parametrize("k,k1,k2", [(0, 2, 2), (1, 2, 2), (2, 3, 3)])
def test_matches_dense_oracle(name, k, k1, k2):
    build = MODELS[name]
    expected = dense_image_oracle(build())
    result = compute_image(build(), method="hybrid", k=k, k1=k1, k2=k2)
    assert_subspace_matches_dense(result.subspace, expected)


def test_k0_equals_contraction():
    """hybrid(k=0) degrades to plain contraction partition."""
    from tests.helpers import subspace_to_dense
    hybrid = compute_image(models.grover_qts(5), method="hybrid",
                           k=0, k1=2, k2=2)
    contraction = compute_image(models.grover_qts(5), method="contraction",
                                k1=2, k2=2)
    assert subspace_to_dense(hybrid.subspace).equals(
        subspace_to_dense(contraction.subspace))


def test_registered_in_engine():
    from repro.image.engine import METHODS, make_computer
    assert "hybrid" in METHODS
    computer = make_computer(models.ghz_qts(3), "hybrid", k=1, k1=2, k2=2)
    assert isinstance(computer, HybridImageComputer)


def test_negative_k_rejected():
    with pytest.raises(ValueError):
        HybridImageComputer(models.ghz_qts(3), k=-1)


def test_slice_cache_reused():
    qts = models.grover_qts(4)
    computer = HybridImageComputer(qts, k=1, k1=2, k2=2)
    from repro.utils.stats import StatsRecorder
    computer.image(None, StatsRecorder())
    made = qts.manager.nodes_made
    computer.image(None, StatsRecorder())
    assert qts.manager.nodes_made - made < made
