"""Uniform entry point for the three image computation methods."""

from __future__ import annotations

from typing import Optional

from repro.errors import ReproError
from repro.image.addition import AdditionImageComputer
from repro.image.base import ImageComputerBase, ImageResult
from repro.image.basic import BasicImageComputer
from repro.image.contraction import ContractionImageComputer
from repro.image.hybrid import HybridImageComputer
from repro.subspace.subspace import Subspace
from repro.systems.qts import QuantumTransitionSystem
from repro.utils.stats import StatsRecorder
from repro.utils.timing import Stopwatch

METHODS = ("basic", "addition", "contraction", "hybrid")


def make_computer(qts: QuantumTransitionSystem, method: str = "basic",
                  **params) -> ImageComputerBase:
    """Instantiate an image computer by method name.

    ``params``: ``k`` for addition, ``k1``/``k2``/``order_policy`` for
    contraction.
    """
    if method == "basic":
        if params:
            raise ReproError(f"basic method takes no parameters, got "
                             f"{sorted(params)}")
        return BasicImageComputer(qts)
    if method == "addition":
        return AdditionImageComputer(qts, **params)
    if method == "contraction":
        return ContractionImageComputer(qts, **params)
    if method == "hybrid":
        return HybridImageComputer(qts, **params)
    raise ReproError(f"unknown image method {method!r}; "
                     f"choose from {METHODS}")


def compute_image(qts: QuantumTransitionSystem,
                  subspace: Optional[Subspace] = None,
                  method: str = "basic", gc: bool = True,
                  **params) -> ImageResult:
    """Compute ``T(S)`` and record the full kernel cost profile.

    The returned :class:`ImageResult` stats carry wall time, peak TDD
    node count, operation-cache hit/miss counts for this run, and —
    after the post-run garbage collection (skipped with ``gc=False``) —
    the peak and surviving live-node populations of the manager.
    """
    computer = make_computer(qts, method, **params)
    stats = StatsRecorder()
    manager = qts.manager
    baseline = manager.cache_counters()
    watch = Stopwatch().start()
    result = computer.image(subspace, stats)
    stats.seconds = watch.stop()
    if gc:
        manager.collect()
    stats.record_manager(manager, baseline)
    return result
