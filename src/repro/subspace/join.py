"""Standalone join/orthonormalisation helpers (paper, Section IV.B)."""

from __future__ import annotations

from typing import Iterable

from repro.config import GS_EPS
from repro.subspace.subspace import StateSpace, Subspace
from repro.tdd.tdd import TDD


def orthonormalize(space: StateSpace, states: Iterable[TDD],
                   tol: float = GS_EPS) -> Subspace:
    """Gram-Schmidt span of arbitrary (dependent, unnormalised) states."""
    out = Subspace(space)
    for state in states:
        out.add_state(state, tol=tol)
    return out


def join(first: Subspace, second: Subspace) -> Subspace:
    """``S1 v S2`` — convenience wrapper over :meth:`Subspace.join`."""
    return first.join(second)


def join_all(space: StateSpace, subspaces: Iterable[Subspace]) -> Subspace:
    out = Subspace(space)
    for subspace in subspaces:
        for vector in subspace.basis:
            out.add_state(vector)
    return out
