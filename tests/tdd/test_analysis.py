"""Diagram analysis: profiles, width, density."""

import numpy as np
import pytest

from repro.indices.index import Index
from repro.tdd import construction as tc
from repro.tdd.analysis import compare_sizes, density, profile

from tests.helpers import fresh_manager, random_tensor

NAMES = ["a0", "a1", "a2", "a3"]


def idx(*names):
    return [Index(n) for n in names]


class TestProfile:
    def test_basis_state_profile(self):
        m = fresh_manager(NAMES)
        t = tc.basis_state(m, idx("a0", "a1", "a2"), [1, 0, 1])
        p = profile(t)
        assert p.nodes == 4  # 3 levels + terminal
        assert p.terminal_reached
        assert p.levels == {"a0": 1, "a1": 1, "a2": 1}
        assert p.max_width == 1
        assert p.zero_edges == 3

    def test_dense_random_profile(self, rng):
        m = fresh_manager(NAMES)
        t = tc.from_numpy(m, random_tensor(rng, 4), idx(*NAMES))
        p = profile(t)
        assert p.nodes == t.size()
        # random tensor: full width doubles per level until the end
        assert p.levels["a0"] == 1
        assert p.levels["a1"] == 2
        assert p.max_width >= 4

    def test_zero_tensor_profile(self):
        m = fresh_manager(NAMES)
        p = profile(tc.zero(m, idx("a0")))
        assert p.nodes == 0
        assert not p.terminal_reached
        assert p.zero_edges == 1

    def test_distinct_weights(self):
        m = fresh_manager(NAMES)
        t = tc.from_numpy(m, np.array([1.0, -1.0]), idx("a0"))
        p = profile(t)
        assert p.distinct_weights >= 2


class TestDensity:
    def test_full_tensor(self, rng):
        m = fresh_manager(NAMES)
        arr = rng.normal(size=(2, 2)) + 10  # no zeros
        t = tc.from_numpy(m, arr, idx("a0", "a1"))
        assert density(t) == pytest.approx(1.0)

    def test_basis_state(self):
        m = fresh_manager(NAMES)
        t = tc.basis_state(m, idx("a0", "a1", "a2"), [0, 1, 0])
        assert density(t) == pytest.approx(1 / 8)

    def test_zero(self):
        m = fresh_manager(NAMES)
        assert density(tc.zero(m, idx("a0"))) == 0.0

    def test_identity_matrix(self):
        m = fresh_manager(NAMES)
        t = tc.delta(m, idx("a0", "a1"))
        assert density(t) == pytest.approx(0.5)

    def test_matches_numpy_count(self, rng):
        m = fresh_manager(NAMES)
        arr = random_tensor(rng, 3)
        arr[rng.random(arr.shape) < 0.5] = 0
        t = tc.from_numpy(m, arr, idx("a0", "a1", "a2"))
        expect = np.count_nonzero(arr) / arr.size
        assert density(t) == pytest.approx(expect)

    def test_skipped_levels_counted(self):
        # tensor constant in a1: ones (x) basis -> density 1/2
        m = fresh_manager(NAMES)
        t = tc.basis_state(m, idx("a0"), [1]).product(
            tc.ones(m, idx("a1")))
        assert density(t) == pytest.approx(0.5)


class TestCompareSizes:
    def test_labelled_sizes(self):
        m = fresh_manager(NAMES)
        out = compare_sizes({
            "delta": tc.delta(m, idx("a0", "a1")),
            "zero": tc.zero(m, idx("a0")),
        })
        assert out["zero"] == 1
        assert out["delta"] >= 3
