"""TDD slicing and non-zero path search.

Slicing fixes one index to a constant (paper, Section II.B); it is the
workhorse of the addition-partition scheme and of the basis
decomposition of projectors (Section IV.A), which locates the *leftmost
non-zero path* of a projector TDD to extract its first non-zero column.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

from repro.tdd.manager import TDDManager
from repro.tdd.node import Edge, Node


def slice_edge(manager: TDDManager, edge: Edge, level: int, value: int) -> Edge:
    """The tensor of ``edge`` with the index at ``level`` fixed to ``value``.

    The resulting edge no longer depends on that index.
    """
    if value not in (0, 1):
        raise ValueError(f"slice value must be 0 or 1, got {value!r}")
    memo: Dict[int, Edge] = {}

    def rec_node(node: Node) -> Edge:
        if node.is_terminal or node.level > level:
            return Edge(1 + 0j, node)
        cached = memo.get(id(node))
        if cached is not None:
            return cached
        if node.level == level:
            chosen = node.high if value else node.low
            result = manager.make_edge(chosen.weight, chosen.node)
        else:
            result = manager.make_node(node.level,
                                       rec_edge(node.low),
                                       rec_edge(node.high))
        memo[id(node)] = result
        return result

    def rec_edge(e: Edge) -> Edge:
        if e.is_zero:
            return manager.zero_edge()
        inner = rec_node(e.node)
        return manager.make_edge(e.weight * inner.weight, inner.node)

    return rec_edge(edge)


def slice_many(manager: TDDManager, edge: Edge,
               assignment: Dict[int, int]) -> Edge:
    """Slice several levels at once (applied top-down)."""
    result = edge
    for level in sorted(assignment):
        result = slice_edge(manager, result, level, assignment[level])
    return result


def first_nonzero_assignment(edge: Edge,
                             target_levels: FrozenSet[int]
                             ) -> Optional[Dict[int, int]]:
    """Leftmost assignment of ``target_levels`` with a non-zero slice.

    Returns a partial assignment ``{level: bit}`` such that slicing
    ``edge`` on it yields a non-zero tensor, preferring 0 before 1 at
    every target index (the paper's "leftmost non-zero path").  Levels
    in ``target_levels`` that the diagram does not branch on are
    unconstrained and omitted (callers treat them as 0).  Returns
    ``None`` iff the edge denotes the zero tensor.
    """
    if edge.is_zero:
        return None

    def rec(node: Node) -> Optional[Dict[int, int]]:
        if node.is_terminal:
            return {}
        if node.level in target_levels:
            if not node.low.is_zero:
                sub = rec(node.low.node)
                if sub is not None:
                    sub[node.level] = 0
                    return sub
            if not node.high.is_zero:
                sub = rec(node.high.node)
                if sub is not None:
                    sub[node.level] = 1
                    return sub
            return None
        # A non-target (e.g. row) index: any branch that survives the
        # slice keeps the whole tensor non-zero.
        if not node.low.is_zero:
            sub = rec(node.low.node)
            if sub is not None:
                return sub
        if not node.high.is_zero:
            return rec(node.high.node)
        return None

    return rec(edge.node)
