"""End-to-end reproduction of every worked example in the paper."""

import numpy as np
import pytest

from repro import ModelChecker, models
from repro.image.engine import compute_image
from repro.subspace.projector import basis_decompose

from tests.helpers import MINUS, PLUS, make_space


class TestFig1Projector:
    """Fig. 1: the projector of span{|++->, |11->} and its TDD."""

    def test_matrix_entries(self):
        space = make_space(3)
        s1 = space.product_state([PLUS, PLUS, MINUS])
        s2 = space.product_state([np.array([0., 1.]), np.array([0., 1.]),
                                  MINUS])
        sub = space.span([s1, s2])
        p = sub.to_dense()
        sixth = 1.0 / 6.0
        expect = np.zeros((8, 8))
        # upper-left 6x6 block: alternating +-1/6
        for i in range(6):
            for j in range(6):
                expect[i, j] = sixth * (-1) ** (i + j)
        expect[6, 6] = expect[7, 7] = 0.5
        expect[6, 7] = expect[7, 6] = -0.5
        assert np.allclose(p, expect, atol=1e-9)

    def test_tdd_is_compact(self):
        space = make_space(3)
        s1 = space.product_state([PLUS, PLUS, MINUS])
        s2 = space.product_state([np.array([0., 1.]), np.array([0., 1.]),
                                  MINUS])
        sub = space.span([s1, s2])
        # the paper's Fig. 1 diagram has 8 index nodes + terminal; our
        # construction must be in the same compact regime (far below
        # the 2^6 dense worst case)
        assert sub.projector.size() <= 12


class TestSectionIIIA1_Grover:
    """Combinational circuits: the Grover iteration invariant."""

    @pytest.mark.parametrize("method,params", [
        ("basic", {}),
        ("addition", {"k": 1}),
        ("contraction", {"k1": 4, "k2": 4}),
    ])
    def test_invariant_all_methods(self, method, params):
        qts = models.grover_qts(3, initial="invariant")
        checker = ModelChecker(qts, method=method, **params)
        assert checker.check_invariant(strict=True)

    def test_input_state_reaches_marked(self):
        qts = models.grover_qts(3)
        image = compute_image(qts, method="basic").subspace
        marked = qts.space.product_state(
            [np.array([0., 1.]), np.array([0., 1.]), MINUS])
        assert image.contains_state(marked)


class TestSectionIIIA2_Bitflip:
    """Dynamic circuits: the bit-flip code corrector."""

    @pytest.mark.parametrize("method,params", [
        ("basic", {}),
        ("addition", {"k": 1}),
        ("contraction", {"k1": 3, "k2": 2}),
    ])
    def test_error_states_corrected(self, method, params):
        qts = models.bitflip_qts()
        expected = qts.space.span([qts.space.basis_state([0] * 6)])
        checker = ModelChecker(qts, method=method, **params)
        assert checker.check_image_equals(expected)

    def test_paper_partition_parameters(self):
        """Section V.B cuts Fig. 3 with k1 = 3, k2 = 2 into six blocks;
        our partitioner must reproduce a 3-column grid on the syndrome
        sub-circuit (2 crossing CX per column)."""
        from repro.circuits.library import bitflip_syndrome_circuit
        from repro.image.partition import partition_circuit
        blocks = partition_circuit(bitflip_syndrome_circuit(), 3, 2)
        assert 1 + max(b.column for b in blocks) == 3


class TestSectionIIIA3_NoisyWalk:
    """Noisy circuits: quantum walk with a coin bit-flip."""

    def test_image_contained_in_paper_span(self):
        qts = models.qrw_qts(4, 0.25, start_position=3)
        image = compute_image(qts, method="contraction").subspace
        bound = qts.space.span([
            qts.space.basis_state([0, 0, 1, 0]),  # |0>|2>
            qts.space.basis_state([1, 1, 0, 0]),  # |1>|4>
        ])
        assert bound.contains(image)

    def test_noise_does_not_change_image(self):
        """The paper's observation: the bit-flip after the coin
        Hadamard leaves the reachable subspace unchanged (X fixes
        |+->)."""
        noiseless = compute_image(models.qrw_qts(4, 0.0),
                                  method="basic").subspace
        noisy = compute_image(models.qrw_qts(4, 0.4),
                              method="basic").subspace
        from tests.helpers import subspace_to_dense
        assert subspace_to_dense(noiseless).equals(subspace_to_dense(noisy))


class TestExample1and2:
    """Examples 1-2: basis decomposition and join on the Grover space."""

    def test_decompose_fig1(self):
        space = make_space(3)
        s1 = space.product_state([PLUS, PLUS, MINUS])
        s2 = space.product_state([np.array([0., 1.]), np.array([0., 1.]),
                                  MINUS])
        sub = space.span([s1, s2])
        recovered = basis_decompose(space, sub.projector)
        assert recovered.dimension == 2
        v1 = recovered.basis[0].to_numpy().reshape(-1)
        expect = np.kron((np.kron([1, 0], [1, 0]) + np.kron([1, 0], [0, 1])
                          + np.kron([0, 1], [1, 0])) / np.sqrt(3), MINUS)
        assert np.isclose(abs(np.vdot(v1, expect)), 1.0, atol=1e-9)
