"""Regenerate a slice of the paper's Table I and Table II from code.

This is the programmatic twin of the pytest benchmarks: it prints rows
in the paper's layout (time + max TDD nodes per method) for a quick
visual comparison.  Use the module CLIs for the full grids:

    python -m repro.bench.table1 --scale medium
    python -m repro.bench.table2 --qubits 8 --kmax 8

Run:  python examples/table_rows.py
"""

from repro.bench.table1 import format_rows, table1_rows
from repro.bench.table2 import format_grid, sweep


def main() -> None:
    print("Table I (reproduction, small scale)")
    print(format_rows(table1_rows(scale="small")))
    print()
    print("Table II (reproduction, Grover 7 x2 iterations, k <= 4)")
    print(format_grid(sweep(num_qubits=7, kmax=4)))


if __name__ == "__main__":
    main()
