"""Circuit block partitioning for the contraction-partition scheme.

Implements the cut rule of Section V.B: the circuit is cut horizontally
into bands of at most ``k1`` qubits; walking the gates in time order, a
vertical cut is inserted (starting a new column of blocks) whenever
``k2`` multi-qubit gates crossing a horizontal cut have accumulated.
Every gate lands in exactly one block — the (band of its topmost qubit,
current column) cell — and the contraction of all block tensors equals
the circuit tensor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.wires import GateWiring
from repro.errors import PartitionError


@dataclass
class Block:
    """One cell of the partition grid."""

    band: int
    column: int
    wirings: List[GateWiring] = field(default_factory=list)

    @property
    def key(self) -> Tuple[int, int]:
        return (self.column, self.band)

    def __len__(self) -> int:
        return len(self.wirings)


def partition_circuit(circuit: QuantumCircuit, k1: int, k2: int
                      ) -> List[Block]:
    """Cut ``circuit`` into blocks per the (k1, k2) rule.

    Returns blocks sorted by (column, band) — circuit time order, which
    is the fold order the contraction-partition image computation uses.
    """
    if k1 < 1:
        raise PartitionError("k1 must be >= 1")
    if k2 < 1:
        raise PartitionError("k2 must be >= 1")
    wirings, _inputs, _outputs = circuit.wirings()

    def band_of(qubit: int) -> int:
        return qubit // k1

    blocks: Dict[Tuple[int, int], Block] = {}
    column = 0
    crossing = 0
    for wiring in wirings:
        qubits = wiring.gate.qubits
        if qubits:
            bands = {band_of(q) for q in qubits}
            home = min(bands)
        else:  # zero-qubit scalar gate
            bands = {0}
            home = 0
        cell = (home, column)
        if cell not in blocks:
            blocks[cell] = Block(band=home, column=column)
        blocks[cell].wirings.append(wiring)
        if len(bands) > 1:
            crossing += 1
            if crossing >= k2:
                column += 1
                crossing = 0
    return sorted(blocks.values(), key=lambda b: b.key)


def num_bands(circuit: QuantumCircuit, k1: int) -> int:
    return math.ceil(circuit.num_qubits / k1)


def partition_summary(blocks: List[Block]) -> dict:
    """Shape statistics used by the benchmark harness."""
    columns = 1 + max((b.column for b in blocks), default=0)
    return {
        "blocks": len(blocks),
        "columns": columns,
        "gates_per_block": [len(b) for b in blocks],
    }
