"""Contraction-order heuristics."""

from repro.indices.index import Index
from repro.tensor.dense import DenseTensor
from repro.tensor.network import TensorNetwork
from repro.tensor.ordering import greedy_order, sequential_order

from tests.helpers import random_tensor


def dense(rng, names):
    return DenseTensor(random_tensor(rng, len(names)),
                       [Index(n) for n in names])


class TestSequential:
    def test_identity_order(self, rng):
        tensors = [dense(rng, ["a"]), dense(rng, ["b"])]
        assert sequential_order(tensors, set()) == [0, 1]


class TestGreedy:
    def test_is_permutation(self, rng):
        tensors = [dense(rng, ["a", "b"]), dense(rng, ["b", "c"]),
                   dense(rng, ["x", "y"]), dense(rng, ["c", "d"])]
        order = greedy_order(tensors, {Index("a"), Index("d"),
                                       Index("x"), Index("y")})
        assert sorted(order) == [0, 1, 2, 3]

    def test_prefers_connected_tensors(self, rng):
        # starting from 0 (a-b), the next pick should share an index
        tensors = [dense(rng, ["a", "b"]), dense(rng, ["x", "y"]),
                   dense(rng, ["b", "c"])]
        order = greedy_order(tensors, {Index("a"), Index("c"),
                                       Index("x"), Index("y")})
        assert order[1] == 2  # the connected one, not the disjoint one

    def test_result_matches_sequential(self, rng):
        # both orders must produce the same final tensor
        tensors = [dense(rng, ["a", "b"]), dense(rng, ["b", "c"]),
                   dense(rng, ["c", "d"])]
        open_set = {Index("a"), Index("d")}
        net1 = TensorNetwork(list(tensors), set(open_set))
        net2 = TensorNetwork(list(tensors), set(open_set))
        out1 = net1.contract_all(order=sequential_order(tensors, open_set))
        out2 = net2.contract_all(order=greedy_order(tensors, open_set))
        assert out1.allclose(out2)

    def test_empty(self):
        assert greedy_order([], set()) == []
