"""Contraction-partition image computation (Section V.B)."""

import pytest

from repro.image.contraction import ContractionImageComputer
from repro.image.engine import compute_image
from repro.systems import models

from tests.helpers import assert_subspace_matches_dense, dense_image_oracle

MODELS = {
    "ghz4": lambda: models.ghz_qts(4),
    "grover4": lambda: models.grover_qts(4),
    "grover4inv": lambda: models.grover_qts(4, "invariant"),
    "bv5": lambda: models.bv_qts(5),
    "qft4": lambda: models.qft_qts(4),
    "qrw4": lambda: models.qrw_qts(4, 0.3),
    "bitflip": lambda: models.bitflip_qts(),
}


@pytest.mark.parametrize("name", sorted(MODELS))
@pytest.mark.parametrize("k1,k2", [(1, 1), (2, 2), (4, 4)])
def test_matches_dense_oracle(name, k1, k2):
    build = MODELS[name]
    expected = dense_image_oracle(build())
    result = compute_image(build(), method="contraction", k1=k1, k2=k2)
    assert_subspace_matches_dense(result.subspace, expected)


@pytest.mark.parametrize("name", ["grover4", "qft4", "qrw4"])
def test_greedy_order_agrees(name):
    build = MODELS[name]
    expected = dense_image_oracle(build())
    result = compute_image(build(), method="contraction", k1=2, k2=2,
                           order_policy="greedy")
    assert_subspace_matches_dense(result.subspace, expected)


def test_bad_order_policy():
    with pytest.raises(ValueError):
        ContractionImageComputer(models.ghz_qts(3), order_policy="magic")


def test_blocks_cached_across_calls():
    qts = models.ghz_qts(4)
    computer = ContractionImageComputer(qts, k1=2, k2=2)
    from repro.utils.stats import StatsRecorder
    stats = StatsRecorder()
    computer.image(None, stats)
    made = qts.manager.nodes_made
    computer.image(None, stats)
    assert qts.manager.nodes_made - made < made


def test_block_count_recorded():
    result = compute_image(models.grover_qts(5), method="contraction",
                           k1=2, k2=2)
    assert result.stats.extra.get("blocks", 0) >= 2


def test_qft_contraction_avoids_monolithic_blowup():
    """The Table I headline: for QFT the basic method's peak TDD is
    exponential while contraction partition stays linear."""
    n = 8
    basic = compute_image(models.qft_qts(n), method="basic")
    contraction = compute_image(models.qft_qts(n), method="contraction",
                                k1=4, k2=4)
    assert basic.stats.max_nodes >= 2 ** n - 1
    assert contraction.stats.max_nodes <= 8 * n
    # identical subspaces nonetheless
    expected = dense_image_oracle(models.qft_qts(n))
    assert_subspace_matches_dense(contraction.subspace, expected)
