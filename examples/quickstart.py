"""Quickstart: model-check a Grover iteration with the unified API.

Reproduces the paper's Section III.A.1 case study end to end:

1. build the 3-qubit Grover-iteration quantum transition system (its
   builder registers the spec atoms ``inv``, ``marked``, ``plus``,
   ``ancilla_plus``),
2. compute the image of the invariant subspace S = span{|++->, |11->}
   with all four algorithms (basic / addition / contraction / hybrid),
   each described by a validated ``CheckerConfig``,
3. check temporal specifications with the one ``check`` verb —
   ``AG inv`` (the invariance property), ``EF marked`` (the marked
   state is reached) and ``AG ~ancilla_plus`` (the ancilla never
   flips) — and cross-validate a verdict on the dense backend,
4. print the Fig. 1 projector TDD as Graphviz DOT.

See examples/parallel_sweep.py for the parallel sliced execution
strategy and the batch sweep runner.

Run:  python examples/quickstart.py
"""

from repro import CheckerConfig, ModelChecker, compute_image, models
from repro.tdd.io import to_dot


def main() -> None:
    # --- the quantum transition system (paper, Definition 2) --------
    qts = models.grover_qts(3, initial="invariant")
    print(f"System: {qts}")
    print(f"Initial subspace dimension: {qts.initial.dimension}")
    print(f"Registered spec atoms: {sorted(qts.named_subspaces)}")

    # --- one-step images with all four algorithms --------------------
    for config in (CheckerConfig(method="basic"),
                   CheckerConfig(method="addition",
                                 method_params={"k": 1}),
                   CheckerConfig(method="contraction",
                                 method_params={"k1": 4, "k2": 4}),
                   CheckerConfig(method="hybrid",
                                 method_params={"k": 1, "k1": 4,
                                                "k2": 4})):
        result = compute_image(models.grover_qts(3, initial="invariant"),
                               config=config)
        print(f"  {config.method:12s} dim(T(S)) = {result.dimension}   "
              f"time = {result.stats.seconds * 1000:.1f} ms   "
              f"max TDD nodes = {result.stats.max_nodes}")

    # --- temporal specifications through the one check verb ----------
    config = CheckerConfig(method="contraction",
                           method_params={"k1": 4, "k2": 4})
    checker = ModelChecker(qts, config)

    always_inv = checker.check("AG inv")
    print(f"AG inv  (Section III.A.1 invariance): {always_inv.verdict}  "
          f"[reachable dims {always_inv.dimensions}]")
    assert always_inv.holds

    reaches_marked = checker.check("EF marked")
    print(f"EF marked (the marked state is reached): "
          f"{reaches_marked.verdict}  "
          f"[witness dim {reaches_marked.witness_dimension}]")
    assert reaches_marked.holds

    never_flips = checker.check("AG ~ancilla_plus")
    print(f"AG ~ancilla_plus (ancilla stays |->): {never_flips.verdict}")
    assert never_flips.holds

    # strict invariance T(S) = S rides on the same machinery
    assert checker.check_invariant(strict=True)

    # --- the dense statevector reference returns the same verdict ----
    report = checker.cross_validate(spec="AG inv")
    print(f"cross-validated on the dense backend: tdd={report.tdd_verdict}"
          f" dense={report.dense_verdict} agree={report.agree}")
    assert report.ok

    # --- the Fig. 1 projector TDD ------------------------------------
    dot = to_dot(qts.initial.projector, name="fig1_projector")
    print("\nProjector TDD of span{|++->, |11->} (paper Fig. 1), "
          "Graphviz DOT:")
    print(dot)


if __name__ == "__main__":
    main()
