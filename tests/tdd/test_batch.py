"""Stack/unstack: the scalar <-> batched diagram conversions."""

import numpy as np
import pytest

from repro.errors import TDDError
from repro.indices.index import Index
from repro.tdd import batch, construction as tc
from repro.tdd import weights as wt
from repro.tdd.manager import TDDManager


@pytest.fixture
def manager():
    m = TDDManager()
    m.order.register(Index("a"))
    m.order.register(Index("b"))
    m.order.register(Index("c"))
    return m


def tensor(manager, indices, values):
    return tc.from_numpy(manager,
                         np.array(values, dtype=complex), indices)


class TestStackUnstackRoundTrip:
    def test_roundtrip_recovers_every_slot(self, manager):
        slots = [tensor(manager, [Index("a"), Index("b")],
                        [[1, 0], [0, 1]]),
                 tensor(manager, [Index("a"), Index("b")],
                        [[0, 1], [1, 0]]),
                 tensor(manager, [Index("a"), Index("b")],
                        [[0.5, 0.5j], [0, -1]])]
        stacked = batch.stack(slots)
        assert batch.edge_parallel_shape(stacked.root) == (3,)
        for original, recovered in zip(slots, batch.unstack(stacked, 3)):
            assert recovered.same_as(original)

    def test_identical_slots_share_all_structure(self, manager):
        t = tensor(manager, [Index("a")], [1, 1j])
        stacked = batch.stack([t, t, t])
        # slots agree everywhere -> the batched diagram has the scalar
        # diagram's shape (only weights are vectors)
        assert stacked.size() == t.size()

    def test_zero_slot_survives(self, manager):
        live = tensor(manager, [Index("a")], [1, 2])
        zero = tc.zero(manager, [Index("a")])
        stacked = batch.stack([live, zero])
        back = batch.unstack(stacked, 2)
        assert back[0].same_as(live)
        assert back[1].is_zero

    def test_rank_mismatch_unions_indices(self, manager):
        wide = tensor(manager, [Index("a"), Index("b")],
                      [[1, 2], [3, 4]])
        narrow = tensor(manager, [Index("a")], [5, 6])
        stacked = batch.stack([wide, narrow])
        assert set(stacked.indices) == {Index("a"), Index("b")}
        back = batch.unstack(stacked, 2)
        assert back[0].to_numpy()[1][0] == 3
        # the narrow slot is constant along b
        assert back[1].to_numpy()[1][0] == back[1].to_numpy()[1][1] == 6


class TestStackValidation:
    def test_empty_sequence_rejected(self, manager):
        with pytest.raises(TDDError):
            batch.stack_edges(manager, [])

    def test_already_batched_edge_rejected(self, manager):
        stacked = batch.stack([tensor(manager, [Index("a")], [1, 2]),
                               tensor(manager, [Index("a")], [3, 4])])
        with pytest.raises(TDDError):
            batch.stack_edges(manager, [stacked.root])

    def test_cross_manager_rejected(self, manager):
        other = TDDManager()
        other.order.register(Index("a"))
        with pytest.raises(TDDError):
            batch.stack([tensor(manager, [Index("a")], [1, 2]),
                         tensor(other, [Index("a")], [1, 2])])


class TestStackValues:
    def test_builds_complex_vector(self):
        vector = batch.stack_values([1, 1j, -2])
        assert wt.parallel_shape(vector) == (3,)
        assert vector[1] == 1j
