"""Multi-process hammering: one directory, many writers and readers.

Several worker processes race lookup-or-compute-and-store cycles over
a handful of distinct keys in one store directory, one of them
additionally vandalising blobs mid-flight.  The contract under test:
no worker ever crashes or observes a wrong subspace (a partially
written or damaged blob must surface as a miss), and afterwards the
index passes SQLite's integrity check with every surviving row's blob
verifying against its recorded checksum.
"""

from __future__ import annotations

import json
import os
import random
import sqlite3
from concurrent.futures import ProcessPoolExecutor

from repro.mc.reachability import reachable_space
from repro.store import ResultStore
from repro.systems import models
from repro.tdd.io import payload_digest

#: one key per initial basis state — all cheap 3-qubit ghz fixpoints
VARIANTS = [[0, 0, 0], [1, 0, 0], [0, 1, 0], [1, 1, 0]]


def _build(variant):
    qts = models.ghz_qts(3)
    qts.set_initial_basis_states([list(variant)])
    return qts


def _expected_dimensions():
    return {tuple(v): reachable_space(_build(v), method="basic").dimension
            for v in VARIANTS}


def _hammer(root: str, seed: int, rounds: int, vandal: bool) -> dict:
    """One worker's life; returns its tally (raises = test failure)."""
    rng = random.Random(seed)
    expected = _expected_dimensions()
    tally = {"hits": 0, "misses": 0, "stores": 0, "vandalised": 0}
    with ResultStore(root) as store:
        for _ in range(rounds):
            variant = rng.choice(VARIANTS)
            qts = _build(variant)
            warm = store.lookup(qts, qts.initial)
            if warm is not None:
                # the one property that must never break: a served
                # subspace is the right subspace
                assert warm.dimension == expected[tuple(variant)], \
                    f"wrong answer served for {variant}"
                tally["hits"] += 1
            else:
                tally["misses"] += 1
                trace = reachable_space(qts, method="basic",
                                        warm_start=warm)
                if store.store(qts, qts.initial, "forward", 0, trace):
                    tally["stores"] += 1
            if vandal and rng.random() < 0.4:
                blob_dir = os.path.join(root, "blobs")
                blobs = [n for n in os.listdir(blob_dir)
                         if n.endswith(".json")]
                if blobs:
                    path = os.path.join(blob_dir, rng.choice(blobs))
                    try:
                        with open(path, "r+", encoding="utf-8") as fh:
                            fh.truncate(max(1, os.path.getsize(path)
                                            // 2))
                        tally["vandalised"] += 1
                    except OSError:
                        pass  # lost a race with quarantine/eviction
            if rng.random() < 0.2:
                store.gc()
    return tally


def _verify_store_consistent(root: str) -> int:
    """Index passes integrity_check; every row's blob verifies."""
    conn = sqlite3.connect(os.path.join(root, "index.sqlite"))
    assert conn.execute("PRAGMA integrity_check").fetchone()[0] == "ok"
    rows = conn.execute(
        "SELECT key, checksum FROM entries").fetchall()
    conn.close()
    for key, checksum in rows:
        blob = os.path.join(root, "blobs", f"{key}.json")
        with open(blob, "r", encoding="utf-8") as handle:
            payload = json.load(handle)  # complete, parseable
        assert payload_digest(payload) == checksum, \
            f"index/blob mismatch for {key}"
    return len(rows)


def test_two_processes_same_store(tmp_path):
    root = str(tmp_path / "store")
    with ProcessPoolExecutor(max_workers=2) as pool:
        tallies = list(pool.map(_hammer, [root] * 2, [11, 22],
                                [12] * 2, [False] * 2))
    assert all(t["hits"] + t["misses"] == 12 for t in tallies)
    # every variant got computed by somebody and the index agrees
    assert _verify_store_consistent(root) == len(VARIANTS)
    with ResultStore(root) as store:
        for variant in VARIANTS:
            qts = _build(variant)
            assert store.lookup(qts, qts.initial) is not None


def test_hammering_with_a_vandal(tmp_path):
    # three honest workers plus one that truncates random blobs while
    # they read: nobody crashes, nobody serves a partial blob, and the
    # store is internally consistent afterwards
    root = str(tmp_path / "store")
    with ProcessPoolExecutor(max_workers=4) as pool:
        tallies = list(pool.map(_hammer, [root] * 4, [1, 2, 3, 4],
                                [10] * 4, [False, False, False, True]))
    assert sum(t["stores"] for t in tallies) >= len(VARIANTS)
    expected = _expected_dimensions()
    with ResultStore(root) as store:
        # reading every key flushes out any at-rest damage the vandal
        # left behind: each lookup is either the right subspace or a
        # miss that quarantines the broken blob — never a wrong answer
        for variant in VARIANTS:
            qts = _build(variant)
            warm = store.lookup(qts, qts.initial)
            if warm is None:  # vandalised away — a cold run restores it
                trace = reachable_space(qts, method="basic")
                store.store(qts, qts.initial, "forward", 0, trace)
                warm = store.lookup(qts, qts.initial)
            assert warm is not None
            assert warm.dimension == expected[tuple(variant)]
        store.quarantine_records()  # the audit table stays readable
    # with the damage quarantined, what remains is fully consistent
    assert _verify_store_consistent(root) == len(VARIANTS)
