"""Dense subspaces of a 2^n-dimensional Hilbert space.

:class:`DenseSubspace` is the numpy twin of the TDD-based
:class:`~repro.subspace.subspace.Subspace`: an orthonormal basis stored
as matrix columns, with join, image and containment implemented by
standard linear algebra (SVD / QR).  The integration tests compare the
TDD image computation against this implementation projector-by-
projector.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from repro.errors import SubspaceError


class DenseSubspace:
    """A subspace given by an orthonormal column basis."""

    def __init__(self, basis: np.ndarray, dim: int) -> None:
        if basis.ndim != 2 or basis.shape[0] != dim:
            raise SubspaceError(f"basis must be ({dim}, k), got {basis.shape}")
        self.basis = basis
        self.dim = dim

    # ------------------------------------------------------------------
    @staticmethod
    def from_vectors(vectors: Iterable[np.ndarray], dim: int,
                     tol: float = 1e-9) -> "DenseSubspace":
        """Span of arbitrary (possibly dependent, unnormalised) vectors."""
        cols = [np.asarray(v, dtype=complex).reshape(-1) for v in vectors]
        if not cols:
            return DenseSubspace(np.zeros((dim, 0), dtype=complex), dim)
        matrix = np.stack(cols, axis=1)
        if matrix.shape[0] != dim:
            raise SubspaceError("vector length mismatch")
        u, s, _ = np.linalg.svd(matrix, full_matrices=False)
        rank = int(np.sum(s > tol * max(1.0, s[0] if len(s) else 1.0)))
        return DenseSubspace(u[:, :rank], dim)

    @staticmethod
    def zero(dim: int) -> "DenseSubspace":
        return DenseSubspace(np.zeros((dim, 0), dtype=complex), dim)

    @staticmethod
    def full(dim: int) -> "DenseSubspace":
        return DenseSubspace(np.eye(dim, dtype=complex), dim)

    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return self.basis.shape[1]

    def projector(self) -> np.ndarray:
        return self.basis @ self.basis.conj().T

    def join(self, other: "DenseSubspace") -> "DenseSubspace":
        if other.dim != self.dim:
            raise SubspaceError("dimension mismatch in join")
        stacked = np.concatenate([self.basis, other.basis], axis=1)
        return DenseSubspace.from_vectors(stacked.T, self.dim)

    def image(self, kraus: Sequence[np.ndarray]) -> "DenseSubspace":
        """``span { E_j v : v in basis }`` — Proposition 1 of the paper."""
        vectors: List[np.ndarray] = []
        for e in kraus:
            for col in range(self.dimension):
                vectors.append(e @ self.basis[:, col])
        return DenseSubspace.from_vectors(vectors, self.dim)

    def preimage(self, kraus: Sequence[np.ndarray]) -> "DenseSubspace":
        """``span { E_j^dagger v }`` — the adjoint image.

        The dense twin of backward (preimage) analysis: a state ``u``
        can transition onto a component of this subspace iff ``u`` is
        not orthogonal to the preimage (``<v|E u> = <E^dagger v|u>``).
        """
        return self.image([e.conj().T for e in kraus])

    # ------------------------------------------------------------------
    def contains_vector(self, vector: np.ndarray, tol: float = 1e-7) -> bool:
        v = np.asarray(vector, dtype=complex).reshape(-1)
        norm = np.linalg.norm(v)
        if norm < tol:
            return True
        residual = v - self.projector() @ v
        return bool(np.linalg.norm(residual) <= tol * norm)

    def contains(self, other: "DenseSubspace", tol: float = 1e-7) -> bool:
        return all(self.contains_vector(other.basis[:, c], tol)
                   for c in range(other.dimension))

    def equals(self, other: "DenseSubspace", tol: float = 1e-7) -> bool:
        return (self.dimension == other.dimension
                and np.allclose(self.projector(), other.projector(),
                                atol=tol))

    def __repr__(self) -> str:
        return f"DenseSubspace(dim={self.dim}, rank={self.dimension})"
