"""Unit tests for the Table I / Table II harness plumbing."""

from repro.bench.runner import BenchRow, run_image_benchmark
from repro.bench.table1 import (FAMILIES, TABLE1_METHODS, format_rows,
                                table1_rows)
from repro.bench.table2 import format_grid, sweep
from repro.systems import models


class TestRunner:
    def test_row_fields(self):
        row = run_image_benchmark(lambda: models.ghz_qts(4), "GHZ4",
                                  "contraction", k1=2, k2=2)
        assert row.benchmark == "GHZ4"
        assert row.dimension == 1
        assert row.seconds > 0
        assert row.max_nodes > 0
        assert not row.timed_out

    def test_soft_timeout_marks_row(self):
        row = run_image_benchmark(lambda: models.ghz_qts(6), "GHZ6",
                                  "basic", timeout_seconds=0.0)
        assert row.timed_out
        assert row.cells() == ("GHZ6", "basic", "-", "-", "-", "-")

    def test_cells_format(self):
        row = BenchRow("X", "basic", 1.234, 42, 1,
                       cache_hit_rate=0.5, peak_live_nodes=100,
                       live_nodes=10)
        assert row.cells() == ("X", "basic", "1.23", "42", "50%", "10/100")

    def test_instrumentation_fields(self):
        row = run_image_benchmark(lambda: models.ghz_qts(4), "GHZ4",
                                  "contraction", k1=2, k2=2)
        assert 0.0 <= row.cache_hit_rate <= 1.0
        assert 0 < row.live_nodes <= row.peak_live_nodes


class TestTable1:
    def test_family_coverage(self):
        assert set(FAMILIES) == {"Grover", "QFT", "BV", "GHZ", "QRW"}
        assert set(TABLE1_METHODS) == {"basic", "addition", "contraction"}
        for family, (builder, size_map, skip) in FAMILIES.items():
            assert {"small", "medium", "paper"} <= set(size_map)

    def test_single_family_rows(self):
        rows = table1_rows(scale="small", families=["GHZ"])
        labels = {row.benchmark for row in rows}
        assert all(label.startswith("GHZ") for label in labels)
        # every size x method present
        assert len(rows) == len(labels) * len(TABLE1_METHODS)

    def test_format_rows_layout(self):
        rows = [
            BenchRow("GHZ5", "basic", 0.5, 10, 1),
            BenchRow("GHZ5", "addition", 0.4, 8, 1),
            BenchRow("GHZ5", "contraction", 0.1, 6, 1),
            BenchRow("GHZ9", "basic", 0, 0, 0, timed_out=True),
            BenchRow("GHZ9", "addition", 0, 0, 0, timed_out=True),
            BenchRow("GHZ9", "contraction", 0.2, 12, 1),
        ]
        text = format_rows(rows)
        lines = text.splitlines()
        assert lines[0].startswith("Benchmark")
        assert any("GHZ9" in line and "-" in line for line in lines)


class TestTable2:
    def test_sweep_shape(self):
        grid = sweep(num_qubits=4, kmax=2, iterations=1)
        assert len(grid) == 2
        assert all(len(row) == 2 for row in grid)
        assert all(cell >= 0 for row in grid for cell in row)

    def test_format_grid(self):
        text = format_grid([[0.1, 0.2], [0.3, 0.4]])
        lines = text.splitlines()
        assert lines[0].startswith("k1\\k2")
        assert len(lines) == 4
