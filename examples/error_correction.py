"""Verifying the bit-flip error-correcting circuit (paper, Fig. 3).

The transition system has one operation with four Kraus circuits (one
per syndrome measurement outcome) — a *dynamic* quantum circuit.  The
correctness property is

    T( span{|100>, |010>, |001>} (x) |000> ) = span{|000000>}

i.e. every single bit-flip error state is mapped back to the codeword
space, with syndrome ancillas reset.  We check it with the paper's own
contraction-partition parameters for this circuit (k1 = 3, k2 = 2) and
also verify a *superposition* codeword survives an error.

Run:  python examples/error_correction.py
"""

import numpy as np

from repro import ModelChecker, models
from repro.image.engine import compute_image


def main() -> None:
    qts = models.bitflip_qts()
    print(f"System: {qts}")
    print(f"Kraus circuits (measurement branches): "
          f"{qts.operation('correct').num_kraus}")

    # --- the paper's property ----------------------------------------
    checker = ModelChecker(qts, method="contraction", k1=3, k2=2)
    expected = qts.space.span([qts.space.basis_state([0] * 6)])
    ok = checker.check_image_equals(expected)
    print(f"T(error states) = span{{|000000>}}: {ok}")
    assert ok

    # --- a corrupted logical superposition is restored ---------------
    # encode a|000> + b|111>, flip qubit 1, run the corrector
    a, b = 0.6, 0.8
    amplitudes = np.zeros(64, dtype=complex)
    amplitudes[0b010_000] = a  # X1 applied to |000>|000>
    amplitudes[0b101_000] = b  # X1 applied to |111>|000>
    corrupted = qts.space.span([qts.space.from_amplitudes(amplitudes)])
    image = compute_image(qts, subspace=corrupted,
                          method="contraction", k1=3, k2=2).subspace
    restored = np.zeros(64, dtype=complex)
    restored[0b000_000] = a
    restored[0b111_000] = b
    target = qts.space.span([qts.space.from_amplitudes(restored)])
    print(f"corrupted codeword restored: {image.equals(target)}")
    assert image.equals(target)

    # --- reachability: the corrector never leaves the code space -----
    trace = checker.reachable()
    print(f"reachability fixpoint after {trace.iterations} iterations, "
          f"dimension {trace.dimension}")


if __name__ == "__main__":
    main()
