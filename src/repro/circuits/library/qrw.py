"""Quantum random walk on a cycle (paper, Fig. 4, generalised).

One coin qubit (qubit 0) plus ``n - 1`` position qubits walking a
``2^(n-1)``-length cycle.  A step is the Hadamard coin followed by the
conditional shift ``S = S_0 (+) S_1``: decrement the position when the
coin shows 0, increment when it shows 1.  Increment/decrement are the
standard ripple cascades of multi-controlled X gates (anti-controls for
the decrement), exactly the C^n(X) towers drawn in Fig. 4.

The noisy variant (Section III.A.3) inserts a bit-flip channel
``E_b = { sqrt(p) I, sqrt(1-p) X }`` on the coin after the Hadamard,
yielding two Kraus circuits.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.errors import CircuitError


def qrw_shift(num_qubits: int) -> QuantumCircuit:
    """The conditional shift S = S_0 (+) S_1 (coin = qubit 0)."""
    if num_qubits < 2:
        raise CircuitError("QRW needs a coin qubit + >= 1 position qubit")
    coin = 0
    position = list(range(1, num_qubits))
    circuit = QuantumCircuit(num_qubits, f"qrw_shift{num_qubits}")
    # Increment (coin = 1): flip bit i when all less-significant bits
    # are 1; most-significant first so controls read pre-flip values.
    for i in range(len(position)):
        lower = position[i + 1:]
        controls = [coin] + lower
        states = [1] * len(controls)
        circuit.cnx(controls, position[i], states)
    # Decrement (coin = 0): flip bit i when all less-significant bits
    # are 0 (borrow ripple), with anti-controls.
    for i in range(len(position)):
        lower = position[i + 1:]
        controls = [coin] + lower
        states = [0] * len(controls)
        circuit.cnx(controls, position[i], states)
    return circuit


def qrw_step(num_qubits: int) -> QuantumCircuit:
    """One noiseless walk step: Hadamard coin, then the shift."""
    circuit = QuantumCircuit(num_qubits, f"qrw{num_qubits}")
    circuit.h(0)
    circuit.extend(qrw_shift(num_qubits).gates)
    return circuit


def qrw_noisy_kraus_circuits(num_qubits: int, probability: float
                             ) -> Tuple[QuantumCircuit, QuantumCircuit]:
    """The two Kraus circuits of a step with coin bit-flip noise.

    Returns ``(sqrt(p) * [H; S], sqrt(1-p) * [H; X; S])`` — the
    operation ``T_2 = S o (E_b (x) I) o (E_c (x) I)`` of Section
    III.A.3.
    """
    if not 0.0 <= probability <= 1.0:
        raise CircuitError("probability must lie in [0, 1]")
    shift = qrw_shift(num_qubits)
    keep = QuantumCircuit(num_qubits, f"qrw{num_qubits}_kI")
    keep.h(0)
    keep.scalar(math.sqrt(probability))
    keep.extend(shift.gates)
    flip = QuantumCircuit(num_qubits, f"qrw{num_qubits}_kX")
    flip.h(0)
    flip.scalar(math.sqrt(1.0 - probability))
    flip.x(0)
    flip.extend(shift.gates)
    return keep, flip
