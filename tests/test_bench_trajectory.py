"""The perf-trajectory snapshot and its CI regression gate."""

from repro.bench import trajectory


def snapshot(speedup: float, contractions: int) -> dict:
    return {"families": {"fam": {
        "scalar": {"median_seconds": speedup, "contractions": 12},
        "batched": {"median_seconds": 1.0, "contractions": contractions},
        "speedup": speedup,
    }}}


class TestCompare:
    def test_clean_pass(self):
        base = snapshot(2.0, 3)
        assert trajectory.compare(snapshot(2.0, 3), base) == []

    def test_speedup_erosion_within_tolerance_passes(self):
        base = snapshot(2.0, 3)
        assert trajectory.compare(snapshot(1.7, 3), base) == []

    def test_speedup_erosion_beyond_tolerance_fails(self):
        base = snapshot(2.0, 3)
        failures = trajectory.compare(snapshot(1.5, 3), base)
        assert len(failures) == 1
        assert "speedup" in failures[0]

    def test_contraction_regression_fails(self):
        base = snapshot(2.0, 3)
        failures = trajectory.compare(snapshot(2.0, 12), base)
        assert len(failures) == 1
        assert "contractions" in failures[0]

    def test_unknown_family_skipped(self):
        current = {"families": {}}
        assert trajectory.compare(current, snapshot(2.0, 3)) == []

    def test_custom_tolerance(self):
        base = snapshot(2.0, 3)
        assert trajectory.compare(snapshot(1.5, 3), base,
                                  tolerance=0.5) == []


class TestMeasure:
    def test_family_entry_schema(self):
        entry = trajectory.measure_family(
            trajectory.FAMILIES["bitflip"], repeats=1)
        assert set(entry) == {"scalar", "batched", "speedup", "dimension"}
        assert entry["scalar"]["contractions"] > \
            entry["batched"]["contractions"]
        assert entry["dimension"] == 1

    def test_snapshot_round_trips_through_compare(self):
        current = trajectory.measure(repeats=1)
        # a snapshot never regresses against itself
        assert trajectory.compare(current, current) == []
