"""Image computation for quantum transition systems (paper, Sections IV-V).

Three interchangeable algorithms:

* :class:`~repro.image.basic.BasicImageComputer` — Algorithm 1:
  contract each Kraus circuit into one monolithic operator TDD, apply
  it to every basis state, join the results.
* :class:`~repro.image.addition.AdditionImageComputer` — Section V.A:
  slice the k highest-degree internal indices of the circuit's index
  graph and sum the per-slice contributions.
* :class:`~repro.image.contraction.ContractionImageComputer` — Section
  V.B: cut the circuit into blocks of at most k1 qubits and at most k2
  crossing multi-qubit gates per column, contract each block into a
  small TDD, and contract the state through the block network.

Use :func:`~repro.image.engine.compute_image` for a uniform entry
point.
"""

from repro.image.base import ImageResult
from repro.image.basic import BasicImageComputer
from repro.image.addition import AdditionImageComputer
from repro.image.contraction import ContractionImageComputer
from repro.image.hybrid import HybridImageComputer
from repro.image.engine import compute_image, make_computer, METHODS

__all__ = [
    "ImageResult", "BasicImageComputer", "AdditionImageComputer",
    "ContractionImageComputer", "HybridImageComputer",
    "compute_image", "make_computer", "METHODS",
]
