"""Benchmark harness regenerating the paper's Table I and Table II."""

from repro.bench.runner import BenchRow, run_image_benchmark
from repro.bench import table1, table2

# repro.bench.smoke is a CLI entry point (`python -m repro.bench.smoke`);
# importing it eagerly here would trigger the runpy double-import warning.

__all__ = ["BenchRow", "run_image_benchmark", "table1", "table2"]
