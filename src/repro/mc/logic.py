"""Birkhoff-von Neumann quantum logic over subspaces.

The paper's motivating specification language ([14] in its reference
list) treats atomic propositions as closed subspaces of the state
space: conjunction is the lattice meet, disjunction the join, and
negation the orthocomplement.  This module gives those connectives a
small propositional AST plus the temporal checks the case studies use:

* ``check_always`` — AG φ: every reachable state satisfies φ,
* ``check_eventually_overlaps`` — EF-style: the reachable space is not
  orthogonal to φ (some reachable state has a component in φ).

A pure state ``|ψ⟩`` *satisfies* a proposition φ iff ``|ψ⟩`` lies in
the denoted subspace — the standard BvN satisfaction relation.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.mc.reachability import reachable_space
from repro.subspace.subspace import StateSpace, Subspace
from repro.systems.qts import QuantumTransitionSystem
from repro.tdd.tdd import TDD


class Proposition:
    """A quantum-logic formula; ``denote(space)`` yields its subspace."""

    def denote(self, space: StateSpace) -> Subspace:
        raise NotImplementedError

    # connective sugar -------------------------------------------------
    def __and__(self, other: "Proposition") -> "Proposition":
        return Meet(self, other)

    def __or__(self, other: "Proposition") -> "Proposition":
        return Join(self, other)

    def __invert__(self) -> "Proposition":
        return Not(self)


class Atomic(Proposition):
    """An atomic proposition: a subspace given directly."""

    def __init__(self, subspace: Subspace, name: str = "p") -> None:
        self.subspace = subspace
        self.name = name

    def denote(self, space: StateSpace) -> Subspace:
        if self.subspace.space is not space:
            raise ValueError(f"atomic {self.name!r} denotes a subspace of "
                             f"a different state space")
        return self.subspace

    def __repr__(self) -> str:
        return self.name


class Meet(Proposition):
    """Conjunction: the lattice meet (subspace intersection)."""

    def __init__(self, left: Proposition, right: Proposition) -> None:
        self.left = left
        self.right = right

    def denote(self, space: StateSpace) -> Subspace:
        return self.left.denote(space).meet(self.right.denote(space))

    def __repr__(self) -> str:
        return f"({self.left!r} & {self.right!r})"


class Join(Proposition):
    """Disjunction: the lattice join (closed span of the union)."""

    def __init__(self, left: Proposition, right: Proposition) -> None:
        self.left = left
        self.right = right

    def denote(self, space: StateSpace) -> Subspace:
        return self.left.denote(space).join(self.right.denote(space))

    def __repr__(self) -> str:
        return f"({self.left!r} | {self.right!r})"


class Not(Proposition):
    """Negation: the orthocomplement."""

    def __init__(self, inner: Proposition) -> None:
        self.inner = inner

    def denote(self, space: StateSpace) -> Subspace:
        return self.inner.denote(space).complement()

    def __repr__(self) -> str:
        return f"~{self.inner!r}"


# ----------------------------------------------------------------------
# satisfaction and temporal checks
# ----------------------------------------------------------------------
def satisfies(state: TDD, prop: Proposition, space: StateSpace,
              tol: float = 1e-7) -> bool:
    """BvN satisfaction: ``|state>`` lies in the denoted subspace."""
    return prop.denote(space).contains_state(state, tol)


def check_always(qts: QuantumTransitionSystem, prop: Proposition,
                 method: str = "contraction", **params) -> bool:
    """AG φ: the reachable space is contained in [[φ]]."""
    trace = reachable_space(qts, method=method, **params)
    return prop.denote(qts.space).contains(trace.subspace)


def check_eventually_overlaps(qts: QuantumTransitionSystem,
                              prop: Proposition,
                              method: str = "contraction",
                              **params) -> bool:
    """Can the system ever produce a state with a component in [[φ]]?

    True iff the reachable space is not orthogonal to the denoted
    subspace (a necessary condition for EF φ; exact for 1-dimensional
    reachable spaces).
    """
    trace = reachable_space(qts, method=method, **params)
    return not trace.subspace.is_orthogonal_to(prop.denote(qts.space))
