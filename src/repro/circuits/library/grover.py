"""Grover iteration circuits (paper, Fig. 2, generalised to n qubits).

The circuit acts on ``n = m + 1`` qubits: *m* search qubits plus one
oracle ancilla (prepared in |-> by the initial subspace).  The oracle
marks the all-ones assignment ``f(x) = x_1 AND ... AND x_m`` with a
C^m(X) onto the ancilla; the diffusion operator ``2|psi><psi| - I`` on
the search qubits is the standard H/X sandwich around a multi-
controlled X conjugated by H on the last search qubit.  For ``m = 2``
this reproduces Fig. 2 gate-for-gate (CCX oracle + 2-qubit reflection).
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit
from repro.errors import CircuitError


def grover_iteration(num_qubits: int) -> QuantumCircuit:
    """One Grover iteration on ``num_qubits`` = search + 1 ancilla."""
    if num_qubits < 3:
        raise CircuitError("Grover iteration needs >= 2 search qubits "
                           "+ 1 ancilla")
    m = num_qubits - 1
    ancilla = num_qubits - 1
    search = list(range(m))
    circuit = QuantumCircuit(num_qubits, f"grover{num_qubits}")
    # Oracle: phase kickback via C^m(X) on the |-> ancilla.
    circuit.cnx(search, ancilla)
    # Diffusion 2|psi><psi| - I on the search register.
    for q in search:
        circuit.h(q)
    for q in search:
        circuit.x(q)
    last = search[-1]
    if m == 1:
        circuit.z(last)
    else:
        circuit.h(last)
        circuit.cnx(search[:-1], last)
        circuit.h(last)
    for q in search:
        circuit.x(q)
    for q in search:
        circuit.h(q)
    return circuit
