"""Engine configuration as a first-class value: :class:`CheckerConfig`.

Before this module existed, every layer re-spelled the same knobs —
``backend`` / ``method`` / ``strategy`` / ``jobs`` / ``slice_depth``
plus per-method parameters — as loose keyword arguments, and a knob
that did not apply to the chosen backend was *silently dropped* (the
old ``make_backend`` filtered them away).  ``CheckerConfig`` is the
single source of truth instead:

* construction **validates**: unknown backends/methods/strategies,
  method parameters that do not belong to the chosen method, and
  tdd-only options combined with the dense backend all raise a
  :class:`~repro.errors.ConfigError` up front;
* it is **frozen** — a config can be shared between a checker, a sweep
  spec and an artifact without defensive copying;
* it **round-trips**: :meth:`to_json` / :meth:`from_json` and
  :meth:`as_dict` / :meth:`from_dict` for sweep artifacts,
  :meth:`from_cli_args` for the argparse namespaces of the CLI;
* the legacy keyword spellings remain available through
  :meth:`from_kwargs`, which reproduces the old tolerant behaviour
  (dropping mismatched knobs) so that deprecated call sites keep
  working while new code gets strict validation.

Threaded through :class:`~repro.mc.checker.ModelChecker`,
:func:`~repro.mc.backends.make_backend`,
:class:`~repro.image.engine.ImageEngine`,
:func:`~repro.image.engine.compute_image`, the CLI and
:class:`~repro.bench.sweep.RunSpec`.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import MISSING, dataclass, field, fields, replace
from typing import Mapping, Optional

from repro.errors import ConfigError
from repro.image.engine import DIRECTIONS, METHODS
from repro.image.sliced import DEFAULT_SLICE_DEPTH, STRATEGIES
from repro.mc.drivers import DEFAULT_DRIVER, DRIVERS

#: the available computation engines (the dense statevector reference
#: is exponential — small sizes only)
BACKENDS = ("tdd", "dense")

#: method name -> the parameter names that method understands
METHOD_PARAMS = {
    "basic": frozenset(),
    "addition": frozenset({"k"}),
    "contraction": frozenset({"k1", "k2", "order_policy"}),
    "hybrid": frozenset({"k", "k1", "k2", "order_policy"}),
}

#: settings that only the symbolic tdd backend interprets
_TDD_ONLY_FIELDS = ("method", "strategy", "jobs", "slice_depth",
                    "method_params", "batched")

#: CLI / legacy defaults for the per-method parameters (Table I values)
_CLI_METHOD_DEFAULTS = {
    "basic": {},
    "addition": {"k": 1},
    "contraction": {"k1": 4, "k2": 4},
    "hybrid": {"k": 1, "k1": 4, "k2": 4},
}


def _warn_legacy(old: str, stacklevel: int = 3) -> None:
    warnings.warn(
        f"{old} is deprecated; build a repro.mc.config.CheckerConfig and "
        f"pass it as `config` instead",
        DeprecationWarning, stacklevel=stacklevel)


@dataclass(frozen=True)
class CheckerConfig:
    """One validated, immutable engine configuration.

    ``method_params`` are the image-method parameters (``k`` for
    addition, ``k1``/``k2``/``order_policy`` for contraction, all of
    them for hybrid); ``jobs``/``slice_depth`` configure the sliced
    execution strategy; ``max_qubits`` raises the dense backend's size
    guard.  ``direction`` selects forward (image) or backward
    (preimage, against the adjoint Kraus family) analysis and ``bound``
    depth-limits reachability fixpoints (0 = run to saturation);
    ``driver`` picks the fixpoint schedule
    (:mod:`repro.mc.drivers`: ``sequential`` / ``opsharded`` /
    ``frontier``) — all three are honoured by *both* backends.  Every
    mismatch is rejected at construction time.
    """

    backend: str = "tdd"
    method: str = "contraction"
    strategy: str = "monolithic"
    jobs: Optional[int] = None
    slice_depth: int = DEFAULT_SLICE_DEPTH
    method_params: Mapping[str, object] = field(default_factory=dict)
    max_qubits: Optional[int] = None
    direction: str = "forward"
    bound: int = 0
    driver: str = DEFAULT_DRIVER
    #: apply multi-Kraus families through the batched weight kernel
    #: (one vector-weight contraction per basis state instead of one
    #: per Kraus branch); False restores the scalar per-branch loop
    batched: bool = True

    def __post_init__(self) -> None:
        # freeze a private copy so a caller-held dict cannot mutate us
        object.__setattr__(self, "method_params", dict(self.method_params))
        self.validate()

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Reject unknown names and mismatched parameters loudly."""
        if self.backend not in BACKENDS:
            raise ConfigError(f"unknown backend {self.backend!r}; "
                              f"choose from {BACKENDS}")
        if self.method not in METHODS:
            raise ConfigError(f"unknown image method {self.method!r}; "
                              f"choose from {METHODS}")
        if self.strategy not in STRATEGIES:
            raise ConfigError(f"unknown strategy {self.strategy!r}; "
                              f"choose from {STRATEGIES}")
        if self.direction not in DIRECTIONS:
            raise ConfigError(f"unknown direction {self.direction!r}; "
                              f"choose from {DIRECTIONS}")
        if self.driver not in DRIVERS:
            raise ConfigError(f"unknown driver {self.driver!r}; "
                              f"choose from {DRIVERS}")
        if not isinstance(self.bound, int) or self.bound < 0:
            raise ConfigError(f"bound must be a non-negative integer "
                              f"(0 = unbounded), got {self.bound!r}")
        if not isinstance(self.batched, bool):
            raise ConfigError(f"batched must be a bool, "
                              f"got {self.batched!r}")
        allowed = METHOD_PARAMS[self.method]
        unknown = set(self.method_params) - allowed
        if unknown:
            hints = []
            for name in sorted(unknown):
                owners = sorted(method for method, params
                                in METHOD_PARAMS.items() if name in params)
                hints.append(f"{name!r}"
                             + (f" (a parameter of {', '.join(owners)})"
                                if owners else ""))
            raise ConfigError(
                f"method {self.method!r} does not take {', '.join(hints)}; "
                f"it accepts {sorted(allowed) if allowed else 'no parameters'}")
        if self.jobs is not None:
            if not isinstance(self.jobs, int) or self.jobs < 1:
                raise ConfigError(f"jobs must be a positive integer, "
                                  f"got {self.jobs!r}")
            if self.strategy != "sliced":
                raise ConfigError(
                    f"jobs={self.jobs} only applies to the sliced "
                    f"strategy; got strategy={self.strategy!r}")
        if not isinstance(self.slice_depth, int) or self.slice_depth < 0:
            raise ConfigError(f"slice_depth must be a non-negative "
                              f"integer, got {self.slice_depth!r}")
        if (self.slice_depth != DEFAULT_SLICE_DEPTH
                and self.strategy != "sliced"):
            raise ConfigError(
                f"slice_depth={self.slice_depth} only applies to the "
                f"sliced strategy; got strategy={self.strategy!r}")
        if self.backend == "dense":
            offending = [name for name in _TDD_ONLY_FIELDS
                         if getattr(self, name) != _DEFAULTS[name]]
            if offending:
                raise ConfigError(
                    f"{', '.join(offending)} are tdd-only options; the "
                    f"dense backend would silently ignore them — remove "
                    f"them or use backend='tdd'")
            if self.max_qubits is not None and (
                    not isinstance(self.max_qubits, int)
                    or self.max_qubits < 1):
                raise ConfigError(f"max_qubits must be a positive "
                                  f"integer, got {self.max_qubits!r}")
        elif self.max_qubits is not None:
            raise ConfigError("max_qubits is a dense-only option; the "
                              "tdd backend has no dimension guard")

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_kwargs(cls, backend: str = "tdd",
                    method: str = "contraction",
                    strategy: str = "monolithic",
                    jobs: Optional[int] = None,
                    slice_depth: int = DEFAULT_SLICE_DEPTH,
                    max_qubits: Optional[int] = None,
                    method_params: Optional[Mapping] = None,
                    direction: str = "forward",
                    bound: int = 0,
                    driver: str = DEFAULT_DRIVER,
                    **params) -> "CheckerConfig":
        """The legacy keyword spelling, with the legacy tolerance.

        Old call sites passed tdd knobs alongside ``backend="dense"``
        (or ``jobs`` without the sliced strategy) and relied on them
        being dropped; this shim reproduces that so deprecated
        constructors keep working.  New code should construct
        :class:`CheckerConfig` directly and get strict validation.
        """
        merged = dict(method_params or {})
        merged.update(params)
        if strategy != "sliced":
            jobs = None
            slice_depth = DEFAULT_SLICE_DEPTH
        if backend == "dense":
            return cls(backend="dense", max_qubits=max_qubits,
                       direction=direction, bound=bound, driver=driver)
        return cls(backend=backend, method=method, strategy=strategy,
                   jobs=jobs, slice_depth=slice_depth,
                   method_params=merged, direction=direction, bound=bound,
                   driver=driver)

    @classmethod
    def from_cli_args(cls, args) -> "CheckerConfig":
        """Build a config from an argparse namespace (strictly).

        Explicit tdd-only flags combined with ``--backend dense`` raise
        a :class:`~repro.errors.ConfigError` instead of vanishing (the
        silent-drop bug the old CLI had); flags still at their argparse
        defaults are treated as unset.
        """
        backend = getattr(args, "backend", "tdd")
        method = getattr(args, "method", "contraction")
        strategy = getattr(args, "strategy", "monolithic")
        jobs = getattr(args, "jobs", None)
        slice_depth = getattr(args, "slice_depth", DEFAULT_SLICE_DEPTH)
        direction = getattr(args, "direction", "forward")
        bound = getattr(args, "bound", 0)
        driver = getattr(args, "driver", DEFAULT_DRIVER)
        method_params = {}
        for name in sorted(METHOD_PARAMS[method]):
            if hasattr(args, name):
                method_params[name] = getattr(args, name)
        if backend == "dense":
            # flags left at their CLI defaults were not asked for;
            # anything else reaches validate() and is rejected there
            if method == "contraction" and (
                    method_params == _CLI_METHOD_DEFAULTS["contraction"]):
                method = "contraction"
                method_params = {}
            return cls(backend="dense", method=method,
                       strategy=strategy, jobs=jobs,
                       slice_depth=slice_depth,
                       method_params=method_params,
                       direction=direction, bound=bound, driver=driver)
        return cls(backend=backend, method=method, strategy=strategy,
                   jobs=jobs, slice_depth=slice_depth,
                   method_params=method_params,
                   direction=direction, bound=bound, driver=driver)

    def replace(self, **changes) -> "CheckerConfig":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # round-trips
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """A JSON-able dict; defaults are included for explicitness."""
        return {"backend": self.backend, "method": self.method,
                "strategy": self.strategy, "jobs": self.jobs,
                "slice_depth": self.slice_depth,
                "method_params": dict(self.method_params),
                "max_qubits": self.max_qubits,
                "direction": self.direction, "bound": self.bound,
                "driver": self.driver, "batched": self.batched}

    @classmethod
    def from_dict(cls, data: Mapping) -> "CheckerConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown CheckerConfig fields "
                              f"{sorted(unknown)}; known: {sorted(known)}")
        return cls(**dict(data))

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CheckerConfig":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ConfigError(f"a CheckerConfig JSON document must be an "
                              f"object, got {type(data).__name__}")
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        """A one-line human-readable echo (CLI output, CheckResult)."""
        parts = [f"backend={self.backend}"]
        if self.direction != "forward":
            parts.append(f"direction={self.direction}")
        if self.bound:
            parts.append(f"bound={self.bound}")
        if self.driver != DEFAULT_DRIVER:
            parts.append(f"driver={self.driver}")
        if self.backend == "tdd":
            parts.append(f"method={self.method}")
            if not self.batched:
                parts.append("batched=off")
            if self.strategy != "monolithic":
                parts.append(f"strategy={self.strategy}")
                if self.jobs:
                    parts.append(f"jobs={self.jobs}")
                if self.slice_depth != DEFAULT_SLICE_DEPTH:
                    parts.append(f"slice_depth={self.slice_depth}")
            for name in sorted(self.method_params):
                parts.append(f"{name}={self.method_params[name]}")
        elif self.max_qubits is not None:
            parts.append(f"max_qubits={self.max_qubits}")
        return " ".join(parts)


#: the field defaults, used to detect "explicitly set" tdd-only
#: options — derived from the dataclass so the two cannot drift
_DEFAULTS = {f.name: (f.default_factory() if f.default is MISSING
                      else f.default)
             for f in fields(CheckerConfig)
             if f.name in _TDD_ONLY_FIELDS}


def coerce_config(config, legacy_kwargs: dict, *,
                  owner: str) -> CheckerConfig:
    """Resolve the ``config``-or-legacy-kwargs calling convention.

    Shared by the constructors that accept both the new ``config``
    object and the deprecated keyword spelling.  Passing both is an
    error; the legacy spelling emits a :class:`DeprecationWarning`.
    """
    if config is not None and legacy_kwargs:
        raise ConfigError(f"{owner} takes either a CheckerConfig or the "
                          f"legacy keyword arguments "
                          f"{sorted(legacy_kwargs)}, not both")
    if config is not None:
        if not isinstance(config, CheckerConfig):
            raise ConfigError(f"{owner} config must be a CheckerConfig, "
                              f"got {type(config).__name__}")
        return config
    if legacy_kwargs:
        _warn_legacy(f"{owner} with engine keyword arguments "
                     f"{sorted(legacy_kwargs)}", stacklevel=4)
        return CheckerConfig.from_kwargs(**legacy_kwargs)
    return CheckerConfig()
