"""Smoke benchmark: one small Table-1 row per image method, <60 s total.

Runs a single benchmark instance through all four image computation
methods (basic / addition / contraction / hybrid) and prints the Table
I columns plus the kernel instrumentation — cache hit rate and the
post-GC/peak live-node population.  CI runs this to catch perf or
instrumentation regressions without paying for the full Table I grid.

Run:  ``python -m repro.bench.smoke [--model grover] [--size 6]``
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.bench.runner import run_image_benchmark
from repro.systems import models
from repro.utils.tables import format_table

#: method name -> image parameters (Table I settings + the hybrid row)
SMOKE_METHODS: Dict[str, dict] = {
    "basic": {},
    "addition": {"k": 1},
    "contraction": {"k1": 4, "k2": 4},
    "hybrid": {"k": 1, "k1": 4, "k2": 4},
}

_BUILDERS: Dict[str, Callable[[int], object]] = {
    "ghz": models.ghz_qts,
    "bv": models.bv_qts,
    "qft": models.qft_qts,
    "grover": lambda n: models.grover_qts(n, iterations=2),
    "qrw": lambda n: models.qrw_qts(n, 0.1, steps=2),
}


def smoke_rows(model: str = "grover", size: int = 6) -> List:
    builder = _BUILDERS[model]
    label = f"{model}{size}"
    return [run_image_benchmark(lambda: builder(size), label, method,
                                **params)
            for method, params in SMOKE_METHODS.items()]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--model", default="grover",
                        choices=sorted(_BUILDERS))
    parser.add_argument("--size", type=int, default=6)
    args = parser.parse_args(argv)
    rows = smoke_rows(args.model, args.size)
    headers = ["Benchmark", "method", "time [s]", "max#node", "dim",
               "cache hit%", "live/peak nodes"]
    table = [[row.benchmark, row.method, f"{row.seconds:.2f}",
              str(row.max_nodes), str(row.dimension),
              row.hit_rate_percent,
              f"{row.live_nodes}/{row.peak_live_nodes}"]
             for row in rows]
    print("Smoke benchmark — one Table-1 row per method")
    print(format_table(headers, table))
    # all four methods must compute the same image dimension
    dims = {row.dimension for row in rows}
    if len(dims) != 1:
        print(f"FAIL: methods disagree on image dimension: {dims}")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
