"""Bit-string helpers shared by gates, circuits and subspace code."""

from __future__ import annotations

from typing import List, Sequence


def int_to_bits(value: int, width: int) -> List[int]:
    """Big-endian bit decomposition of ``value`` into ``width`` bits.

    >>> int_to_bits(6, 4)
    [0, 1, 1, 0]
    """
    if value < 0:
        raise ValueError("value must be non-negative")
    if value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return [(value >> (width - 1 - i)) & 1 for i in range(width)]


def bits_to_int(bits: Sequence[int]) -> int:
    """Inverse of :func:`int_to_bits`.

    >>> bits_to_int([0, 1, 1, 0])
    6
    """
    out = 0
    for b in bits:
        if b not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {b!r}")
        out = (out << 1) | b
    return out


def gray_code(width: int) -> List[int]:
    """The standard reflected Gray code sequence on ``width`` bits.

    >>> gray_code(2)
    [0, 1, 3, 2]
    """
    return [i ^ (i >> 1) for i in range(1 << width)]
