"""Table I — Grover rows (scaled).

Paper (C++ TDD, 3600 s timeout):
    Grover15  basic 19.33 s / 15785    addition 17.35 s / 15099
              contraction 1.61 s / 597
    Grover40  only contraction finishes (2953 s / 851973).

Reproduction at pure-Python scale: two composed Grover iterations on
8 qubits (the regime where the monolithic operator TDD mixes); expect
contraction << addition <= basic on max_nodes and time, and only
contraction to stay flat as qubits grow.
"""

import pytest

from repro.systems import models


def grover(n):
    return models.grover_qts(n, iterations=2)


@pytest.mark.parametrize("method,params", [
    ("basic", {}),
    ("addition", {"k": 1}),
    ("contraction", {"k1": 4, "k2": 4}),
])
def test_grover8(image_bench, method, params):
    result = image_bench(lambda: grover(8), method, **params)
    assert result.dimension >= 1


def test_grover9_contraction_only(image_bench):
    """The 'beyond basic' row: contraction keeps scaling."""
    result = image_bench(lambda: grover(9), "contraction", k1=4, k2=4)
    assert result.dimension >= 1


def test_grover_method_ordering():
    """The Table I shape: contraction's peak nodes are far below
    basic's on the same instance."""
    from repro.image.engine import compute_image
    basic = compute_image(grover(8), method="basic")
    contraction = compute_image(grover(8), method="contraction",
                                k1=4, k2=4)
    addition = compute_image(grover(8), method="addition", k=1)
    assert contraction.stats.max_nodes * 2 < basic.stats.max_nodes
    assert addition.stats.max_nodes <= basic.stats.max_nodes
