"""The :class:`ModelChecker` facade.

Bundles a QTS with a chosen computation backend (symbolic TDD engine or
the dense statevector reference, see :mod:`repro.mc.backends`) and
exposes the checks a user actually runs: one-step images, reachability,
invariance and safety — plus :meth:`cross_validate`, which replays an
image on the dense backend to corroborate the symbolic result on small
instances.

The symbolic backend is configured along two orthogonal axes: the
image *method* (``basic`` / ``addition`` / ``contraction`` /
``hybrid`` — how the transition relation is partitioned, all running
on the iterative apply kernel) and the execution *strategy*
(``monolithic`` / ``sliced`` — whether contractions run sequentially
in-process or as parallel cofactor subproblems on a worker pool, see
:mod:`repro.image.sliced`).  This is the top of the public API — see
``examples/quickstart.py`` and ``examples/parallel_sweep.py``.
"""

from __future__ import annotations

from typing import Optional

from repro.image.base import ImageResult
from repro.mc.backends import CrossValidation, cross_validate, make_backend
from repro.mc.invariants import invariant_holds
from repro.mc.reachability import ReachabilityTrace
from repro.subspace.subspace import Subspace
from repro.systems.qts import QuantumTransitionSystem


class ModelChecker:
    """Model checking driver for one quantum transition system."""

    def __init__(self, qts: QuantumTransitionSystem,
                 method: str = "contraction",
                 backend: str = "tdd",
                 strategy: str = "monolithic",
                 jobs: Optional[int] = None, **params) -> None:
        self.qts = qts
        self.method = method
        self.strategy = strategy
        self.jobs = jobs
        self.params = dict(params)
        self.backend = make_backend(backend, method=method,
                                    strategy=strategy, jobs=jobs, **params)

    # ------------------------------------------------------------------
    def image(self, subspace: Optional[Subspace] = None) -> ImageResult:
        """One-step image ``T(S)`` with run statistics."""
        return self.backend.compute_image(self.qts, subspace)

    def reachable(self, max_iterations: int = 0,
                  frontier: bool = False) -> ReachabilityTrace:
        """The reachable subspace from the initial space."""
        return self.backend.reachable(self.qts,
                                      max_iterations=max_iterations,
                                      frontier=frontier)

    def cross_validate(self, subspace: Optional[Subspace] = None,
                       tol: float = 1e-7) -> CrossValidation:
        """Compare this checker's image against the dense reference."""
        return cross_validate(self.qts, subspace, method=self.method,
                              tol=tol, **self.params)

    # ------------------------------------------------------------------
    # Subspace-level checks run on the image of whichever backend is
    # configured — both backends return the same TDD-backed types, so
    # one code path serves all of them.
    def check_invariant(self, subspace: Optional[Subspace] = None,
                        strict: bool = False) -> bool:
        """Does the system stay inside ``S`` (``T(S) <= S``)?"""
        if subspace is None:
            subspace = self.qts.initial
        image = self.backend.compute_image(self.qts, subspace).subspace
        return invariant_holds(image, subspace, strict)

    def check_image_equals(self, expected: Subspace,
                           subspace: Optional[Subspace] = None) -> bool:
        image = self.backend.compute_image(self.qts, subspace).subspace
        return image.equals(expected)

    def check_safety(self, bound: Subspace,
                     max_iterations: int = 0) -> bool:
        """Is every reachable state inside ``bound``?"""
        trace = self.reachable(max_iterations)
        return bound.contains(trace.subspace)

    def __repr__(self) -> str:
        return (f"ModelChecker({self.qts.name!r}, method={self.method!r}, "
                f"backend={self.backend.name!r})")
