"""TDD serialisation round trips (to_dict / from_dict)."""

import json

import numpy as np
import pytest

from repro.indices.index import Index
from repro.tdd import construction as tc
from repro.tdd.io import from_dict, to_dict

from tests.helpers import fresh_manager, random_tensor

NAMES = ["a0", "a1", "a2"]


def idx(*names):
    return [Index(n) for n in names]


class TestRoundTrip:
    def test_same_manager(self, rng):
        m = fresh_manager(NAMES)
        arr = random_tensor(rng, 3)
        t = tc.from_numpy(m, arr, idx(*NAMES))
        rebuilt = from_dict(m, to_dict(t))
        assert rebuilt.root.node is t.root.node  # canonical re-interning
        assert np.allclose(rebuilt.to_numpy(), arr)

    def test_cross_manager(self, rng):
        m1 = fresh_manager(NAMES)
        m2 = fresh_manager(NAMES)
        arr = random_tensor(rng, 3)
        t = tc.from_numpy(m1, arr, idx(*NAMES))
        rebuilt = from_dict(m2, to_dict(t))
        assert rebuilt.manager is m2
        assert np.allclose(rebuilt.to_numpy(), arr)

    def test_through_json(self, rng):
        m1 = fresh_manager(NAMES)
        m2 = fresh_manager(NAMES)
        arr = random_tensor(rng, 2)
        t = tc.from_numpy(m1, arr, idx("a0", "a1"))
        text = json.dumps(to_dict(t))
        rebuilt = from_dict(m2, json.loads(text))
        assert np.allclose(rebuilt.to_numpy(), arr)

    def test_zero_tensor(self):
        m = fresh_manager(NAMES)
        t = tc.zero(m, idx("a0"))
        rebuilt = from_dict(m, to_dict(t))
        assert rebuilt.is_zero

    def test_scalar(self):
        m = fresh_manager(NAMES)
        t = tc.scalar(m, 0.5 - 0.25j)
        rebuilt = from_dict(m, to_dict(t))
        assert rebuilt.scalar_value() == 0.5 - 0.25j

    def test_shared_structure_preserved(self):
        m = fresh_manager(NAMES)
        # GHZ-ish tensor has shared subgraphs; round trip must not blow up
        ghz = (tc.basis_state(m, idx(*NAMES), [0, 0, 0])
               + tc.basis_state(m, idx(*NAMES), [1, 1, 1]))
        rebuilt = from_dict(m, to_dict(ghz))
        assert rebuilt.size() == ghz.size()

    def test_projector_round_trip(self, rng):
        from tests.helpers import make_space
        space = make_space(2)
        sub = space.span([space.from_amplitudes(rng.normal(size=4))])
        rebuilt = from_dict(space.manager, to_dict(sub.projector))
        assert rebuilt.allclose(sub.projector)
