"""Gate decomposition passes (differential vs the dense simulator)."""

import math

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.decompose import (decompose_circuit, decompose_gate,
                                      zyz_decompose)
from repro.errors import CircuitError
from repro.gates import library as gl
from repro.gates import matrices as gm
from repro.sim.statevector import circuit_unitary


def unitary_of(gates, n):
    circuit = QuantumCircuit(n)
    circuit.extend(gates)
    return circuit_unitary(circuit)


def assert_equal_up_to_phase(u, v, atol=1e-8):
    ratio = u @ v.conj().T
    assert np.allclose(ratio, ratio[0, 0] * np.eye(u.shape[0]), atol=atol)
    assert np.isclose(abs(ratio[0, 0]), 1.0, atol=atol)


class TestZYZ:
    @pytest.mark.parametrize("name", ["H", "X", "Y", "Z", "S", "T", "SX"])
    def test_fixed_gates(self, name):
        u = getattr(gm, name)
        alpha, a, b, c = zyz_decompose(u)
        rebuilt = (cmath_exp(alpha) * gm.rz(a) @ gm.ry(b) @ gm.rz(c))
        assert np.allclose(rebuilt, u, atol=1e-9)

    def test_random_unitaries(self, rng):
        from scipy.stats import unitary_group
        for seed in range(5):
            u = unitary_group.rvs(2, random_state=seed)
            alpha, a, b, c = zyz_decompose(u)
            rebuilt = cmath_exp(alpha) * gm.rz(a) @ gm.ry(b) @ gm.rz(c)
            assert np.allclose(rebuilt, u, atol=1e-9)


def cmath_exp(alpha):
    return np.exp(1j * alpha)


class TestSingleGates:
    def test_basis_gates_pass_through(self):
        assert decompose_gate(gl.h(0)) == [gl.h(0)] or \
            decompose_gate(gl.h(0))[0].name == "h"

    def test_arbitrary_single_qubit(self, rng):
        from scipy.stats import unitary_group
        u = unitary_group.rvs(2, random_state=7)
        gate = gl.kraus("u", 0, u)
        gates = decompose_gate(gate)
        assert_equal_up_to_phase(unitary_of(gates, 1), u)

    def test_swap(self):
        gates = decompose_gate(gl.swap(0, 1))
        assert [g.name for g in gates] == ["cx", "cx", "cx"]
        assert np.allclose(unitary_of(gates, 2), gm.SWAP)

    def test_projector_rejected(self):
        with pytest.raises(CircuitError):
            decompose_gate(gl.proj(0, 1))


class TestControlled:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_cnx(self, k):
        gate = gl.cnx(list(range(k)), k)
        gates = decompose_gate(gate, keep_ccx=False)
        expect = gate.operator_matrix()
        # embed: controls 0..k-1, target k
        got = unitary_of(gates, k + 1)
        assert_equal_up_to_phase(got, _embed(expect, k + 1))

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_cnp(self, k):
        theta = 0.9
        gate = gl.cnu(list(range(k)), k, gm.phase(theta))
        gates = decompose_gate(gate, keep_ccx=False)
        got = unitary_of(gates, k + 1)
        assert_equal_up_to_phase(got, _embed(gate.operator_matrix(), k + 1))

    def test_ccx_kept_when_allowed(self):
        gates = decompose_gate(gl.ccx(0, 1, 2), keep_ccx=True)
        assert [g.name for g in gates] == ["ccx"]

    def test_anti_controls(self):
        gate = gl.cnx([0, 1], 2, control_states=[0, 1])
        gates = decompose_gate(gate, keep_ccx=True)
        got = unitary_of(gates, 3)
        assert_equal_up_to_phase(got, _embed(gate.operator_matrix(), 3))

    def test_controlled_general_unitary(self):
        from scipy.stats import unitary_group
        u = unitary_group.rvs(2, random_state=3)
        gate = gl.cnu([0], 1, u)
        gates = decompose_gate(gate)
        got = unitary_of(gates, 2)
        assert_equal_up_to_phase(got, gate.operator_matrix())

    @pytest.mark.parametrize("k", [2, 3])
    def test_multi_controlled_general_unitary(self, k):
        from scipy.stats import unitary_group
        u = unitary_group.rvs(2, random_state=11)
        gate = gl.cnu(list(range(k)), k, u)
        gates = decompose_gate(gate, keep_ccx=False)
        got = unitary_of(gates, k + 1)
        assert_equal_up_to_phase(got, _embed(gate.operator_matrix(), k + 1))


def _embed(op, n):
    """op acts on qubits 0..m-1 of an n-qubit register (m = log2)."""
    m = int(math.log2(op.shape[0]))
    return np.kron(op, np.eye(2 ** (n - m)))


class TestCircuits:
    def test_grover_decomposes_to_elementary(self):
        from repro.circuits.library import grover_iteration
        circuit = grover_iteration(4)
        lowered = decompose_circuit(circuit, keep_ccx=False)
        for gate in lowered.gates:
            assert len(gate.qubits) <= 2
        assert_equal_up_to_phase(circuit_unitary(lowered),
                                 circuit_unitary(circuit))

    def test_qrw_decomposes(self):
        from repro.circuits.library import qrw_step
        circuit = qrw_step(4)
        lowered = decompose_circuit(circuit, keep_ccx=True)
        for gate in lowered.gates:
            assert len(gate.qubits) <= 3
        assert_equal_up_to_phase(circuit_unitary(lowered),
                                 circuit_unitary(circuit))

    def test_lowered_circuit_exports_to_qasm(self):
        from repro.circuits.library import grover_iteration
        from repro.circuits.qasm import parse_qasm, to_qasm
        lowered = decompose_circuit(grover_iteration(3), keep_ccx=True)
        # scalar global-phase gates cannot be exported; drop them (the
        # QASM semantics is up-to-global-phase anyway)
        exportable = QuantumCircuit(lowered.num_qubits)
        exportable.extend(g for g in lowered.gates if not g.is_scalar)
        text = to_qasm(exportable)
        round_tripped = parse_qasm(text)
        assert_equal_up_to_phase(circuit_unitary(round_tripped),
                                 circuit_unitary(grover_iteration(3)))

    def test_image_computation_agrees_after_lowering(self):
        """The paper-level check: lowering the transition circuit must
        not change the image subspace."""
        from repro.circuits.library import grover_iteration
        from repro.image.engine import compute_image
        from repro.systems.operations import QuantumOperation
        from repro.systems.qts import QuantumTransitionSystem
        from tests.helpers import subspace_to_dense

        def build(lowered):
            circuit = grover_iteration(4)
            if lowered:
                circuit = decompose_circuit(circuit, keep_ccx=True)
            qts = QuantumTransitionSystem(
                4, [QuantumOperation.unitary("G", circuit)])
            qts.set_initial_basis_states([[0, 0, 0, 1]])
            return qts

        original = compute_image(build(False), method="contraction")
        lowered = compute_image(build(True), method="contraction")
        assert subspace_to_dense(original.subspace).equals(
            subspace_to_dense(lowered.subspace))
