"""Structured TDD constructors.

Besides the generic dense conversion (:func:`from_numpy`, used for
small gate blocks), the constructors here build the structured diagrams
the circuit layer needs *without* ever materialising a dense tensor:

* :func:`delta` — the rank-k "all indices equal" tensor (identity wires
  and hyper-edge merging),
* :func:`indicator` — 1 iff all indices are 1 (the control chain of the
  ``C^k(U) = Δ + 1[controls] ⊗ (U − I)`` decomposition, DESIGN.md §3),
* :func:`basis_state` / :func:`computational_basis_projector`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence

import numpy as np

from repro.errors import TDDError
from repro.indices.index import Index
from repro.tdd.manager import TDDManager
from repro.tdd.node import Edge
from repro.tdd.tdd import TDD


def zero(manager: TDDManager, indices: Iterable[Index] = ()) -> TDD:
    """The zero tensor over ``indices``."""
    for idx in indices:
        manager.register(idx)
    return TDD(manager, manager.zero_edge(), indices)


def scalar(manager: TDDManager, value: complex) -> TDD:
    """A rank-0 tensor."""
    return TDD(manager, manager.scalar_edge(value), ())


def ones(manager: TDDManager, indices: Iterable[Index]) -> TDD:
    """The all-ones tensor over ``indices``."""
    indices = tuple(indices)
    for idx in indices:
        manager.register(idx)
    return TDD(manager, manager.scalar_edge(1), indices)


def from_numpy(manager: TDDManager, array: np.ndarray,
               indices: Sequence[Index]) -> TDD:
    """Convert a dense tensor with the given axis labels to a TDD.

    ``array`` must have shape ``(2,) * len(indices)``; axis *i* is
    labelled ``indices[i]``.  Intended for small gate blocks — the cost
    is linear in the array size.
    """
    array = np.asarray(array, dtype=complex)
    indices = list(indices)
    if array.shape != (2,) * len(indices):
        raise TDDError(f"array shape {array.shape} does not match "
                       f"{len(indices)} binary indices")
    if len(set(i.name for i in indices)) != len(indices):
        raise TDDError("duplicate index labels in from_numpy")
    for idx in indices:
        manager.register(idx)
    # Reorder axes so that axis order follows the manager's level order.
    perm = sorted(range(len(indices)),
                  key=lambda ax: manager.level(indices[ax]))
    array = np.transpose(array, perm)
    sorted_indices = [indices[ax] for ax in perm]
    levels = [manager.level(i) for i in sorted_indices]

    cache: Dict[bytes, Edge] = {}

    def build(sub: np.ndarray, depth: int) -> Edge:
        key = sub.tobytes()
        cached = cache.get(key)
        if cached is not None:
            return cached
        if depth == len(levels):
            result = manager.scalar_edge(complex(sub))
        else:
            low = build(sub[0], depth + 1)
            high = build(sub[1], depth + 1)
            result = manager.make_node(levels[depth], low, high)
        cache[key] = result
        return result

    root = build(array, 0)
    return TDD(manager, root, sorted_indices)


def delta(manager: TDDManager, indices: Iterable[Index]) -> TDD:
    """The rank-k delta: 1 iff all indices carry the same value.

    For two indices this is the identity wire; with one index it is the
    all-ones vector; the empty delta is defined as the scalar 1, the
    neutral element for tensor products of wires.
    """
    indices = tuple(indices)
    for idx in indices:
        manager.register(idx)
    if not indices:
        return scalar(manager, 1)
    levels = sorted(manager.level(i) for i in indices)
    all0 = manager.scalar_edge(1)
    all1 = manager.scalar_edge(1)
    for level in reversed(levels):
        all0 = manager.make_node(level, all0, manager.zero_edge())
        all1 = manager.make_node(level, manager.zero_edge(), all1)
    root = manager.add(all0, all1)
    return TDD(manager, root, indices)


def indicator(manager: TDDManager, indices: Iterable[Index],
              value: int = 1) -> TDD:
    """1 iff every index equals ``value``, else 0."""
    indices = tuple(indices)
    for idx in indices:
        manager.register(idx)
    root = manager.scalar_edge(1)
    for level in sorted((manager.level(i) for i in indices), reverse=True):
        if value:
            root = manager.make_node(level, manager.zero_edge(), root)
        else:
            root = manager.make_node(level, root, manager.zero_edge())
    return TDD(manager, root, indices)


def indicator_pattern(manager: TDDManager, indices: Sequence[Index],
                      bits: Sequence[int]) -> TDD:
    """1 iff index *i* equals ``bits[i]`` for all *i* (anti-controls)."""
    indices = list(indices)
    if len(bits) != len(indices):
        raise TDDError("bits/indices length mismatch")
    for idx in indices:
        manager.register(idx)
    pairs = sorted(zip(indices, bits), key=lambda p: manager.level(p[0]))
    root = manager.scalar_edge(1)
    for idx, bit in reversed(pairs):
        level = manager.level(idx)
        if bit:
            root = manager.make_node(level, manager.zero_edge(), root)
        else:
            root = manager.make_node(level, root, manager.zero_edge())
    return TDD(manager, root, indices)


def basis_state(manager: TDDManager, indices: Sequence[Index],
                bits: Sequence[int]) -> TDD:
    """The computational basis state |bits⟩ over ``indices``.

    Structurally identical to :func:`indicator_pattern`; kept as a
    separate name because callers mean a *state*, not a predicate.
    """
    return indicator_pattern(manager, indices, bits)


def computational_basis_projector(manager: TDDManager,
                                  row_indices: Sequence[Index],
                                  col_indices: Sequence[Index],
                                  bits: Sequence[int]) -> TDD:
    """The rank-1 projector |bits⟩⟨bits| as a matrix tensor."""
    ket = basis_state(manager, row_indices, bits)
    bra = basis_state(manager, col_indices, bits)
    return ket.product(bra)


def outer_product(ket: TDD, bra_source: TDD,
                  bra_indices: Sequence[Index]) -> TDD:
    """|ket⟩⟨bra_source| with the bra relabelled onto ``bra_indices``.

    ``bra_source`` must have the same number of indices as
    ``bra_indices``; it is conjugated and renamed index-by-index in
    sorted order.
    """
    src = list(bra_source.indices)
    if len(src) != len(bra_indices):
        raise TDDError("bra index count mismatch")
    mapping = dict(zip(src, bra_indices))
    bra = bra_source.conj().rename(mapping)
    return ket.product(bra)


def identity(manager: TDDManager, row_indices: Sequence[Index],
             col_indices: Sequence[Index]) -> TDD:
    """The identity matrix as a product of per-qubit wire deltas."""
    if len(row_indices) != len(col_indices):
        raise TDDError("identity needs equal row/col index counts")
    result = scalar(manager, 1)
    for r, c in zip(row_indices, col_indices):
        result = result.product(delta(manager, (r, c)))
    return result
