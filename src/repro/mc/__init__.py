"""Model checking on quantum transition systems.

Reachability by image-computation fixpoint, plus the subspace-logic
property checks (invariance, containment, eventual confinement) that
the paper's Section III case studies exercise.
"""

from repro.mc.reachability import reachable_space, ReachabilityTrace
from repro.mc.invariants import (is_invariant, image_equals, image_contained_in)
from repro.mc.backends import (Backend, BACKENDS, CrossValidation,
                               DenseStatevectorBackend, TDDBackend,
                               cross_validate, make_backend)
from repro.mc.checker import ModelChecker
from repro.mc.logic import (Atomic, Join, Meet, Not, Proposition,
                            check_always, check_eventually_overlaps,
                            satisfies)

__all__ = [
    "reachable_space", "ReachabilityTrace",
    "is_invariant", "image_equals", "image_contained_in",
    "Backend", "BACKENDS", "CrossValidation",
    "DenseStatevectorBackend", "TDDBackend",
    "cross_validate", "make_backend",
    "ModelChecker",
    "Atomic", "Join", "Meet", "Not", "Proposition",
    "check_always", "check_eventually_overlaps", "satisfies",
]
