"""Index identity and wire naming."""

import pytest

from repro.indices.index import Index, wire


class TestIndex:
    def test_identity_by_name(self):
        assert Index("a") == Index("a")
        assert Index("a", qubit=0) == Index("a", qubit=5)
        assert hash(Index("a")) == hash(Index("a", qubit=3))

    def test_inequality(self):
        assert Index("a") != Index("b")
        assert Index("a") != "a"

    def test_immutable(self):
        idx = Index("a")
        with pytest.raises(AttributeError):
            idx.name = "b"

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Index("")

    def test_wire_naming(self):
        idx = wire(3, 7)
        assert idx.name == "x3_7"
        assert idx.qubit == 3
        assert idx.time == 7

    def test_usable_in_sets(self):
        assert len({Index("a"), Index("a"), Index("b")}) == 2
