"""Stacking scalar diagrams into one batched diagram and back.

The batched weight kernel (see :mod:`repro.tdd.weights`) represents a
*family* of same-shaped tensors as one diagram whose edge weights are
vectors — one slot per family member.  This module provides the two
conversions:

* :func:`stack_edges` / :func:`stack` — synchronised structural merge
  of ``k`` scalar diagrams into one array-weight diagram.  Slots that
  structurally agree share nodes for free; slots that differ only meet
  at the nodes where they actually differ, so the stacked diagram is
  never larger than the slot diagrams laid side by side and usually
  much smaller (Kraus operators of one noise family share almost all
  structure).
* :func:`unstack_edge` / :func:`unstack` — extract slot ``i`` as an
  ordinary scalar diagram (a memoised postorder rebuild through
  :func:`~repro.tdd.apply.unary_apply`; slots whose weight vanishes at
  a node collapse naturally through ``make_node``'s zero clamping).

Both directions are iterative — no recursion on diagram depth — which
matters because benchmark circuits register thousands of levels.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, TYPE_CHECKING

import numpy as np

from repro.errors import TDDError
from repro.tdd import weights as wt
from repro.tdd import xp as _xp
from repro.tdd.apply import slice_pair, unary_apply
from repro.tdd.node import Edge, TERMINAL_LEVEL

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tdd.manager import TDDManager
    from repro.tdd.tdd import TDD

_ENTER = 0
_EXIT = 1


def edge_parallel_shape(edge: Edge) -> tuple:
    """The parallel shape of ``edge``'s root weight (``()`` if scalar)."""
    return wt.parallel_shape(edge.weight)


def stack_edges(manager: "TDDManager", edges: Sequence[Edge]) -> Edge:
    """Merge ``k`` scalar edges into one batched edge of shape ``(k,)``.

    The merge walks all ``k`` diagrams in lockstep: at each step it
    branches every slot on the lowest level any slot branches on
    (slots that do not depend on that index simply duplicate), and the
    per-slot weights land in one weight vector.  Groups are memoised on
    the exact (weight, node) pairs of their slots, so shared substructure
    across slots is merged once.
    """
    edges = tuple(edges)
    if not edges:
        raise TDDError("cannot stack an empty edge sequence")
    for edge in edges:
        if wt.parallel_shape(edge.weight):
            raise TDDError("stack_edges expects scalar (unbatched) edges")
    memo = {}
    stack = [(_ENTER, edges)]
    values: List[Edge] = []
    while stack:
        frame = stack.pop()
        if frame[0] == _ENTER:
            group = frame[1]
            key = tuple(wt.cache_key(e.weight, id(e.node)) for e in group)
            cached = memo.get(key)
            if cached is not None:
                values.append(cached)
                continue
            top = min((e.node.level for e in group if not e.is_zero),
                      default=TERMINAL_LEVEL)
            if top == TERMINAL_LEVEL:
                # every live slot already sits on the terminal
                vector = np.array([complex(e.weight) for e in group],
                                  dtype=_xp.COMPLEX_DTYPE)
                result = manager.make_edge(_xp.asarray(vector),
                                           manager.terminal)
                memo[key] = result
                values.append(result)
                continue
            lows = []
            highs = []
            for e in group:
                low, high = slice_pair(manager, e, top)
                lows.append(low)
                highs.append(high)
            stack.append((_EXIT, key, top))
            stack.append((_ENTER, tuple(highs)))
            stack.append((_ENTER, tuple(lows)))
        else:
            _, key, top = frame
            high = values.pop()
            low = values.pop()
            result = manager.make_node(top, low, high)
            memo[key] = result
            values.append(result)
    return values[0]


def unstack_edge(manager: "TDDManager", edge: Edge, slot: int) -> Edge:
    """Slot ``slot`` of a batched edge, as an ordinary scalar edge."""
    def pick(weight):
        if type(weight) is complex:
            return weight
        return complex(weight[slot])

    return unary_apply(
        manager, edge,
        rebuild=lambda node, low, high: manager.make_node(
            node.level, low, high),
        weight_map=pick)


def stack(tdds: Sequence["TDD"]) -> "TDD":
    """Stack same-manager TDD handles into one batched handle.

    The result's free set is the union of the operands' — a slot that
    does not depend on some union index is constant along it, exactly
    like a scalar sum of mismatched-rank tensors.
    """
    from repro.tdd.tdd import TDD
    tdds = list(tdds)
    if not tdds:
        raise TDDError("cannot stack an empty TDD sequence")
    manager = tdds[0].manager
    for t in tdds[1:]:
        if t.manager is not manager:
            raise TDDError("stacked TDDs must share one manager")
    indices = set()
    for t in tdds:
        indices |= set(t.indices)
    root = stack_edges(manager, [t.root for t in tdds])
    return TDD(manager, root, indices)


def unstack(tdd: "TDD", count: int) -> List["TDD"]:
    """The ``count`` scalar slots of a batched TDD, in slot order."""
    from repro.tdd.tdd import TDD
    return [TDD(tdd.manager,
                unstack_edge(tdd.manager, tdd.root, slot),
                tdd.indices)
            for slot in range(count)]


def stack_values(values: Iterable[complex]) -> np.ndarray:
    """A weight vector from per-slot scalars (convenience for callers)."""
    return _xp.asarray(np.array(list(values), dtype=_xp.COMPLEX_DTYPE))
