"""The undirected index graph of a tensor network (paper, Section V.A).

Every vertex is a tensor index; two vertices are adjacent when they are
legs of the same tensor (so each gate contributes a clique).  Because
the circuit layer *reuses* one index for the input and output of a
diagonal-gate wire or a control wire, hyper-edges appear naturally:
the reused index is a single vertex with a high degree — exactly the
vertices the addition-partition scheme slices (see the Grover example,
paper Fig. 5).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

from repro.indices.index import Index


class IndexGraph:
    """Adjacency-set graph over :class:`Index` vertices."""

    def __init__(self) -> None:
        self._adj: Dict[Index, Set[Index]] = {}

    @staticmethod
    def from_tensors(tensors: Iterable[object]) -> "IndexGraph":
        """Build the graph of a network: a clique per tensor."""
        graph = IndexGraph()
        for tensor in tensors:
            graph.add_clique(tensor.indices)
        return graph

    @staticmethod
    def from_index_groups(groups: Iterable[Sequence[Index]]) -> "IndexGraph":
        """Build the graph from pre-extracted per-gate index groups."""
        graph = IndexGraph()
        for group in groups:
            graph.add_clique(group)
        return graph

    # ------------------------------------------------------------------
    def add_vertex(self, index: Index) -> None:
        self._adj.setdefault(index, set())

    def add_edge(self, a: Index, b: Index) -> None:
        if a == b:
            self.add_vertex(a)
            return
        self._adj.setdefault(a, set()).add(b)
        self._adj.setdefault(b, set()).add(a)

    def add_clique(self, indices: Sequence[Index]) -> None:
        indices = list(indices)
        for idx in indices:
            self.add_vertex(idx)
        for i, a in enumerate(indices):
            for b in indices[i + 1:]:
                self.add_edge(a, b)

    # ------------------------------------------------------------------
    @property
    def vertices(self) -> List[Index]:
        return list(self._adj)

    def degree(self, index: Index) -> int:
        return len(self._adj.get(index, ()))

    def neighbours(self, index: Index) -> Set[Index]:
        return set(self._adj.get(index, ()))

    def degrees(self) -> Dict[Index, int]:
        return {idx: len(adj) for idx, adj in self._adj.items()}

    def highest_degree(self, count: int,
                       exclude: Iterable[Index] = ()) -> List[Index]:
        """The ``count`` highest-degree vertices (ties broken by name).

        ``exclude`` removes vertices that must stay un-sliced (e.g. the
        network's open boundary indices).
        """
        banned = set(exclude)
        candidates = [(idx, deg) for idx, deg in self.degrees().items()
                      if idx not in banned]
        candidates.sort(key=lambda pair: (-pair[1], pair[0].name))
        return [idx for idx, _deg in candidates[:count]]

    def __len__(self) -> int:
        return len(self._adj)

    def edge_count(self) -> int:
        return sum(len(adj) for adj in self._adj.values()) // 2

    def __repr__(self) -> str:
        return f"IndexGraph(vertices={len(self)}, edges={self.edge_count()})"
