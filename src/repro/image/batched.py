"""Batched Kraus-family image computation.

The scalar image loop applies each Kraus operator of a family to each
basis state — one kernel invocation per (state, operator) pair.  The
batched path stacks the whole family into **one** diagram whose edge
weights are vectors (one slot per Kraus branch, see
:mod:`repro.tdd.batch`), so one ``contract`` invocation per basis state
computes every branch image at once; the per-branch states come back by
indexing the parallel axis.

Stacking requires all branches to share one index signature, which
Kraus circuits generally do not: a branch with more non-diagonal gates
on qubit *q* ends on a later wire index.  :func:`build_family` unifies
the signatures first:

* every branch's output on qubit *q* is renamed to the family-wide
  *latest* output wire of *q* (an order-preserving rename — wire times
  only grow within one qubit's level block);
* a branch whose qubit-*q* wire is *fused* (diagonal-only, input ==
  output) while another branch advances it is padded with an identity
  wire ``delta(input, common_output)``, splitting the fused leg into a
  proper input/output pair.

After unification every branch has the same inputs, outputs and sum
set, so the stacked operator contracts against a state exactly like a
single monolithic operator — through whichever executor (monolithic or
sliced) the engine installed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

from repro.errors import ReproError
from repro.image.base import input_sum_indices, rename_outputs_to_kets
from repro.indices.index import Index
from repro.subspace.subspace import StateSpace
from repro.tdd.batch import stack, unstack_edge
from repro.tdd.construction import delta
from repro.tdd.tdd import TDD
from repro.utils.stats import StatsRecorder


@dataclass
class BatchedFamily:
    """A stacked Kraus family ready for one-invocation image steps."""

    #: the stacked operator; parallel axis length == ``count``
    operator: TDD
    #: circuit input wires (``x_q^0``), shared by every branch
    inputs: List[Index]
    #: unified per-qubit output wires (latest across the family)
    outputs: List[Index]
    #: number of stacked Kraus branches
    count: int

    @property
    def sum_over(self) -> List[Index]:
        return input_sum_indices(self.inputs, self.outputs)

    def images(self, state: TDD, executor, space: StateSpace,
               stats: StatsRecorder) -> Iterator[TDD]:
        """All branch images of ``state`` from one contraction.

        Yields one scalar (unbatched) state per Kraus branch, outputs
        already renamed back onto the canonical kets — the same stream
        the scalar loop produces, in the same branch order.
        """
        manager = state.manager
        batched = executor.contract(state, self.operator, self.sum_over,
                                    stats)
        stats.contractions += 1
        stats.observe_tdd(batched)
        for slot in range(self.count):
            root = unstack_edge(manager, batched.root, slot)
            branch = TDD(manager, root, batched.indices)
            yield rename_outputs_to_kets(space, branch, self.outputs)


def _latest(a: Index, b: Index) -> Index:
    return b if (b.time or 0) > (a.time or 0) else a


def _unify_signature(manager, operator: TDD, inputs: Sequence[Index],
                     outputs: Sequence[Index],
                     common: Sequence[Index]) -> TDD:
    """Rebase one branch operator onto the family-wide output wires."""
    renames = {}
    pads = []
    for q, (out, target) in enumerate(zip(outputs, common)):
        if out == target:
            continue
        if out == inputs[q]:
            # fused wire: split into input + identity-wired output
            pads.append((inputs[q], target))
        else:
            renames[out] = target
    if renames:
        operator = operator.rename(renames)
    for source, target in pads:
        operator = operator.product(delta(manager, (source, target)))
    return operator


def build_family(computer, circuits: Sequence,
                 stats: StatsRecorder) -> BatchedFamily:
    """Stack ``circuits`` (one operation's Kraus family — or several
    operations' families concatenated) into a :class:`BatchedFamily`.

    Uses the computer's cached monolithic operators, so repeated
    fixpoint rounds pay the per-branch contraction and the stacking
    once.
    """
    manager = computer.qts.manager
    entries = [computer.monolithic_operator_for(circuit, stats)
               for circuit in circuits]
    inputs = list(entries[0][1])
    for _, inp, _ in entries[1:]:
        if list(inp) != inputs:
            raise ReproError("Kraus branches of one family must share "
                             "their input wires")
    common = list(entries[0][2])
    for _, _, outs in entries[1:]:
        common = [_latest(a, b) for a, b in zip(common, outs)]
    unified = [_unify_signature(manager, op, inp, outs, common)
               for op, inp, outs in entries]
    return BatchedFamily(operator=stack(unified), inputs=inputs,
                         outputs=common, count=len(unified))
