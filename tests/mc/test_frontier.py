"""Frontier-set reachability refinement."""

import pytest

from repro.mc.backends import DenseStatevectorBackend
from repro.mc.checker import ModelChecker
from repro.mc.config import CheckerConfig
from repro.mc.reachability import reachable_space
from repro.systems import models

from tests.helpers import subspace_to_dense


class TestFrontier:
    @pytest.mark.parametrize("builder", [
        lambda: models.qrw_qts(3, 0.2),
        lambda: models.ghz_qts(4),
        lambda: models.bitflip_qts(),
        lambda: models.grover_qts(4),
    ])
    def test_agrees_with_full_iteration(self, builder):
        full = reachable_space(builder(), method="basic")
        fast = reachable_space(builder(), method="basic", frontier=True)
        assert full.converged and fast.converged
        assert subspace_to_dense(full.subspace).equals(
            subspace_to_dense(fast.subspace))

    def test_frontier_images_fewer_states(self):
        """In frontier mode the total contraction count across the run
        must be strictly lower once the space has grown."""
        full = reachable_space(models.qrw_qts(3, 0.2), method="basic")
        fast = reachable_space(models.qrw_qts(3, 0.2), method="basic",
                               frontier=True)
        assert fast.stats.contractions < full.stats.contractions

    def test_frontier_with_contraction_method(self):
        full = reachable_space(models.qrw_qts(3, 0.3),
                               method="contraction", k1=2, k2=2)
        fast = reachable_space(models.qrw_qts(3, 0.3),
                               method="contraction", k1=2, k2=2,
                               frontier=True)
        assert subspace_to_dense(full.subspace).equals(
            subspace_to_dense(fast.subspace))


class TestFrontierBackwardBounded:
    """Frontier mode combined with backward analysis and bound > 0.

    Each feature was previously only tested independently; these pin
    down the combination on both backends.
    """

    def _tdd(self, frontier, bound):
        qts = models.qrw_qts(3, 0.2)
        return reachable_space(qts, method="basic",
                               initial=qts.named_subspace("start"),
                               direction="backward", bound=bound,
                               frontier=frontier)

    def _dense(self, frontier, bound):
        qts = models.qrw_qts(3, 0.2)
        return DenseStatevectorBackend().reachable(
            qts, initial=qts.named_subspace("start"),
            direction="backward", bound=bound, frontier=frontier)

    @pytest.mark.parametrize("bound", [1, 2, 3])
    def test_tdd_frontier_backward_bounded_matches_full(self, bound):
        full = self._tdd(frontier=False, bound=bound)
        fast = self._tdd(frontier=True, bound=bound)
        assert fast.dimensions == full.dimensions
        assert fast.bound == bound
        assert fast.iterations <= bound
        assert subspace_to_dense(fast.subspace).equals(
            subspace_to_dense(full.subspace))

    @pytest.mark.parametrize("bound", [1, 2, 3])
    def test_dense_frontier_backward_bounded_matches_tdd(self, bound):
        symbolic = self._tdd(frontier=True, bound=bound)
        dense = self._dense(frontier=True, bound=bound)
        assert dense.dimensions == symbolic.dimensions
        assert dense.converged == symbolic.converged
        assert subspace_to_dense(dense.subspace).equals(
            subspace_to_dense(symbolic.subspace))

    def test_both_backends_frontier_backward_unbounded(self):
        symbolic = self._tdd(frontier=True, bound=0)
        dense = self._dense(frontier=True, bound=0)
        assert symbolic.converged and dense.converged
        assert dense.dimensions == symbolic.dimensions
        assert subspace_to_dense(dense.subspace).equals(
            subspace_to_dense(symbolic.subspace))

    @pytest.mark.parametrize("backend_config", [
        CheckerConfig(method="basic", direction="backward", bound=2),
        CheckerConfig(backend="dense", direction="backward", bound=2),
    ])
    def test_check_frontier_backward_bounded_verdicts_agree(
            self, backend_config):
        result = ModelChecker(models.grover_qts(3), backend_config).check(
            "AG plus", frontier=True)
        assert result.verdict == "violated"
        assert result.direction == "backward"
        assert result.bound == 2


class TestCombinators:
    def test_then_composes_kraus(self):
        qts = models.bitflip_qts()
        op = qts.operation("correct")
        squared = op.then(op)
        assert squared.num_kraus == 16
        assert squared.is_trace_nonincreasing()

    def test_then_width_mismatch(self):
        from repro.errors import SystemError_
        from repro.systems.operations import QuantumOperation
        from repro.circuits.circuit import QuantumCircuit
        a = QuantumOperation.unitary("a", QuantumCircuit(2))
        b = QuantumOperation.unitary("b", QuantumCircuit(3))
        with pytest.raises(SystemError_):
            a.then(b)

    def test_power_matches_repeated_image(self):
        """image under T^2 == image of image under T."""
        from repro.image.engine import compute_image
        from repro.systems.operations import QuantumOperation
        from repro.systems.qts import QuantumTransitionSystem
        from repro.circuits.library import ghz_circuit

        base = QuantumOperation.unitary("g", ghz_circuit(3))
        qts1 = QuantumTransitionSystem(3, [base.power(2)])
        qts1.set_initial_basis_states([[0, 0, 0]])
        twice = compute_image(qts1, method="basic").subspace

        qts2 = QuantumTransitionSystem(
            3, [QuantumOperation.unitary("g", ghz_circuit(3))])
        qts2.set_initial_basis_states([[0, 0, 0]])
        once = compute_image(qts2, method="basic").subspace
        again = compute_image(qts2, subspace=once, method="basic").subspace
        assert subspace_to_dense(twice).equals(subspace_to_dense(again))

    def test_identity_operation(self):
        from repro.image.engine import compute_image
        from repro.systems.operations import QuantumOperation
        from repro.systems.qts import QuantumTransitionSystem
        qts = QuantumTransitionSystem(
            2, [QuantumOperation.identity("i", 2)])
        qts.set_initial_basis_states([[0, 1]])
        image = compute_image(qts, method="basic").subspace
        assert image.equals(qts.initial)
