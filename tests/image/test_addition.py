"""Addition-partition image computation (Section V.A)."""

import pytest

from repro.image.addition import (AdditionImageComputer,
                                  select_slice_indices, slice_network)
from repro.image.engine import compute_image
from repro.circuits.network import circuit_to_tdd_network
from repro.circuits.library import grover_iteration
from repro.systems import models
from repro.tdd.manager import TDDManager

from tests.helpers import assert_subspace_matches_dense, dense_image_oracle

MODELS = {
    "ghz4": lambda: models.ghz_qts(4),
    "grover4": lambda: models.grover_qts(4),
    "bv5": lambda: models.bv_qts(5),
    "qft4": lambda: models.qft_qts(4),
    "qrw4": lambda: models.qrw_qts(4, 0.3),
    "bitflip": lambda: models.bitflip_qts(),
}


@pytest.mark.parametrize("name", sorted(MODELS))
@pytest.mark.parametrize("k", [0, 1, 2])
def test_matches_dense_oracle(name, k):
    build = MODELS[name]
    expected = dense_image_oracle(build())
    result = compute_image(build(), method="addition", k=k)
    assert_subspace_matches_dense(result.subspace, expected)


def test_k0_equals_basic():
    """k = 0 degrades to the basic algorithm (one unsliced part)."""
    expected = dense_image_oracle(models.grover_qts(4))
    result = compute_image(models.grover_qts(4), method="addition", k=0)
    assert_subspace_matches_dense(result.subspace, expected)


def test_number_of_parts_is_two_to_k():
    qts = models.grover_qts(4)
    computer = AdditionImageComputer(qts, k=2)
    from repro.utils.stats import StatsRecorder
    parts, inputs, outputs = computer.parts_for(
        qts.all_kraus_circuits()[0], StatsRecorder())
    assert len(parts) == 4


def test_sliced_indices_are_internal():
    manager = TDDManager()
    circuit = grover_iteration(4)
    network, inputs, outputs = circuit_to_tdd_network(circuit, manager)
    chosen = select_slice_indices(network, 3)
    boundary = set(inputs) | set(outputs)
    assert len(chosen) == 3
    for idx in chosen:
        assert idx not in boundary


def test_slice_network_removes_index():
    manager = TDDManager()
    circuit = grover_iteration(3)
    network, inputs, outputs = circuit_to_tdd_network(circuit, manager)
    (target,) = select_slice_indices(network, 1)
    sliced = slice_network(network, {target: 0})
    for tensor in sliced.tensors:
        assert target not in set(tensor.indices)


def test_parts_sum_to_whole():
    """sum_i phi_i must equal the full circuit tensor."""
    manager = TDDManager()
    circuit = grover_iteration(3)
    network, inputs, outputs = circuit_to_tdd_network(circuit, manager)
    whole = network.contract_all()
    (target,) = select_slice_indices(network, 1)
    part0 = slice_network(network, {target: 0}).contract_all()
    part1 = slice_network(network, {target: 1}).contract_all()
    assert (part0 + part1).allclose(whole)


def test_negative_k_rejected():
    with pytest.raises(ValueError):
        AdditionImageComputer(models.ghz_qts(3), k=-1)
