"""Plain-text table formatting for the benchmark harness output.

The harness prints rows shaped like the paper's Table I / Table II so
that a reader can put them side by side with the published numbers.
"""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table.

    >>> print(format_table(["a", "b"], [[1, 22], [333, 4]]))
    a    b
    ---  --
    1    22
    333  4
    """
    str_rows: List[List[str]] = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
