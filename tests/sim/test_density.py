"""Density-matrix evolution and support extraction."""

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.sim.density import (apply_kraus, channel_matrices,
                               density_from_states, support_basis)
from repro.sim.statevector import basis_state_vector


class TestApplyKraus:
    def test_unitary_conjugation(self, rng):
        from repro.circuits.library import random_circuit
        from repro.sim.statevector import circuit_unitary
        u = circuit_unitary(random_circuit(2, 6, seed=3))
        rho = np.diag([0.5, 0.5, 0, 0]).astype(complex)
        out = apply_kraus(rho, [u])
        assert np.allclose(out, u @ rho @ u.conj().T)

    def test_trace_preserved_for_channel(self):
        p = 0.3
        x = np.array([[0, 1], [1, 0]], dtype=complex)
        kraus = [np.sqrt(p) * np.eye(2), np.sqrt(1 - p) * x]
        rho = np.array([[0.7, 0.2], [0.2, 0.3]], dtype=complex)
        out = apply_kraus(rho, kraus)
        assert np.isclose(np.trace(out), np.trace(rho))

    def test_projective_channel_reduces_trace(self):
        p0 = np.diag([1, 0]).astype(complex)
        rho = 0.5 * np.eye(2, dtype=complex)
        out = apply_kraus(rho, [p0])
        assert np.isclose(np.trace(out), 0.5)


class TestDensityFromStates:
    def test_mixture(self):
        v0 = basis_state_vector(1, [0])
        v1 = basis_state_vector(1, [1])
        rho = density_from_states([v0, v1])
        assert np.allclose(rho, np.eye(2))


class TestSupport:
    def test_pure_state_support(self):
        v = np.array([1, 1j]) / np.sqrt(2)
        rho = np.outer(v, v.conj())
        basis = support_basis(rho)
        assert basis.shape == (2, 1)
        assert np.isclose(abs(np.vdot(basis[:, 0], v)), 1.0)

    def test_full_rank_support(self):
        basis = support_basis(np.eye(4, dtype=complex) / 4)
        assert basis.shape == (4, 4)

    def test_zero_support(self):
        basis = support_basis(np.zeros((4, 4), dtype=complex))
        assert basis.shape == (4, 0)

    def test_channel_matrices(self):
        circuits = [QuantumCircuit(1).x(0), QuantumCircuit(1).proj(0, 0)]
        mats = channel_matrices(circuits)
        assert np.allclose(mats[0], [[0, 1], [1, 0]])
        assert np.allclose(mats[1], [[1, 0], [0, 0]])
