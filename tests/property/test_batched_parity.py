"""Batched-kernel parity: vector weights must change nothing but cost.

The batched weight kernel stacks a Kraus family into one vector-weight
operator and applies the whole family in a single contraction per
basis state (:mod:`repro.image.batched`).  Its contract is that the
resulting subspace is *element-for-element* identical to the scalar
per-branch loop after canonical rounding: same interned node for every
basis vector's root, canonically equal root weights.  (Exact bit
equality is not promised — numpy's complex division differs from
python's by an ulp, which ``canonical``'s 12-digit rounding absorbs.)

Checked on the multi-Kraus table-1 families — bitflip (four syndrome
branches) plus depolarizing-noise GHZ and QFT (four channel branches)
— in both analysis directions and under both execution strategies.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.image.engine import compute_image
from repro.systems import models
from repro.systems.noise import noisy_operation
from repro.systems.qts import QuantumTransitionSystem
from repro.tdd import weights as wt

NOISE = 0.25


def _noisy(base: QuantumTransitionSystem, symbol: str) -> \
        QuantumTransitionSystem:
    """A four-branch depolarizing variant of a unitary system."""
    circuit = base.operations[0].kraus_circuits[0]
    op = noisy_operation(symbol, circuit, position=1, qubit=0,
                         channel="depolarizing", parameter=NOISE)
    qts = QuantumTransitionSystem(base.num_qubits, [op],
                                  name=f"noisy_{base.name}")
    qts.set_initial_basis_states([[0] * base.num_qubits])
    return qts


FAMILIES = {
    "bitflip": lambda: models.bitflip_qts(),
    "ghz": lambda: _noisy(models.ghz_qts(3), "g"),
    "qft": lambda: _noisy(models.qft_qts(3), "f"),
}


def assert_canonically_equal(a, b) -> None:
    """Element-level contract: same node, canonically equal weight."""
    assert a.manager is b.manager
    assert a.indices == b.indices
    assert a.root.node is b.root.node
    assert (wt.canonical(complex(a.root.weight))
            == wt.canonical(complex(b.root.weight)))


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("direction", ["forward", "backward"])
@pytest.mark.parametrize("strategy", ["monolithic", "sliced"])
def test_batched_image_matches_scalar_loop(family, direction, strategy):
    qts = FAMILIES[family]()
    batched = compute_image(qts, method="basic", strategy=strategy,
                            direction=direction, batched=True)
    scalar = compute_image(qts, method="basic", strategy=strategy,
                           direction=direction, batched=False)
    assert batched.dimension == scalar.dimension
    for a, b in zip(batched.subspace.basis, scalar.subspace.basis):
        assert_canonically_equal(a, b)


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_batched_spends_one_contraction_per_state(family):
    qts = FAMILIES[family]()
    width = len(qts.all_kraus_circuits())
    assert width > 1
    batched = compute_image(qts, method="basic", batched=True)
    scalar = compute_image(qts, method="basic", batched=False)
    # the headline invariant: contraction count drops by the family
    # width — one batched kernel invocation covers every branch
    assert batched.stats.contractions * width <= scalar.stats.contractions


class TestRandomStates:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=8, deadline=None)
    def test_noisy_ghz_parity_on_random_states(self, seed):
        qts = _noisy(models.ghz_qts(3), "g")
        rng = np.random.default_rng(seed)
        dim = 2 ** qts.num_qubits
        state = qts.space.from_amplitudes(rng.normal(size=dim)
                                          + 1j * rng.normal(size=dim))
        qts.set_initial_states([state])
        batched = compute_image(qts, method="basic", batched=True)
        scalar = compute_image(qts, method="basic", batched=False)
        assert batched.dimension == scalar.dimension
        for a, b in zip(batched.subspace.basis, scalar.subspace.basis):
            assert_canonically_equal(a, b)
