"""QuantumOperation validation and Kraus semantics."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.library import bitflip_kraus_circuits, qrw_noisy_kraus_circuits
from repro.errors import SystemError_
from repro.systems.operations import QuantumOperation


class TestValidation:
    def test_needs_kraus(self):
        with pytest.raises(SystemError_):
            QuantumOperation("empty", [])

    def test_width_mismatch(self):
        with pytest.raises(SystemError_):
            QuantumOperation("bad", [QuantumCircuit(2), QuantumCircuit(3)])

    def test_unitary_constructor(self):
        op = QuantumOperation.unitary("u", QuantumCircuit(2).h(0))
        assert op.num_kraus == 1
        assert op.num_qubits == 2


class TestKrausSemantics:
    def test_kraus_matrices(self):
        op = QuantumOperation.unitary("x", QuantumCircuit(1).x(0))
        mats = op.kraus_matrices()
        assert np.allclose(mats[0], [[0, 1], [1, 0]])

    def test_unitary_trace_preserving(self):
        op = QuantumOperation.unitary("h", QuantumCircuit(1).h(0))
        assert op.is_trace_nonincreasing()

    def test_noisy_channel_trace_preserving(self):
        keep, flip = qrw_noisy_kraus_circuits(3, 0.25)
        op = QuantumOperation("noisy", [keep, flip])
        assert op.is_trace_nonincreasing()

    def test_bitflip_operation_nonincreasing(self):
        op = QuantumOperation("correct", bitflip_kraus_circuits())
        assert op.is_trace_nonincreasing()

    def test_overcomplete_kraus_detected(self):
        # {I, I} sums to 2I > I: not a valid operation
        op = QuantumOperation("bad", [QuantumCircuit(1), QuantumCircuit(1)])
        assert not op.is_trace_nonincreasing()
