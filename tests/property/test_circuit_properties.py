"""Property tests across the circuit pipeline.

Random circuits through: TDD operator vs dense simulator, QASM round
trips, decomposition invariance, and network contraction-order
invariance.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.decompose import decompose_circuit
from repro.circuits.library import random_circuit
from repro.circuits.network import circuit_to_tdd, circuit_to_tdd_network
from repro.sim.statevector import circuit_unitary
from repro.tdd.manager import TDDManager

SEEDS = st.integers(min_value=0, max_value=10 ** 6)


def _equal_up_to_phase(u, v, atol=1e-8):
    ratio = u @ v.conj().T
    return (np.allclose(ratio, ratio[0, 0] * np.eye(u.shape[0]), atol=atol)
            and np.isclose(abs(ratio[0, 0]), 1.0, atol=atol))


class TestOperatorConsistency:
    @given(SEEDS)
    @settings(max_examples=10)
    def test_tdd_operator_norm_preserving(self, seed):
        """Unitary circuits: the operator TDD applied to each basis
        state must preserve the norm."""
        from repro.tdd import construction as tc
        from repro.utils.bitops import int_to_bits
        circuit = random_circuit(3, 8, seed=seed)
        manager = TDDManager()
        operator, inputs, outputs = circuit_to_tdd(circuit, manager)
        for basis in (0, 5, 7):
            psi = tc.basis_state(manager, inputs, int_to_bits(basis, 3))
            out = psi.contract(operator,
                               [i for i in inputs if i not in outputs])
            assert np.isclose(out.norm(), 1.0, atol=1e-8)

    @given(SEEDS)
    @settings(max_examples=8)
    def test_inverse_circuit_gives_adjoint_operator(self, seed):
        circuit = random_circuit(3, 8, seed=seed)
        u = circuit_unitary(circuit)
        v = circuit_unitary(circuit.inverse())
        assert np.allclose(u @ v, np.eye(8), atol=1e-8)


class TestDecomposition:
    @given(SEEDS)
    @settings(max_examples=8)
    def test_lowering_preserves_unitary(self, seed):
        circuit = random_circuit(3, 10, seed=seed)
        lowered = decompose_circuit(circuit, keep_ccx=False)
        for gate in lowered.gates:
            assert len(gate.qubits) <= 2
        assert _equal_up_to_phase(circuit_unitary(lowered),
                                  circuit_unitary(circuit))


class TestQASM:
    @given(SEEDS)
    @settings(max_examples=8)
    def test_round_trip(self, seed):
        from repro.circuits.qasm import parse_qasm, to_qasm
        circuit = random_circuit(3, 10, seed=seed, allow_ccx=True)
        text = to_qasm(circuit)
        parsed = parse_qasm(text)
        assert _equal_up_to_phase(circuit_unitary(parsed),
                                  circuit_unitary(circuit))


class TestNetworkOrderInvariance:
    @given(SEEDS)
    @settings(max_examples=8)
    def test_any_fold_order_same_tensor(self, seed):
        """Contracting the gate network in a random order must produce
        the same operator tensor (the multiplicity rule keeps shared
        indices alive exactly as long as needed)."""
        circuit = random_circuit(3, 8, seed=seed)
        manager = TDDManager()
        network, inputs, outputs = circuit_to_tdd_network(circuit, manager)
        reference = network.contract_all()
        rng = np.random.default_rng(seed)
        order = list(rng.permutation(len(network.tensors)))
        network2, _, _ = circuit_to_tdd_network(circuit, manager)
        shuffled = network2.contract_all(order=[int(i) for i in order])
        assert reference.allclose(shuffled)
