"""The Gate value type: wiring, operator matrices, TDD vs dense."""


import numpy as np
import pytest

from repro.errors import CircuitError
from repro.gates import library as gl
from repro.gates import matrices as gm
from repro.gates.gate import Gate
from repro.indices.index import Index
from repro.indices.order import IndexOrder
from repro.tdd.manager import TDDManager


def manager_for(names):
    return TDDManager(IndexOrder([Index(n) for n in names]))


def compare_tdd_dense(gate, controls, t_in, t_out, names):
    """Assert gate.to_tdd and gate.to_dense denote the same tensor."""
    manager = manager_for(names)
    c_idx = [Index(n) for n in controls]
    in_idx = [Index(n) for n in t_in]
    out_idx = [Index(n) for n in t_out]
    tdd = gate.to_tdd(manager, c_idx, in_idx, out_idx)
    dense = gate.to_dense(c_idx, in_idx, out_idx)
    aligned = dense.transpose_like(
        sorted(dense.indices, key=manager.order.level))
    assert tuple(i.name for i in aligned.indices) == tdd.index_names
    assert np.allclose(tdd.to_numpy(), aligned.array), gate


class TestValidation:
    def test_matrix_shape_mismatch(self):
        with pytest.raises(CircuitError):
            Gate("bad", (0, 1), gm.X)

    def test_duplicate_qubits(self):
        with pytest.raises(CircuitError):
            Gate("bad", (0,), gm.X, controls=(0,))

    def test_control_states_length(self):
        with pytest.raises(CircuitError):
            Gate("bad", (0,), gm.X, controls=(1,), control_states=(1, 0))

    def test_control_states_bits(self):
        with pytest.raises(CircuitError):
            Gate("bad", (0,), gm.X, controls=(1,), control_states=(2,))

    def test_diagonal_autodetect(self):
        assert gl.z(0).diagonal
        assert gl.s(0).diagonal
        assert not gl.h(0).diagonal
        assert gl.cz(0, 1).diagonal
        assert not gl.cx(0, 1).diagonal


class TestOperatorMatrix:
    def test_plain_gate(self):
        assert np.allclose(gl.h(0).operator_matrix(), gm.H)

    def test_cx_matrix(self):
        expect = np.eye(4, dtype=complex)
        expect[2:, 2:] = gm.X
        assert np.allclose(gl.cx(0, 1).operator_matrix(), expect)

    def test_anti_control_matrix(self):
        gate = gl.cnx([0], 1, control_states=[0])
        expect = np.eye(4, dtype=complex)
        expect[:2, :2] = gm.X
        assert np.allclose(gate.operator_matrix(), expect)

    def test_ccx_matrix(self):
        got = gl.ccx(0, 1, 2).operator_matrix()
        expect = np.eye(8, dtype=complex)
        expect[6:, 6:] = gm.X
        assert np.allclose(got, expect)

    def test_adjoint(self):
        gate = gl.t(0)
        assert np.allclose(gate.adjoint().matrix, gm.TDG)
        cgate = gl.cp(0.7, 0, 1)
        assert np.allclose(cgate.adjoint().operator_matrix(),
                           cgate.operator_matrix().conj().T)


class TestTDDvsDense:
    def test_single_qubit_nondiagonal(self):
        compare_tdd_dense(gl.h(0), [], ["x"], ["y"], ["x", "y"])

    def test_single_qubit_diagonal(self):
        compare_tdd_dense(gl.s(0), [], ["x"], ["x"], ["x"])

    def test_projector(self):
        compare_tdd_dense(gl.proj(0, 1), [], ["x"], ["x"], ["x"])

    def test_cx(self):
        compare_tdd_dense(gl.cx(0, 1), ["c"], ["x"], ["y"], ["c", "x", "y"])

    def test_cz_fully_diagonal(self):
        compare_tdd_dense(gl.cz(0, 1), ["c"], ["x"], ["x"], ["c", "x"])

    def test_cp(self):
        compare_tdd_dense(gl.cp(0.9, 0, 1), ["c"], ["x"], ["x"], ["c", "x"])

    def test_ccx(self):
        compare_tdd_dense(gl.ccx(0, 1, 2), ["c1", "c2"], ["x"], ["y"],
                          ["c1", "c2", "x", "y"])

    def test_cnx_wide(self):
        gate = gl.cnx([0, 1, 2, 3], 4)
        compare_tdd_dense(gate, ["c1", "c2", "c3", "c4"], ["x"], ["y"],
                          ["c1", "c2", "c3", "c4", "x", "y"])

    def test_anti_controls(self):
        gate = gl.cnx([0, 1], 2, control_states=[0, 1])
        compare_tdd_dense(gate, ["c1", "c2"], ["x"], ["y"],
                          ["c1", "c2", "x", "y"])

    def test_swap_two_target(self):
        compare_tdd_dense(gl.swap(0, 1), [], ["a", "b"], ["c", "d"],
                          ["a", "b", "c", "d"])

    def test_scalar_gate(self):
        compare_tdd_dense(gl.scalar(0.25j), [], [], [], [])

    def test_controlled_scalar(self):
        gate = Gate("cphase", (), np.array([[np.exp(0.3j)]]),
                    controls=(0, 1))
        compare_tdd_dense(gate, ["c1", "c2"], [], [], ["c1", "c2"])

    def test_scaled_kraus(self):
        compare_tdd_dense(gl.scaled_x(0, 0.6), [], ["x"], ["y"],
                          ["x", "y"])


class TestWideControlEfficiency:
    def test_cnx_tdd_is_linear_size(self):
        # 30-control CNX: dense would be 2^62 entries; TDD must be tiny
        names = [f"c{i}" for i in range(30)] + ["x", "y"]
        manager = manager_for(names)
        gate = gl.cnx(list(range(30)), 30)
        tdd = gate.to_tdd(manager,
                          [Index(f"c{i}") for i in range(30)],
                          [Index("x")], [Index("y")])
        assert tdd.size() < 100

    def test_wiring_validation(self):
        manager = manager_for(["c", "x", "y"])
        gate = gl.cx(0, 1)
        with pytest.raises(CircuitError):
            gate.to_tdd(manager, [], [Index("x")], [Index("y")])
        diag = gl.cz(0, 1)
        with pytest.raises(CircuitError):
            diag.to_tdd(manager, [Index("c")], [Index("x")], [Index("y")])
