"""Disk-backed, content-addressed result store.

The persistent counterpart of the in-memory
:class:`~repro.mc.reachability.ReachabilityCache`: reachable-space
fixpoints keyed by the (system, initial-subspace, direction, bound)
content fingerprints, surviving process restarts.  See
:mod:`repro.store.store` for the on-disk layout and the crash-safety
contract, and :mod:`repro.store.migrate` for the schema-version /
migration machinery.
"""

from repro.store.migrate import SCHEMA_VERSION
from repro.store.store import (GCReport, ResultStore, StoreStats,
                               entry_key)

__all__ = ["ResultStore", "StoreStats", "GCReport", "SCHEMA_VERSION",
           "entry_key"]
