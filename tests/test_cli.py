"""Command-line interface."""

import pytest

from repro.cli import main


class TestImage:
    def test_grover(self, capsys):
        assert main(["image", "grover", "--size", "4"]) == 0
        out = capsys.readouterr().out
        assert "dim(T(S0)) = 1" in out
        assert "max #node" in out

    def test_bitflip_basic(self, capsys):
        assert main(["image", "bitflip", "--method", "basic"]) == 0
        assert "dim(T(S0)) = 1" in capsys.readouterr().out

    def test_addition_method(self, capsys):
        assert main(["image", "ghz", "--size", "5", "--method",
                     "addition", "--k", "2"]) == 0


class TestReach:
    def test_qrw(self, capsys):
        assert main(["reach", "qrw", "--size", "3", "--steps", "1"]) == 0
        out = capsys.readouterr().out
        assert "converged  = True" in out

    def test_frontier_flag(self, capsys):
        assert main(["reach", "qrw", "--size", "3", "--frontier"]) == 0
        assert "frontier=True" in capsys.readouterr().out


class TestInvariant:
    def test_grover_invariant_exit_zero(self, capsys):
        code = main(["invariant", "grover", "--size", "4",
                     "--initial", "invariant", "--strict"])
        assert code == 0
        assert "True" in capsys.readouterr().out

    def test_grover_plus_exit_one(self, capsys):
        code = main(["invariant", "grover", "--size", "4"])
        assert code == 1

    def test_qpe_model(self, capsys):
        assert main(["image", "qpe", "--size", "3",
                     "--phase", "0.625"]) == 0

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["image", "nonsense"])


class TestStrategyFlags:
    def test_image_sliced_inline(self, capsys):
        assert main(["image", "qrw", "--size", "3",
                     "--strategy", "sliced"]) == 0
        out = capsys.readouterr().out
        assert "strategy=sliced" in out
        assert "cofactors" in out

    def test_image_sliced_jobs(self, capsys):
        assert main(["image", "ghz", "--size", "3", "--method", "basic",
                     "--strategy", "sliced", "--jobs", "2"]) == 0
        assert "jobs=2" in capsys.readouterr().out

    def test_reach_sliced_matches_monolithic(self, capsys):
        assert main(["reach", "qrw", "--size", "3",
                     "--strategy", "sliced"]) == 0
        sliced_out = capsys.readouterr().out
        assert main(["reach", "qrw", "--size", "3"]) == 0
        mono_out = capsys.readouterr().out
        dims = lambda text: [line for line in text.splitlines()
                             if line.startswith("dimensions")]
        assert dims(sliced_out) == dims(mono_out)

    def test_slice_depth_flag(self, capsys):
        assert main(["image", "qrw", "--size", "3", "--strategy",
                     "sliced", "--slice-depth", "1"]) == 0

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            main(["image", "ghz", "--strategy", "nonsense"])


class TestSweepCommand:
    def test_axes_run(self, capsys, tmp_path):
        assert main(["sweep", "--models", "ghz", "--sizes", "3",
                     "--methods", "basic", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "ghz3/basic/tdd/monolithic" in out
        assert (tmp_path / "sweep.json").exists()
        assert (tmp_path / "sweep.csv").exists()

    def test_spec_file_run(self, capsys, tmp_path):
        import json
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "cli-test", "models": ["bv"], "sizes": [3],
            "methods": ["basic"]}))
        assert main(["sweep", "--spec", str(spec_path)]) == 0
        assert "bv3/basic/tdd/monolithic" in capsys.readouterr().out

    def test_missing_axes_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--models", "ghz"])  # no --sizes


class TestBenchForwarders:
    def test_smoke_strategy_forward(self, capsys):
        # the smoke wrapper forwards strategy flags to the harness
        assert main(["smoke", "--model", "ghz", "--size", "3",
                     "--strategy", "monolithic"]) == 0
        assert "strategy=monolithic" in capsys.readouterr().out
