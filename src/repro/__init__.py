"""repro — Image Computation for Quantum Transition Systems.

A complete reimplementation of Hong, Gao, Li, Ying & Ying, *"Image
Computation for Quantum Transition Systems"* (DATE 2025): tensor
decision diagrams with a fully iterative apply kernel (instrumented
operation caches, root-based garbage collection — see
``ARCHITECTURE.md``), quantum circuits as tensor networks, subspace
algebra, quantum transition systems, four image computation algorithms
(basic / addition partition / contraction partition / hybrid) and a
model-checking layer with pluggable backends on top.

The public API is organised around two first-class objects:

* :class:`~repro.mc.config.CheckerConfig` — one validated, frozen,
  JSON-round-trippable description of the whole engine configuration
  (backend, image method, execution strategy, worker pool, per-method
  parameters), and
* temporal **specifications** — Birkhoff-von Neumann propositions over
  named subspaces with ``AG``/``EF`` on top, written as text
  (``"AG (inv & ~bad)"``) or as ASTs (:mod:`repro.mc.logic`), checked
  by the single verb :meth:`~repro.mc.checker.ModelChecker.check`.

Quickstart::

    from repro import CheckerConfig, ModelChecker, models, parse_spec

    qts = models.grover_qts(4)        # registers atoms: inv, marked, ...
    config = CheckerConfig(method="contraction",
                           method_params={"k1": 4, "k2": 4})
    checker = ModelChecker(qts, config)

    result = checker.check("AG inv")  # one uniform CheckResult:
    result.holds                      #   the verdict ...
    result.reachable_dimension        #   ... the reachability trace
    result.witness                    #   ... violating/witness subspace
    result.stats.cache_hit_rate       #   ... and the kernel cost profile

    # the same check, identical verdict, on the dense statevector
    # reference (small instances only — the dense backend is 2^n):
    dense = ModelChecker(qts, CheckerConfig(backend="dense"))
    assert dense.check(parse_spec("AG inv")).holds == result.holds
    assert checker.cross_validate(spec="AG inv").ok

    # parallel sliced execution: contractions decompose into cofactor
    # subproblems fanned out over a process pool (identical results)
    parallel = ModelChecker(qts, CheckerConfig(strategy="sliced", jobs=4))

The pre-config keyword spelling
(``ModelChecker(qts, method="contraction", k1=4)``) still works but
emits a :class:`DeprecationWarning`.
"""

from repro.circuits.circuit import QuantumCircuit
from repro.gates.gate import Gate
from repro.gates import library as gates
from repro.image import (AdditionImageComputer, BasicImageComputer,
                         ContractionImageComputer, ImageEngine, ImageResult,
                         MonolithicExecutor, SlicedExecutor, compute_image,
                         make_computer)
from repro.indices.index import Index, wire
from repro.indices.order import IndexOrder
from repro.mc.backends import (Backend, DenseStatevectorBackend, TDDBackend,
                               cross_validate, make_backend)
from repro.mc.checker import CheckResult, ModelChecker
from repro.mc.config import CheckerConfig
from repro.mc.drivers import (DRIVERS, FixpointDriver, FrontierDriver,
                              OpShardedDriver, SequentialDriver,
                              make_driver)
from repro.mc.logic import (Always, Atomic, Eventually, Join, Meet, Name,
                            Not, Proposition)
from repro.mc.reachability import (ReachabilityCache, ReachabilityTrace,
                                   reachable_space)
from repro.mc.specs import parse_spec, to_text
from repro.subspace.subspace import StateSpace, Subspace
from repro.subspace.projector import basis_decompose
from repro.systems import models
from repro.systems.operations import QuantumOperation
from repro.systems.qts import QuantumTransitionSystem
from repro.tdd.manager import TDDManager
from repro.tdd.tdd import TDD

__version__ = "1.0.0"

__all__ = [
    "QuantumCircuit", "Gate", "gates",
    "AdditionImageComputer", "BasicImageComputer",
    "ContractionImageComputer", "ImageEngine", "ImageResult",
    "MonolithicExecutor", "SlicedExecutor", "compute_image",
    "make_computer",
    "Index", "wire", "IndexOrder",
    "Backend", "DenseStatevectorBackend", "TDDBackend",
    "cross_validate", "make_backend",
    "CheckerConfig", "CheckResult", "ModelChecker", "reachable_space",
    "DRIVERS", "FixpointDriver", "SequentialDriver", "OpShardedDriver",
    "FrontierDriver", "make_driver",
    "ReachabilityCache", "ReachabilityTrace",
    "Always", "Atomic", "Eventually", "Join", "Meet", "Name", "Not",
    "Proposition", "parse_spec", "to_text",
    "StateSpace", "Subspace", "basis_decompose",
    "models", "QuantumOperation", "QuantumTransitionSystem",
    "TDDManager", "TDD",
    "__version__",
]
