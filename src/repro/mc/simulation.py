"""Monte-Carlo cross-validation of symbolic results.

A second, independent line of defence behind the dense oracle: sample
random pure states from a subspace, push them through the transition
operations with the dense simulator, and check that the *symbolically*
computed image contains every sampled outcome.  Disagreement pinpoints
which Kraus branch and which input state broke.

This is how a practitioner would sanity-check the engine on a system
slightly too large for full dense comparison but small enough to
simulate single states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.subspace.subspace import Subspace
from repro.systems.qts import QuantumTransitionSystem


@dataclass
class ValidationReport:
    """Outcome of one Monte-Carlo validation run."""

    samples: int
    failures: List[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"{len(self.failures)} failures"
        return f"ValidationReport(samples={self.samples}, {status})"


def sample_state(subspace: Subspace,
                 rng: np.random.Generator) -> np.ndarray:
    """A Haar-ish random unit vector inside ``subspace`` (dense)."""
    k = subspace.dimension
    if k == 0:
        raise ValueError("cannot sample from the zero subspace")
    coefficients = rng.normal(size=k) + 1j * rng.normal(size=k)
    coefficients /= np.linalg.norm(coefficients)
    vector = np.zeros(2 ** subspace.space.num_qubits, dtype=complex)
    for c, basis_vec in zip(coefficients, subspace.basis):
        vector += c * basis_vec.to_numpy().reshape(-1)
    return vector


def validate_image(qts: QuantumTransitionSystem, image: Subspace,
                   source: Optional[Subspace] = None,
                   samples: int = 20, seed: int = 0,
                   tol: float = 1e-7) -> ValidationReport:
    """Check ``E|psi> in image`` for sampled ``|psi>`` and all Kraus E.

    ``image`` should be (at least contain) the symbolic ``T(source)``.
    """
    if source is None:
        source = qts.initial
    rng = np.random.default_rng(seed)
    image_projector = None
    report = ValidationReport(samples=samples)
    # dense Kraus matrices once
    kraus = []
    for op in qts.operations:
        for j, matrix in enumerate(op.kraus_matrices()):
            kraus.append((op.symbol, j, matrix))
    dim = 2 ** qts.num_qubits
    if image.dimension:
        basis = np.stack([v.to_numpy().reshape(-1) for v in image.basis],
                         axis=1)
        image_projector = basis @ basis.conj().T
    else:
        image_projector = np.zeros((dim, dim), dtype=complex)

    for sample_index in range(samples):
        vector = sample_state(source, rng)
        for symbol, branch, matrix in kraus:
            out = matrix @ vector
            norm = np.linalg.norm(out)
            if norm < tol:
                continue
            residual = out - image_projector @ out
            if np.linalg.norm(residual) > tol * norm:
                report.failures.append({
                    "sample": sample_index,
                    "operation": symbol,
                    "kraus": branch,
                    "residual": float(np.linalg.norm(residual) / norm),
                })
    return report


def validate_reachability(qts: QuantumTransitionSystem,
                          reachable: Subspace,
                          steps: int = 5, samples: int = 10,
                          seed: int = 0,
                          tol: float = 1e-7) -> ValidationReport:
    """Random-walk validation: simulate ``steps`` random transitions
    from random initial states and check each visited state stays in
    the claimed reachable space."""
    rng = np.random.default_rng(seed)
    kraus = []
    for op in qts.operations:
        kraus.extend(op.kraus_matrices())
    dim = 2 ** qts.num_qubits
    if reachable.dimension:
        basis = np.stack([v.to_numpy().reshape(-1)
                          for v in reachable.basis], axis=1)
        projector = basis @ basis.conj().T
    else:
        projector = np.zeros((dim, dim), dtype=complex)

    report = ValidationReport(samples=samples)
    for sample_index in range(samples):
        vector = sample_state(qts.initial, rng)
        for step in range(steps):
            matrix = kraus[rng.integers(0, len(kraus))]
            vector = matrix @ vector
            norm = np.linalg.norm(vector)
            if norm < tol:
                break
            vector = vector / norm
            residual = vector - projector @ vector
            if np.linalg.norm(residual) > tol:
                report.failures.append({
                    "sample": sample_index,
                    "step": step,
                    "residual": float(np.linalg.norm(residual)),
                })
                break
    return report
