"""Wire-index assignment for circuits viewed as tensor networks.

Walking a circuit gate-by-gate, each qubit *i* carries a current wire
index ``x_i^j`` (paper notation, Fig. 2).  A gate *advances* the index
of a wire it acts on non-trivially, producing ``x_i^{j+1}``; control
wires and every wire of a diagonal gate *reuse* the current index —
this is the hyper-edge merging of Section V.A that concentrates degree
on shared indices (Fig. 5).

:class:`WireTracker` performs that walk and yields one
:class:`GateWiring` per gate, plus the circuit's external input and
output indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.gates.gate import Gate
from repro.indices.index import Index, wire


@dataclass(frozen=True)
class GateWiring:
    """The index assignment of one gate instance in a circuit."""

    gate: Gate
    control_indices: Tuple[Index, ...]
    target_in: Tuple[Index, ...]
    target_out: Tuple[Index, ...]

    @property
    def indices(self) -> Tuple[Index, ...]:
        """All distinct indices of the gate tensor."""
        out = list(self.control_indices) + list(self.target_in)
        for idx in self.target_out:
            if idx not in out:
                out.append(idx)
        return tuple(out)


class WireTracker:
    """Assigns tensor indices to the wires of a gate sequence."""

    def __init__(self, num_qubits: int) -> None:
        self.num_qubits = num_qubits
        self._time = [0] * num_qubits

    def current(self, qubit: int) -> Index:
        return wire(qubit, self._time[qubit])

    def advance(self, qubit: int) -> Index:
        self._time[qubit] += 1
        return wire(qubit, self._time[qubit])

    def wire_gate(self, gate: Gate) -> GateWiring:
        """Assign indices to one gate and advance the touched wires."""
        control_indices = tuple(self.current(q) for q in gate.controls)
        target_in = tuple(self.current(q) for q in gate.targets)
        if gate.diagonal or not gate.targets:
            target_out = target_in
        else:
            target_out = tuple(self.advance(q) for q in gate.targets)
        return GateWiring(gate, control_indices, target_in, target_out)


def wire_circuit(num_qubits: int, gates: List[Gate]
                 ) -> Tuple[List[GateWiring], List[Index], List[Index]]:
    """Wire a whole gate list.

    Returns ``(wirings, input_indices, output_indices)`` where the
    *i*-th input index is ``x_i^0`` and the *i*-th output index is the
    last index on qubit *i*.  For a qubit touched only by diagonal
    gates (or untouched), input and output coincide.
    """
    tracker = WireTracker(num_qubits)
    inputs = [tracker.current(q) for q in range(num_qubits)]
    wirings = [tracker.wire_gate(g) for g in gates]
    outputs = [tracker.current(q) for q in range(num_qubits)]
    return wirings, inputs, outputs
