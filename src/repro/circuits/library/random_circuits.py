"""Random circuit generation for property-based testing."""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.circuits.circuit import QuantumCircuit

#: Single-qubit gate menu: (method name, needs angle).
_SINGLE = [("h", False), ("x", False), ("y", False), ("z", False),
           ("s", False), ("t", False), ("rx", True), ("ry", True),
           ("rz", True), ("p", True)]


def random_circuit(num_qubits: int, num_gates: int,
                   seed: Optional[int] = None,
                   two_qubit_fraction: float = 0.4,
                   allow_ccx: bool = True) -> QuantumCircuit:
    """A random unitary circuit (for differential testing).

    Gate mix: single-qubit Cliffords + rotations, CX/CZ/CP and
    (optionally) CCX, with uniformly random placements and angles.
    Deterministic for a fixed ``seed``.
    """
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits, f"random{num_qubits}x{num_gates}")
    for _ in range(num_gates):
        roll = rng.random()
        if num_qubits >= 2 and roll < two_qubit_fraction:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            kind = rng.integers(0, 4 if (allow_ccx and num_qubits >= 3)
                                else 3)
            if kind == 0:
                circuit.cx(int(a), int(b))
            elif kind == 1:
                circuit.cz(int(a), int(b))
            elif kind == 2:
                circuit.cp(float(rng.uniform(0, 2 * math.pi)),
                           int(a), int(b))
            else:
                qubits = rng.choice(num_qubits, size=3, replace=False)
                circuit.ccx(int(qubits[0]), int(qubits[1]), int(qubits[2]))
        else:
            name, needs_angle = _SINGLE[rng.integers(0, len(_SINGLE))]
            q = int(rng.integers(0, num_qubits))
            if needs_angle:
                getattr(circuit, name)(float(rng.uniform(0, 2 * math.pi)), q)
            else:
                getattr(circuit, name)(q)
    return circuit
