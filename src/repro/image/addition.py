"""Addition-partition image computation (paper, Section V.A).

The circuit's undirected index graph is built (hyper-edges merged by
wire-index reuse), the ``k`` highest-degree *internal* indices are
selected, and the circuit tensor is sliced over all ``2^k`` assignments
of those indices.  Each slice contracts into a smaller operator-part
TDD ``phi_i`` with ``cont(|psi>, phi) = sum_i cont(|psi>, phi_i)``, so
the monolithic operator diagram of the basic algorithm is never built.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.network import circuit_to_tdd_network
from repro.config import DEFAULT_ADDITION_K
from repro.image.base import (ImageComputerBase, input_sum_indices,
                              rename_outputs_to_kets)
from repro.indices.index import Index
from repro.systems.qts import QuantumTransitionSystem
from repro.tdd.tdd import TDD
from repro.tensor.graph import IndexGraph
from repro.tensor.network import TensorNetwork
from repro.utils.stats import StatsRecorder


def select_slice_indices(network: TensorNetwork, count: int) -> List[Index]:
    """The ``count`` highest-degree internal indices of the network."""
    graph = IndexGraph.from_tensors(network.tensors)
    return graph.highest_degree(count, exclude=network.open_indices)


def slice_network(network: TensorNetwork, assignment: Dict[Index, int]
                  ) -> TensorNetwork:
    """Fix internal indices to constants in every tensor touching them."""
    tensors = []
    for tensor in network.tensors:
        local = {idx: bit for idx, bit in assignment.items()
                 if idx in set(tensor.indices)}
        tensors.append(tensor.slice(local) if local else tensor)
    return TensorNetwork(tensors, set(network.open_indices))


class AdditionImageComputer(ImageComputerBase):
    """Section V.A: slice high-degree indices, add the contributions."""

    method = "addition"

    def __init__(self, qts: QuantumTransitionSystem,
                 k: int = DEFAULT_ADDITION_K) -> None:
        super().__init__(qts)
        if k < 0:
            raise ValueError("k must be non-negative")
        self.k = k
        self._parts: Dict[int, Tuple[List[TDD], List[Index],
                                     List[Index]]] = {}
        self.build_stats = StatsRecorder()

    # ------------------------------------------------------------------
    def parts_for(self, circuit: QuantumCircuit, stats: StatsRecorder
                  ) -> Tuple[List[TDD], List[Index], List[Index]]:
        key = id(circuit)
        if key not in self._parts:
            network, inputs, outputs = circuit_to_tdd_network(
                circuit, self.qts.manager)
            sliced = select_slice_indices(network, self.k)
            parts: List[TDD] = []
            for bits in itertools.product((0, 1), repeat=len(sliced)):
                assignment = dict(zip(sliced, bits))
                part_network = slice_network(network, assignment)
                part = part_network.contract_all(
                    observer=self.build_stats.observe_tdd)
                parts.append(part)
            self._parts[key] = (parts, inputs, outputs)
        stats.merge(self.build_stats)
        return self._parts[key]

    # ------------------------------------------------------------------
    def _circuit_images(self, state: TDD, circuit: QuantumCircuit,
                        stats: StatsRecorder) -> Iterator[TDD]:
        parts, inputs, outputs = self.parts_for(circuit, stats)
        sum_over = input_sum_indices(inputs, outputs)
        total = None
        for part in parts:
            contribution = self.executor.contract(state, part, sum_over,
                                                  stats)
            stats.contractions += 1
            stats.observe_tdd(contribution)
            total = (contribution if total is None
                     else total + contribution)
            stats.observe_tdd(total)
        if len(parts) > 1:
            stats.additions += len(parts) - 1
        yield rename_outputs_to_kets(self.qts.space, total, outputs)
