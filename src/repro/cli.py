"""Command-line interface.

Subcommands:

* ``image``  — one-step image computation on a built-in model,
* ``reach``  — reachability fixpoint,
* ``invariant`` — check ``T(S0) <= S0`` (``--strict`` for equality),
* ``crosscheck`` — compare the tdd and dense backends on one image,
* ``table1`` / ``table2`` / ``smoke`` — forward to the benchmark
  harnesses.

``image`` and ``reach`` accept ``--backend {tdd,dense}`` (the dense
statevector reference is exponential — small sizes only) and report the
kernel instrumentation: cache hit rate and post-GC/peak live nodes.

Examples::

    python -m repro image grover --size 4 --method contraction
    python -m repro reach qrw --size 4 --frontier
    python -m repro image ghz --size 3 --backend dense
    python -m repro crosscheck grover --size 4
    python -m repro invariant grover --size 4 --initial invariant
    python -m repro table1 --scale small
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.mc.backends import BACKENDS, cross_validate, make_backend
from repro.mc.invariants import invariant_holds
from repro.systems import models

#: model name -> builder(size, args)
_MODELS: Dict[str, Callable] = {
    "ghz": lambda size, args: models.ghz_qts(size),
    "grover": lambda size, args: models.grover_qts(
        size, initial=args.initial, iterations=args.iterations),
    "bv": lambda size, args: models.bv_qts(size),
    "qft": lambda size, args: models.qft_qts(size),
    "qrw": lambda size, args: models.qrw_qts(
        size, args.noise, steps=args.steps),
    "bitflip": lambda size, args: models.bitflip_qts(),
    "qpe": lambda size, args: models.qpe_qts(size, args.phase),
    "wstate": lambda size, args: models.w_state_qts(size),
    "hiddenshift": lambda size, args: models.hidden_shift_qts(size),
}


def _add_model_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("model", choices=sorted(_MODELS))
    parser.add_argument("--size", type=int, default=4,
                        help="qubit count (ignored for bitflip)")
    parser.add_argument("--method", default="contraction",
                        choices=["basic", "addition", "contraction",
                                 "hybrid"])
    parser.add_argument("--k", type=int, default=1,
                        help="addition partition slice count")
    parser.add_argument("--k1", type=int, default=4)
    parser.add_argument("--k2", type=int, default=4)
    parser.add_argument("--initial", default="plus",
                        help="grover initial space (plus|invariant)")
    parser.add_argument("--iterations", type=int, default=1,
                        help="grover iterations per transition")
    parser.add_argument("--steps", type=int, default=1,
                        help="qrw steps per transition")
    parser.add_argument("--noise", type=float, default=0.1,
                        help="qrw coin bit-flip probability")
    parser.add_argument("--phase", type=float, default=0.625,
                        help="qpe phase to estimate")


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    # not part of _add_model_arguments: crosscheck always runs both
    # engines, so only commands that honour the flag accept it
    parser.add_argument("--backend", default="tdd", choices=list(BACKENDS),
                        help="computation engine (dense = exponential "
                             "statevector reference, small sizes only)")


def _method_params(args) -> dict:
    if args.method == "addition":
        return {"k": args.k}
    if args.method == "contraction":
        return {"k1": args.k1, "k2": args.k2}
    if args.method == "hybrid":
        return {"k": args.k, "k1": args.k1, "k2": args.k2}
    return {}


def _build(args):
    return _MODELS[args.model](args.size, args)


def _make_backend(args):
    # make_backend drops tdd-only method params for non-tdd backends
    return make_backend(args.backend, method=args.method,
                        **_method_params(args))


def _print_kernel_stats(stats) -> None:
    if stats.extra.get("backend") == "dense":
        return  # no symbolic kernel involved
    lookups = stats.cache_hits + stats.cache_misses
    print(f"cache      = {stats.cache_hits}/{lookups} hits "
          f"({100 * stats.cache_hit_rate:.0f}%)")
    print(f"live nodes = {stats.live_nodes} after GC "
          f"(peak {stats.peak_live_nodes}, "
          f"reclaimed {stats.nodes_reclaimed})")


def _engine_label(args, frontier: bool = False) -> str:
    # the dense reference ignores method/frontier — don't print them as
    # if they took effect
    if args.backend != "tdd":
        return f"backend={args.backend}"
    label = f"method={args.method} backend=tdd"
    if frontier:
        label += f" frontier={args.frontier}"
    return label


def _cmd_image(args) -> int:
    result = _make_backend(args).compute_image(_build(args))
    print(f"model={args.model}{args.size} {_engine_label(args)}")
    print(f"dim(T(S0)) = {result.dimension}")
    print(f"time       = {result.stats.seconds:.3f} s")
    print(f"max #node  = {result.stats.max_nodes}")
    _print_kernel_stats(result.stats)
    return 0


def _cmd_reach(args) -> int:
    trace = _make_backend(args).reachable(_build(args),
                                          frontier=args.frontier)
    print(f"model={args.model}{args.size} "
          f"{_engine_label(args, frontier=True)}")
    print(f"dimensions = {trace.dimensions}")
    print(f"converged  = {trace.converged} "
          f"({trace.iterations} iterations)")
    print(f"time       = {trace.stats.seconds:.3f} s")
    print(f"max #node  = {trace.stats.max_nodes}")
    _print_kernel_stats(trace.stats)
    return 0


def _cmd_crosscheck(args) -> int:
    report = cross_validate(_build(args), method=args.method,
                            **_method_params(args))
    print(f"model={args.model}{args.size} method={args.method}")
    print(f"tdd   dim = {report.tdd_dimension} "
          f"({report.tdd_seconds:.3f} s)")
    print(f"dense dim = {report.dense_dimension} "
          f"({report.dense_seconds:.3f} s)")
    print(f"agree     = {report.agree}")
    return 0 if report.agree else 1


def _cmd_invariant(args) -> int:
    qts = _build(args)
    image = _make_backend(args).compute_image(qts).subspace
    holds = invariant_holds(image, qts.initial, args.strict)
    relation = "=" if args.strict else "<="
    print(f"T(S0) {relation} S0 for {args.model}{args.size} "
          f"({_engine_label(args)}): {holds}")
    return 0 if holds else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="Image computation for quantum "
                                  "transition systems (DATE 2025)")
    sub = parser.add_subparsers(dest="command", required=True)

    image = sub.add_parser("image", help="one-step image computation")
    _add_model_arguments(image)
    _add_backend_argument(image)
    image.set_defaults(func=_cmd_image)

    reach = sub.add_parser("reach", help="reachability fixpoint")
    _add_model_arguments(reach)
    _add_backend_argument(reach)
    reach.add_argument("--frontier", action="store_true")
    reach.set_defaults(func=_cmd_reach)

    invariant = sub.add_parser("invariant", help="check T(S0) <= S0")
    _add_model_arguments(invariant)
    _add_backend_argument(invariant)
    invariant.add_argument("--strict", action="store_true")
    invariant.set_defaults(func=_cmd_invariant)

    crosscheck = sub.add_parser(
        "crosscheck", help="compare tdd and dense backends on one image")
    _add_model_arguments(crosscheck)
    crosscheck.set_defaults(func=_cmd_crosscheck)

    table1 = sub.add_parser("table1", help="regenerate Table I")
    table1.add_argument("--scale", default="small",
                        choices=["small", "medium", "paper"])
    table1.set_defaults(func=lambda args: __import__(
        "repro.bench.table1", fromlist=["main"]).main(
            ["--scale", args.scale]))

    table2 = sub.add_parser("table2", help="regenerate Table II")
    table2.add_argument("--qubits", type=int, default=7)
    table2.add_argument("--kmax", type=int, default=6)
    table2.set_defaults(func=lambda args: __import__(
        "repro.bench.table2", fromlist=["main"]).main(
            ["--qubits", str(args.qubits), "--kmax", str(args.kmax)]))

    smoke = sub.add_parser("smoke", help="run the <60s smoke benchmark")
    smoke.add_argument("--model", default="grover")
    smoke.add_argument("--size", type=int, default=6)
    smoke.set_defaults(func=lambda args: __import__(
        "repro.bench.smoke", fromlist=["main"]).main(
            ["--model", args.model, "--size", str(args.size)]))

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
