"""Noise channel library.

The paper's noisy-circuit modelling (Section III.A.3) uses a single
bit-flip channel; this module provides the standard single-qubit
channels as Kraus *matrix sets* plus a builder that inserts a channel
at any position of a unitary circuit, producing the list of Kraus
circuits a :class:`~repro.systems.operations.QuantumOperation` needs.
Amplitude damping is non-unital, which exercises image computation
beyond what the paper's experiments cover.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.errors import SystemError_
from repro.gates import library as gl
from repro.gates import matrices as gm


def _check_probability(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise SystemError_(f"probability {p} outside [0, 1]")


def bit_flip_kraus(probability: float) -> List[np.ndarray]:
    """``{sqrt(1-p) I, sqrt(p) X}``."""
    _check_probability(probability)
    return [math.sqrt(1 - probability) * gm.I,
            math.sqrt(probability) * gm.X]


def phase_flip_kraus(probability: float) -> List[np.ndarray]:
    """``{sqrt(1-p) I, sqrt(p) Z}``."""
    _check_probability(probability)
    return [math.sqrt(1 - probability) * gm.I,
            math.sqrt(probability) * gm.Z]


def bit_phase_flip_kraus(probability: float) -> List[np.ndarray]:
    """``{sqrt(1-p) I, sqrt(p) Y}``."""
    _check_probability(probability)
    return [math.sqrt(1 - probability) * gm.I,
            math.sqrt(probability) * gm.Y]


def depolarizing_kraus(probability: float) -> List[np.ndarray]:
    """``{sqrt(1-3p/4) I, sqrt(p)/2 X, sqrt(p)/2 Y, sqrt(p)/2 Z}``."""
    _check_probability(probability)
    return [math.sqrt(1 - 3 * probability / 4) * gm.I,
            math.sqrt(probability) / 2 * gm.X,
            math.sqrt(probability) / 2 * gm.Y,
            math.sqrt(probability) / 2 * gm.Z]


def amplitude_damping_kraus(gamma: float) -> List[np.ndarray]:
    """``{ [[1,0],[0,sqrt(1-g)]], [[0,sqrt(g)],[0,0]] }`` (non-unital)."""
    _check_probability(gamma)
    e0 = np.array([[1, 0], [0, math.sqrt(1 - gamma)]], dtype=complex)
    e1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=complex)
    return [e0, e1]


def phase_damping_kraus(lam: float) -> List[np.ndarray]:
    """``{ diag(1, sqrt(1-l)), diag(0, sqrt(l)) }``."""
    _check_probability(lam)
    return [np.diag([1, math.sqrt(1 - lam)]).astype(complex),
            np.diag([0, math.sqrt(lam)]).astype(complex)]


CHANNELS = {
    "bit_flip": bit_flip_kraus,
    "phase_flip": phase_flip_kraus,
    "bit_phase_flip": bit_phase_flip_kraus,
    "depolarizing": depolarizing_kraus,
    "amplitude_damping": amplitude_damping_kraus,
    "phase_damping": phase_damping_kraus,
}


def is_trace_preserving(kraus: Sequence[np.ndarray],
                        tol: float = 1e-9) -> bool:
    """``sum E^dagger E = I``."""
    dim = kraus[0].shape[0]
    total = sum(e.conj().T @ e for e in kraus)
    return bool(np.allclose(total, np.eye(dim), atol=tol))


def insert_channel(circuit: QuantumCircuit, position: int, qubit: int,
                   kraus: Sequence[np.ndarray],
                   name: str = "noise") -> List[QuantumCircuit]:
    """One Kraus circuit per channel element, with the element inserted
    after gate index ``position`` of ``circuit`` on ``qubit``.

    This is exactly how Section III.A.3 builds
    ``T2 = S o (E_b (x) I) o (E_c (x) I)``: the unitary prefix, one
    Kraus element, the unitary suffix.
    """
    if not 0 <= position <= circuit.num_gates:
        raise SystemError_(f"position {position} outside 0.."
                           f"{circuit.num_gates}")
    out: List[QuantumCircuit] = []
    for j, element in enumerate(kraus):
        branch = QuantumCircuit(circuit.num_qubits,
                                f"{circuit.name}_{name}{j}")
        branch.extend(circuit.gates[:position])
        branch.append(gl.kraus(f"{name}{j}", qubit, element))
        branch.extend(circuit.gates[position:])
        out.append(branch)
    return out


def noisy_operation(symbol: str, circuit: QuantumCircuit, position: int,
                    qubit: int, channel: str, parameter: float):
    """A :class:`QuantumOperation` for ``circuit`` with a named channel
    inserted at ``position`` on ``qubit``."""
    from repro.systems.operations import QuantumOperation
    factory = CHANNELS.get(channel)
    if factory is None:
        raise SystemError_(f"unknown channel {channel!r}; "
                           f"choose from {sorted(CHANNELS)}")
    circuits = insert_channel(circuit, position, qubit,
                              factory(parameter), name=channel)
    return QuantumOperation(symbol, circuits)
