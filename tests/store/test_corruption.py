"""Fault injection: every kind of damage is a miss, never a wrong answer.

Each test corrupts one artefact of a healthy store — blob truncated,
blob bit-flipped, blob deleted, index row deleted, whole index
clobbered — reopens it the way a fresh process would, and checks the
same three-part contract: the lookup returns ``None`` (miss), a
quarantine record documents what happened, and no exception escapes.
A subsequent cold run then repopulates the entry.
"""

from __future__ import annotations

import glob
import json
import os
import sqlite3

import pytest

from repro.mc.reachability import reachable_space
from repro.store import ResultStore
from repro.systems import models
from tests.helpers import subspace_to_dense


@pytest.fixture
def populated(tmp_path):
    """A store directory holding one qrw(3) fixpoint, plus its trace."""
    root = str(tmp_path / "store")
    qts = models.qrw_qts(3, 0.2)
    trace = reachable_space(qts, method="basic")
    with ResultStore(root) as st:
        assert st.store(qts, qts.initial, "forward", 0, trace)
        (key,) = [row["key"] for row in st.ls()]
    return root, key, trace


def _blob_path(root: str, key: str) -> str:
    return os.path.join(root, "blobs", f"{key}.json")


def _assert_miss_quarantine_recover(root, key, trace, reason):
    """The shared postcondition of every corruption scenario."""
    with ResultStore(root) as st:
        qts = models.qrw_qts(3, 0.2)
        assert st.lookup(qts, qts.initial) is None
        assert st.misses == 1
        records = st.quarantine_records()
        assert any(r["reason"] == reason and r["key"] == key
                   for r in records)
        # the damaged entry is gone from the index, so a cold run can
        # repopulate the same key and serve it again
        fresh = reachable_space(qts, method="basic")
        assert st.store(qts, qts.initial, "forward", 0, fresh)
        warm = st.lookup(qts, qts.initial)
        assert warm is not None
        assert subspace_to_dense(warm).equals(
            subspace_to_dense(trace.subspace))


class TestBlobDamage:
    def test_truncated_blob(self, populated):
        root, key, trace = populated
        blob = _blob_path(root, key)
        with open(blob, "r+", encoding="utf-8") as handle:
            handle.truncate(os.path.getsize(blob) // 2)
        _assert_miss_quarantine_recover(root, key, trace, "unreadable")
        # the damaged blob is preserved for post-mortem, not deleted
        assert os.path.exists(
            os.path.join(root, "quarantine", f"{key}.json"))

    def test_bit_flipped_weight(self, populated):
        # JSON stays parseable — only the checksum can catch this
        root, key, trace = populated
        blob = _blob_path(root, key)
        with open(blob, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        text = json.dumps(payload, indent=1, sort_keys=True)
        for i, ch in enumerate(text):
            if ch.isdigit():
                flipped = text[:i] + str((int(ch) + 1) % 10) + text[i + 1:]
                break
        with open(blob, "w", encoding="utf-8") as handle:
            handle.write(flipped)
        _assert_miss_quarantine_recover(root, key, trace, "checksum")

    def test_blob_deleted_index_kept(self, populated):
        root, key, trace = populated
        os.unlink(_blob_path(root, key))
        _assert_miss_quarantine_recover(root, key, trace, "unreadable")

    def test_blob_swapped_for_other_fixpoint(self, populated):
        # a well-formed blob describing a *different* fixpoint must not
        # be served under this key, digest aside: regenerate a valid
        # payload for another system and splice it in with a matching
        # index checksum
        root, key, trace = populated
        other_root = root + ".other"
        ghz = models.ghz_qts(3)
        with ResultStore(other_root) as other:
            other.store(ghz, ghz.initial, "forward", 0,
                        reachable_space(ghz, method="basic"))
            (other_key,) = [row["key"] for row in other.ls()]
        os.replace(_blob_path(other_root, other_key),
                   _blob_path(root, key))
        conn = sqlite3.connect(os.path.join(root, "index.sqlite"))
        checksum = conn.execute(
            "ATTACH ? AS other", (os.path.join(other_root,
                                               "index.sqlite"),)
        ) and conn.execute(
            "SELECT checksum FROM other.entries").fetchone()[0]
        conn.execute("UPDATE entries SET checksum=?", (checksum,))
        conn.commit()
        conn.close()
        _assert_miss_quarantine_recover(root, key, trace, "decode")


class TestIndexDamage:
    def test_index_deleted_blobs_kept(self, populated):
        # orphan blobs are invisible: no row, no answer — and gc only
        # reaps them after the grace period
        root, key, trace = populated
        os.unlink(os.path.join(root, "index.sqlite"))
        with ResultStore(root) as st:
            qts = models.qrw_qts(3, 0.2)
            assert st.lookup(qts, qts.initial) is None
            assert len(st) == 0
            report = st.gc()
            assert report.orphans_removed == 0  # inside grace period
            assert os.path.exists(_blob_path(root, key))

    def test_index_clobbered_with_garbage(self, populated):
        root, key, trace = populated
        with open(os.path.join(root, "index.sqlite"), "wb") as handle:
            handle.write(b"this is not a sqlite database at all")
        with ResultStore(root) as st:
            qts = models.qrw_qts(3, 0.2)
            assert st.lookup(qts, qts.initial) is None
            records = st.quarantine_records()
            assert any(r["reason"] == "index-corrupt" for r in records)
            # the bad file was set aside for post-mortem
            moved = [r["moved_to"] for r in records
                     if r["reason"] == "index-corrupt"]
            assert moved and os.path.exists(moved[0])
            # and the store works again immediately
            fresh = reachable_space(qts, method="basic")
            assert st.store(qts, qts.initial, "forward", 0, fresh)
            assert st.lookup(qts, qts.initial) is not None

    def test_row_deleted_blob_kept(self, populated):
        root, key, trace = populated
        conn = sqlite3.connect(os.path.join(root, "index.sqlite"))
        conn.execute("DELETE FROM entries WHERE key=?", (key,))
        conn.commit()
        conn.close()
        with ResultStore(root) as st:
            qts = models.qrw_qts(3, 0.2)
            assert st.lookup(qts, qts.initial) is None
            # repopulating reuses the key; the orphan blob is simply
            # overwritten by the atomic rename
            fresh = reachable_space(qts, method="basic")
            assert st.store(qts, qts.initial, "forward", 0, fresh)
            assert st.lookup(qts, qts.initial) is not None


class TestCrashResidue:
    def test_stale_tmp_files_never_served_and_swept(self, populated):
        # the residue of a writer that died between write and rename
        root, key, trace = populated
        stale = _blob_path(root, key) + ".tmp.99999"
        with open(stale, "w", encoding="utf-8") as handle:
            handle.write('{"partial":')
        past = os.path.getmtime(stale) - 3600
        os.utime(stale, (past, past))
        with ResultStore(root) as st:
            qts = models.qrw_qts(3, 0.2)
            assert st.lookup(qts, qts.initial) is not None  # unaffected
            report = st.gc()
            assert report.orphans_removed == 1
        assert not os.path.exists(stale)
        assert glob.glob(os.path.join(root, "blobs", "*.tmp.*")) == []
