"""Named gate constructors.

Thin factories around :class:`~repro.gates.gate.Gate` for every gate the
paper's benchmark circuits need, plus projectors and scaled Kraus
operators for dynamic and noisy circuits.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.gates import matrices as gm
from repro.gates.gate import Gate


def h(qubit: int) -> Gate:
    return Gate("h", (qubit,), gm.H)


def x(qubit: int) -> Gate:
    return Gate("x", (qubit,), gm.X)


def y(qubit: int) -> Gate:
    return Gate("y", (qubit,), gm.Y)


def z(qubit: int) -> Gate:
    return Gate("z", (qubit,), gm.Z)


def s(qubit: int) -> Gate:
    return Gate("s", (qubit,), gm.S)


def sdg(qubit: int) -> Gate:
    return Gate("sdg", (qubit,), gm.SDG)


def t(qubit: int) -> Gate:
    return Gate("t", (qubit,), gm.T)


def tdg(qubit: int) -> Gate:
    return Gate("tdg", (qubit,), gm.TDG)


def sx(qubit: int) -> Gate:
    return Gate("sx", (qubit,), gm.SX)


def rx(theta: float, qubit: int) -> Gate:
    return Gate("rx", (qubit,), gm.rx(theta))


def ry(theta: float, qubit: int) -> Gate:
    return Gate("ry", (qubit,), gm.ry(theta))


def rz(theta: float, qubit: int) -> Gate:
    return Gate("rz", (qubit,), gm.rz(theta))


def p(theta: float, qubit: int) -> Gate:
    return Gate("p", (qubit,), gm.phase(theta))


def u3(theta: float, phi: float, lam: float, qubit: int) -> Gate:
    return Gate("u3", (qubit,), gm.u3(theta, phi, lam))


def cx(control: int, target: int) -> Gate:
    return Gate("cx", (target,), gm.X, controls=(control,))


def cz(control: int, target: int) -> Gate:
    return Gate("cz", (target,), gm.Z, controls=(control,))


def cp(theta: float, control: int, target: int) -> Gate:
    """Controlled phase (the QFT rotation R_k for theta = pi / 2^{k-1})."""
    return Gate("cp", (target,), gm.phase(theta), controls=(control,))


def ccx(control1: int, control2: int, target: int) -> Gate:
    return Gate("ccx", (target,), gm.X, controls=(control1, control2))


def cnx(controls: Sequence[int], target: int,
        control_states: Optional[Sequence[int]] = None) -> Gate:
    """The multi-controlled X gate C^n(X), with optional anti-controls."""
    return Gate("cnx", (target,), gm.X, controls=tuple(controls),
                control_states=control_states)


def cnz(controls: Sequence[int], target: int) -> Gate:
    return Gate("cnz", (target,), gm.Z, controls=tuple(controls))


def cnu(controls: Sequence[int], target: int, matrix: np.ndarray,
        name: str = "cnu",
        control_states: Optional[Sequence[int]] = None) -> Gate:
    return Gate(name, (target,), matrix, controls=tuple(controls),
                control_states=control_states)


def swap(a: int, b: int) -> Gate:
    return Gate("swap", (a, b), gm.SWAP)


def proj(qubit: int, outcome: int) -> Gate:
    """The measurement projector |outcome><outcome| on one qubit."""
    if outcome not in (0, 1):
        raise ValueError("measurement outcome must be 0 or 1")
    return Gate(f"proj{outcome}", (qubit,), gm.P1 if outcome else gm.P0)


def kraus(name: str, qubit: int, matrix: np.ndarray) -> Gate:
    """An arbitrary (generally non-unitary) single-qubit Kraus operator."""
    return Gate(name, (qubit,), matrix)


def scaled_i(qubit: int, factor: float) -> Gate:
    """``factor * I`` — e.g. the sqrt(p) I element of a bit-flip channel."""
    return Gate("kI", (qubit,), factor * gm.I)


def scaled_x(qubit: int, factor: float) -> Gate:
    """``factor * X`` — e.g. the sqrt(1-p) X element of a bit-flip channel."""
    return Gate("kX", (qubit,), factor * gm.X)


def scalar(value: complex) -> Gate:
    """A zero-qubit global scalar factor."""
    return Gate("scalar", (), np.array([[value]], dtype=complex))


def matrix_gate(name: str, targets: Sequence[int],
                matrix: np.ndarray) -> Gate:
    """An arbitrary matrix on an ordered tuple of target qubits."""
    return Gate(name, tuple(targets), matrix)
