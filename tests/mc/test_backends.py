"""The pluggable backend layer: tdd vs dense statevector."""

import pytest

from repro.errors import ReproError
from repro.mc.backends import (BACKENDS, DenseStatevectorBackend, TDDBackend,
                               cross_validate, make_backend)
from repro.mc.checker import ModelChecker
from repro.systems import models


class TestFactory:
    def test_names(self):
        assert set(BACKENDS) == {"tdd", "dense"}
        assert make_backend("tdd").name == "tdd"
        assert make_backend("dense").name == "dense"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError):
            make_backend("quantum-annealer")

    def test_tdd_backend_validates_method(self):
        with pytest.raises(ReproError):
            TDDBackend(method="nonsense")


class TestDenseBackend:
    def test_image_matches_tdd(self):
        for build in (lambda: models.ghz_qts(3),
                      lambda: models.grover_qts(3),
                      lambda: models.qrw_qts(3, 0.2)):
            tdd_result = TDDBackend("contraction", k1=2, k2=2).compute_image(
                build())
            dense_result = DenseStatevectorBackend().compute_image(build())
            assert (tdd_result.subspace.dimension
                    == dense_result.subspace.dimension)

    def test_image_subspace_is_tdd_backed(self):
        qts = models.ghz_qts(3)
        result = DenseStatevectorBackend().compute_image(qts)
        # same result type as the symbolic backend: a TDD Subspace
        assert result.subspace.space is qts.space
        assert result.stats.extra["backend"] == "dense"

    def test_reachable_matches_tdd(self):
        dense_trace = DenseStatevectorBackend().reachable(
            models.qrw_qts(3, 0.2))
        tdd_trace = TDDBackend("contraction", k1=2, k2=2).reachable(
            models.qrw_qts(3, 0.2))
        assert dense_trace.dimensions == tdd_trace.dimensions
        assert dense_trace.converged

    def test_size_guard(self):
        backend = DenseStatevectorBackend(max_qubits=4)
        with pytest.raises(ReproError, match="dense backend refuses"):
            backend.compute_image(models.ghz_qts(5))


class TestCrossValidation:
    def test_agreement_on_models(self):
        for build in (lambda: models.ghz_qts(3),
                      lambda: models.bitflip_qts(),
                      lambda: models.qrw_qts(3, 0.1)):
            report = cross_validate(build(), method="contraction",
                                    k1=2, k2=2)
            assert report.ok, repr(report)
            assert report.tdd_dimension == report.dense_dimension

    def test_checker_facade(self):
        checker = ModelChecker(models.grover_qts(3), method="basic")
        report = checker.cross_validate()
        assert report.ok

    def test_params_split_between_backends(self):
        # dense-only and tdd-only params may coexist; each backend
        # takes its own and ignores the other's
        checker = ModelChecker(models.grover_qts(3), method="contraction",
                               k1=2, k2=2, backend="dense", max_qubits=8)
        assert checker.cross_validate().ok


class TestCheckerBackendSelection:
    def test_dense_checker_end_to_end(self):
        qts = models.grover_qts(3, initial="invariant")
        checker = ModelChecker(qts, backend="dense")
        assert checker.backend.name == "dense"
        assert checker.check_invariant(strict=True)
        assert checker.check_safety(qts.initial)

    def test_dense_image_dimension(self):
        checker = ModelChecker(models.ghz_qts(3), backend="dense")
        assert checker.image().dimension == 1

    def test_dense_is_drop_in_for_tdd_method_params(self):
        # the quickstart swap: same call with backend="dense" must not
        # trip over tdd-only parameters like k1/k2
        qts = models.grover_qts(3, initial="invariant")
        checker = ModelChecker(qts, method="contraction", k1=4, k2=4,
                               backend="dense")
        assert checker.check_invariant(strict=True)

    def test_repr_mentions_backend(self):
        checker = ModelChecker(models.ghz_qts(3), backend="dense")
        assert "dense" in repr(checker)
