"""GHZ-state preparation circuits."""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit


def ghz_circuit(num_qubits: int) -> QuantumCircuit:
    """H on qubit 0 followed by a CX chain: |0...0> -> GHZ_n.

    The standard preparation circuit used for the paper's ``GHZ n``
    benchmark rows.
    """
    circuit = QuantumCircuit(num_qubits, f"ghz{num_qubits}")
    circuit.h(0)
    for q in range(num_qubits - 1):
        circuit.cx(q, q + 1)
    return circuit
