"""The :class:`Gate` value type.

A gate is a (possibly non-unitary) operator applied to a few qubits,
optionally controlled.  The decomposition into controls and a base
matrix is what gives the tensor-network view its *hyper-edges* (paper,
Section V.A): the input and output index of a control wire — and of
every wire of a diagonal gate — are the *same* tensor index, so a gate

* with ``t`` non-diagonal target wires and ``k`` controls is a rank
  ``k + 2t`` tensor,
* that is diagonal is a rank ``k + t`` tensor.

Gates can carry arbitrary matrices: measurement projectors and scaled
Kraus operators (``sqrt(p)·I``) are ordinary gates, which is how
dynamic and noisy circuits (paper, Sections III.A.2–3) are modelled.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import CircuitError
from repro.gates import matrices as gm
from repro.indices.index import Index
from repro.tdd import construction as tc
from repro.tdd.manager import TDDManager
from repro.tdd.tdd import TDD
from repro.tensor.dense import DenseTensor


class Gate:
    """An operator on ``targets``, conditioned on ``controls``.

    Parameters
    ----------
    name:
        Display name (``"h"``, ``"cx"``, ...).
    targets:
        Qubits the base ``matrix`` acts on (row/column order is
        big-endian in ``targets``).
    matrix:
        ``2^t x 2^t`` complex matrix, ``[output, input]``; need not be
        unitary.
    controls:
        Control qubits; the base matrix applies when every control
        qubit carries its ``control_states`` bit, otherwise identity.
    control_states:
        Per-control activation bit (default: all 1).  A 0 entry is an
        anti-control (open circle), used e.g. by the quantum-walk
        decrement.
    diagonal:
        Exploit diagonality of ``matrix`` (single index per target
        wire).  Auto-detected when ``None``.
    """

    __slots__ = ("name", "targets", "controls", "control_states", "matrix",
                 "diagonal")

    def __init__(self, name: str, targets: Sequence[int],
                 matrix: np.ndarray,
                 controls: Sequence[int] = (),
                 control_states: Optional[Sequence[int]] = None,
                 diagonal: Optional[bool] = None) -> None:
        targets = tuple(targets)
        controls = tuple(controls)
        matrix = np.asarray(matrix, dtype=complex)
        dim = 2 ** len(targets)
        if matrix.shape != (dim, dim):
            raise CircuitError(f"gate {name!r}: matrix shape {matrix.shape} "
                               f"does not match {len(targets)} targets")
        if control_states is None:
            control_states = (1,) * len(controls)
        control_states = tuple(control_states)
        if len(control_states) != len(controls):
            raise CircuitError("control_states length mismatch")
        if any(bit not in (0, 1) for bit in control_states):
            raise CircuitError("control_states must be bits")
        all_qubits = controls + targets
        if len(set(all_qubits)) != len(all_qubits):
            raise CircuitError(f"gate {name!r}: duplicate qubits "
                               f"{all_qubits}")
        if diagonal is None:
            diagonal = len(targets) > 0 and gm.is_diagonal(matrix)
        self.name = name
        self.targets = targets
        self.controls = controls
        self.control_states = control_states
        self.matrix = matrix
        self.diagonal = bool(diagonal)

    # ------------------------------------------------------------------
    @property
    def qubits(self) -> Tuple[int, ...]:
        """All touched qubits, controls first."""
        return self.controls + self.targets

    @property
    def num_targets(self) -> int:
        return len(self.targets)

    @property
    def is_multi_qubit(self) -> bool:
        return len(self.qubits) > 1

    @property
    def is_scalar(self) -> bool:
        """True for the zero-qubit global-scalar gate (Kraus weights)."""
        return not self.targets and not self.controls

    @property
    def advances_wire(self) -> dict:
        """Map qubit -> True when the gate consumes/produces distinct
        indices on that wire (False for controls and diagonal wires)."""
        out = {q: False for q in self.controls}
        for q in self.targets:
            out[q] = not self.diagonal
        return out

    # ------------------------------------------------------------------
    def operator_matrix(self) -> np.ndarray:
        """The full matrix on ``self.qubits`` (controls expanded)."""
        k = len(self.controls)
        t = len(self.targets)
        dim = 2 ** (k + t)
        out = np.eye(dim, dtype=complex)
        if k == 0:
            return self.matrix.copy()
        active = 0
        for bit in self.control_states:
            active = (active << 1) | bit
        block = slice(active * 2 ** t, (active + 1) * 2 ** t)
        out[block, block] = self.matrix
        return out

    def adjoint(self) -> "Gate":
        """The Hermitian adjoint (dagger) of this gate."""
        return Gate(self.name + "_dg", self.targets, self.matrix.conj().T,
                    controls=self.controls,
                    control_states=self.control_states,
                    diagonal=self.diagonal)

    # ------------------------------------------------------------------
    # tensor construction
    # ------------------------------------------------------------------
    def to_tdd(self, manager: TDDManager,
               control_indices: Sequence[Index],
               target_in: Sequence[Index],
               target_out: Sequence[Index]) -> TDD:
        """Build the gate tensor as a TDD.

        For diagonal gates ``target_in`` must equal ``target_out`` (the
        circuit layer reuses the wire index).  Controlled gates are
        built with the dense-free decomposition
        ``C(U) = Id + 1[controls] (x) (U - Id)`` so that wide
        multi-controlled gates stay cheap.
        """
        self._check_wiring(control_indices, target_in, target_out)
        t = len(self.targets)
        if t == 0:
            base = tc.scalar(manager, complex(self.matrix[0, 0]))
            if not self.controls:
                return base
            ctrl = tc.indicator_pattern(manager, control_indices,
                                        self.control_states)
            ones = tc.ones(manager, control_indices)
            delta_part = ones
            corr = ctrl.scaled(complex(self.matrix[0, 0]) - 1)
            return delta_part + corr
        if self.diagonal:
            diag = np.diag(self.matrix).reshape((2,) * t)
            diag_tdd = tc.from_numpy(manager, diag, list(target_in))
            if not self.controls:
                return diag_tdd
            ones_all = tc.ones(manager,
                               list(control_indices) + list(target_in))
            ctrl = tc.indicator_pattern(manager, control_indices,
                                        self.control_states)
            corr_matrix = diag - np.ones_like(diag)
            corr = ctrl.product(
                tc.from_numpy(manager, corr_matrix, list(target_in)))
            return ones_all + corr
        tensor = self.matrix.reshape((2,) * (2 * t))
        labels = list(target_out) + list(target_in)
        if not self.controls:
            return tc.from_numpy(manager, tensor, labels)
        identity_part = tc.identity(manager, list(target_out),
                                    list(target_in))
        ctrl = tc.indicator_pattern(manager, control_indices,
                                    self.control_states)
        corr_matrix = (self.matrix - np.eye(2 ** t)).reshape((2,) * (2 * t))
        corr = ctrl.product(tc.from_numpy(manager, corr_matrix, labels))
        result = identity_part + corr
        # Declare the control indices as free even though the identity
        # part does not branch on them.
        return TDD(manager, result.root,
                   list(control_indices) + list(target_in)
                   + list(target_out))

    def to_dense(self, control_indices: Sequence[Index],
                 target_in: Sequence[Index],
                 target_out: Sequence[Index]) -> DenseTensor:
        """Build the gate tensor densely (reference backend).

        Axis layout: controls, then target outputs, then target inputs
        (diagonal gates have one axis per target).
        """
        self._check_wiring(control_indices, target_in, target_out)
        k = len(self.controls)
        t = len(self.targets)
        if t == 0:
            value = complex(self.matrix[0, 0])
            if k == 0:
                return DenseTensor(np.array(value), ())
            arr = np.ones((2,) * k, dtype=complex)
            arr[tuple(self.control_states)] = value
            return DenseTensor(arr, list(control_indices))
        if self.diagonal:
            arr = np.ones((2,) * (k + t), dtype=complex)
            diag = np.diag(self.matrix).reshape((2,) * t)
            for cbits in itertools.product((0, 1), repeat=k):
                if tuple(cbits) == self.control_states or k == 0:
                    arr[cbits] = diag
            indices = list(control_indices) + list(target_in)
            return DenseTensor(arr, indices)
        arr = np.zeros((2,) * (k + 2 * t), dtype=complex)
        eye = np.eye(2 ** t, dtype=complex).reshape((2,) * (2 * t))
        block = self.matrix.reshape((2,) * (2 * t))
        for cbits in itertools.product((0, 1), repeat=k):
            arr[cbits] = block if tuple(cbits) == self.control_states else eye
        indices = list(control_indices) + list(target_out) + list(target_in)
        return DenseTensor(arr, indices)

    # ------------------------------------------------------------------
    def _check_wiring(self, control_indices: Sequence[Index],
                      target_in: Sequence[Index],
                      target_out: Sequence[Index]) -> None:
        if len(control_indices) != len(self.controls):
            raise CircuitError(f"gate {self.name!r}: expected "
                               f"{len(self.controls)} control indices")
        if len(target_in) != len(self.targets):
            raise CircuitError(f"gate {self.name!r}: expected "
                               f"{len(self.targets)} target input indices")
        if self.diagonal:
            if list(target_in) != list(target_out):
                raise CircuitError(f"gate {self.name!r} is diagonal: "
                                   f"target_in must equal target_out")
        else:
            if len(target_out) != len(self.targets):
                raise CircuitError(f"gate {self.name!r}: expected "
                                   f"{len(self.targets)} target output "
                                   f"indices")

    def __repr__(self) -> str:
        parts = [f"Gate({self.name!r}, targets={self.targets}"]
        if self.controls:
            parts.append(f", controls={self.controls}")
            if any(s == 0 for s in self.control_states):
                parts.append(f", control_states={self.control_states}")
        return "".join(parts) + ")"
