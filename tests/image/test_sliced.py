"""The sliced execution strategy: cofactor decomposition + process pool.

The acceptance bar for the strategy is *identical results*: for every
library circuit and slice depth, the sliced strategy must produce the
same image/reachable space as the monolithic baseline, whether the
cofactors run inline or on the worker pool.
"""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.image.engine import ImageEngine, compute_image
from repro.image.sliced import (MonolithicExecutor, SlicedExecutor,
                                STRATEGIES, _contract_task, make_executor)
from repro.image.base import input_sum_indices
from repro.circuits.network import circuit_to_tdd
from repro.mc.checker import ModelChecker
from repro.mc.reachability import reachable_space
from repro.systems import models
from repro.tdd.io import order_payload, to_dict

#: (model, size, builder options) — the five library families
LIBRARY = [
    ("ghz", 4, {}),
    ("bv", 4, {}),
    ("grover", 3, {}),
    ("qft", 3, {}),
    ("qrw", 4, {"steps": 2}),
]


def dense_image(model, size, opts, **kwargs):
    qts = models.build_model(model, size, **opts)
    result = compute_image(qts, **kwargs)
    return result.dimension, result.subspace.to_dense()


class TestStrategyRegistry:
    def test_strategies_tuple(self):
        assert set(STRATEGIES) == {"monolithic", "sliced"}

    def test_make_executor(self):
        qts = models.ghz_qts(3)
        assert isinstance(make_executor("monolithic", qts.manager),
                          MonolithicExecutor)
        sliced = make_executor("sliced", qts.manager, jobs=2, slice_depth=3)
        assert sliced.depth == 3 and sliced.jobs == 2
        sliced.close()

    def test_unknown_strategy(self):
        qts = models.ghz_qts(3)
        with pytest.raises(ReproError):
            make_executor("quantum-magic", qts.manager)
        with pytest.raises(ReproError):
            compute_image(models.ghz_qts(3), method="basic",
                          strategy="quantum-magic")

    def test_negative_depth_rejected(self):
        with pytest.raises(ReproError):
            SlicedExecutor(models.ghz_qts(3).manager, depth=-1)


class TestSlicedEqualsMonolithic:
    """Bit-for-bit agreement on the full circuit library, depths 0-3."""

    @pytest.mark.parametrize("model,size,opts", LIBRARY)
    @pytest.mark.parametrize("depth", [0, 1, 2, 3])
    def test_basic_method(self, model, size, opts, depth):
        dim_mono, dense_mono = dense_image(model, size, opts,
                                           method="basic")
        dim_sliced, dense_sliced = dense_image(
            model, size, opts, method="basic", strategy="sliced",
            slice_depth=depth)
        assert dim_sliced == dim_mono
        assert np.allclose(dense_sliced, dense_mono)

    @pytest.mark.parametrize("model,size,opts", LIBRARY)
    def test_partition_methods(self, model, size, opts):
        dim_mono, dense_mono = dense_image(model, size, opts,
                                           method="basic")
        for method, params in (("addition", {"k": 1}),
                               ("contraction", {"k1": 2, "k2": 2}),
                               ("hybrid", {"k": 1, "k1": 2, "k2": 2})):
            dim_sliced, dense_sliced = dense_image(
                model, size, opts, method=method, strategy="sliced",
                slice_depth=2, **params)
            assert dim_sliced == dim_mono, method
            assert np.allclose(dense_sliced, dense_mono), method

    def test_slices_counted(self):
        qts = models.build_model("qrw", 4, steps=2)
        result = compute_image(qts, method="basic", strategy="sliced",
                               slice_depth=2)
        assert result.stats.slices > 0
        assert result.stats.extra["strategy"] == "sliced"

    def test_depth_zero_degrades_to_monolithic(self):
        qts = models.build_model("ghz", 4)
        result = compute_image(qts, method="basic", strategy="sliced",
                               slice_depth=0)
        assert result.stats.slices == 0


class TestExecutorUnit:
    def _operator_setup(self, model="ghz", size=4, **opts):
        qts = models.build_model(model, size, **opts)
        circuit = qts.all_kraus_circuits()[0]
        operator, inputs, outputs = circuit_to_tdd(circuit, qts.manager)
        state = qts.initial.basis[0]
        sum_over = input_sum_indices(inputs, outputs)
        return qts, state, operator, sum_over

    def test_inline_matches_plain_contract(self):
        qts, state, operator, sum_over = self._operator_setup()
        expected = state.contract(operator, sum_over)
        executor = SlicedExecutor(qts.manager, depth=2)
        got = executor.contract(state, operator, sum_over)
        assert np.allclose(got.to_numpy(), expected.to_numpy())

    def test_depth_beyond_sum_indices(self):
        # more slice levels than summed indices: just uses what exists
        qts, state, operator, sum_over = self._operator_setup("ghz", 3)
        executor = SlicedExecutor(qts.manager, depth=64)
        expected = state.contract(operator, sum_over)
        got = executor.contract(state, operator, sum_over)
        assert np.allclose(got.to_numpy(), expected.to_numpy())

    def test_operator_slices_cached(self):
        qts, state, operator, sum_over = self._operator_setup()
        executor = SlicedExecutor(qts.manager, depth=2)
        executor.contract(state, operator, sum_over)
        cached = executor._slice_cache[operator]
        executor.contract(state, operator, sum_over)
        assert executor._slice_cache[operator] is cached

    def test_dead_state_slices_evaporate(self):
        import gc
        qts, state, operator, sum_over = self._operator_setup()
        executor = SlicedExecutor(qts.manager, depth=2)
        transient = state.scaled(1.0)  # a handle nothing else holds
        executor.contract(transient, operator, sum_over)
        alive = len(executor._slice_cache)
        del transient
        gc.collect()
        assert len(executor._slice_cache) < alive

    def test_zero_state_gives_zero_image(self):
        from repro.tdd import construction as tc
        qts, state, operator, sum_over = self._operator_setup()
        zero = tc.zero(qts.manager, list(state.indices))
        executor = SlicedExecutor(qts.manager, depth=2)
        result = executor.contract(zero, operator, sum_over)
        assert result.is_zero

    def test_worker_task_round_trip(self):
        # the worker entry point, exercised in-process
        qts, state, operator, sum_over = self._operator_setup()
        expected = state.contract(operator, sum_over)
        task = (order_payload(qts.manager.order), to_dict(state),
                to_dict(operator), [idx.name for idx in sum_over])
        result_data = _contract_task(task)
        from repro.tdd.io import from_dict
        rebuilt = from_dict(qts.manager, result_data)
        assert np.allclose(rebuilt.to_numpy(), expected.to_numpy())


class TestProcessPool:
    """The real IPC path: cofactors cross process boundaries."""

    def test_pool_matches_monolithic(self):
        dim_mono, dense_mono = dense_image("grover", 3, {},
                                           method="basic")
        qts = models.build_model("grover", 3)
        with ImageEngine(qts, "basic", strategy="sliced", jobs=2,
                         slice_depth=2) as engine:
            engine.executor.pool_min_nodes = 0  # force IPC dispatch
            result = engine.compute_image()
        assert result.dimension == dim_mono
        assert np.allclose(result.subspace.to_dense(), dense_mono)
        assert result.stats.parallel_tasks > 0

    def test_pool_reuse_across_calls(self):
        qts = models.build_model("qrw", 3)
        with ImageEngine(qts, "basic", strategy="sliced", jobs=2) as engine:
            engine.executor.pool_min_nodes = 0
            first = engine.compute_image()
            second = engine.compute_image()
        assert first.dimension == second.dimension

    def test_submit_failure_falls_back_inline(self):
        # workers spawn lazily: a pool whose processes cannot start
        # fails at submit time, and the executor must degrade inline
        class ExplodingPool:
            def submit(self, *_args, **_kwargs):
                raise OSError("no processes on this host")

            def shutdown(self, wait=True):
                pass

        dim_mono, dense_mono = dense_image("grover", 3, {},
                                           method="basic")
        qts = models.build_model("grover", 3)
        with ImageEngine(qts, "basic", strategy="sliced", jobs=2) as engine:
            engine.executor.pool_min_nodes = 0
            engine.executor._pool = ExplodingPool()
            result = engine.compute_image()
            assert engine.executor._pool_broken
        assert result.dimension == dim_mono
        assert np.allclose(result.subspace.to_dense(), dense_mono)
        assert result.stats.parallel_tasks == 0

    def test_broken_pool_falls_back_inline(self):
        dim_mono, dense_mono = dense_image("ghz", 3, {}, method="basic")
        qts = models.build_model("ghz", 3)
        with ImageEngine(qts, "basic", strategy="sliced", jobs=2) as engine:
            engine.executor.pool_min_nodes = 0
            engine.executor._pool_broken = True  # simulate no-pool host
            result = engine.compute_image()
        assert result.dimension == dim_mono
        assert np.allclose(result.subspace.to_dense(), dense_mono)
        assert result.stats.parallel_tasks == 0

    def test_pool_fallbacks_counted_on_submit_failure(self):
        # a degraded run must be distinguishable from a sliced one in
        # the stats: every batch that was meant for the pool but ran
        # inline increments pool_fallbacks
        class ExplodingPool:
            def submit(self, *_args, **_kwargs):
                raise OSError("no processes on this host")

            def shutdown(self, wait=True):
                pass

        qts = models.build_model("grover", 3)
        with ImageEngine(qts, "basic", strategy="sliced", jobs=2) as engine:
            engine.executor.pool_min_nodes = 0
            engine.executor._pool = ExplodingPool()
            result = engine.compute_image()
        assert result.stats.pool_fallbacks > 0
        assert result.stats.parallel_tasks == 0

    def test_pool_fallbacks_counted_on_unavailable_pool(self):
        qts = models.build_model("grover", 3)
        with ImageEngine(qts, "basic", strategy="sliced", jobs=2) as engine:
            engine.executor.pool_min_nodes = 0
            engine.executor._pool_broken = True
            result = engine.compute_image()
        assert result.stats.pool_fallbacks > 0
        assert "pool_fallbacks" in result.stats.as_dict()

    def test_healthy_pool_records_no_fallbacks(self):
        qts = models.build_model("grover", 3)
        with ImageEngine(qts, "basic", strategy="sliced", jobs=2) as engine:
            engine.executor.pool_min_nodes = 0
            result = engine.compute_image()
        assert result.stats.parallel_tasks > 0
        assert result.stats.pool_fallbacks == 0

    def test_order_reshipped_once_after_growth(self):
        # regression: the watermark never advanced after a re-ship, so
        # every batch after an index registration re-serialised the
        # full order payload
        from repro.indices.index import Index
        qts, state, operator, sum_over = TestExecutorUnit(
        )._operator_setup("grover", 3)
        executor = SlicedExecutor(qts.manager, depth=2, jobs=2,
                                  pool_min_nodes=0)
        try:
            executor.contract(state, operator, sum_over)
            assert executor._pool is not None
            assert executor._order_ships == 0  # initializer covered it
            baseline = executor._pool_order_len
            qts.manager.register(Index("late_index"))
            executor.contract(state, operator, sum_over)
            assert executor._order_ships == 1
            assert executor._pool_order_len == baseline + 1
            executor.contract(state, operator, sum_over)
            executor.contract(state, operator, sum_over)
            assert executor._order_ships == 1  # not re-serialised again
        finally:
            executor.close()


class TestTopLevelPlumbing:
    def test_reachable_space_sliced(self):
        mono = reachable_space(models.build_model("qrw", 3), "basic",
                               max_iterations=4)
        sliced = reachable_space(models.build_model("qrw", 3), "basic",
                                 max_iterations=4, strategy="sliced")
        assert sliced.dimensions == mono.dimensions
        assert np.allclose(sliced.subspace.to_dense(),
                           mono.subspace.to_dense())

    def test_model_checker_strategy(self):
        qts = models.grover_qts(4, initial="invariant")
        checker = ModelChecker(qts, method="basic", strategy="sliced")
        assert checker.check_invariant(strict=True)

    def test_engine_context_manager_closes_pool(self):
        qts = models.build_model("ghz", 3)
        engine = ImageEngine(qts, "basic", strategy="sliced", jobs=2)
        executor = engine.executor
        executor.pool_min_nodes = 0
        engine.compute_image()
        engine.close()
        assert executor._pool is None
