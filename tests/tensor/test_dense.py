"""DenseTensor reference backend."""

import numpy as np
import pytest

from repro.errors import TDDError
from repro.indices.index import Index
from repro.tensor.dense import DenseTensor

from tests.helpers import random_tensor


def idx(*names):
    return [Index(n) for n in names]


def make(rng, *names):
    return DenseTensor(random_tensor(rng, len(names)), idx(*names))


class TestBasics:
    def test_shape_validation(self):
        with pytest.raises(TDDError):
            DenseTensor(np.zeros((2, 3)), idx("a", "b"))

    def test_duplicate_labels(self):
        with pytest.raises(TDDError):
            DenseTensor(np.zeros((2, 2)), idx("a", "a"))

    def test_rank_scalar(self):
        t = DenseTensor(np.array(5.0), ())
        assert t.rank == 0


class TestContract:
    def test_matrix_product(self, rng):
        a = random_tensor(rng, 2)
        b = random_tensor(rng, 2)
        ta = DenseTensor(a, idx("i", "j"))
        tb = DenseTensor(b, idx("j", "k"))
        out = ta.contract(tb, idx("j"))
        assert np.allclose(out.array, a @ b)
        assert out.index_names == ("i", "k")

    def test_shared_unsummed_elementwise(self, rng):
        a = random_tensor(rng, 2)
        b = random_tensor(rng, 2)
        ta = DenseTensor(a, idx("i", "j"))
        tb = DenseTensor(b, idx("j", "k"))
        out = ta.contract(tb, ())
        assert np.allclose(out.array, np.einsum("ij,jk->ijk", a, b))

    def test_phantom_index_factor_two(self, rng):
        a = random_tensor(rng, 1)
        b = random_tensor(rng, 1)
        ta = DenseTensor(a, idx("i"))
        tb = DenseTensor(b, idx("i"))
        out = ta.contract(tb, idx("i", "ghost"))
        assert np.isclose(complex(out.array), 2 * np.sum(a * b))

    def test_product_disjoint(self, rng):
        ta = make(rng, "i")
        tb = make(rng, "j")
        out = ta.product(tb)
        assert np.allclose(out.array, np.outer(ta.array, tb.array))


class TestSliceAndTranspose:
    def test_slice(self, rng):
        t = make(rng, "i", "j", "k")
        out = t.slice({Index("j"): 1})
        assert np.allclose(out.array, t.array[:, 1])
        assert out.index_names == ("i", "k")

    def test_slice_unknown_raises(self, rng):
        with pytest.raises(TDDError):
            make(rng, "i").slice({Index("z"): 0})

    def test_transpose_like(self, rng):
        t = make(rng, "i", "j")
        flipped = t.transpose_like(idx("j", "i"))
        assert np.allclose(flipped.array, t.array.T)

    def test_rename(self, rng):
        t = make(rng, "i", "j")
        renamed = t.rename({"i": "x"})
        assert renamed.index_names == ("x", "j")


class TestArithmetic:
    def test_add_aligns_axes(self, rng):
        a = random_tensor(rng, 2)
        b = random_tensor(rng, 2)
        ta = DenseTensor(a, idx("i", "j"))
        tb = DenseTensor(b, idx("j", "i"))
        out = ta + tb
        assert np.allclose(out.array, a + b.T)

    def test_add_mismatch_raises(self, rng):
        with pytest.raises(TDDError):
            make(rng, "i") + make(rng, "j")

    def test_scaled_conj(self, rng):
        t = make(rng, "i", "j")
        assert np.allclose(t.scaled(2j).array, 2j * t.array)
        assert np.allclose(t.conj().array, t.array.conj())

    def test_allclose(self, rng):
        t = make(rng, "i", "j")
        assert t.allclose(t.transpose_like(idx("j", "i")).transpose_like(
            idx("i", "j")))
        assert not t.allclose(t.scaled(2))
