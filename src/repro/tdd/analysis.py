"""Diagram analysis: size profiles and structural statistics.

The paper's Table I reports one number per run (peak node count); this
module provides the finer-grained views used by the ablation benches
and by anyone debugging an index order: nodes per level, edge/weight
statistics, sparsity, and a width profile (the BDD-style "how many
nodes branch on each variable" histogram that reveals where an order
is bad).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.tdd.node import Node
from repro.tdd.tdd import TDD


@dataclass
class DiagramProfile:
    """Structural statistics of one TDD."""

    nodes: int
    terminal_reached: bool
    levels: Dict[str, int] = field(default_factory=dict)
    max_width: int = 0
    edges: int = 0
    zero_edges: int = 0
    distinct_weights: int = 0

    @property
    def width_profile(self) -> List[int]:
        return list(self.levels.values())


def profile(tdd: TDD) -> DiagramProfile:
    """Walk the diagram once and collect a :class:`DiagramProfile`."""
    manager = tdd.manager
    seen: Set[int] = set()
    level_counts: Counter = Counter()
    weights: Set[complex] = set()
    edges = 0
    zero_edges = 0
    terminal = False

    stack = []
    if not tdd.root.is_zero:
        stack.append(tdd.root.node)
        weights.add(tdd.root.weight)
    else:
        zero_edges += 1

    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if node.is_terminal:
            terminal = True
            continue
        name = manager.order.index_at(node.level).name
        level_counts[name] += 1
        for edge in (node.low, node.high):
            edges += 1
            if edge.is_zero:
                zero_edges += 1
            else:
                weights.add(edge.weight)
                stack.append(edge.node)

    return DiagramProfile(
        nodes=len(seen),
        terminal_reached=terminal,
        levels=dict(level_counts),
        max_width=max(level_counts.values(), default=0),
        edges=edges,
        zero_edges=zero_edges,
        distinct_weights=len(weights),
    )


def density(tdd: TDD) -> float:
    """Fraction of non-zero entries of the dense tensor.

    Computed by path counting on the diagram (no dense expansion):
    each edge with non-zero weight contributes its subtree's non-zero
    path count, scaled for skipped levels.
    """
    manager = tdd.manager
    if tdd.root.is_zero:
        return 0.0
    levels = sorted(manager.level(i) for i in tdd.indices)
    position = {lv: p for p, lv in enumerate(levels)}
    total_rank = len(levels)

    # cache[id(node)] = non-zero paths of the subtree, counted from the
    # position just below the node's own level (independent of how the
    # node was reached); entry points scale by 2^(skipped levels).
    cache: Dict[int, int] = {}

    def scaled(node: Node, from_position: int) -> int:
        if node.is_terminal:
            return 2 ** (total_rank - from_position)
        return 2 ** (position[node.level] - from_position) * cache[id(node)]

    enter, exit_ = 0, 1
    stack = [(enter, tdd.root.node)]
    while stack:
        tag, node = stack.pop()
        if node.is_terminal or id(node) in cache:
            continue
        if tag == enter:
            stack.append((exit_, node))
            for edge in (node.low, node.high):
                if not edge.is_zero:
                    stack.append((enter, edge.node))
        else:
            node_position = position[node.level]
            cache[id(node)] = sum(
                scaled(edge.node, node_position + 1)
                for edge in (node.low, node.high) if not edge.is_zero)

    nonzero = scaled(tdd.root.node, 0)
    return nonzero / 2 ** total_rank


def compare_sizes(tdds: Dict[str, TDD]) -> Dict[str, int]:
    """Size per labelled diagram (convenience for bench reporting)."""
    return {label: tdd.size() for label, tdd in tdds.items()}
