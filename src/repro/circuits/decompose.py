"""Gate decomposition passes.

The TDD engine handles ``C^n(X)`` natively (rank n+2 tensors), but
exchanging circuits with other tools (OpenQASM 2.0, hardware
compilers) requires elementary gates.  ``decompose_circuit`` lowers a
circuit to the ``{single-qubit, CX, CP, (optionally CCX)}`` basis:

* ``C^n(X)`` — as ``H · C^n(Z) · H`` with ``C^n(Z) = C^n(P(pi))``,
* ``C^n(P(theta))`` — the textbook ancilla-free recursion
  ``CP(t/2) · C^{n-1}X · CP(-t/2) · C^{n-1}X · C^{n-1}P(t/2)``
  (gate count exponential in ``n``; exact, no ancillas),
* anti-controls — X conjugation on the anti-control wires,
* single-controlled general U — the ZYZ/ABC construction
  ``C(U) = P(alpha)_c · A · CX · B · CX · C``,
* ``swap`` — three CX.

Projector and Kraus gates are intentionally rejected: they have no
unitary decomposition (model them as Kraus circuits instead).
"""

from __future__ import annotations

import cmath
import math
from typing import List, Sequence, Tuple

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.errors import CircuitError
from repro.gates import library as gl
from repro.gates import matrices as gm
from repro.gates.gate import Gate

_BASIS_1Q = {"h", "x", "y", "z", "s", "sdg", "t", "tdg", "sx", "rx", "ry",
             "rz", "p", "u3"}


def zyz_decompose(matrix: np.ndarray) -> Tuple[float, float, float, float]:
    """Factor a 2x2 unitary as ``e^{i alpha} Rz(a) Ry(b) Rz(c)``.

    Returns ``(alpha, a, b, c)``.
    """
    matrix = np.asarray(matrix, dtype=complex)
    det = np.linalg.det(matrix)
    alpha = cmath.phase(det) / 2
    su2 = matrix * cmath.exp(-1j * alpha)
    # su2 = [[cos(b/2) e^{-i(a+c)/2}, -sin(b/2) e^{-i(a-c)/2}],
    #        [sin(b/2) e^{ i(a-c)/2},  cos(b/2) e^{ i(a+c)/2}]]
    cos_half = abs(su2[0, 0])
    sin_half = abs(su2[1, 0])
    b = 2 * math.atan2(sin_half, cos_half)
    if cos_half > 1e-12 and sin_half > 1e-12:
        apc = -2 * cmath.phase(su2[0, 0])
        amc = 2 * cmath.phase(su2[1, 0])
        a = (apc + amc) / 2
        c = (apc - amc) / 2
    elif sin_half <= 1e-12:        # diagonal
        a = -2 * cmath.phase(su2[0, 0])
        c = 0.0
    else:                          # anti-diagonal
        a = 2 * cmath.phase(su2[1, 0])
        c = 0.0
    return alpha, a, b, c


def _single_qubit_gates(matrix: np.ndarray, qubit: int) -> List[Gate]:
    """An arbitrary 1-qubit unitary as Rz·Ry·Rz (+ global phase)."""
    alpha, a, b, c = zyz_decompose(matrix)
    gates: List[Gate] = []
    if abs(c) > 1e-12:
        gates.append(gl.rz(c, qubit))
    if abs(b) > 1e-12:
        gates.append(gl.ry(b, qubit))
    if abs(a) > 1e-12:
        gates.append(gl.rz(a, qubit))
    if abs(alpha) > 1e-12:
        gates.append(gl.scalar(cmath.exp(1j * alpha)))
    return gates or [gl.rz(0.0, qubit)]


def _cnx(controls: Sequence[int], target: int,
         keep_ccx: bool) -> List[Gate]:
    controls = list(controls)
    if not controls:
        return [gl.x(target)]
    if len(controls) == 1:
        return [gl.cx(controls[0], target)]
    if len(controls) == 2 and keep_ccx:
        return [gl.ccx(controls[0], controls[1], target)]
    return ([gl.h(target)]
            + _cnp(controls, target, math.pi, keep_ccx)
            + [gl.h(target)])


def _cnp(controls: Sequence[int], target: int, theta: float,
         keep_ccx: bool) -> List[Gate]:
    """C^k(P(theta)) in the elementary basis (ancilla-free recursion)."""
    controls = list(controls)
    if not controls:
        return [gl.p(theta, target)]
    if len(controls) == 1:
        return [gl.cp(theta, controls[0], target)]
    last = controls[-1]
    rest = controls[:-1]
    gates: List[Gate] = [gl.cp(theta / 2, last, target)]
    gates += _cnx(rest, last, keep_ccx)
    gates += [gl.cp(-theta / 2, last, target)]
    gates += _cnx(rest, last, keep_ccx)
    gates += _cnp(rest, target, theta / 2, keep_ccx)
    return gates


def _controlled_unitary(control: int, target: int,
                        matrix: np.ndarray) -> List[Gate]:
    """C(U) via the ABC construction (Nielsen & Chuang 4.2)."""
    alpha, a, b, c = zyz_decompose(matrix)
    gates: List[Gate] = []
    # C = Rz((c - a)/2)
    if abs((c - a) / 2) > 1e-12:
        gates.append(gl.rz((c - a) / 2, target))
    gates.append(gl.cx(control, target))
    # B = Ry(-b/2) Rz(-(a + c)/2)
    if abs((a + c) / 2) > 1e-12:
        gates.append(gl.rz(-(a + c) / 2, target))
    if abs(b / 2) > 1e-12:
        gates.append(gl.ry(-b / 2, target))
    gates.append(gl.cx(control, target))
    # A = Rz(a) Ry(b/2)
    if abs(b / 2) > 1e-12:
        gates.append(gl.ry(b / 2, target))
    if abs(a) > 1e-12:
        gates.append(gl.rz(a, target))
    if abs(alpha) > 1e-12:
        gates.append(gl.p(alpha, control))
    return gates


def decompose_gate(gate: Gate, keep_ccx: bool = True) -> List[Gate]:
    """Lower one gate to the elementary basis.

    Gates already in the basis pass through unchanged.  Raises
    :class:`CircuitError` for non-unitary gates.
    """
    if gate.is_scalar:
        return [gate]
    if not gm.is_unitary(gate.operator_matrix()):
        raise CircuitError(f"gate {gate.name!r} is not unitary; "
                           f"projector/Kraus gates cannot be decomposed")
    # unwrap anti-controls by X conjugation
    if any(s == 0 for s in gate.control_states):
        flips = [gl.x(q) for q, s in zip(gate.controls, gate.control_states)
                 if s == 0]
        inner = Gate(gate.name, gate.targets, gate.matrix,
                     controls=gate.controls, diagonal=gate.diagonal)
        return flips + decompose_gate(inner, keep_ccx) + flips

    if not gate.controls:
        if gate.name in _BASIS_1Q and len(gate.targets) == 1:
            return [gate]
        if len(gate.targets) == 1:
            return _single_qubit_gates(gate.matrix, gate.targets[0])
        if gate.name == "swap":
            a, b = gate.targets
            return [gl.cx(a, b), gl.cx(b, a), gl.cx(a, b)]
        raise CircuitError(f"no decomposition for multi-target gate "
                           f"{gate.name!r}")

    if len(gate.targets) != 1:
        raise CircuitError(f"no decomposition for controlled multi-target "
                           f"gate {gate.name!r}")
    target = gate.targets[0]
    controls = list(gate.controls)
    if np.allclose(gate.matrix, gm.X):
        out = _cnx(controls, target, keep_ccx)
    elif gm.is_diagonal(gate.matrix) and np.isclose(gate.matrix[0, 0], 1.0):
        theta = cmath.phase(complex(gate.matrix[1, 1]))
        out = _cnp(controls, target, theta, keep_ccx)
    elif len(controls) == 1:
        out = _controlled_unitary(controls[0], target, gate.matrix)
    else:
        # C^k(U): peel one level — C^k(U) = C(C^{k-1}(U)) is not
        # directly expressible; use V with V^2 = U (always exists for
        # unitary U) and the standard two-control recursion.
        v = _matrix_sqrt(gate.matrix)
        last = controls[-1]
        rest = controls[:-1]
        out = []
        out += _controlled_unitary(last, target, v)
        out += _cnx(rest, last, keep_ccx)
        out += _controlled_unitary(last, target, v.conj().T)
        out += _cnx(rest, last, keep_ccx)
        out += decompose_gate(Gate("cnu", (target,), v,
                                   controls=tuple(rest)), keep_ccx)
    if len(out) == 1 and len(gate.qubits) <= 2:
        return out
    return out


def _matrix_sqrt(matrix: np.ndarray) -> np.ndarray:
    """A unitary square root of a 2x2 unitary."""
    values, vectors = np.linalg.eig(matrix)
    roots = np.sqrt(values.astype(complex))
    return vectors @ np.diag(roots) @ np.linalg.inv(vectors)


def decompose_circuit(circuit: QuantumCircuit,
                      keep_ccx: bool = True) -> QuantumCircuit:
    """Lower every gate of ``circuit`` to the elementary basis."""
    out = QuantumCircuit(circuit.num_qubits, circuit.name + "_elem")
    for gate in circuit.gates:
        out.extend(decompose_gate(gate, keep_ccx))
    return out
