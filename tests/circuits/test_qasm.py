"""OpenQASM 2.0 subset import/export."""

import math

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.qasm import parse_qasm, to_qasm
from repro.errors import CircuitError
from repro.sim.statevector import circuit_unitary

BELL = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cx q[0], q[1];
"""


class TestParse:
    def test_bell(self):
        circuit = parse_qasm(BELL)
        assert circuit.num_qubits == 2
        assert [g.name for g in circuit.gates] == ["h", "cx"]

    def test_angles_with_pi(self):
        text = ('OPENQASM 2.0;\nqreg q[1];\n'
                'rz(pi/4) q[0];\nu1(2*pi/8) q[0];\n')
        circuit = parse_qasm(text)
        assert circuit.num_gates == 2
        u = circuit_unitary(circuit)
        # rz(pi/4) * p(pi/4) up to global phase
        expect = np.diag([np.exp(-1j * math.pi / 8),
                          np.exp(1j * math.pi / 8)]) @ \
            np.diag([1, np.exp(1j * math.pi / 4)])
        ratio = u @ np.linalg.inv(expect)
        assert np.allclose(ratio, ratio[0, 0] * np.eye(2), atol=1e-9)

    def test_comments_and_barrier_ignored(self):
        text = ('OPENQASM 2.0;\n// a comment\nqreg q[2];\n'
                'barrier q[0], q[1];\nx q[1]; // trailing\n')
        circuit = parse_qasm(text)
        assert [g.name for g in circuit.gates] == ["x"]

    def test_ccx_and_swap(self):
        text = ('OPENQASM 2.0;\nqreg q[3];\n'
                'ccx q[0], q[1], q[2];\nswap q[0], q[2];\n')
        circuit = parse_qasm(text)
        assert [g.name for g in circuit.gates] == ["ccx", "swap"]

    def test_missing_header(self):
        with pytest.raises(CircuitError):
            parse_qasm("qreg q[2];\nh q[0];")

    def test_unknown_gate(self):
        with pytest.raises(CircuitError):
            parse_qasm('OPENQASM 2.0;\nqreg q[1];\nfoo q[0];')

    def test_measure_rejected(self):
        with pytest.raises(CircuitError):
            parse_qasm('OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\n'
                       'measure q[0] -> c[0];')

    def test_bad_angle_expression(self):
        with pytest.raises(CircuitError):
            parse_qasm('OPENQASM 2.0;\nqreg q[1];\n'
                       'rz(__import__("os")) q[0];')


class TestEmit:
    def test_round_trip_semantics(self):
        circuit = (QuantumCircuit(3).h(0).cx(0, 1)
                   .cp(math.pi / 4, 1, 2).ccx(0, 1, 2)
                   .rz(0.7, 1).rx(1.1, 2).ry(-0.4, 0)
                   .s(0).t(1).z(2).swap(0, 2))
        text = to_qasm(circuit)
        parsed = parse_qasm(text)
        u1 = circuit_unitary(circuit)
        u2 = circuit_unitary(parsed)
        ratio = u1 @ u2.conj().T
        assert np.allclose(ratio, ratio[0, 0] * np.eye(8), atol=1e-8)

    def test_emit_library_circuits(self):
        from repro.circuits.library import ghz_circuit, qft_circuit
        for circuit in (ghz_circuit(4), qft_circuit(4)):
            text = to_qasm(circuit)
            parsed = parse_qasm(text)
            u1 = circuit_unitary(circuit)
            u2 = circuit_unitary(parsed)
            assert np.allclose(u1, u2, atol=1e-8)

    def test_projector_gate_rejected(self):
        circuit = QuantumCircuit(1).proj(0, 0)
        with pytest.raises(CircuitError):
            to_qasm(circuit)

    def test_wide_cnx_rejected(self):
        circuit = QuantumCircuit(4).cnx([0, 1, 2], 3)
        with pytest.raises(CircuitError):
            to_qasm(circuit)


def _library_circuits():
    """Every unitary circuit the library builds at a dense-checkable size."""
    from repro.circuits.library import (bernstein_vazirani, cuccaro_adder,
                                        ghz_circuit, grover_iteration,
                                        hidden_shift_circuit, qft_circuit,
                                        qpe_circuit, qrw_step,
                                        w_state_circuit)
    return [
        ("ghz4", ghz_circuit(4)),
        ("bv5", bernstein_vazirani(5)),
        ("qft4", qft_circuit(4)),
        ("grover4", grover_iteration(4)),
        ("qrw4", qrw_step(4)),
        ("qpe4", qpe_circuit(4, 0.625)),
        ("wstate4", w_state_circuit(4)),
        ("hiddenshift4", hidden_shift_circuit(4)),
        # 2-bit registers: the adder spans 2n+2 qubits and the dense
        # unitary check is exponential in that
        ("adder2", cuccaro_adder(2)),
    ]


class TestLibraryRoundTrip:
    """Export → import → semantic equality across the circuit library.

    Circuits using gates outside the OpenQASM 2.0 subset (wide
    multi-controls, explicit scalar phases) are lowered with
    ``decompose_circuit`` first; scalar gates only contribute a global
    phase and are dropped before emission, so equality is checked up to
    global phase.
    """

    @pytest.mark.parametrize(
        "label,circuit", _library_circuits(),
        ids=[label for label, _ in _library_circuits()])
    def test_round_trip(self, label, circuit):
        from repro.circuits.decompose import decompose_circuit
        try:
            text = to_qasm(circuit)
        except CircuitError:
            lowered = decompose_circuit(circuit)
            exportable = QuantumCircuit(lowered.num_qubits, lowered.name)
            for gate in lowered.gates:
                if not gate.is_scalar:
                    exportable.append(gate)
            text = to_qasm(exportable)
        parsed = parse_qasm(text)
        assert parsed.num_qubits == circuit.num_qubits
        u_original = circuit_unitary(circuit)
        u_parsed = circuit_unitary(parsed)
        # equality up to global phase: U V^dagger must be c·I
        ratio = u_original @ u_parsed.conj().T
        dim = u_original.shape[0]
        assert np.allclose(ratio, ratio[0, 0] * np.eye(dim), atol=1e-8)
        assert np.isclose(abs(ratio[0, 0]), 1.0, atol=1e-8)

    def test_round_trip_is_stable(self):
        """A second export of the parsed circuit is byte-identical."""
        from repro.circuits.library import qft_circuit
        text = to_qasm(qft_circuit(4))
        assert to_qasm(parse_qasm(text)) == text
