"""Reachability analysis by repeated image computation.

The reachable space of a QTS is the least subspace containing ``S0``
and closed under every operation:  ``R = lub_k S_k`` with
``S_{k+1} = S_k v T(S_k)``.  Dimensions are integers bounded by
``2^n``, so the iteration terminates as soon as the dimension stops
growing — the standard symbolic-model-checking fixpoint with joins in
place of unions (paper, Sections I and III).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ReproError
from repro.image.engine import ImageEngine
from repro.image.sliced import DEFAULT_SLICE_DEPTH
from repro.subspace.subspace import Subspace
from repro.systems.qts import QuantumTransitionSystem
from repro.utils.stats import StatsRecorder
from repro.utils.timing import Stopwatch


@dataclass
class ReachabilityTrace:
    """The fixpoint iteration record."""

    subspace: Subspace
    dimensions: List[int] = field(default_factory=list)
    iterations: int = 0
    stats: StatsRecorder = field(default_factory=StatsRecorder)
    converged: bool = True
    direction: str = "forward"
    bound: int = 0

    @property
    def dimension(self) -> int:
        return self.subspace.dimension


def reachable_space(qts: QuantumTransitionSystem,
                    method: str = "contraction",
                    initial: Optional[Subspace] = None,
                    max_iterations: int = 0,
                    frontier: bool = False,
                    gc: bool = True,
                    strategy: str = "monolithic",
                    jobs: Optional[int] = None,
                    slice_depth: int = DEFAULT_SLICE_DEPTH,
                    direction: str = "forward",
                    bound: int = 0,
                    **params) -> ReachabilityTrace:
    """Compute the reachable subspace of ``qts``.

    ``max_iterations`` bounds the fixpoint loop (0 = until the
    dimension saturates, which needs at most ``2^n`` rounds).  The
    image computer (and therefore its cached transition TDDs) is
    reused across iterations, as is the execution strategy's worker
    pool and cofactor-slice cache when ``strategy="sliced"`` (see
    :mod:`repro.image.sliced`; ``jobs`` sets the pool width,
    ``slice_depth`` the number of top summed levels to fix).

    ``direction="backward"`` runs the same fixpoint against the
    *adjoint* transition relation (cached Kraus-dagger operator TDDs,
    see :meth:`~repro.systems.qts.QuantumTransitionSystem.adjoint`):
    the result is the space of states that can *reach* ``initial``,
    the standard symbolic-model-checking complement of forward
    reachability.  All four methods and both execution strategies
    apply unchanged.

    ``bound`` is the depth limit of bounded analysis: a positive value
    stops after at most ``bound`` image steps (so the result is the
    space reachable within ``bound`` transitions) and takes precedence
    over ``max_iterations``.

    ``frontier=True`` switches to frontier-set iteration, the classic
    symbolic-model-checking refinement: each round only computes the
    image of the basis vectors *added in the previous round* instead
    of the whole accumulated subspace.  Correct because the image
    operator distributes over joins (Proposition 1), and cheaper when
    the reachable space grows slowly relative to its size.

    ``gc=True`` (the default) runs the manager's mark-and-sweep between
    iterations: the accumulated subspace, the frontier and the
    computer's cached operator TDDs stay pinned (they are live
    handles), while the intermediate diagrams of the finished round are
    reclaimed — this is what keeps the live-node population flat over
    long fixpoints.  The trace stats report the cache hit/miss deltas
    and GC activity of the whole run.
    """
    engine = ImageEngine(qts, method, strategy=strategy, jobs=jobs,
                         slice_depth=slice_depth, direction=direction,
                         **params)
    computer = engine.computer
    current = initial if initial is not None else qts.initial
    if current.dimension == 0:
        engine.close()
        raise ReproError("reachability from the zero subspace is trivial; "
                         "set an initial space first")
    trace = ReachabilityTrace(subspace=current,
                              dimensions=[current.dimension],
                              direction=direction, bound=bound)
    if strategy != "monolithic":
        trace.stats.extra["strategy"] = strategy
    if direction != "forward":
        trace.stats.extra["direction"] = direction
    limit = max_iterations if max_iterations > 0 else 2 ** qts.num_qubits
    if bound > 0:
        limit = min(limit, bound)
    manager = qts.manager
    baseline = manager.cache_counters()
    watch = Stopwatch().start()
    frontier_space = current
    try:
        for _ in range(limit):
            source = frontier_space if frontier else current
            step = computer.image(source, trace.stats)
            grown = current.join(step.subspace)
            trace.iterations += 1
            trace.dimensions.append(grown.dimension)
            if grown.dimension == current.dimension:
                trace.subspace = grown
                break
            if frontier:
                # the new frontier: basis vectors Gram-Schmidt added beyond
                # the previous space (they are orthogonal to it by
                # construction of Subspace.join)
                new_vectors = grown.basis[current.dimension:]
                frontier_space = qts.space.span(new_vectors)
            current = grown
            trace.subspace = grown
            if gc:
                manager.collect()
        else:
            trace.converged = False
    finally:
        # stop the clock before releasing the engine: the sliced
        # strategy's pool shutdown (ProcessPoolExecutor.shutdown with
        # wait=True) is teardown, not fixpoint work, and must not be
        # billed to the trace
        trace.stats.seconds = watch.stop()
        engine.close()
    if gc:
        manager.collect()
    trace.stats.record_manager(manager, baseline)
    return trace
