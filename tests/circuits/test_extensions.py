"""Extension circuit families: QPE, W state, Cuccaro adder, hidden shift."""

import math

import numpy as np
import pytest

from repro.circuits.library.extensions import (cuccaro_adder,
                                               hidden_shift_circuit,
                                               qpe_circuit, w_state_circuit)
from repro.errors import CircuitError
from repro.sim.statevector import basis_state_vector, circuit_unitary


class TestQPE:
    @pytest.mark.parametrize("k", [0, 1, 3, 5, 7])
    def test_exact_phase_read_out(self, k):
        m = 3
        circuit = qpe_circuit(m, k / 2 ** m)
        start = basis_state_vector(m + 1, [0] * m + [1]).reshape(-1)
        out = circuit_unitary(circuit) @ start
        probs = np.abs(out) ** 2
        best = int(np.argmax(probs))
        value = best >> 1  # drop the eigenstate qubit
        assert probs[best] > 0.99
        assert value == k

    def test_inexact_phase_concentrates(self):
        m = 4
        phase = 0.3  # not a multiple of 1/16
        circuit = qpe_circuit(m, phase)
        start = basis_state_vector(m + 1, [0] * m + [1]).reshape(-1)
        out = circuit_unitary(circuit) @ start
        probs = np.abs(out) ** 2
        best = int(np.argmax(probs)) >> 1
        assert abs(best / 2 ** m - phase) < 1 / 2 ** m

    def test_needs_counting_qubit(self):
        with pytest.raises(CircuitError):
            qpe_circuit(0, 0.5)


class TestWState:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_prepares_w_state(self, n):
        circuit = w_state_circuit(n)
        start = basis_state_vector(n, [0] * n).reshape(-1)
        out = circuit_unitary(circuit) @ start
        expect = np.zeros(2 ** n)
        for i in range(n):
            expect[1 << (n - 1 - i)] = 1 / math.sqrt(n)
        assert np.isclose(abs(np.vdot(out, expect)), 1.0, atol=1e-9)

    def test_minimum_size(self):
        with pytest.raises(CircuitError):
            w_state_circuit(1)


class TestCuccaroAdder:
    @pytest.mark.parametrize("a,b", [(0, 0), (1, 2), (3, 3), (2, 3)])
    def test_addition_two_bits(self, a, b):
        n = 2
        circuit = cuccaro_adder(n)
        u = circuit_unitary(circuit)
        bits = [0] * (2 * n + 2)
        for i in range(n):
            bits[1 + 2 * i] = (b >> i) & 1
            bits[2 + 2 * i] = (a >> i) & 1
        out = u @ basis_state_vector(2 * n + 2, bits).reshape(-1)
        idx = int(np.argmax(np.abs(out)))
        obits = [int(x) for x in format(idx, f"0{2 * n + 2}b")]
        b_out = (sum(obits[1 + 2 * i] << i for i in range(n))
                 + (obits[2 * n + 1] << n))
        a_out = sum(obits[2 + 2 * i] << i for i in range(n))
        assert abs(out[idx]) > 0.999
        assert (a_out, b_out) == (a, a + b)

    def test_gate_mix(self):
        circuit = cuccaro_adder(3)
        ops = circuit.count_ops()
        assert set(ops) == {"cx", "ccx"}

    def test_is_unitary(self):
        assert cuccaro_adder(2).is_unitary()


class TestHiddenShift:
    @pytest.mark.parametrize("shift", [[1, 1], [1, 0], [0, 1]])
    def test_recovers_shift_two_qubits(self, shift):
        circuit = hidden_shift_circuit(2, shift)
        out = circuit_unitary(circuit) @ basis_state_vector(
            2, [0, 0]).reshape(-1)
        idx = int(np.argmax(np.abs(out)))
        assert abs(out[idx]) > 0.999
        assert [int(x) for x in format(idx, "02b")] == shift

    def test_recovers_shift_four_qubits(self):
        shift = [1, 0, 1, 1]
        circuit = hidden_shift_circuit(4, shift)
        out = circuit_unitary(circuit) @ basis_state_vector(
            4, [0] * 4).reshape(-1)
        idx = int(np.argmax(np.abs(out)))
        assert [int(x) for x in format(idx, "04b")] == shift

    def test_odd_width_rejected(self):
        with pytest.raises(CircuitError):
            hidden_shift_circuit(3)


class TestModels:
    def test_qpe_image(self):
        """Image computation recovers the phase register state."""
        from repro.image.engine import compute_image
        from repro.systems import models
        qts = models.qpe_qts(3, 5 / 8)
        image = compute_image(qts, method="contraction").subspace
        assert image.dimension == 1
        expected = qts.space.basis_state([1, 0, 1, 1])  # |5>|1>
        assert image.contains_state(expected)

    def test_w_state_image_methods_agree(self):
        from repro.systems import models
        from tests.helpers import (assert_subspace_matches_dense,
                                   dense_image_oracle)
        from repro.image.engine import compute_image
        expected = dense_image_oracle(models.w_state_qts(4))
        for method, params in (("basic", {}),
                               ("contraction", {"k1": 2, "k2": 2})):
            result = compute_image(models.w_state_qts(4), method=method,
                                   **params)
            assert_subspace_matches_dense(result.subspace, expected)

    def test_adder_image_is_sum_state(self):
        from repro.image.engine import compute_image
        from repro.systems import models
        qts = models.adder_qts(2, a_value=2, b_value=3)
        image = compute_image(qts, method="contraction",
                              k1=3, k2=3).subspace
        assert image.dimension == 1
        bits = [0] * 6
        total = 5
        for i in range(2):
            bits[1 + 2 * i] = (total >> i) & 1
            bits[2 + 2 * i] = (2 >> i) & 1
        bits[5] = (total >> 2) & 1
        assert image.contains_state(qts.space.basis_state(bits))

    def test_hidden_shift_image(self):
        from repro.image.engine import compute_image
        from repro.systems import models
        shift = [1, 0, 1, 0]
        qts = models.hidden_shift_qts(4, shift)
        image = compute_image(qts, method="contraction").subspace
        assert image.dimension == 1
        assert image.contains_state(qts.space.basis_state(shift))
