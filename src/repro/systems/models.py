"""QTS model builders for the paper's case studies and benchmarks.

One constructor per benchmark family of Table I (with the paper's
"commonly used input states" as the initial subspace) plus the three
worked examples of Section III.A.

Builders register the subspaces worth naming as *spec atoms*
(``qts.register_subspace``), so the specification language of
:mod:`repro.mc.specs` can reference them by name: grover registers
``inv``/``plus``/``marked``/``ancilla_plus``, ghz ``zero``/``target``,
bitflip ``errors``/``codeword``, qrw ``start`` — and ``init`` always
denotes the initial subspace of any model.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.circuits.library import (bernstein_vazirani,
                                    bitflip_kraus_circuits, cuccaro_adder,
                                    ghz_circuit, grover_iteration,
                                    hidden_shift_circuit, qft_circuit,
                                    qpe_circuit, qrw_step,
                                    qrw_noisy_kraus_circuits,
                                    w_state_circuit)
from repro.errors import SystemError_
from repro.systems.operations import QuantumOperation
from repro.systems.qts import QuantumTransitionSystem
from repro.utils.bitops import int_to_bits

_PLUS = np.array([1, 1], dtype=complex) / math.sqrt(2)
_MINUS = np.array([1, -1], dtype=complex) / math.sqrt(2)
_ZERO = np.array([1, 0], dtype=complex)
_ONE = np.array([0, 1], dtype=complex)


def ghz_qts(num_qubits: int) -> QuantumTransitionSystem:
    """GHZ preparation from ``S0 = span{|0...0>}``.

    Registered spec atoms: ``zero`` (the all-zero basis ray) and
    ``target`` (the GHZ state ``(|0...0> + |1...1>)/sqrt(2)``).
    """
    op = QuantumOperation.unitary("ghz", ghz_circuit(num_qubits))
    qts = QuantumTransitionSystem(num_qubits, [op],
                                  name=f"ghz{num_qubits}")
    qts.set_initial_basis_states([[0] * num_qubits])
    zero = qts.space.basis_state([0] * num_qubits)
    ones = qts.space.basis_state([1] * num_qubits)
    ghz_state = (zero + ones).scaled(1 / math.sqrt(2))
    qts.register_subspace("zero", qts.space.span([zero]))
    qts.register_subspace("target", qts.space.span([ghz_state]))
    return qts


def _repeat(circuit, times: int):
    out = circuit.copy()
    for _ in range(times - 1):
        out = out.compose(circuit)
    out.name = f"{circuit.name}x{times}"
    return out


def grover_qts(num_qubits: int,
               initial: str = "plus",
               iterations: int = 1) -> QuantumTransitionSystem:
    """Grover iteration (paper, Sections III.A.1 and VI).

    ``initial`` selects the initial subspace:

    * ``"plus"`` — ``span{|+...+>|->}``, the algorithm's input state
      (the Table I benchmark configuration);
    * ``"invariant"`` — ``span{|+...+>|->, |1...1>|->}``, the invariant
      subspace of Section III.A.1 (satisfies ``T(S) = S``).

    ``iterations`` composes that many Grover iterations into one
    transition circuit.  A single iteration's operator TDD happens to
    stay compact under the qubit-major order; composing iterations
    makes the monolithic operator genuinely mix, which is the regime
    where the paper's basic-vs-contraction gap shows (see
    EXPERIMENTS.md).
    """
    circuit = _repeat(grover_iteration(num_qubits), max(1, iterations))
    op = QuantumOperation.unitary("G", circuit)
    qts = QuantumTransitionSystem(num_qubits, [op],
                                  name=f"grover{num_qubits}")
    m = num_qubits - 1
    plus_minus = qts.space.product_state([_PLUS] * m + [_MINUS])
    ones_minus = qts.space.product_state([_ONE] * m + [_MINUS])
    if initial == "plus":
        qts.set_initial_states([plus_minus])
    elif initial == "invariant":
        qts.set_initial_states([plus_minus, ones_minus])
    else:
        raise SystemError_(f"unknown grover initial space {initial!r}")
    # spec atoms: the III.A.1 invariant plane and its two spanning rays,
    # plus the unreachable ancilla-|+> marked ray (an EF counterexample)
    qts.register_subspace("plus", qts.space.span([plus_minus]))
    qts.register_subspace("marked", qts.space.span([ones_minus]))
    qts.register_subspace("inv",
                          qts.space.span([plus_minus, ones_minus]))
    qts.register_subspace("ancilla_plus", qts.space.span(
        [qts.space.product_state([_ONE] * m + [_PLUS])]))
    return qts


def bv_qts(num_qubits: int,
           secret: Optional[Sequence[int]] = None) -> QuantumTransitionSystem:
    """Bernstein-Vazirani from ``S0 = span{|0...0>|1>}``."""
    op = QuantumOperation.unitary("bv",
                                  bernstein_vazirani(num_qubits, secret))
    qts = QuantumTransitionSystem(num_qubits, [op], name=f"bv{num_qubits}")
    qts.set_initial_basis_states([[0] * (num_qubits - 1) + [1]])
    return qts


def qft_qts(num_qubits: int) -> QuantumTransitionSystem:
    """QFT from ``S0 = span{|0...0>}``."""
    op = QuantumOperation.unitary("qft", qft_circuit(num_qubits))
    qts = QuantumTransitionSystem(num_qubits, [op], name=f"qft{num_qubits}")
    qts.set_initial_basis_states([[0] * num_qubits])
    return qts


def qrw_qts(num_qubits: int, noise_probability: float = 0.1,
            start_position: int = 0,
            steps: int = 1) -> QuantumTransitionSystem:
    """Quantum random walk with a coin bit-flip error (Section III.A.3).

    Two operations: ``T1 = S o (E_c (x) I)`` (noiseless step) and
    ``T2 = S o (E_b (x) I) o (E_c (x) I)`` (bit-flip after the coin),
    exactly the transition family of the paper's noisy-walk example and
    its ``QRW n`` benchmark rows.  ``noise_probability = 0`` degrades
    T2 to a pure X branch (sqrt(1-p) = 1).

    ``steps`` composes that many walk steps into each transition
    circuit; the noise (on T2) still occurs once, after the first coin
    toss, matching the paper's "noise occurs once" simplification.
    """
    step_circuit = _repeat(qrw_step(num_qubits), max(1, steps))
    step = QuantumOperation.unitary("T1", step_circuit)
    keep, flip = qrw_noisy_kraus_circuits(num_qubits, noise_probability)
    if steps > 1:
        tail = _repeat(qrw_step(num_qubits), steps - 1)
        keep = keep.compose(tail)
        flip = flip.compose(tail)
    noisy = QuantumOperation("T2", [keep, flip])
    qts = QuantumTransitionSystem(num_qubits, [step, noisy],
                                  name=f"qrw{num_qubits}")
    position_bits = int_to_bits(start_position, num_qubits - 1)
    qts.set_initial_basis_states([[0] + position_bits])
    qts.register_subspace("start",
                          qts.space.span([qts.space.basis_state(
                              [0] + position_bits)]))
    return qts


def qpe_qts(counting_qubits: int, phase: float) -> QuantumTransitionSystem:
    """Phase estimation of ``P(2 pi phase)`` from ``|0..0>|1>``."""
    op = QuantumOperation.unitary("qpe",
                                  qpe_circuit(counting_qubits, phase))
    qts = QuantumTransitionSystem(counting_qubits + 1, [op],
                                  name=f"qpe{counting_qubits}")
    qts.set_initial_basis_states([[0] * counting_qubits + [1]])
    return qts


def w_state_qts(num_qubits: int) -> QuantumTransitionSystem:
    """W-state preparation from ``|0...0>``."""
    op = QuantumOperation.unitary("w", w_state_circuit(num_qubits))
    qts = QuantumTransitionSystem(num_qubits, [op],
                                  name=f"wstate{num_qubits}")
    qts.set_initial_basis_states([[0] * num_qubits])
    return qts


def adder_qts(register_size: int,
              a_value: int = 0, b_value: int = 0) -> QuantumTransitionSystem:
    """Cuccaro ripple-carry adder on classical register inputs."""
    circuit = cuccaro_adder(register_size)
    op = QuantumOperation.unitary("add", circuit)
    qts = QuantumTransitionSystem(circuit.num_qubits, [op],
                                  name=f"adder{register_size}")
    bits = [0] * circuit.num_qubits
    for i in range(register_size):
        bits[1 + 2 * i] = (b_value >> i) & 1
        bits[2 + 2 * i] = (a_value >> i) & 1
    qts.set_initial_basis_states([bits])
    return qts


def hidden_shift_qts(num_qubits: int,
                     shift: Optional[Sequence[int]] = None
                     ) -> QuantumTransitionSystem:
    """Hidden-shift circuit from ``|0...0>``."""
    op = QuantumOperation.unitary("hs",
                                  hidden_shift_circuit(num_qubits, shift))
    qts = QuantumTransitionSystem(num_qubits, [op],
                                  name=f"hiddenshift{num_qubits}")
    qts.set_initial_basis_states([[0] * num_qubits])
    return qts


def bitflip_qts() -> QuantumTransitionSystem:
    """The bit-flip code corrector (Section III.A.2, Fig. 3).

    Six qubits, one operation with four Kraus circuits (one per
    syndrome outcome); ``S0 = span{|100>, |010>, |001>} (x) |000>`` —
    the single-bit-flip error states.
    """
    op = QuantumOperation("correct", bitflip_kraus_circuits())
    qts = QuantumTransitionSystem(6, [op], name="bitflip")
    qts.set_initial_basis_states([
        [1, 0, 0, 0, 0, 0],
        [0, 1, 0, 0, 0, 0],
        [0, 0, 1, 0, 0, 0],
    ])
    # spec atoms: the corrected codeword ray and the error states
    qts.register_subspace("codeword", qts.space.span(
        [qts.space.basis_state([0] * 6)]))
    qts.register_subspace("errors", qts.initial)
    return qts


# ----------------------------------------------------------------------
# uniform builder registry (CLI, sweep runner)
# ----------------------------------------------------------------------
#: model name -> builder; every builder takes (size, **options)
MODEL_BUILDERS = {
    "ghz": lambda size, **opts: ghz_qts(size, **opts),
    "grover": lambda size, **opts: grover_qts(size, **opts),
    "bv": lambda size, **opts: bv_qts(size, **opts),
    "qft": lambda size, **opts: qft_qts(size, **opts),
    "qrw": lambda size, **opts: qrw_qts(size, **opts),
    "qpe": lambda size, **opts: qpe_qts(size, **opts),
    "wstate": lambda size, **opts: w_state_qts(size, **opts),
    "adder": lambda size, **opts: adder_qts(size, **opts),
    "hiddenshift": lambda size, **opts: hidden_shift_qts(size, **opts),
    "bitflip": lambda size, **opts: bitflip_qts(**opts),
}


def build_model(name: str, size: int, **options) -> QuantumTransitionSystem:
    """Build a benchmark QTS by name — the single entry point shared by
    the CLI and the sweep runner.

    ``options`` are forwarded to the underlying ``*_qts`` builder
    (e.g. ``iterations`` for grover, ``noise_probability``/``steps``
    for qrw).  ``size`` is ignored by the fixed-size ``bitflip`` model.
    """
    try:
        builder = MODEL_BUILDERS[name]
    except KeyError:
        raise SystemError_(
            f"unknown model {name!r}; choose from "
            f"{sorted(MODEL_BUILDERS)}") from None
    return builder(size, **options)
