"""Reachability of a noisy quantum random walk (paper, Section III.A.3).

A walker on an 8-cycle (1 coin + 3 position qubits) with a bit-flip
channel on the coin after each Hadamard.  The example

1. computes the one-step image of span{|0>|3>} and confirms the
   paper's containment  T(S) <= span{|0>|2>, |1>|4>}  — noting that
   the image is in fact the 1-dimensional ray spanned by the
   superposition (the X error fixes |+>, as the paper itself remarks),
2. shows the same property as a violated/satisfied spec pair: the walk
   leaves its start ray (``AG start`` is violated, with the escaping
   directions as witness) but can always return to it (``EF start``),
3. runs the reachability fixpoint behind ``AG ~start`` and shows the
   walk eventually fills the whole 16-dimensional space,
4. compares noiseless and noisy reachable spaces.

Run:  python examples/noisy_walk.py
"""

from repro import CheckerConfig, ModelChecker, compute_image, models

CONFIG = CheckerConfig(method="contraction",
                       method_params={"k1": 4, "k2": 4})


def main() -> None:
    qts = models.qrw_qts(4, noise_probability=0.25, start_position=3)
    print(f"System: {qts}")

    # --- one-step image ----------------------------------------------
    image = compute_image(qts, config=CONFIG).subspace
    bound = qts.space.span([
        qts.space.basis_state([0, 0, 1, 0]),   # |0>|2>
        qts.space.basis_state([1, 1, 0, 0]),   # |1>|4>
    ])
    print(f"T(span{{|0>|3>}}) dimension: {image.dimension}")
    print(f"contained in span{{|0>|2>, |1>|4>}}: {bound.contains(image)}")
    assert bound.contains(image)

    # --- the walk as temporal specifications -------------------------
    checker = ModelChecker(qts, CONFIG)

    leaves = checker.check("AG start")
    print(f"AG start = {leaves.verdict} (the walker moves; witness dim "
          f"{leaves.witness_dimension})")
    assert not leaves.holds

    returns = checker.check("EF start")
    print(f"EF start = {returns.verdict} (the cycle brings it back)")
    assert returns.holds

    # --- reachability fixpoint ---------------------------------------
    # ReachabilityTrace formats itself (dimension, iterations,
    # convergence, direction) and exposes the per-round growth
    trace = checker.reachable()
    print(trace)
    print(f"dimension growth per round: {trace.dimensions_delta}")
    print(f"walk fills the space: {trace.dimension == 16}")
    assert trace.dimension == 16

    # --- noise does not change what is reachable here ----------------
    clean = ModelChecker(models.qrw_qts(4, 0.0, start_position=3),
                         CONFIG).check("EF start")
    print(f"noiseless reachable dimension: {clean.reachable_dimension} "
          f"(same: {clean.reachable_dimension == trace.dimension})")


if __name__ == "__main__":
    main()
