"""Quantum Fourier transform circuits.

The textbook ladder: H on each qubit followed by controlled phase
rotations CP(pi/2^k); terminal swaps omitted (they only relabel
qubits and are conventionally dropped in TDD benchmarks).  All CP gates
are diagonal, so the tensor network is hyper-edge dense — the family
where contraction partition shines in the paper's Table I.
"""

from __future__ import annotations

import math

from repro.circuits.circuit import QuantumCircuit


def qft_circuit(num_qubits: int, max_distance: int = 0) -> QuantumCircuit:
    """The QFT on ``num_qubits``.

    ``max_distance`` (if positive) truncates rotations beyond that
    qubit distance — the standard *approximate* QFT used for very wide
    instances; 0 keeps every rotation (exact QFT).
    """
    circuit = QuantumCircuit(num_qubits, f"qft{num_qubits}")
    for target in range(num_qubits):
        circuit.h(target)
        for control in range(target + 1, num_qubits):
            distance = control - target
            if max_distance and distance > max_distance:
                break
            circuit.cp(math.pi / (2 ** distance), control, target)
    return circuit
