"""OpenQASM 2.0 subset import/export.

Covers the gate set the benchmark families use (and what ``qelib1.inc``
calls them): ``h x y z s sdg t tdg sx rx ry rz u1/p cx cz cu1/cp ccx
swap`` plus ``barrier`` (ignored) and comments.  Enough to exchange
circuits with Qiskit/MQT-style tooling; measurement and classical
registers are intentionally out of scope (measurements live in Kraus
circuits as projector gates, see DESIGN.md).
"""

from __future__ import annotations

import math
import re
from typing import Dict

from repro.circuits.circuit import QuantumCircuit
from repro.errors import CircuitError
from repro.gates.gate import Gate

_HEADER_RE = re.compile(r"OPENQASM\s+2.0\s*;")
_QREG_RE = re.compile(r"qreg\s+(?P<name>\w+)\s*\[\s*(?P<size>\d+)\s*\]\s*;")
_STMT_RE = re.compile(
    r"^(?P<gate>[a-zA-Z_][\w]*)\s*"
    r"(?:\(\s*(?P<params>[^)]*)\s*\))?\s*"
    r"(?P<args>.*)$", re.DOTALL)
_ARG_RE = re.compile(r"(?P<reg>\w+)\s*\[\s*(?P<index>\d+)\s*\]")

#: gate name -> (number of angle parameters, circuit-method factory)
_GATES: Dict[str, tuple] = {
    "h": (0, lambda c, a, q: c.h(q[0])),
    "x": (0, lambda c, a, q: c.x(q[0])),
    "y": (0, lambda c, a, q: c.y(q[0])),
    "z": (0, lambda c, a, q: c.z(q[0])),
    "s": (0, lambda c, a, q: c.s(q[0])),
    "sdg": (0, lambda c, a, q: c.append(
        __import__("repro.gates.library", fromlist=["sdg"]).sdg(q[0]))),
    "t": (0, lambda c, a, q: c.t(q[0])),
    "tdg": (0, lambda c, a, q: c.append(
        __import__("repro.gates.library", fromlist=["tdg"]).tdg(q[0]))),
    "sx": (0, lambda c, a, q: c.sx(q[0])),
    "rx": (1, lambda c, a, q: c.rx(a[0], q[0])),
    "ry": (1, lambda c, a, q: c.ry(a[0], q[0])),
    "rz": (1, lambda c, a, q: c.rz(a[0], q[0])),
    "p": (1, lambda c, a, q: c.p(a[0], q[0])),
    "u1": (1, lambda c, a, q: c.p(a[0], q[0])),
    "cx": (0, lambda c, a, q: c.cx(q[0], q[1])),
    "cz": (0, lambda c, a, q: c.cz(q[0], q[1])),
    "cp": (1, lambda c, a, q: c.cp(a[0], q[0], q[1])),
    "cu1": (1, lambda c, a, q: c.cp(a[0], q[0], q[1])),
    "ccx": (0, lambda c, a, q: c.ccx(q[0], q[1], q[2])),
    "swap": (0, lambda c, a, q: c.swap(q[0], q[1])),
}

#: names re-emitted by :func:`to_qasm` (gate.name -> qasm mnemonic).
_EMIT_NAMES = {"p": "u1", "cp": "cu1"}


def _eval_angle(text: str) -> float:
    """Evaluate a QASM angle expression (pi arithmetic only).

    Accepts scientific notation (``1.2e-15``) — :func:`to_qasm` emits
    ``repr(float)``, which uses it for very small angles, and the
    parser must round-trip its own output.
    """
    allowed = re.compile(r"^[\d\s\.\+\-\*/\(\)piPIeE]*$")
    if not allowed.match(text):
        raise CircuitError(f"unsupported angle expression {text!r}")
    try:
        return float(eval(text, {"__builtins__": {}}, {"pi": math.pi}))
    except Exception as exc:
        raise CircuitError(f"bad angle expression {text!r}") from exc


def parse_qasm(text: str) -> QuantumCircuit:
    """Parse an OpenQASM 2.0 (subset) program into a circuit."""
    # strip comments
    text = re.sub(r"//[^\n]*", "", text)
    if not _HEADER_RE.search(text):
        raise CircuitError("missing 'OPENQASM 2.0;' header")
    regs = _QREG_RE.findall(text)
    if len(regs) != 1:
        raise CircuitError("exactly one qreg is supported")
    reg_name, size = regs[0][0], int(regs[0][1])
    circuit = QuantumCircuit(size, name=reg_name)
    body = _HEADER_RE.split(text, maxsplit=1)[1]
    for statement in body.split(";"):
        statement = statement.strip()
        if not statement or statement.startswith("include"):
            continue
        match = _STMT_RE.match(statement)
        if match is None:
            raise CircuitError(f"unparseable statement {statement!r}")
        gate = match.group("gate")
        if gate in ("include", "qreg", "creg", "barrier"):
            continue
        if gate == "measure":
            raise CircuitError("measure is not supported; model "
                               "measurements as Kraus circuits with "
                               "projector gates")
        spec = _GATES.get(gate)
        if spec is None:
            raise CircuitError(f"unsupported gate {gate!r}")
        arity, builder = spec
        params_text = match.group("params") or ""
        angles = ([_eval_angle(p) for p in params_text.split(",")]
                  if params_text.strip() else [])
        if len(angles) != arity:
            raise CircuitError(f"gate {gate!r} expects {arity} "
                               f"parameter(s), got {len(angles)}")
        qubits = []
        for arg in match.group("args").split(","):
            arg_match = _ARG_RE.search(arg)
            if not arg_match:
                raise CircuitError(f"bad qubit argument {arg.strip()!r}")
            if arg_match.group("reg") != reg_name:
                raise CircuitError(f"unknown register "
                                   f"{arg_match.group('reg')!r}")
            qubits.append(int(arg_match.group("index")))
        builder(circuit, angles, qubits)
    return circuit


def _emit_gate(gate: Gate) -> str:
    name = gate.name
    if name == "cnx" and len(gate.controls) == 2 \
            and all(s == 1 for s in gate.control_states):
        name = "ccx"
    qasm_name = _EMIT_NAMES.get(name, name)
    if qasm_name not in _GATES and qasm_name not in ("ccx",):
        raise CircuitError(
            f"gate {gate.name!r} has no OpenQASM 2.0 form (decompose "
            f"multi-controlled/projector/Kraus gates first)")
    qubits = ", ".join(f"q[{q}]" for q in gate.qubits)
    params = ""
    if qasm_name in ("rx", "ry", "rz", "u1", "cu1"):
        import numpy as np
        if qasm_name in ("u1", "cu1"):
            angle = float(np.angle(gate.matrix[1, 1]))
        else:
            # rx/ry: theta from the cosine; rz: from the phases
            if qasm_name == "rz":
                angle = float(2 * np.angle(gate.matrix[1, 1]))
            else:
                cos_half = float(np.clip(gate.matrix[0, 0].real, -1.0, 1.0))
                angle = 2 * math.acos(cos_half)
                if qasm_name == "ry" and gate.matrix[1, 0].real < 0:
                    angle = -angle
                if qasm_name == "rx" and gate.matrix[1, 0].imag > 0:
                    angle = -angle
        params = f"({angle!r})"
    return f"{qasm_name}{params} {qubits};"


def to_qasm(circuit: QuantumCircuit) -> str:
    """Emit an OpenQASM 2.0 program for a circuit in the subset."""
    lines = ["OPENQASM 2.0;", 'include "qelib1.inc";',
             f"qreg q[{circuit.num_qubits}];"]
    for gate in circuit.gates:
        lines.append(_emit_gate(gate))
    return "\n".join(lines) + "\n"
