"""Parallel sliced image computation (execution strategies).

The image algorithms all bottom out in transition-relation
contractions ``cont(a, b)`` summed over a set of closed indices.  A
contraction distributes over cofactors of its *summed* indices:

    cont(a, b; S) = sum_{bits} cont(a|_{L=bits}, b|_{L=bits}; S \\ L)

for any subset ``L`` of ``S`` (slicing an operand that does not depend
on an index is the identity).  The sliced strategy exploits this to
decompose one large contraction along the top ``depth`` summed index
levels into up to ``2^depth`` *independent* cofactor subproblems,
optionally executes them on a :mod:`concurrent.futures` process pool,
and recombines the partial images with TDD addition
(:mod:`repro.tdd.arithmetic`).

Because a :class:`~repro.tdd.manager.TDDManager` interns nodes by
process-local object identity, diagrams cannot be shared across
processes; cofactors travel through the :mod:`repro.tdd.io` dict codec
and are re-interned inside each worker against the same global index
order (shipped once per task, idempotently).

Two executors implement the strategy switch exposed to
:class:`~repro.image.engine.ImageEngine`, the model checker and the
CLI (``--strategy {monolithic,sliced} --jobs N``):

* :class:`MonolithicExecutor` — the sequential baseline; every
  contraction runs in-process as a single kernel call.
* :class:`SlicedExecutor` — cofactor decomposition, inline when
  ``jobs <= 1`` (still a work-reduction win on contractions whose cost
  is superlinear in diagram size) and fanned out over a process pool
  when ``jobs > 1``.

Recombination order is deterministic (lexicographic cofactor order, see
:func:`repro.tdd.slicing.cofactor_assignments`) so results are
identical for every ``jobs`` setting.
"""

from __future__ import annotations

import multiprocessing
import sys
import weakref
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.indices.index import Index
from repro.tdd import construction as tc
from repro.tdd.io import from_dict, manager_from_order, order_payload, to_dict
from repro.tdd.manager import TDDManager
from repro.tdd.slicing import cofactor_assignments
from repro.tdd.tdd import TDD
from repro.utils.stats import StatsRecorder

STRATEGIES = ("monolithic", "sliced")

#: default number of top summed levels the sliced strategy fixes
DEFAULT_SLICE_DEPTH = 2

#: below this product of operand sizes a cofactor batch is not worth
#: shipping to the pool — the subproblems run inline instead.
#: Serialisation cost is linear in slice size while contraction cost is
#: superlinear, so only genuinely large contractions amortise the IPC;
#: small/medium ones are faster inline even on many cores.
DEFAULT_POOL_MIN_NODES = 262_144

#: a worker manager larger than this is swept before the next task
_WORKER_GC_THRESHOLD = 200_000


class MonolithicExecutor:
    """Sequential baseline: one kernel call per contraction."""

    strategy = "monolithic"

    def contract(self, a: TDD, b: TDD, sum_over: Iterable[Index],
                 stats: Optional[StatsRecorder] = None) -> TDD:
        return a.contract(b, sum_over)

    def close(self) -> None:
        pass

    def __enter__(self) -> "MonolithicExecutor":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return "MonolithicExecutor()"


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
#: per-process state: the worker's manager, created from the first
#: order payload and extended idempotently by later tasks
_WORKER: dict = {}


def _pool_initializer(payload) -> None:
    _WORKER["manager"] = manager_from_order(payload)


def _worker_manager(order: Optional[Sequence[Tuple[str, object, object]]]
                    ) -> TDDManager:
    manager = _WORKER.get("manager")
    if manager is None:
        manager = _WORKER["manager"] = manager_from_order(order or ())
    elif order is not None:
        # idempotent: new indices registered since pool start append in
        # the parent's level order, so levels stay aligned
        manager.register_all(Index(name, qubit=qubit, time=time)
                             for name, qubit, time in order)
    if manager.live_nodes > _WORKER_GC_THRESHOLD:
        manager.collect()
    return manager


def _contract_task(task) -> dict:
    """Pool entry point: rebuild two cofactors, contract, serialise.

    ``order`` in the task is ``None`` unless the parent registered new
    indices after pool start (the initializer delivered the base
    order).
    """
    order, a_data, b_data, sum_names = task
    manager = _worker_manager(order)
    a = from_dict(manager, a_data)
    b = from_dict(manager, b_data)
    result = a.contract(b, sum_names)
    return to_dict(result)


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------
class SlicedExecutor:
    """Cofactor-decomposed contraction, optionally over a process pool.

    Parameters
    ----------
    manager:
        The manager all operand TDDs live in.
    depth:
        Number of top summed index levels to fix (``2^depth``
        cofactors).  ``0`` degrades to the monolithic behaviour.
    jobs:
        Process-pool width.  ``None`` or ``1`` keeps everything
        inline — the decomposition itself still applies.
    pool_min_nodes:
        Minimum ``size(a) * size(b)`` before a batch is shipped to the
        pool; smaller contractions are not worth the serialisation.
    """

    strategy = "sliced"

    def __init__(self, manager: TDDManager,
                 depth: int = DEFAULT_SLICE_DEPTH,
                 jobs: Optional[int] = None,
                 pool_min_nodes: int = DEFAULT_POOL_MIN_NODES) -> None:
        if depth < 0:
            raise ReproError("slice depth must be non-negative")
        self.manager = manager
        self.depth = depth
        self.jobs = 1 if jobs is None else max(1, int(jobs))
        self.pool_min_nodes = pool_min_nodes
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_broken = False
        #: index-order length the workers are known to have (set at pool
        #: creation, advanced after every successful re-ship; growth
        #: beyond it => re-ship the order)
        self._pool_order_len = 0
        #: how many times the index order was re-shipped after pool start
        self._order_ships = 0
        #: operand -> {slice level tuple: [per-assignment slice TDD]};
        #: weak keys let dead states evaporate while the long-lived
        #: operator TDDs keep their slices (and payloads) cached across
        #: basis states and fixpoint iterations
        self._slice_cache: "weakref.WeakKeyDictionary[TDD, dict]" = \
            weakref.WeakKeyDictionary()
        self._payload_cache: "weakref.WeakKeyDictionary[TDD, dict]" = \
            weakref.WeakKeyDictionary()

    # ------------------------------------------------------------------
    def contract(self, a: TDD, b: TDD, sum_over: Iterable[Index],
                 stats: Optional[StatsRecorder] = None) -> TDD:
        sum_idx = self.manager.order.sorted(
            {i if isinstance(i, Index) else Index(i) for i in sum_over})
        free_union = set(a.indices) | set(b.indices)
        usable = [i for i in sum_idx if i in free_union]
        if self.depth == 0 or not usable:
            return a.contract(b, sum_over)
        slice_idx = usable[:self.depth]
        remaining = [i for i in sum_idx if i not in set(slice_idx)]
        a_slices = self._slices_of(a, slice_idx)
        b_slices = self._slices_of(b, slice_idx)
        pairs = [(a_s, b_s) for a_s, b_s in zip(a_slices, b_slices)
                 if not (a_s.is_zero or b_s.is_zero)]
        if stats is not None:
            stats.slices += len(pairs)
        if (self.jobs > 1 and len(pairs) > 1
                and a.size() * b.size() >= self.pool_min_nodes):
            parts = self._contract_pool(pairs, remaining, stats)
        else:
            parts = [a_s.contract(b_s, remaining) for a_s, b_s in pairs]
        total: Optional[TDD] = None
        for part in parts:
            if stats is not None:
                stats.observe_tdd(part)
            total = part if total is None else total + part
        if stats is not None and len(parts) > 1:
            stats.additions += len(parts) - 1
        if total is None:  # every cofactor vanished: the zero tensor
            total = tc.zero(self.manager,
                            sorted(free_union - set(sum_idx),
                                   key=self.manager.order.level))
        return total

    # ------------------------------------------------------------------
    def _slices_of(self, operand: TDD,
                   slice_idx: Sequence[Index]) -> List[TDD]:
        """Per-assignment slices of ``operand`` (cached, weakly keyed)."""
        levels = tuple(self.manager.level(i) for i in slice_idx)
        per_operand = self._slice_cache.setdefault(operand, {})
        if levels not in per_operand:
            present = [i for i in slice_idx if i in set(operand.indices)]
            slices = []
            for assignment in cofactor_assignments(levels):
                local = {i: assignment[self.manager.level(i)]
                         for i in present}
                slices.append(operand.slice(local) if local else operand)
            per_operand[levels] = slices
        return per_operand[levels]

    def _payload_of(self, operand: TDD) -> dict:
        payload = self._payload_cache.get(operand)
        if payload is None:
            payload = to_dict(operand)
            self._payload_cache[operand] = payload
        return payload

    # ------------------------------------------------------------------
    def _contract_pool(self, pairs: List[Tuple[TDD, TDD]],
                       remaining: Sequence[Index],
                       stats: Optional[StatsRecorder]) -> List[TDD]:
        pool = self._ensure_pool()
        if pool is None:  # pool unavailable (e.g. nested workers)
            if stats is not None:
                stats.pool_fallbacks += 1
            return [a_s.contract(b_s, remaining) for a_s, b_s in pairs]
        # workers got the order at pool start; re-ship it only if the
        # parent registered indices since (idempotent on arrival)
        order_len = len(self.manager.order)
        order = (order_payload(self.manager.order)
                 if order_len > self._pool_order_len
                 else None)
        sum_names = [i.name for i in remaining]
        try:
            futures = [pool.submit(_contract_task,
                                   (order, self._payload_of(a_s),
                                    self._payload_of(b_s), sum_names))
                       for a_s, b_s in pairs]
            # collect in submission order — recombination stays
            # deterministic
            results = [from_dict(self.manager, future.result())
                       for future in futures]
        except (BrokenProcessPool, OSError, RuntimeError):
            # workers spawn lazily, so process-creation failure (or a
            # worker dying mid-task) surfaces here, not in the
            # constructor: retire the pool and degrade to inline
            self._pool_broken = True
            self.close()
            if stats is not None:
                stats.pool_fallbacks += 1
            return [a_s.contract(b_s, remaining) for a_s, b_s in pairs]
        if order is not None:
            # the batch completed: its workers registered the shipped
            # order (idempotently), and stragglers self-heal because
            # from_dict registers a payload's own indices in level
            # order — advance the watermark so later batches stop
            # re-serialising the full order payload
            self._pool_order_len = order_len
            self._order_ships += 1
        if stats is not None:
            stats.parallel_tasks += len(futures)
        return results

    def _ensure_pool(self) -> Optional[ProcessPoolExecutor]:
        if self._pool is None and not self._pool_broken:
            try:
                methods = multiprocessing.get_all_start_methods()
                # prefer fork only where it is the safe platform
                # default; macOS lists fork but made spawn the default
                # because forking a threaded parent can deadlock
                use_fork = (sys.platform.startswith("linux")
                            and "fork" in methods)
                ctx = multiprocessing.get_context(
                    "fork" if use_fork else None)
                self._pool = ProcessPoolExecutor(
                    max_workers=self.jobs, mp_context=ctx,
                    initializer=_pool_initializer,
                    initargs=(order_payload(self.manager.order),))
                self._pool_order_len = len(self.manager.order)
            except (OSError, ValueError, RuntimeError):
                # no pool available here (sandbox, nested daemonic
                # worker, resource limits): degrade to inline slicing
                self._pool_broken = True
        return self._pool

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "SlicedExecutor":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter shutdown path
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (f"SlicedExecutor(depth={self.depth}, jobs={self.jobs}, "
                f"pool={'up' if self._pool else 'down'})")


def make_executor(strategy: str, manager: TDDManager,
                  jobs: Optional[int] = None,
                  slice_depth: int = DEFAULT_SLICE_DEPTH,
                  pool_min_nodes: int = DEFAULT_POOL_MIN_NODES):
    """Instantiate a contraction executor by strategy name."""
    if strategy == "monolithic":
        return MonolithicExecutor()
    if strategy == "sliced":
        return SlicedExecutor(manager, depth=slice_depth, jobs=jobs,
                              pool_min_nodes=pool_min_nodes)
    raise ReproError(f"unknown strategy {strategy!r}; "
                     f"choose from {STRATEGIES}")
