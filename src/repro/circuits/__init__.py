"""Quantum circuits and their tensor-network views."""

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.wires import GateWiring, WireTracker, wire_circuit
from repro.circuits.network import (circuit_to_tdd, circuit_to_tdd_network,
                                    circuit_to_dense_network,
                                    register_circuit_indices)
from repro.circuits import library

__all__ = [
    "QuantumCircuit", "GateWiring", "WireTracker", "wire_circuit",
    "circuit_to_tdd", "circuit_to_tdd_network", "circuit_to_dense_network",
    "register_circuit_indices", "library",
]
