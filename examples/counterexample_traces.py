"""Backward reachability, bounded specs and counterexample traces.

Three short stories on two models:

1. a *failed* ``AG`` on the Grover iteration yields an executable
   counterexample — the operation path whose forward replay leaves the
   claimed invariant;
2. the same verdict falls out of *backward* (preimage) analysis, whose
   witness names the initial directions that can go bad;
3. bounded operators (``EF[<=k]``) and depth-limited fixpoints answer
   "within how many steps?" on the bit-flip corrector.

Run:  ``PYTHONPATH=src python examples/counterexample_traces.py``
"""

from repro.mc.checker import ModelChecker
from repro.mc.config import CheckerConfig
from repro.systems import models


def main() -> None:
    # ------------------------------------------------------------------
    # 1. a failed AG carries a replayable counterexample
    # ------------------------------------------------------------------
    qts = models.grover_qts(3)
    checker = ModelChecker(qts, CheckerConfig(method="contraction",
                                              method_params={"k1": 4,
                                                             "k2": 4}))
    result = checker.check("AG plus")
    trace = result.witness_trace
    print(f"AG plus on {qts.name}: {result.verdict}")
    print(f"  counterexample: {' -> '.join(trace.symbols)} "
          f"({trace.length} steps, replay "
          f"{'ok' if trace.valid else 'FAILED'})")
    print(f"  intermediate dims: "
          f"{[s.dimension for s in trace.subspaces]}")
    assert not result.holds and trace.valid

    # ------------------------------------------------------------------
    # 2. the same spec, decided backwards from the event set
    # ------------------------------------------------------------------
    backward = ModelChecker(qts, CheckerConfig(direction="backward"))
    back = backward.check("AG plus")
    print(f"backward check: {back.verdict} "
          f"(backward-reachable dim {back.reachable_dimension}, "
          f"initial escape directions: dim {back.witness_dimension})")
    assert back.holds == result.holds
    assert back.trace_length == result.trace_length

    # ------------------------------------------------------------------
    # 3. bounded operators on the bit-flip corrector
    # ------------------------------------------------------------------
    bitflip = models.bitflip_qts()
    bf = ModelChecker(bitflip, CheckerConfig(method="basic"))
    within_one = bf.check("EF[<=1] codeword")
    print(f"EF[<=1] codeword on {bitflip.name}: {within_one.verdict} "
          f"(trace: {' -> '.join(within_one.witness_trace.symbols)})")
    assert within_one.holds

    # the error states leave the error subspace in one correction step,
    # and a depth-limited backward fixpoint sees it within bound 2
    escaped = bf.check("AG errors", bound=2, direction="backward")
    print(f"AG errors (backward, bound=2): {escaped.verdict} "
          f"in {escaped.iterations} image steps")
    assert not escaped.holds and escaped.iterations <= 2


if __name__ == "__main__":
    main()
