"""Algorithm 1 (basic image computation) vs the dense oracle."""

import numpy as np
import pytest

from repro.image.basic import BasicImageComputer
from repro.image.engine import compute_image
from repro.systems import models

from tests.helpers import assert_subspace_matches_dense, dense_image_oracle


MODELS = {
    "ghz4": lambda: models.ghz_qts(4),
    "grover4": lambda: models.grover_qts(4),
    "grover4inv": lambda: models.grover_qts(4, "invariant"),
    "bv5": lambda: models.bv_qts(5),
    "qft4": lambda: models.qft_qts(4),
    "qrw4": lambda: models.qrw_qts(4, 0.3),
    "bitflip": lambda: models.bitflip_qts(),
}


@pytest.mark.parametrize("name", sorted(MODELS))
def test_matches_dense_oracle(name):
    build = MODELS[name]
    expected = dense_image_oracle(build())
    result = compute_image(build(), method="basic")
    assert_subspace_matches_dense(result.subspace, expected)


def test_operator_cache_reused():
    qts = models.ghz_qts(3)
    computer = BasicImageComputer(qts)
    from repro.utils.stats import StatsRecorder
    stats = StatsRecorder()
    computer.image(None, stats)
    made_before = qts.manager.nodes_made
    computer.image(None, stats)  # second run: operator cached
    # a cached operator means far fewer fresh nodes on the second pass
    assert qts.manager.nodes_made - made_before < made_before


def test_stats_populated():
    result = compute_image(models.ghz_qts(4), method="basic")
    assert result.stats.max_nodes > 0
    assert result.stats.contractions >= 1
    assert result.stats.seconds >= 0


def test_image_of_zero_subspace_is_zero():
    qts = models.ghz_qts(3)
    zero = qts.space.zero_subspace()
    result = compute_image(qts, subspace=zero, method="basic")
    assert result.dimension == 0


def test_image_of_custom_subspace():
    qts = models.ghz_qts(3)
    sub = qts.space.span([qts.space.basis_state([1, 1, 1])])
    result = compute_image(qts, subspace=sub, method="basic")
    # GHZ circuit on |111>: H(q0) gives (|0>-|1>)/sqrt2 (x) |11>, then
    # CX(0,1), CX(1,2) map it to (|010> - |101>)/sqrt2
    assert result.dimension == 1
    amps = result.subspace.basis[0].to_numpy().reshape(-1)
    expect = np.zeros(8)
    expect[0b010] = 1 / np.sqrt(2)
    expect[0b101] = -1 / np.sqrt(2)
    assert np.isclose(abs(np.vdot(amps, expect)), 1.0, atol=1e-8)
