"""Quantum transition systems (paper, Section III)."""

from repro.systems.operations import QuantumOperation
from repro.systems.qts import QuantumTransitionSystem
from repro.systems import models

__all__ = ["QuantumOperation", "QuantumTransitionSystem", "models"]
