"""Statistics recording for image computation runs.

The paper's Table I reports, per benchmark and method, the wall-clock
time and the *maximum node count over all TDDs generated* during the
image computation.  :class:`StatsRecorder` collects exactly those two
quantities plus a few extra counters that the ablation benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StatsRecorder:
    """Mutable record of the cost of one image computation run."""

    #: Maximum size (number of nodes, including the terminal) over all
    #: TDDs produced during the run.
    max_nodes: int = 0
    #: Number of top-level TDD contractions performed.
    contractions: int = 0
    #: Number of top-level TDD additions performed.
    additions: int = 0
    #: Wall-clock seconds (filled in by the caller).
    seconds: float = 0.0
    #: Free-form counters (e.g. number of partition blocks).
    extra: dict = field(default_factory=dict)

    def observe_tdd(self, tdd) -> None:
        """Record the size of a freshly produced TDD."""
        size = tdd.size()
        if size > self.max_nodes:
            self.max_nodes = size

    def observe_nodes(self, count: int) -> None:
        if count > self.max_nodes:
            self.max_nodes = count

    def merge(self, other: "StatsRecorder") -> None:
        """Fold another recorder (e.g. from a sub-computation) into this one."""
        self.max_nodes = max(self.max_nodes, other.max_nodes)
        self.contractions += other.contractions
        self.additions += other.additions

    def as_dict(self) -> dict:
        out = {
            "max_nodes": self.max_nodes,
            "contractions": self.contractions,
            "additions": self.additions,
            "seconds": self.seconds,
        }
        out.update(self.extra)
        return out
