"""Reachability fixpoints."""

import time

import pytest

from repro.errors import ReproError
from repro.mc.reachability import reachable_space
from repro.systems import models

from tests.helpers import subspace_to_dense


class TestFixpoint:
    def test_grover_invariant_is_immediate_fixpoint(self):
        qts = models.grover_qts(4, initial="invariant")
        trace = reachable_space(qts, method="basic")
        assert trace.converged
        assert trace.iterations == 1
        assert trace.dimension == 2

    def test_dimensions_monotone(self):
        qts = models.qrw_qts(3, 0.2)
        trace = reachable_space(qts, method="contraction", k1=2, k2=2)
        assert trace.dimensions == sorted(trace.dimensions)
        assert trace.converged

    def test_qrw_fills_space(self):
        qts = models.qrw_qts(3, 0.2)
        trace = reachable_space(qts, method="basic")
        assert trace.dimension == 2 ** 3

    def test_reachable_contains_initial(self):
        qts = models.ghz_qts(3)
        trace = reachable_space(qts, method="basic")
        assert trace.subspace.contains(qts.initial)

    def test_max_iterations_bound(self):
        qts = models.qrw_qts(3, 0.2)
        trace = reachable_space(qts, method="basic", max_iterations=1)
        assert not trace.converged
        assert trace.iterations == 1

    def test_zero_initial_rejected(self):
        qts = models.ghz_qts(3)
        qts.initial = qts.space.zero_subspace()
        with pytest.raises(ReproError):
            reachable_space(qts, method="basic")

    def test_engine_teardown_not_billed_to_trace(self, monkeypatch):
        # regression: the stopwatch used to stop only after
        # engine.close(), so the sliced strategy's pool shutdown
        # (ProcessPoolExecutor.shutdown(wait=True)) inflated
        # trace.stats.seconds
        from repro.image.engine import ImageEngine
        real_close = ImageEngine.close
        delay = 0.25

        def slow_close(self):
            time.sleep(delay)
            real_close(self)

        monkeypatch.setattr(ImageEngine, "close", slow_close)
        start = time.perf_counter()
        trace = reachable_space(models.ghz_qts(3), method="basic")
        total = time.perf_counter() - start
        assert total >= delay
        assert trace.stats.seconds <= total - delay * 0.8

    def test_methods_agree_on_reachable_space(self):
        traces = {}
        for method, params in (("basic", {}),
                               ("contraction", {"k1": 2, "k2": 2})):
            qts = models.qrw_qts(3, 0.3)
            traces[method] = reachable_space(qts, method=method, **params)
        d1 = subspace_to_dense(traces["basic"].subspace)
        d2 = subspace_to_dense(traces["contraction"].subspace)
        assert d1.equals(d2)
