"""Projector utilities: application and basis decomposition.

``basis_decompose`` implements Section IV.A of the paper: given the
projector TDD ``P`` of a subspace, repeatedly locate the leftmost
non-zero *column* (an assignment of the ket indices reached through the
leftmost non-zero path of the diagram), normalise it into a basis
vector ``|v>``, and deflate ``P <- P - |v><v|``.  Because ``P`` is a
projector, every non-zero column is an eigenvector-combination lying in
the subspace, and the deflation terminates after exactly ``dim``
rounds.
"""

from __future__ import annotations


from repro.config import GS_EPS
from repro.errors import SubspaceError
from repro.subspace.subspace import StateSpace, Subspace
from repro.tdd.slicing import first_nonzero_assignment
from repro.tdd.tdd import TDD

#: Frobenius norm below which a deflation remainder counts as
#: floating-point cancellation residue rather than structure: a genuine
#: projector of dimension d >= 1 has norm sqrt(d) >= 1, while the
#: residue left by chained subspace operations (nested complements,
#: meets) accumulates around 1e-7.
RESIDUE_EPS = 1e-6


def apply_projector(space: StateSpace, projector: TDD, state: TDD) -> TDD:
    """``P |state>`` for a projector tensor P[bra, ket]."""
    result = projector.contract(state, space.kets)
    return result.rename(dict(zip(space.bras, space.kets)))


def _greedy_column(space: StateSpace, current: TDD) -> TDD:
    """The column reached by descending into the higher-norm cofactor.

    The leftmost structurally non-zero path can lead to a column whose
    entries cancel numerically (edge weights are individually
    significant, their products are not — typical residue of chained
    subspace operations).  Fixing each ket to the branch holding more
    Frobenius mass instead keeps at least half the squared mass per
    level, so the extracted column is never an all-cancellation one
    while significant mass remains.
    """
    work = current
    for ket in space.kets:
        zero = work.slice({ket: 0})
        one = work.slice({ket: 1})
        work = one if one.norm() > zero.norm() else zero
    return work


def basis_decompose(space: StateSpace, projector: TDD,
                    tol: float = GS_EPS,
                    max_dim: int = 0) -> Subspace:
    """Recover a :class:`Subspace` from a projector TDD (paper §IV.A).

    ``projector`` must be (numerically) a projector over
    ``(space.bras, space.kets)``.  ``max_dim`` bounds the number of
    extracted vectors (0 = no bound) as a safety net against
    non-projector input.
    """
    manager = space.manager
    ket_levels = frozenset(manager.level(k) for k in space.kets)
    limit = max_dim if max_dim > 0 else 2 ** space.num_qubits

    out = Subspace(space)
    zero_tol = max(tol, RESIDUE_EPS)
    current = projector
    for _ in range(limit):
        # Frobenius norm of what remains: a projector has norm
        # sqrt(dim) >= 1, so anything below zero_tol is residue.
        if current.is_zero or current.norm() <= zero_tol:
            break
        assignment = first_nonzero_assignment(current.root, ket_levels)
        if assignment is None:
            break
        # complete the partial assignment with zeros
        bits = {}
        for ket in space.kets:
            bits[ket] = assignment.get(manager.level(ket), 0)
        column = current.slice(bits)
        # the column lives on the bras; bring it to the kets
        column = column.rename(dict(zip(space.bras, space.kets)))
        norm = column.norm()
        if norm <= tol:
            # the leftmost path cancelled numerically; retry with the
            # max-mass descent before declaring the input broken
            column = _greedy_column(space, current).rename(
                dict(zip(space.bras, space.kets)))
            norm = column.norm()
        if norm <= tol:
            raise SubspaceError("non-zero path led to a negligible column; "
                                "input is not a projector")
        vector = column.scaled(1.0 / norm)
        added = out.add_state(vector, tol=tol)
        if added is None:
            raise SubspaceError("extracted column already contained; "
                                "input is not a projector")
        # deflate:  P <- P - |v><v|
        outer = vector.rename(dict(zip(space.kets, space.bras))).product(
            vector.conj())
        current = current - outer
    else:
        if not current.is_zero and current.norm() > zero_tol:
            raise SubspaceError("basis decomposition did not terminate: "
                                "input is not a projector")
    return out
