"""Reachability across the model families, cross-method."""

import pytest

from repro.mc.reachability import reachable_space
from repro.systems import models

from tests.helpers import subspace_to_dense


class TestQRWReachability:
    @pytest.mark.parametrize("n", [3, 4])
    def test_walk_fills_space(self, n):
        qts = models.qrw_qts(n, 0.3)
        trace = reachable_space(qts, method="contraction", k1=2, k2=2)
        assert trace.converged
        assert trace.dimension == 2 ** n

    def test_noiseless_walk_also_fills(self):
        qts = models.qrw_qts(3, 0.0)
        trace = reachable_space(qts, method="basic")
        assert trace.dimension == 8


class TestGroverReachability:
    def test_invariant_space_stays_two_dimensional(self):
        qts = models.grover_qts(4, initial="invariant")
        trace = reachable_space(qts, method="contraction", k1=2, k2=2)
        assert trace.converged
        assert trace.dimension == 2
        assert trace.iterations == 1

    def test_plus_initial_reaches_invariant(self):
        qts = models.grover_qts(4)
        trace = reachable_space(qts, method="basic")
        assert trace.converged
        assert trace.dimension == 2  # span{|+..+->, G|+..+->}


class TestBitflipReachability:
    def test_correction_converges(self):
        qts = models.bitflip_qts()
        trace = reachable_space(qts, method="basic")
        assert trace.converged
        # from error states: one step lands on |000000>; from there
        # the corrector keeps states inside the no-error code space
        assert trace.dimension >= 4

    def test_methods_agree(self):
        dense = {}
        for method, params in (("basic", {}),
                               ("contraction", {"k1": 3, "k2": 2})):
            qts = models.bitflip_qts()
            trace = reachable_space(qts, method=method, **params)
            dense[method] = subspace_to_dense(trace.subspace)
        assert dense["basic"].equals(dense["contraction"])
