"""The :class:`QuantumCircuit` container.

A circuit is an ordered list of :class:`~repro.gates.gate.Gate`
instances on ``num_qubits`` qubits.  Measurement projectors and scaled
Kraus operators are ordinary gates, so one circuit describes one Kraus
operator of a quantum operation (paper, Section III.A); unitary
circuits are the special case with unitary gates only.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import CircuitError
from repro.gates import library as gl
from repro.gates.gate import Gate
from repro.indices.index import Index
from repro.circuits.wires import GateWiring, wire_circuit


class QuantumCircuit:
    """An ordered gate list on a fixed set of qubits."""

    def __init__(self, num_qubits: int, name: str = "circuit") -> None:
        if num_qubits < 1:
            raise CircuitError("a circuit needs at least one qubit")
        self.num_qubits = num_qubits
        self.name = name
        self.gates: List[Gate] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def append(self, gate: Gate) -> "QuantumCircuit":
        for q in gate.qubits:
            if not 0 <= q < self.num_qubits:
                raise CircuitError(f"gate {gate.name!r} touches qubit {q} "
                                   f"outside 0..{self.num_qubits - 1}")
        self.gates.append(gate)
        return self

    def extend(self, gates: Iterable[Gate]) -> "QuantumCircuit":
        for gate in gates:
            self.append(gate)
        return self

    # fluent helpers -----------------------------------------------------
    def h(self, q: int) -> "QuantumCircuit":
        return self.append(gl.h(q))

    def x(self, q: int) -> "QuantumCircuit":
        return self.append(gl.x(q))

    def y(self, q: int) -> "QuantumCircuit":
        return self.append(gl.y(q))

    def z(self, q: int) -> "QuantumCircuit":
        return self.append(gl.z(q))

    def s(self, q: int) -> "QuantumCircuit":
        return self.append(gl.s(q))

    def t(self, q: int) -> "QuantumCircuit":
        return self.append(gl.t(q))

    def sx(self, q: int) -> "QuantumCircuit":
        return self.append(gl.sx(q))

    def rx(self, theta: float, q: int) -> "QuantumCircuit":
        return self.append(gl.rx(theta, q))

    def ry(self, theta: float, q: int) -> "QuantumCircuit":
        return self.append(gl.ry(theta, q))

    def rz(self, theta: float, q: int) -> "QuantumCircuit":
        return self.append(gl.rz(theta, q))

    def p(self, theta: float, q: int) -> "QuantumCircuit":
        return self.append(gl.p(theta, q))

    def cx(self, c: int, t: int) -> "QuantumCircuit":
        return self.append(gl.cx(c, t))

    def cz(self, c: int, t: int) -> "QuantumCircuit":
        return self.append(gl.cz(c, t))

    def cp(self, theta: float, c: int, t: int) -> "QuantumCircuit":
        return self.append(gl.cp(theta, c, t))

    def ccx(self, c1: int, c2: int, t: int) -> "QuantumCircuit":
        return self.append(gl.ccx(c1, c2, t))

    def cnx(self, controls: Sequence[int], t: int,
            control_states: Optional[Sequence[int]] = None
            ) -> "QuantumCircuit":
        return self.append(gl.cnx(controls, t, control_states))

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        return self.append(gl.swap(a, b))

    def proj(self, q: int, outcome: int) -> "QuantumCircuit":
        return self.append(gl.proj(q, outcome))

    def scalar(self, value: complex) -> "QuantumCircuit":
        return self.append(gl.scalar(value))

    def matrix_gate(self, name: str, targets: Sequence[int],
                    matrix: np.ndarray) -> "QuantumCircuit":
        return self.append(gl.matrix_gate(name, targets, matrix))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_gates(self) -> int:
        return len(self.gates)

    def multi_qubit_gates(self) -> List[Gate]:
        return [g for g in self.gates if g.is_multi_qubit]

    def depth(self) -> int:
        """Circuit depth under the usual as-soon-as-possible schedule."""
        level = [0] * self.num_qubits
        depth = 0
        for gate in self.gates:
            if not gate.qubits:
                continue
            start = max(level[q] for q in gate.qubits)
            for q in gate.qubits:
                level[q] = start + 1
            depth = max(depth, start + 1)
        return depth

    def is_unitary(self) -> bool:
        """True when every gate matrix is unitary (no projectors/Kraus)."""
        from repro.gates.matrices import is_unitary
        return all(is_unitary(g.matrix) for g in self.gates)

    def count_ops(self) -> dict:
        out: dict = {}
        for gate in self.gates:
            out[gate.name] = out.get(gate.name, 0) + 1
        return out

    # ------------------------------------------------------------------
    # wiring / indices
    # ------------------------------------------------------------------
    def wirings(self) -> Tuple[List[GateWiring], List[Index], List[Index]]:
        """Index-assign every gate; see :func:`wire_circuit`."""
        return wire_circuit(self.num_qubits, self.gates)

    def all_wire_indices(self) -> List[Index]:
        """Every index of the circuit's tensor network, qubit-major."""
        wirings, inputs, outputs = self.wirings()
        seen = {}
        for idx in inputs:
            seen[idx.name] = idx
        for wiring in wirings:
            for idx in wiring.indices:
                seen[idx.name] = idx
        return sorted(seen.values(), key=lambda i: (i.qubit, i.time))

    # ------------------------------------------------------------------
    # composition
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        out = QuantumCircuit(self.num_qubits, name or self.name)
        out.gates = list(self.gates)
        return out

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """This circuit followed by ``other`` (same qubit count)."""
        if other.num_qubits != self.num_qubits:
            raise CircuitError("qubit count mismatch in compose")
        out = self.copy(f"{self.name};{other.name}")
        out.extend(other.gates)
        return out

    def inverse(self) -> "QuantumCircuit":
        """The adjoint circuit (gates reversed and daggered)."""
        out = QuantumCircuit(self.num_qubits, self.name + "_dg")
        out.extend(g.adjoint() for g in reversed(self.gates))
        return out

    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """A one-gate-per-line description (stable, diffable)."""
        lines = [f"qubits {self.num_qubits}"]
        for gate in self.gates:
            parts = [gate.name]
            if gate.controls:
                ctl = ",".join(
                    f"{'~' if s == 0 else ''}{q}"
                    for q, s in zip(gate.controls, gate.control_states))
                parts.append(f"ctrl[{ctl}]")
            parts.append(",".join(str(q) for q in gate.targets))
            lines.append(" ".join(p for p in parts if p))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"QuantumCircuit({self.name!r}, qubits={self.num_qubits}, "
                f"gates={self.num_gates})")
