"""Noise channel library."""

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.errors import SystemError_
from repro.systems import noise
from repro.systems.qts import QuantumTransitionSystem


class TestKrausSets:
    @pytest.mark.parametrize("name", sorted(noise.CHANNELS))
    @pytest.mark.parametrize("p", [0.0, 0.25, 0.7, 1.0])
    def test_trace_preserving(self, name, p):
        kraus = noise.CHANNELS[name](p)
        assert noise.is_trace_preserving(kraus)

    def test_probability_bounds(self):
        with pytest.raises(SystemError_):
            noise.bit_flip_kraus(1.5)

    def test_amplitude_damping_non_unital(self):
        kraus = noise.amplitude_damping_kraus(0.5)
        # a non-unital channel moves the maximally mixed state
        rho = np.eye(2, dtype=complex) / 2
        out = sum(e @ rho @ e.conj().T for e in kraus)
        assert not np.allclose(out, rho)

    def test_depolarizing_shrinks_bloch(self):
        kraus = noise.depolarizing_kraus(0.5)
        rho = np.array([[1, 0], [0, 0]], dtype=complex)
        out = sum(e @ rho @ e.conj().T for e in kraus)
        assert np.isclose(np.trace(out), 1.0)
        assert out[0, 0].real < 1.0


class TestInsertChannel:
    def test_branches_count(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        branches = noise.insert_channel(circuit, 1, 0,
                                        noise.bit_flip_kraus(0.3))
        assert len(branches) == 2
        assert all(b.num_gates == 3 for b in branches)

    def test_position_bounds(self):
        circuit = QuantumCircuit(1).h(0)
        with pytest.raises(SystemError_):
            noise.insert_channel(circuit, 5, 0,
                                 noise.bit_flip_kraus(0.1))

    def test_matches_paper_qrw_construction(self):
        """insert_channel after the Hadamard reproduces the library's
        hand-built noisy QRW Kraus circuits (up to scalar placement)."""
        from repro.circuits.library import qrw_step, qrw_noisy_kraus_circuits
        from repro.sim.statevector import circuit_unitary
        step = qrw_step(4)
        branches = noise.insert_channel(
            step, 1, 0, noise.bit_flip_kraus(1 - 0.3), name="bf")
        keep, flip = qrw_noisy_kraus_circuits(4, 0.3)
        # branch 0 = sqrt(0.3) I-branch matches `keep`
        assert np.allclose(circuit_unitary(branches[0]),
                           circuit_unitary(keep), atol=1e-9)
        assert np.allclose(circuit_unitary(branches[1]),
                           circuit_unitary(flip), atol=1e-9)


class TestNoisyOperation:
    def test_builds_valid_operation(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        op = noise.noisy_operation("noisy", circuit, 1, 0,
                                   "depolarizing", 0.2)
        assert op.num_kraus == 4
        assert op.is_trace_nonincreasing()

    def test_unknown_channel(self):
        with pytest.raises(SystemError_):
            noise.noisy_operation("x", QuantumCircuit(1), 0, 0,
                                  "cosmic_rays", 0.1)

    def test_image_with_amplitude_damping(self):
        """Non-unital noise: |1> decays toward |0>; the image of
        span{|1>} under damping is span{|0>, |1>} for 0 < g < 1."""
        from repro.image.engine import compute_image
        from tests.helpers import dense_image_oracle, \
            assert_subspace_matches_dense
        circuit = QuantumCircuit(1)  # identity circuit + damping
        op = noise.noisy_operation("damp", circuit, 0, 0,
                                   "amplitude_damping", 0.3)
        qts = QuantumTransitionSystem(1, [op])
        qts.set_initial_basis_states([[1]])
        expected = dense_image_oracle(qts)
        for method in ("basic", "contraction"):
            qts2 = QuantumTransitionSystem(1, [noise.noisy_operation(
                "damp", QuantumCircuit(1), 0, 0, "amplitude_damping", 0.3)])
            qts2.set_initial_basis_states([[1]])
            result = compute_image(qts2, method=method)
            assert result.dimension == 2
            assert_subspace_matches_dense(result.subspace, expected)

    def test_phase_flip_preserves_basis_states(self):
        from repro.image.engine import compute_image
        circuit = QuantumCircuit(1)
        op = noise.noisy_operation("pf", circuit, 0, 0, "phase_flip", 0.4)
        qts = QuantumTransitionSystem(1, [op])
        qts.set_initial_basis_states([[0]])
        result = compute_image(qts, method="basic")
        assert result.dimension == 1  # Z|0> = |0>
