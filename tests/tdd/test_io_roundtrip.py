"""TDD serialisation round trips (to_dict / from_dict)."""

import json

import numpy as np

from repro.indices.index import Index
from repro.tdd import construction as tc
from repro.tdd.io import from_dict, to_dict

from tests.helpers import fresh_manager, random_tensor

NAMES = ["a0", "a1", "a2"]


def idx(*names):
    return [Index(n) for n in names]


class TestRoundTrip:
    def test_same_manager(self, rng):
        m = fresh_manager(NAMES)
        arr = random_tensor(rng, 3)
        t = tc.from_numpy(m, arr, idx(*NAMES))
        rebuilt = from_dict(m, to_dict(t))
        assert rebuilt.root.node is t.root.node  # canonical re-interning
        assert np.allclose(rebuilt.to_numpy(), arr)

    def test_cross_manager(self, rng):
        m1 = fresh_manager(NAMES)
        m2 = fresh_manager(NAMES)
        arr = random_tensor(rng, 3)
        t = tc.from_numpy(m1, arr, idx(*NAMES))
        rebuilt = from_dict(m2, to_dict(t))
        assert rebuilt.manager is m2
        assert np.allclose(rebuilt.to_numpy(), arr)

    def test_through_json(self, rng):
        m1 = fresh_manager(NAMES)
        m2 = fresh_manager(NAMES)
        arr = random_tensor(rng, 2)
        t = tc.from_numpy(m1, arr, idx("a0", "a1"))
        text = json.dumps(to_dict(t))
        rebuilt = from_dict(m2, json.loads(text))
        assert np.allclose(rebuilt.to_numpy(), arr)

    def test_zero_tensor(self):
        m = fresh_manager(NAMES)
        t = tc.zero(m, idx("a0"))
        rebuilt = from_dict(m, to_dict(t))
        assert rebuilt.is_zero

    def test_scalar(self):
        m = fresh_manager(NAMES)
        t = tc.scalar(m, 0.5 - 0.25j)
        rebuilt = from_dict(m, to_dict(t))
        assert rebuilt.scalar_value() == 0.5 - 0.25j

    def test_shared_structure_preserved(self):
        m = fresh_manager(NAMES)
        # GHZ-ish tensor has shared subgraphs; round trip must not blow up
        ghz = (tc.basis_state(m, idx(*NAMES), [0, 0, 0])
               + tc.basis_state(m, idx(*NAMES), [1, 1, 1]))
        rebuilt = from_dict(m, to_dict(ghz))
        assert rebuilt.size() == ghz.size()

    def test_projector_round_trip(self, rng):
        from tests.helpers import make_space
        space = make_space(2)
        sub = space.span([space.from_amplitudes(rng.normal(size=4))])
        rebuilt = from_dict(space.manager, to_dict(sub.projector))
        assert rebuilt.allclose(sub.projector)


class TestOrderPayload:
    """The IPC half of the codec: shipping the index order itself."""

    def test_payload_preserves_levels_and_coordinates(self):
        from repro.indices.index import Index
        from repro.indices.order import IndexOrder
        from repro.tdd.io import manager_from_order, order_payload

        order = IndexOrder([Index("x0_0", qubit=0, time=0),
                            Index("y0_0", qubit=0, time=0),
                            Index("x1_0", qubit=1, time=0)])
        rebuilt = manager_from_order(order_payload(order))
        for level in range(len(order)):
            original = order.index_at(level)
            copy = rebuilt.order.index_at(level)
            assert copy == original
            assert copy.qubit == original.qubit
            assert copy.time == original.time

    def test_payload_is_picklable(self):
        import pickle

        from repro.tdd.io import manager_from_order, order_payload

        m = fresh_manager(NAMES)
        payload = pickle.loads(pickle.dumps(order_payload(m.order)))
        rebuilt = manager_from_order(payload)
        assert len(rebuilt.order) == len(m.order)

    def test_qts_order_round_trip(self):
        from repro.systems import models
        from repro.tdd.io import manager_from_order, order_payload

        qts = models.build_model("grover", 3)
        worker = manager_from_order(order_payload(qts.manager.order))
        state = qts.initial.basis[0]
        rebuilt = from_dict(worker, to_dict(state))
        assert np.allclose(rebuilt.to_numpy(), state.to_numpy())


class TestIPCRoundTripProperty:
    """Property test for the worker hand-off: a random tensor survives

    parent --to_dict--> worker manager --contract/to_dict--> parent
    with exact (canonical-grid) fidelity.
    """

    def test_random_tensors_cross_manager(self, rng):
        from hypothesis import given, settings
        from hypothesis import strategies as st
        from repro.tdd.io import manager_from_order, order_payload

        @settings(max_examples=25, deadline=None)
        @given(rank=st.integers(min_value=0, max_value=5),
               seed=st.integers(min_value=0, max_value=2 ** 31))
        def check(rank, seed):
            local = np.random.default_rng(seed)
            names = [f"a{i}" for i in range(5)]
            parent = fresh_manager(names)
            arr = random_tensor(local, rank)
            t = tc.from_numpy(parent, arr, idx(*names[:rank]))
            worker = manager_from_order(order_payload(parent.order))
            shipped = from_dict(worker, to_dict(t))
            # worker -> parent: the return leg of the IPC path
            returned = from_dict(parent, to_dict(shipped))
            assert np.allclose(shipped.to_numpy(), arr)
            assert returned.root.node is t.root.node  # re-interned

        check()

    def test_cofactor_sum_equals_whole(self, rng):
        """slice -> ship -> recombine reproduces the original tensor."""
        from repro.tdd.io import manager_from_order, order_payload
        from repro.tdd.slicing import enumerate_cofactors

        names = ["a0", "a1", "a2", "a3"]
        parent = fresh_manager(names)
        arr = random_tensor(rng, 4)
        t = tc.from_numpy(parent, arr, idx(*names))
        worker = manager_from_order(order_payload(parent.order))
        total = None
        for _assignment, edge in enumerate_cofactors(parent, t.root,
                                                     [0, 1]):
            part = from_dict(worker, to_dict(
                type(t)(parent, edge, t.indices[2:])))
            total = part if total is None else total + part
        # summing the four cofactors marginalises indices a0, a1
        assert np.allclose(total.to_numpy(), arr.sum(axis=(0, 1)))
