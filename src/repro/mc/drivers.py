"""Fixpoint drivers: pluggable schedules for ``S_{k+1} = S_k v T(S_k)``.

The reachability fixpoint has two independent halves: the image
*kernel* (how one ``T(S)`` is computed — method × execution strategy,
see :mod:`repro.image`) and the fixpoint *schedule* (what work each
round issues and how partial results recombine).  A
:class:`FixpointDriver` owns the schedule; :func:`~repro.mc.
reachability.reachable_space` is a thin façade that builds the engine,
picks a driver and delegates the loop.  Three drivers ship:

* ``sequential`` — one monolithic ``T(S_k)`` per round joined onto the
  accumulator; exactly the pre-driver behaviour, bit-for-bit.
* ``opsharded`` — each round fans out one
  :class:`~repro.image.engine.ImageTask` per operation (the engine's
  per-operation task API) and recombines the accumulator with the
  partial images through a balanced *tree-reduce of joins*.  Task
  contractions run through the engine's executor, so the sliced
  strategy's cofactor decomposition — and its worker pool — are shared
  between slicing and sharding rather than duplicated per shard.
* ``frontier`` — the classic frontier-set refinement as a proper
  driver: each round images only the basis vectors added by the
  previous round (sound because the image distributes over joins,
  Proposition 1).

Every driver computes the same reachable subspace (same dimension,
mutual containment); they differ in work granularity and combine
order, so Gram-Schmidt bases — not the spanned spaces — may differ.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ReproError
from repro.image.engine import ImageEngine
from repro.subspace.subspace import Subspace
from repro.utils.stats import StatsRecorder

#: the available fixpoint schedules
DRIVERS = ("sequential", "opsharded", "frontier")

#: the driver every config/CLI surface defaults to
DEFAULT_DRIVER = "sequential"


def tree_join(subspaces: Sequence[Subspace]) -> Subspace:
    """Join subspaces pairwise, halving the list each pass.

    The balanced combine keeps each intermediate join small (the
    Gram-Schmidt cost of ``a.join(b)`` is linear in ``dim b`` against
    the accumulated projector of ``a``) instead of funnelling every
    partial image through one ever-growing accumulator.
    """
    items: List[Subspace] = list(subspaces)
    if not items:
        raise ReproError("tree_join needs at least one subspace")
    while len(items) > 1:
        paired = []
        for i in range(0, len(items) - 1, 2):
            paired.append(items[i].join(items[i + 1]))
        if len(items) % 2:
            paired.append(items[-1])
        items = paired
    return items[0]


class FixpointDriver:
    """One fixpoint schedule; subclasses implement :meth:`advance`.

    The shared :meth:`run` loop owns iteration accounting, convergence
    detection and between-round garbage collection; it mutates the
    :class:`~repro.mc.reachability.ReachabilityTrace` handed in by the
    façade (subspace, dimensions, iterations, converged).
    """

    name = "abstract"

    # ------------------------------------------------------------------
    # schedule hooks
    # ------------------------------------------------------------------
    def begin(self, engine: ImageEngine, initial: Subspace) -> None:
        """Reset per-run state (frontier bookkeeping etc.)."""

    def advance(self, engine: ImageEngine, current: Subspace,
                stats: StatsRecorder) -> Subspace:
        """One fixpoint round: return ``current v T(source)``."""
        raise NotImplementedError

    def observe(self, engine: ImageEngine, previous: Subspace,
                grown: Subspace) -> None:
        """Called after a growing round, before the next one."""

    # ------------------------------------------------------------------
    def run(self, engine: ImageEngine, trace, limit: int,
            gc: bool = True) -> None:
        """Drive ``trace.subspace`` to the fixpoint (or the limit)."""
        current = trace.subspace
        manager = engine.qts.manager
        self.begin(engine, current)
        for _ in range(limit):
            grown = self.advance(engine, current, trace.stats)
            trace.iterations += 1
            trace.dimensions.append(grown.dimension)
            if grown.dimension == current.dimension:
                trace.subspace = grown
                break
            self.observe(engine, current, grown)
            current = grown
            trace.subspace = grown
            if gc:
                manager.collect()
        else:
            trace.converged = False

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SequentialDriver(FixpointDriver):
    """The baseline schedule: one monolithic ``T(S_k)`` per round."""

    name = "sequential"

    def advance(self, engine: ImageEngine, current: Subspace,
                stats: StatsRecorder) -> Subspace:
        step = engine.computer.image(current, stats)
        return current.join(step.subspace)


class OpShardedDriver(FixpointDriver):
    """Per-operation sharding with a tree-reduce of joins.

    Each round asks the engine for its per-operation
    :class:`~repro.image.engine.ImageTask` list, runs every task (its
    contractions go through the one shared executor, so the sliced
    strategy's pool serves the shards too), and tree-reduces
    ``[S_k, T_sigma1(S_k), T_sigma2(S_k), ...]`` into ``S_{k+1}``.
    """

    name = "opsharded"

    def advance(self, engine: ImageEngine, current: Subspace,
                stats: StatsRecorder) -> Subspace:
        if getattr(engine, "batched", False):
            # all operations' Kraus families stacked into one
            # vector-weight operator: the whole iteration is a single
            # batched kernel invocation per basis state
            partial = engine.combined_image_task(current).run(stats)
            stats.extra["shards"] = stats.extra.get("shards", 0) + 1
            return tree_join([current, partial.subspace])
        partials = [task.run(stats).subspace
                    for task in engine.image_tasks(current)]
        stats.extra["shards"] = (stats.extra.get("shards", 0)
                                 + len(partials))
        return tree_join([current] + partials)


class FrontierDriver(FixpointDriver):
    """Image only the directions added by the previous round."""

    name = "frontier"

    def __init__(self) -> None:
        self._frontier: Optional[Subspace] = None

    def begin(self, engine: ImageEngine, initial: Subspace) -> None:
        self._frontier = initial

    def advance(self, engine: ImageEngine, current: Subspace,
                stats: StatsRecorder) -> Subspace:
        step = engine.computer.image(self._frontier, stats)
        return current.join(step.subspace)

    def observe(self, engine: ImageEngine, previous: Subspace,
                grown: Subspace) -> None:
        # the new frontier: basis vectors Gram-Schmidt added beyond the
        # previous space (orthogonal to it by construction of
        # Subspace.join)
        new_vectors = grown.basis[previous.dimension:]
        self._frontier = engine.qts.space.span(new_vectors)


_DRIVER_CLASSES = {cls.name: cls for cls in
                   (SequentialDriver, OpShardedDriver, FrontierDriver)}


def make_driver(name: str) -> FixpointDriver:
    """Instantiate a fixpoint driver by name."""
    try:
        return _DRIVER_CLASSES[name]()
    except KeyError:
        raise ReproError(f"unknown driver {name!r}; "
                         f"choose from {DRIVERS}") from None


def resolve_driver(driver: Optional[str], frontier: bool) -> str:
    """Fold the legacy ``frontier`` flag into a driver name.

    ``frontier=True`` is shorthand for the frontier driver; it
    upgrades an unset (or default-``sequential``) driver and is
    rejected as contradictory next to an explicit different one.
    """
    if driver is None or (frontier and driver == DEFAULT_DRIVER):
        return "frontier" if frontier else DEFAULT_DRIVER
    if frontier and driver != "frontier":
        raise ReproError(
            f"frontier=True is the frontier driver; it cannot be "
            f"combined with driver={driver!r}")
    return driver
