"""Pointwise TDD arithmetic: addition, scaling, conjugation.

All functions operate on raw :class:`~repro.tdd.node.Edge` values inside
one manager; the index-set bookkeeping lives on the :class:`TDD`
wrapper.  The heavy lifting happens in :mod:`repro.tdd.apply` — an
explicit-work-stack engine, so none of these functions consume Python
stack proportional to the diagram depth.  Addition is memoised in the
manager's ``add_cache`` with a symmetric key, exploiting commutativity.
"""

from __future__ import annotations

from repro.tdd.apply import add_apply, slice_pair, unary_apply
from repro.tdd.manager import TDDManager
from repro.tdd.node import Edge

__all__ = ["add_edges", "scale_edge", "negate_edge", "conjugate_edge",
           "slice_pair"]


def add_edges(manager: TDDManager, a: Edge, b: Edge) -> Edge:
    """Pointwise sum of two edges over the union of their index supports."""
    return add_apply(manager, a, b)


def scale_edge(manager: TDDManager, edge: Edge, factor: complex) -> Edge:
    """``factor`` times the tensor of ``edge``."""
    return manager.make_edge(edge.weight * factor, edge.node)


def negate_edge(manager: TDDManager, edge: Edge) -> Edge:
    return scale_edge(manager, edge, -1)


def conjugate_edge(manager: TDDManager, edge: Edge) -> Edge:
    """Entry-wise complex conjugate of the tensor of ``edge``."""
    return unary_apply(
        manager, edge,
        rebuild=lambda node, low, high: manager.make_node(node.level,
                                                          low, high),
        weight_map=lambda w: w.conjugate())
