"""TDD contraction.

``contract_edges(m, a, b, sum_levels)`` computes the tensor

    C[free] = sum over the indices in ``sum_levels`` of  A · B,

the fundamental tensor-network operation (paper, Section II.B).  Shared
indices that are *not* summed remain free (this is what hyper-edge
indices shared by three or more tensors need).  A summed index that
neither operand depends on contributes a factor 2 per the definition of
summation over {0, 1}.

The work-stack engine in :mod:`repro.tdd.apply` processes levels in the
global order; weights are factored out so the memo key is
``(node, node, remaining-sum-levels)``, which gives high hit rates
across repeated image computations.
"""

from __future__ import annotations

from typing import Tuple

from repro.tdd.apply import contract_apply
from repro.tdd.manager import TDDManager
from repro.tdd.node import Edge


def contract_edges(manager: TDDManager, a: Edge, b: Edge,
                   sum_levels: Tuple[int, ...]) -> Edge:
    """Contract two edges over the (sorted) levels in ``sum_levels``."""
    sum_levels = tuple(sorted(sum_levels))
    return contract_apply(manager, a, b, sum_levels)
