"""Semantics of the benchmark circuit generators (dense oracle)."""

import numpy as np
import pytest

from repro.circuits import library as lib
from repro.errors import CircuitError
from repro.sim.statevector import (basis_state_from_int, basis_state_vector,
                                   circuit_unitary)
from repro.utils.bitops import int_to_bits

PLUS = np.array([1, 1]) / np.sqrt(2)
MINUS = np.array([1, -1]) / np.sqrt(2)


def kron_all(vectors):
    out = np.array([1.0 + 0j])
    for v in vectors:
        out = np.kron(out, v)
    return out


class TestGHZ:
    @pytest.mark.parametrize("n", [2, 3, 5])
    def test_prepares_ghz(self, n):
        u = circuit_unitary(lib.ghz_circuit(n))
        out = u @ basis_state_from_int(n, 0).reshape(-1)
        expect = np.zeros(2 ** n, dtype=complex)
        expect[0] = expect[-1] = 2 ** -0.5
        assert np.allclose(out, expect)

    def test_gate_count(self):
        circuit = lib.ghz_circuit(10)
        assert circuit.count_ops() == {"h": 1, "cx": 9}


class TestGrover:
    def test_needs_three_qubits(self):
        with pytest.raises(CircuitError):
            lib.grover_iteration(2)

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_invariant_subspace(self, n):
        """span{|+..+->, |1..1->} is invariant (Section III.A.1)."""
        u = circuit_unitary(lib.grover_iteration(n))
        m = n - 1
        psi = kron_all([PLUS] * m + [MINUS])
        target = kron_all([np.array([0, 1])] * m + [MINUS])
        basis = np.stack([psi, target], axis=1)
        proj = basis @ np.linalg.pinv(basis)
        for vec in (psi, target):
            out = u @ vec
            assert np.allclose(proj @ out, out, atol=1e-9)

    def test_plus_minus_maps_to_marked(self):
        """For 2 search qubits one iteration lands on |11>|-> exactly."""
        u = circuit_unitary(lib.grover_iteration(3))
        psi = kron_all([PLUS, PLUS, MINUS])
        target = kron_all([np.array([0, 1]), np.array([0, 1]), MINUS])
        out = u @ psi
        assert np.isclose(abs(np.vdot(out, target)), 1.0, atol=1e-9)

    def test_oracle_is_multi_controlled_x(self):
        circuit = lib.grover_iteration(5)
        oracle = circuit.gates[0]
        assert oracle.name == "cnx"
        assert oracle.controls == (0, 1, 2, 3)
        assert oracle.targets == (4,)


class TestBV:
    @pytest.mark.parametrize("secret", [[1, 0, 1], [0, 0, 0], [1, 1, 1]])
    def test_recovers_secret(self, secret):
        n = len(secret) + 1
        u = circuit_unitary(lib.bernstein_vazirani(n, secret))
        start = basis_state_vector(n, [0] * (n - 1) + [1]).reshape(-1)
        expect = basis_state_vector(n, list(secret) + [1]).reshape(-1)
        assert np.allclose(u @ start, expect, atol=1e-9)

    def test_default_secret_all_ones(self):
        circuit = lib.bernstein_vazirani(4)
        assert circuit.count_ops()["cx"] == 3

    def test_secret_length_mismatch(self):
        with pytest.raises(CircuitError):
            lib.bernstein_vazirani(3, [1, 0, 1])


class TestQFT:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_matches_dft_matrix_bit_reversed(self, n):
        u = circuit_unitary(lib.qft_circuit(n))
        dim = 2 ** n
        dft = np.array([[np.exp(2j * np.pi * j * k / dim) / np.sqrt(dim)
                         for k in range(dim)] for j in range(dim)])
        # without terminal swaps the output is bit-reversed
        perm = [int(format(i, f"0{n}b")[::-1], 2) for i in range(dim)]
        assert np.allclose(u[perm, :], dft, atol=1e-9)

    def test_gate_count(self):
        circuit = lib.qft_circuit(5)
        ops = circuit.count_ops()
        assert ops["h"] == 5
        assert ops["cp"] == 10

    def test_approximate_qft_truncates(self):
        full = lib.qft_circuit(6)
        approx = lib.qft_circuit(6, max_distance=2)
        assert approx.count_ops()["cp"] < full.count_ops()["cp"]


class TestQRW:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_shift_increments_and_decrements(self, n):
        u = circuit_unitary(lib.qrw_shift(n))
        size = 2 ** (n - 1)
        for pos in range(size):
            bits = int_to_bits(pos, n - 1)
            for coin, step in ((1, 1), (0, -1)):
                vec = basis_state_vector(n, [coin] + bits).reshape(-1)
                expect_bits = int_to_bits((pos + step) % size, n - 1)
                expect = basis_state_vector(
                    n, [coin] + expect_bits).reshape(-1)
                assert np.allclose(u @ vec, expect, atol=1e-9)

    def test_step_is_unitary(self):
        u = circuit_unitary(lib.qrw_step(4))
        assert np.allclose(u @ u.conj().T, np.eye(16), atol=1e-9)

    def test_noisy_kraus_completeness(self):
        k1, k2 = lib.qrw_noisy_kraus_circuits(4, 0.3)
        e1, e2 = circuit_unitary(k1), circuit_unitary(k2)
        total = e1.conj().T @ e1 + e2.conj().T @ e2
        assert np.allclose(total, np.eye(16), atol=1e-9)

    def test_probability_bounds(self):
        with pytest.raises(CircuitError):
            lib.qrw_noisy_kraus_circuits(4, 1.5)


class TestBitflip:
    def test_six_cx_syndrome(self):
        circuit = lib.bitflip_syndrome_circuit()
        assert circuit.count_ops() == {"cx": 6}

    def test_four_outcomes(self):
        assert len(lib.bitflip_kraus_circuits()) == 4
        assert set(lib.BITFLIP_OUTCOMES) == {
            (0, 0, 0), (1, 0, 1), (1, 1, 0), (0, 1, 1)}

    @pytest.mark.parametrize("error_qubit", [None, 0, 1, 2])
    def test_corrects_single_flips(self, error_qubit):
        from repro.sim.density import (apply_kraus, channel_matrices,
                                       support_basis)
        kraus = channel_matrices(lib.bitflip_kraus_circuits())
        a, b = 0.6, 0.8
        code = (a * basis_state_vector(6, [0] * 6).reshape(-1)
                + b * basis_state_vector(6, [1, 1, 1, 0, 0, 0]).reshape(-1))
        state = code.copy()
        if error_qubit is not None:
            x = np.array([[0, 1], [1, 0]], dtype=complex)
            op = np.eye(1, dtype=complex)
            for q in range(6):
                op = np.kron(op, x if q == error_qubit else np.eye(2))
            state = op @ state
        rho = np.outer(state, state.conj())
        sup = support_basis(apply_kraus(rho, kraus))
        assert sup.shape[1] == 1
        assert np.isclose(abs(np.vdot(sup[:, 0], code)), 1.0, atol=1e-9)


class TestRandomCircuit:
    def test_deterministic_for_seed(self):
        a = lib.random_circuit(4, 20, seed=7)
        b = lib.random_circuit(4, 20, seed=7)
        assert a.to_text() == b.to_text()

    def test_gate_count(self):
        assert lib.random_circuit(3, 15, seed=0).num_gates == 15

    def test_is_unitary(self):
        assert lib.random_circuit(4, 30, seed=1).is_unitary()
