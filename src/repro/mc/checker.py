"""The :class:`ModelChecker` facade.

Bundles a QTS with a chosen image computation method and exposes the
checks a user actually runs: one-step images, reachability, invariance
and safety.  This is the top of the public API — see
``examples/quickstart.py``.
"""

from __future__ import annotations

from typing import Optional

from repro.image.base import ImageResult
from repro.image.engine import compute_image
from repro.mc.invariants import (image_contained_in, image_equals,
                                 is_invariant)
from repro.mc.reachability import ReachabilityTrace, reachable_space
from repro.subspace.subspace import Subspace
from repro.systems.qts import QuantumTransitionSystem


class ModelChecker:
    """Model checking driver for one quantum transition system."""

    def __init__(self, qts: QuantumTransitionSystem,
                 method: str = "contraction", **params) -> None:
        self.qts = qts
        self.method = method
        self.params = dict(params)

    # ------------------------------------------------------------------
    def image(self, subspace: Optional[Subspace] = None) -> ImageResult:
        """One-step image ``T(S)`` with run statistics."""
        return compute_image(self.qts, subspace, self.method, **self.params)

    def reachable(self, max_iterations: int = 0) -> ReachabilityTrace:
        """The reachable subspace from the initial space."""
        return reachable_space(self.qts, self.method,
                               max_iterations=max_iterations, **self.params)

    # ------------------------------------------------------------------
    def check_invariant(self, subspace: Optional[Subspace] = None,
                        strict: bool = False) -> bool:
        """Does the system stay inside ``S`` (``T(S) <= S``)?"""
        return is_invariant(self.qts, subspace, self.method, strict,
                            **self.params)

    def check_image_equals(self, expected: Subspace,
                           subspace: Optional[Subspace] = None) -> bool:
        return image_equals(self.qts, expected, subspace, self.method,
                            **self.params)

    def check_safety(self, bound: Subspace,
                     max_iterations: int = 0) -> bool:
        """Is every reachable state inside ``bound``?"""
        trace = self.reachable(max_iterations)
        return bound.contains(trace.subspace)

    def __repr__(self) -> str:
        return f"ModelChecker({self.qts.name!r}, method={self.method!r})"
