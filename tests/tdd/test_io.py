"""TDD DOT / dict export."""

import numpy as np

from repro.indices.index import Index
from repro.tdd import construction as tc
from repro.tdd.io import to_dict, to_dot

from tests.helpers import fresh_manager


def idx(*names):
    return [Index(n) for n in names]


class TestToDot:
    def test_contains_digraph_and_labels(self):
        m = fresh_manager(["a0", "a1"])
        d = tc.delta(m, idx("a0", "a1"))
        dot = to_dot(d, name="identity")
        assert dot.startswith("digraph identity {")
        assert '"a0"' in dot and '"a1"' in dot
        assert dot.rstrip().endswith("}")

    def test_zero_edges_omitted(self):
        m = fresh_manager(["a0"])
        t = tc.basis_state(m, idx("a0"), [1])
        dot = to_dot(t)
        # the low edge (weight 0) must not appear: only one node->node edge
        arrow_lines = [l for l in dot.splitlines()
                       if "->" in l and "root" not in l]
        assert len(arrow_lines) == 1

    def test_weight_labels(self):
        m = fresh_manager(["a0"])
        arr = np.array([1.0, -0.5])
        t = tc.from_numpy(m, arr, idx("a0"))
        dot = to_dot(t)
        assert "-0.5" in dot

    def test_zero_tensor(self):
        m = fresh_manager(["a0"])
        dot = to_dot(tc.zero(m, idx("a0")))
        assert "digraph" in dot


class TestToDict:
    def test_structure(self):
        m = fresh_manager(["a0", "a1"])
        d = tc.delta(m, idx("a0", "a1"))
        data = to_dict(d)
        assert data["indices"] == ["a0", "a1"]
        assert data["root_node"] is not None
        assert any(n.get("terminal") for n in data["nodes"])

    def test_weights_serialised_as_pairs(self):
        m = fresh_manager(["a0"])
        t = tc.from_numpy(m, np.array([1.0, 1j]), idx("a0"))
        data = to_dict(t)
        for node in data["nodes"]:
            for tag in ("low", "high"):
                edge = node.get(tag)
                if edge:
                    assert len(edge["weight"]) == 2

    def test_shared_nodes_appear_once(self):
        m = fresh_manager(["a0", "a1"])
        # f = a0 XOR-like sharing: both branches point at same child
        inner = tc.basis_state(m, idx("a1"), [1])
        t = tc.ones(m, idx("a0")).product(inner)
        data = to_dict(t)
        labels = [n.get("index") for n in data["nodes"]]
        assert labels.count("a1") == 1
