"""Table I regeneration: three image computation methods across the
five benchmark families.

The paper runs Grover/QFT/BV/GHZ/QRW at up to 500 qubits on a C++ TDD
engine; this pure-Python reproduction runs the same families with the
same three methods and the same parameters (addition k = 1, contraction
k1 = k2 = 4) at sizes scaled to interpreter speed.  Pass
``--scale paper`` to attempt the paper's original sizes for the
families where pure Python can reach them (GHZ/BV under contraction).

Run:  ``python -m repro.bench.table1 [--scale small|medium|paper]``
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.bench.runner import BenchRow, run_image_benchmark
from repro.systems import models
from repro.utils.tables import format_table

#: method name -> image-computation parameters (the Table I settings)
TABLE1_METHODS: Dict[str, dict] = {
    "basic": {},
    "addition": {"k": 1},
    "contraction": {"k1": 4, "k2": 4},
}

#: family -> (builder from size, sizes per scale, methods to skip by size)
#: ``None`` in a skip entry means "run every method at this size".
FamilySpec = Tuple[Callable[[int], object], Dict[str, List[int]],
                   Callable[[str, int], bool]]


def _grover(n: int):
    # two composed iterations: the regime where the monolithic operator
    # TDD grows and the partition methods pay off (EXPERIMENTS.md)
    return models.grover_qts(n, iterations=2)


def _qrw(n: int):
    return models.qrw_qts(n, 0.1, steps=4)


def _skip_never(method: str, size: int) -> bool:
    return False


FAMILIES: Dict[str, FamilySpec] = {
    "Grover": (
        _grover,
        {"small": [6, 8], "medium": [6, 8, 9], "paper": [15, 18, 20, 40]},
        lambda method, size: method != "contraction" and size > 9,
    ),
    "QFT": (
        models.qft_qts,
        {"small": [8, 10], "medium": [8, 10, 12, 16, 20],
         "paper": [15, 18, 20, 30, 50, 100]},
        lambda method, size: method != "contraction" and size > 12,
    ),
    "BV": (
        models.bv_qts,
        {"small": [20, 40], "medium": [20, 40, 60, 100],
         "paper": [100, 200, 300, 400, 500]},
        lambda method, size: method != "contraction" and size > 100,
    ),
    "GHZ": (
        models.ghz_qts,
        {"small": [20, 40], "medium": [20, 40, 60, 100],
         "paper": [100, 200, 300, 400, 500]},
        lambda method, size: method != "contraction" and size > 100,
    ),
    "QRW": (
        _qrw,
        {"small": [5, 6], "medium": [5, 6, 7, 8], "paper": [15, 18, 20, 30]},
        lambda method, size: method != "contraction" and size > 8,
    ),
}


def table1_rows(scale: str = "small",
                families: Optional[List[str]] = None) -> List[BenchRow]:
    """Run the Table I grid and return one row per (family-size, method)."""
    rows: List[BenchRow] = []
    for family, (builder, size_map, skip) in FAMILIES.items():
        if families and family not in families:
            continue
        for size in size_map[scale]:
            label = f"{family}{size}"
            for method, params in TABLE1_METHODS.items():
                if skip(method, size):
                    rows.append(BenchRow(label, method, 0.0, 0, 0,
                                         timed_out=True))
                    continue
                rows.append(run_image_benchmark(
                    lambda n=size: builder(n), label, method, **params))
    return rows


def format_rows(rows: List[BenchRow]) -> str:
    """Paper-style layout: one line per benchmark, methods side by side."""
    by_label: Dict[str, Dict[str, BenchRow]] = {}
    order: List[str] = []
    for row in rows:
        if row.benchmark not in by_label:
            by_label[row.benchmark] = {}
            order.append(row.benchmark)
        by_label[row.benchmark][row.method] = row
    headers = ["Benchmark"]
    for method in TABLE1_METHODS:
        headers += [f"{method} time", f"{method} max#node",
                    f"{method} hit%", f"{method} live"]
    table: List[List[str]] = []
    for label in order:
        cells: List[str] = [label]
        for method in TABLE1_METHODS:
            row = by_label[label].get(method)
            if row is None:
                cells += ["-", "-", "-", "-"]
            else:
                cells += list(row.metric_cells())
        table.append(cells)
    return format_table(headers, table)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["small", "medium", "paper"],
                        default="small")
    parser.add_argument("--family", action="append",
                        choices=sorted(FAMILIES),
                        help="restrict to a family (repeatable)")
    args = parser.parse_args(argv)
    rows = table1_rows(args.scale, args.family)
    print("Table I (reproduction) — image computation: time [s], max TDD "
          "nodes, cache hit rate, post-GC/peak live nodes")
    print(format_rows(rows))
    return 0


if __name__ == "__main__":
    sys.exit(main())
