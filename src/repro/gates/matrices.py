"""Standard gate matrices.

All matrices are small dense ndarrays indexed ``[output, input]``.
Non-unitary matrices (measurement projectors, scaled Kraus operators)
are first-class citizens: the paper's quantum operations are general
completely-positive maps, not just unitaries.
"""

from __future__ import annotations

import math

import numpy as np

SQRT2_INV = 1.0 / math.sqrt(2.0)

I = np.eye(2, dtype=complex)  # noqa: E741 -- the identity matrix's one true name
X = np.array([[0, 1], [1, 0]], dtype=complex)
Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
Z = np.array([[1, 0], [0, -1]], dtype=complex)
H = np.array([[1, 1], [1, -1]], dtype=complex) * SQRT2_INV
S = np.array([[1, 0], [0, 1j]], dtype=complex)
SDG = S.conj().T
T = np.array([[1, 0], [0, np.exp(1j * math.pi / 4)]], dtype=complex)
TDG = T.conj().T
SX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)

#: Measurement projectors onto |0><0| and |1><1|.
P0 = np.array([[1, 0], [0, 0]], dtype=complex)
P1 = np.array([[0, 0], [0, 1]], dtype=complex)

SWAP = np.array([[1, 0, 0, 0],
                 [0, 0, 1, 0],
                 [0, 1, 0, 0],
                 [0, 0, 0, 1]], dtype=complex)


def rx(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def ry(theta: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array([[c, -s], [s, c]], dtype=complex)


def rz(theta: float) -> np.ndarray:
    return np.array([[np.exp(-0.5j * theta), 0],
                     [0, np.exp(0.5j * theta)]], dtype=complex)


def phase(theta: float) -> np.ndarray:
    """The phase gate diag(1, e^{i theta}) (QFT's controlled rotation)."""
    return np.array([[1, 0], [0, np.exp(1j * theta)]], dtype=complex)


def u3(theta: float, phi: float, lam: float) -> np.ndarray:
    c, s = math.cos(theta / 2), math.sin(theta / 2)
    return np.array(
        [[c, -np.exp(1j * lam) * s],
         [np.exp(1j * phi) * s, np.exp(1j * (phi + lam)) * c]],
        dtype=complex)


def is_diagonal(matrix: np.ndarray, tol: float = 1e-12) -> bool:
    return bool(np.allclose(matrix, np.diag(np.diag(matrix)), atol=tol))


def is_unitary(matrix: np.ndarray, tol: float = 1e-9) -> bool:
    dim = matrix.shape[0]
    return bool(np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=tol))
