"""The public TDD handle: a root edge plus its free index set.

A :class:`TDD` is an immutable view of a tensor over named binary
indices.  The node structure lives in a :class:`TDDManager`; the handle
records which indices the tensor is *over* (its free indices), which
matters because a canonical diagram omits indices the tensor does not
depend on.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple, Union

import numpy as np

from repro.errors import TDDError
from repro.indices.index import Index
from repro.tdd.apply import unary_apply
from repro.tdd.arithmetic import (add_edges, conjugate_edge, negate_edge,
                                  scale_edge)
from repro.tdd.contraction import contract_edges
from repro.tdd.manager import TDDManager
from repro.tdd.node import Edge, Node
from repro.tdd.slicing import slice_edge

IndexLike = Union[Index, str]


def _as_index(value: IndexLike) -> Index:
    return value if isinstance(value, Index) else Index(value)


class TDD:
    """An immutable tensor represented as a tensor decision diagram."""

    __slots__ = ("manager", "root", "_indices", "__weakref__")

    def __init__(self, manager: TDDManager, root: Edge,
                 indices: Iterable[Index]) -> None:
        idx = tuple(sorted(set(indices), key=manager.order.level))
        self.manager = manager
        self.root = root
        self._indices = idx
        # live handles pin their nodes across TDDManager.collect()
        manager._register_handle(self)

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def indices(self) -> Tuple[Index, ...]:
        """The free indices, sorted by the manager's order."""
        return self._indices

    @property
    def index_names(self) -> Tuple[str, ...]:
        return tuple(i.name for i in self._indices)

    @property
    def rank(self) -> int:
        return len(self._indices)

    @property
    def is_zero(self) -> bool:
        return self.root.is_zero

    @property
    def is_scalar(self) -> bool:
        return not self._indices

    def scalar_value(self) -> complex:
        if not self.root.node.is_terminal:
            raise TDDError("TDD is not a scalar")
        return self.root.weight

    def size(self) -> int:
        """Number of distinct nodes, including the terminal.

        This is the quantity the paper's Table I reports as ``#node``.
        """
        seen = set()
        stack = [self.root.node]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            if not node.is_terminal:
                if not node.low.is_zero:
                    stack.append(node.low.node)
                if not node.high.is_zero:
                    stack.append(node.high.node)
        return len(seen)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def value(self, assignment: Mapping[IndexLike, int]) -> complex:
        """The tensor entry at the given index assignment."""
        levels: Dict[int, int] = {}
        for key, bit in assignment.items():
            levels[self.manager.level(_as_index(key))] = bit
        for idx in self._indices:
            if self.manager.level(idx) not in levels:
                raise TDDError(f"assignment is missing index {idx.name!r}")
        out = self.root.weight
        node = self.root.node
        while not node.is_terminal:
            bit = levels.get(node.level)
            if bit is None:
                raise TDDError("diagram branches on an index outside the "
                               "declared free set")
            edge = node.high if bit else node.low
            out *= edge.weight
            node = edge.node
            if out == 0:
                return 0j
        return out

    def to_numpy(self) -> np.ndarray:
        """Dense ndarray with axes in ``self.indices`` order."""
        shape = (2,) * self.rank
        out = np.zeros(shape, dtype=complex)
        if self.root.is_zero:
            return out

        def rec(node: Node, weight: complex, prefix: List[int], depth: int) -> None:
            if weight == 0:
                return
            if depth == self.rank:
                out[tuple(prefix)] = weight
                return
            level = self.manager.level(self._indices[depth])
            if node.is_terminal or node.level > level:
                for bit in (0, 1):
                    prefix.append(bit)
                    rec(node, weight, prefix, depth + 1)
                    prefix.pop()
                return
            if node.level < level:
                raise TDDError("diagram branches on an index outside the "
                               "declared free set")
            for bit, edge in ((0, node.low), (1, node.high)):
                prefix.append(bit)
                rec(edge.node, weight * edge.weight, prefix, depth + 1)
                prefix.pop()

        rec(self.root.node, self.root.weight, [], 0)
        return out

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def _require_same_manager(self, other: "TDD") -> None:
        if self.manager is not other.manager:
            raise TDDError("operands belong to different managers")

    def __add__(self, other: "TDD") -> "TDD":
        self._require_same_manager(other)
        root = add_edges(self.manager, self.root, other.root)
        return TDD(self.manager, root, set(self._indices) | set(other._indices))

    def __sub__(self, other: "TDD") -> "TDD":
        return self + other.scaled(-1)

    def scaled(self, factor: complex) -> "TDD":
        return TDD(self.manager, scale_edge(self.manager, self.root, factor),
                   self._indices)

    def __neg__(self) -> "TDD":
        return TDD(self.manager, negate_edge(self.manager, self.root),
                   self._indices)

    def conj(self) -> "TDD":
        return TDD(self.manager, conjugate_edge(self.manager, self.root),
                   self._indices)

    # ------------------------------------------------------------------
    # contraction / slicing / renaming
    # ------------------------------------------------------------------
    def contract(self, other: "TDD",
                 sum_over: Iterable[IndexLike]) -> "TDD":
        """``cont(self, other)`` summed over ``sum_over`` (paper §II.B)."""
        self._require_same_manager(other)
        sum_idx = {_as_index(i) for i in sum_over}
        mine = set(self._indices)
        theirs = set(other._indices)
        for idx in sum_idx:
            if idx not in mine and idx not in theirs:
                raise TDDError(f"cannot sum over {idx.name!r}: not an index "
                               f"of either operand")
        levels = tuple(sorted(self.manager.level(i) for i in sum_idx))
        root = contract_edges(self.manager, self.root, other.root, levels)
        free = (mine | theirs) - sum_idx
        return TDD(self.manager, root, free)

    def product(self, other: "TDD") -> "TDD":
        """Pointwise/tensor product: contraction over no indices."""
        return self.contract(other, ())

    def slice(self, assignment: Mapping[IndexLike, int]) -> "TDD":
        """Fix some indices to constants; they leave the free set."""
        root = self.root
        fixed = set()
        for key, bit in assignment.items():
            idx = _as_index(key)
            if idx not in set(self._indices):
                raise TDDError(f"cannot slice on {idx.name!r}: not a free "
                               f"index of this TDD")
            root = slice_edge(self.manager, root, self.manager.level(idx), bit)
            fixed.add(idx)
        return TDD(self.manager, root, set(self._indices) - fixed)

    def rename(self, mapping: Mapping[IndexLike, IndexLike]) -> "TDD":
        """Relabel free indices.

        The relative order of the renamed index set must match the
        original (the diagram is rebuilt level-by-level, so an
        order-changing rename would require a full re-sort, which we
        deliberately do not support — callers pick order-compatible
        names).
        """
        full: Dict[str, Index] = {}
        for src, dst in mapping.items():
            full[_as_index(src).name] = _as_index(dst)
        new_indices = []
        level_map: Dict[int, int] = {}
        for idx in self._indices:
            target = full.get(idx.name, idx)
            self.manager.register(target)
            new_indices.append(target)
            level_map[self.manager.level(idx)] = self.manager.level(target)
        old_levels = [self.manager.level(i) for i in self._indices]
        new_levels = [level_map[lv] for lv in old_levels]
        if sorted(new_levels) != new_levels or len(set(new_levels)) != len(new_levels):
            raise TDDError("rename does not preserve the relative index order")

        root = unary_apply(
            self.manager, self.root,
            rebuild=lambda node, low, high: self.manager.make_node(
                level_map[node.level], low, high))
        return TDD(self.manager, root, new_indices)

    # ------------------------------------------------------------------
    # state-vector helpers
    # ------------------------------------------------------------------
    def inner(self, other: "TDD") -> complex:
        """⟨self|other⟩ over the shared index set (conjugates ``self``)."""
        self._require_same_manager(other)
        if set(self._indices) != set(other._indices):
            raise TDDError("inner product requires identical index sets")
        result = self.conj().contract(other, self._indices)
        return result.scalar_value() if result.root.node.is_terminal else 0j

    def norm(self) -> float:
        """Euclidean norm of the tensor viewed as a vector."""
        value = self.inner(self)
        return float(abs(value)) ** 0.5

    def normalized(self) -> "TDD":
        n = self.norm()
        if n == 0:
            raise TDDError("cannot normalise the zero tensor")
        return self.scaled(1.0 / n)

    # ------------------------------------------------------------------
    # comparison
    # ------------------------------------------------------------------
    def same_as(self, other: "TDD") -> bool:
        """Exact canonical-form equality (same manager)."""
        return (self.manager is other.manager
                and self.root.same_as(other.root)
                and set(self._indices) == set(other._indices))

    def allclose(self, other: "TDD", tol: float = 1e-8) -> bool:
        """Numerical equality via the norm of the difference."""
        self._require_same_manager(other)
        diff = self - other
        if diff.is_zero:
            return True
        return diff.conj().contract(diff, diff.indices).scalar_value().real <= tol ** 2

    def __repr__(self) -> str:
        names = ",".join(self.index_names[:6])
        more = ",..." if self.rank > 6 else ""
        return f"TDD(rank={self.rank}, indices=[{names}{more}], size={self.size()})"
