"""TensorNetwork contraction semantics (multiplicity-driven sums)."""

import numpy as np
import pytest

from repro.errors import TDDError
from repro.indices.index import Index
from repro.tensor.dense import DenseTensor
from repro.tensor.network import TensorNetwork

from tests.helpers import random_tensor


def idx(name):
    return Index(name)


def dense(rng, names):
    return DenseTensor(random_tensor(rng, len(names)),
                       [Index(n) for n in names])


class TestContractAll:
    def test_chain_matches_einsum(self, rng):
        a = dense(rng, ["i", "j"])
        b = dense(rng, ["j", "k"])
        c = dense(rng, ["k", "l"])
        net = TensorNetwork([a, b, c], {idx("i"), idx("l")})
        out = net.contract_all()
        expect = a.array @ b.array @ c.array
        assert np.allclose(out.transpose_like(
            [idx("i"), idx("l")]).array, expect)

    def test_open_index_not_summed(self, rng):
        a = dense(rng, ["i", "j"])
        b = dense(rng, ["j", "k"])
        net = TensorNetwork([a, b], {idx("i"), idx("j"), idx("k")})
        out = net.contract_all()
        assert set(out.index_names) == {"i", "j", "k"}

    def test_hyperedge_summed_only_at_last_use(self, rng):
        # index j shared by three tensors: must survive the first
        # pairwise contraction and be summed at the last
        a = dense(rng, ["i", "j"])
        b = dense(rng, ["j"])
        c = dense(rng, ["j", "k"])
        net = TensorNetwork([a, b, c], {idx("i"), idx("k")})
        out = net.contract_all()
        expect = np.einsum("ij,j,jk->ik", a.array, b.array, c.array)
        assert np.allclose(out.transpose_like(
            [idx("i"), idx("k")]).array, expect)

    def test_disconnected_product(self, rng):
        a = dense(rng, ["i"])
        b = dense(rng, ["j"])
        net = TensorNetwork([a, b], {idx("i"), idx("j")})
        out = net.contract_all()
        assert np.allclose(out.transpose_like(
            [idx("i"), idx("j")]).array, np.outer(a.array, b.array))

    def test_custom_order(self, rng):
        a = dense(rng, ["i", "j"])
        b = dense(rng, ["j", "k"])
        c = dense(rng, ["k", "l"])
        net = TensorNetwork([a, b, c], {idx("i"), idx("l")})
        out = net.contract_all(order=[2, 1, 0])
        expect = a.array @ b.array @ c.array
        assert np.allclose(out.transpose_like(
            [idx("i"), idx("l")]).array, expect)

    def test_bad_order_raises(self, rng):
        net = TensorNetwork([dense(rng, ["i"])], {idx("i")})
        with pytest.raises(ValueError):
            net.contract_all(order=[0, 0])

    def test_empty_network_raises(self):
        with pytest.raises(TDDError):
            TensorNetwork([], set()).contract_all()

    def test_observer_sees_intermediates(self, rng):
        a = dense(rng, ["i", "j"])
        b = dense(rng, ["j", "k"])
        c = dense(rng, ["k", "l"])
        seen = []
        net = TensorNetwork([a, b, c], {idx("i"), idx("l")})
        net.contract_all(observer=seen.append)
        assert len(seen) == 2  # two pairwise folds


class TestBookkeeping:
    def test_multiplicity(self, rng):
        a = dense(rng, ["i", "j"])
        b = dense(rng, ["j"])
        net = TensorNetwork([a, b], set())
        counts = net.index_multiplicity()
        assert counts[idx("j")] == 2
        assert counts[idx("i")] == 1

    def test_validate_missing_open(self, rng):
        net = TensorNetwork([dense(rng, ["i"])], {idx("ghost")})
        with pytest.raises(TDDError):
            net.validate()

    def test_contract_pair_self_raises(self, rng):
        net = TensorNetwork([dense(rng, ["i"])], set())
        with pytest.raises(ValueError):
            net.contract_pair(0, 0)
