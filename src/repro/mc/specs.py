"""The text syntax of the specification language.

A spec is a temporal formula over the Birkhoff-von Neumann proposition
algebra of :mod:`repro.mc.logic`::

    spec     := temporal prop | prop
    temporal := ('AG' | 'EF') bound?
    bound    := '[' '<=' INT ']'          # bounded operator, INT >= 1
    prop     := term ('|' term)*          # join, lowest precedence
    term     := factor ('&' factor)*      # meet
    factor   := '~' factor | '(' prop ')' | ATOM
    ATOM     := [A-Za-z_][A-Za-z0-9_]*    # except the keywords AG, EF

``~`` binds tightest, then ``&``, then ``|`` — so ``AG (inv & ~bad)``
and ``EF target | marked`` parse the way propositional logic reads.
``AG[<=k] φ`` / ``EF[<=k] φ`` are the *bounded* operators: the
property is evaluated over the space reachable within at most ``k``
transitions instead of the full fixpoint.
Atoms are *names*: they resolve against the subspaces a model registers
(:meth:`~repro.systems.qts.QuantumTransitionSystem.register_subspace`),
with ``init`` always available as the model's initial subspace.

:func:`parse_spec` turns text into the AST, :func:`to_text` renders an
AST back to parseable text (a true round-trip on the name-based ASTs
the parser produces: ``parse_spec(to_text(s)) == s``), and
:func:`resolve` binds :class:`~repro.mc.logic.Name` atoms to a model's
registered subspaces.  Syntax and resolution failures raise
:class:`~repro.errors.SpecError` with the offending position.
"""

from __future__ import annotations

import re
from typing import List, Tuple, Union

from repro.errors import SpecError
from repro.mc.logic import (Always, Atomic, Eventually, Join, Meet, Name,
                            Not, Proposition, TemporalSpec)
from repro.systems.qts import QuantumTransitionSystem

#: anything check() accepts as a specification
Spec = Union[Proposition, TemporalSpec]

_TEMPORAL_KEYWORDS = {"AG": Always, "EF": Eventually}

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<lbracket>\[)
  | (?P<rbracket>\])
  | (?P<le><=)
  | (?P<and>&)
  | (?P<or>\|)
  | (?P<not>~)
  | (?P<number>\d+)
  | (?P<atom>[A-Za-z_][A-Za-z0-9_]*)
""", re.VERBOSE)


def _tokenize(text: str) -> List[Tuple[str, str, int]]:
    """``(kind, value, position)`` triples; rejects unknown characters."""
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise SpecError(f"unexpected character {text[position]!r} at "
                            f"position {position} in spec {text!r}")
        kind = match.lastgroup
        if kind != "ws":
            tokens.append((kind, match.group(), match.start()))
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # ------------------------------------------------------------------
    def peek(self):
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return ("end", "", len(self.text))

    def advance(self):
        token = self.peek()
        self.index += 1
        return token

    def fail(self, message: str):
        kind, value, position = self.peek()
        found = "end of spec" if kind == "end" else repr(value)
        raise SpecError(f"{message}, found {found} at position {position} "
                        f"in spec {self.text!r}")

    # ------------------------------------------------------------------
    def parse(self) -> Spec:
        if not self.tokens:
            raise SpecError("empty specification")
        kind, value, _ = self.peek()
        temporal = None
        bound = None
        if kind == "atom" and value in _TEMPORAL_KEYWORDS:
            temporal = _TEMPORAL_KEYWORDS[value]
            self.advance()
            if self.peek()[0] == "lbracket":
                bound = self.parse_bound()
        prop = self.parse_or()
        if self.peek()[0] != "end":
            self.fail("expected '&', '|' or end of spec")
        return temporal(prop, bound=bound) if temporal else prop

    def parse_bound(self) -> int:
        """``'[' '<=' INT ']'`` after a temporal keyword."""
        self.advance()  # the '['
        if self.peek()[0] != "le":
            self.fail("expected '<=' in temporal bound")
        self.advance()
        kind, value, position = self.peek()
        if kind != "number":
            self.fail("expected a step count after '<='")
        bound = int(value)
        if bound < 1:
            raise SpecError(f"temporal bound must be >= 1, got {bound} "
                            f"at position {position} in spec {self.text!r}")
        self.advance()
        if self.peek()[0] != "rbracket":
            self.fail("expected ']' after temporal bound")
        self.advance()
        return bound

    def parse_or(self) -> Proposition:
        node = self.parse_and()
        while self.peek()[0] == "or":
            self.advance()
            node = Join(node, self.parse_and())
        return node

    def parse_and(self) -> Proposition:
        node = self.parse_factor()
        while self.peek()[0] == "and":
            self.advance()
            node = Meet(node, self.parse_factor())
        return node

    def parse_factor(self) -> Proposition:
        kind, value, position = self.peek()
        if kind == "not":
            self.advance()
            return Not(self.parse_factor())
        if kind == "lparen":
            self.advance()
            node = self.parse_or()
            if self.peek()[0] != "rparen":
                self.fail("expected ')'")
            self.advance()
            return node
        if kind == "atom":
            if value in _TEMPORAL_KEYWORDS:
                raise SpecError(
                    f"temporal operator {value!r} at position {position} "
                    f"must be outermost in spec {self.text!r}")
            self.advance()
            return Name(value)
        self.fail("expected an atom, '~' or '('")


def parse_spec(text: str) -> Spec:
    """Parse a specification string into its AST.

    Returns an :class:`~repro.mc.logic.Always` /
    :class:`~repro.mc.logic.Eventually` wrapper when the spec starts
    with ``AG`` / ``EF``, otherwise a bare proposition (checked against
    the initial subspace).  Raises :class:`~repro.errors.SpecError`
    with position information on malformed input.
    """
    if not isinstance(text, str):
        raise SpecError(f"specification must be a string, "
                        f"got {type(text).__name__}")
    return _Parser(text).parse()


# ----------------------------------------------------------------------
# rendering and resolution
# ----------------------------------------------------------------------
def to_text(spec: Spec) -> str:
    """Render an AST back to parseable text (the round-trip inverse)."""
    if isinstance(spec, TemporalSpec):
        return f"{spec._prefix()} {to_text(spec.inner)}"
    if isinstance(spec, (Name, Atomic)):
        return spec.name
    if isinstance(spec, Not):
        return f"~{to_text(spec.inner)}"
    if isinstance(spec, Meet):
        return f"({to_text(spec.left)} & {to_text(spec.right)})"
    if isinstance(spec, Join):
        return f"({to_text(spec.left)} | {to_text(spec.right)})"
    raise SpecError(f"not a specification node: {spec!r}")


def resolve(spec: Spec, qts: QuantumTransitionSystem) -> Spec:
    """Bind every :class:`~repro.mc.logic.Name` atom to a subspace.

    Names resolve through
    :meth:`~repro.systems.qts.QuantumTransitionSystem.named_subspace`
    (the model's registered subspaces, plus ``init`` for the initial
    space); unknown names raise with the list of available atoms.
    Already-:class:`~repro.mc.logic.Atomic` nodes pass through, so
    resolution is idempotent.
    """
    if isinstance(spec, TemporalSpec):
        return type(spec)(resolve(spec.inner, qts), bound=spec.bound)
    if isinstance(spec, Name):
        return Atomic(qts.named_subspace(spec.name), spec.name)
    if isinstance(spec, Atomic):
        return spec
    if isinstance(spec, Not):
        return Not(resolve(spec.inner, qts))
    if isinstance(spec, Meet):
        return Meet(resolve(spec.left, qts), resolve(spec.right, qts))
    if isinstance(spec, Join):
        return Join(resolve(spec.left, qts), resolve(spec.right, qts))
    raise SpecError(f"not a specification node: {spec!r}")
