"""BvN proposition algebra: lattice laws on random subspaces.

The subspace lattice is an *ortholattice* — orthocomplementation is an
involution and De Morgan holds — but it is **not** distributive (the
signature non-classicality of quantum logic).  These property tests
pin both facts down through the Proposition AST, on subspaces spanned
by hypothesis-generated amplitude vectors.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mc.logic import Atomic
from tests.helpers import make_space

_QUBITS = 2
_DIM = 2 ** _QUBITS

# amplitudes quantised to a coarse grid: keeps Gram-Schmidt residual
# norms far from the rank-decision tolerance, so the laws are tested
# on numerically unambiguous subspaces
_amplitude = st.integers(min_value=-2, max_value=2).map(float)
_vector = st.lists(_amplitude, min_size=_DIM, max_size=_DIM).filter(
    lambda v: any(abs(x) > 0 for x in v))
_vectors = st.lists(_vector, min_size=1, max_size=3)


def _subspace(space, vector_list):
    return space.span([space.from_amplitudes(np.array(v, dtype=complex))
                       for v in vector_list])


def _props(vector_lists):
    space = make_space(_QUBITS)
    props = [Atomic(_subspace(space, vectors), f"p{i}")
             for i, vectors in enumerate(vector_lists)]
    return space, props


class TestOrtholattice:
    @settings(max_examples=30, deadline=None)
    @given(_vectors)
    def test_orthocomplement_is_an_involution(self, vectors):
        space, (p,) = _props([vectors])
        assert (~~p).denote(space).equals(p.denote(space))

    @settings(max_examples=30, deadline=None)
    @given(_vectors)
    def test_complement_is_orthogonal_and_exhaustive(self, vectors):
        space, (p,) = _props([vectors])
        sub, comp = p.denote(space), (~p).denote(space)
        assert sub.is_orthogonal_to(comp)
        assert sub.dimension + comp.dimension == _DIM

    @settings(max_examples=20, deadline=None)
    @given(_vectors, _vectors)
    def test_meet_absorption(self, va, vb):
        # p & (p | q) == p
        space, (p, q) = _props([va, vb])
        assert (p & (p | q)).denote(space).equals(p.denote(space))

    @settings(max_examples=20, deadline=None)
    @given(_vectors, _vectors)
    def test_join_absorption(self, va, vb):
        # p | (p & q) == p
        space, (p, q) = _props([va, vb])
        assert (p | (p & q)).denote(space).equals(p.denote(space))

    @settings(max_examples=20, deadline=None)
    @given(_vectors, _vectors)
    def test_de_morgan_holds_in_the_ortholattice(self, va, vb):
        # ~(p & q) == ~p | ~q — unlike distributivity, De Morgan
        # survives the passage to quantum logic
        space, (p, q) = _props([va, vb])
        assert (~(p & q)).denote(space).equals(
            (~p | ~q).denote(space))

    @settings(max_examples=20, deadline=None)
    @given(_vectors, _vectors)
    def test_meet_is_the_largest_lower_bound(self, va, vb):
        space, (p, q) = _props([va, vb])
        meet = (p & q).denote(space)
        assert p.denote(space).contains(meet)
        assert q.denote(space).contains(meet)

    @settings(max_examples=20, deadline=None)
    @given(_vectors, _vectors)
    def test_join_is_an_upper_bound(self, va, vb):
        space, (p, q) = _props([va, vb])
        join = (p | q).denote(space)
        assert join.contains(p.denote(space))
        assert join.contains(q.denote(space))


class TestNonClassicality:
    def test_distributivity_fails(self):
        # p ^ (q v r) != (p ^ q) v (p ^ r) for three rays of one qubit
        # plane: the textbook quantum-logic counterexample
        space = make_space(1)
        zero = Atomic(space.span([space.basis_state([0])]), "zero")
        one = Atomic(space.span([space.basis_state([1])]), "one")
        plus = Atomic(space.span([space.from_amplitudes(
            np.array([1, 1], dtype=complex) / np.sqrt(2))]), "plus")
        left = (zero & (one | plus)).denote(space)
        right = ((zero & one) | (zero & plus)).denote(space)
        assert left.dimension == 1      # |1> v |+> is the whole plane
        assert right.dimension == 0     # both meets are {0}
        assert not left.equals(right)

    def test_de_morgan_dual_also_holds(self):
        # ~(p | q) == ~p & ~q on the same counterexample rays
        space = make_space(1)
        zero = Atomic(space.span([space.basis_state([0])]), "zero")
        plus = Atomic(space.span([space.from_amplitudes(
            np.array([1, 1], dtype=complex) / np.sqrt(2))]), "plus")
        assert (~(zero | plus)).denote(space).equals(
            (~zero & ~plus).denote(space))

    def test_orthomodularity(self):
        # p <= q  =>  q == p v (q ^ ~p): the weakening of
        # distributivity that does survive
        space = make_space(2)
        p_sub = space.span([space.basis_state([0, 0])])
        q_sub = space.span([space.basis_state([0, 0]),
                            space.basis_state([0, 1])])
        p, q = Atomic(p_sub, "p"), Atomic(q_sub, "q")
        assert (p | (q & ~p)).denote(space).equals(q_sub)
