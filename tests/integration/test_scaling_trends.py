"""The paper's Table I qualitative claims at laptop scale.

Absolute numbers differ (pure Python vs the authors' C++), but the
*shapes* must hold: exponential vs linear peak node counts, and the
method ordering contraction <= addition <= basic on the partition-
sensitive families.
"""

import pytest

from repro.image.engine import compute_image
from repro.systems import models


class TestQFTTrend:
    def test_basic_exponential_contraction_linear(self):
        basic_nodes = []
        contraction_nodes = []
        sizes = [6, 8, 10]
        for n in sizes:
            basic_nodes.append(
                compute_image(models.qft_qts(n),
                              method="basic").stats.max_nodes)
            contraction_nodes.append(
                compute_image(models.qft_qts(n), method="contraction",
                              k1=4, k2=4).stats.max_nodes)
        # basic doubles-plus per qubit pair; contraction stays flat-ish
        assert basic_nodes[-1] >= 4 * basic_nodes[0]
        assert contraction_nodes[-1] <= 2 * max(contraction_nodes[0], 32)

    def test_wide_qft_feasible_only_with_contraction(self):
        result = compute_image(models.qft_qts(16), method="contraction",
                               k1=4, k2=4)
        assert result.dimension == 1
        assert result.stats.max_nodes <= 200


class TestBVTrend:
    def test_linear_nodes(self):
        nodes = []
        for n in (10, 20, 40):
            result = compute_image(models.bv_qts(n), method="contraction",
                                   k1=4, k2=4)
            assert result.dimension == 1
            nodes.append(result.stats.max_nodes)
        # linear growth: quadrupling n at most ~quadruples nodes
        assert nodes[2] <= 6 * nodes[0]


class TestGHZTrend:
    def test_linear_nodes(self):
        nodes = []
        for n in (10, 20, 40):
            result = compute_image(models.ghz_qts(n), method="contraction",
                                   k1=4, k2=4)
            assert result.dimension == 1
            nodes.append(result.stats.max_nodes)
        assert nodes[2] <= 6 * nodes[0]


class TestMethodOrdering:
    @pytest.mark.parametrize("n", [8, 10])
    def test_contraction_beats_basic_on_qft(self, n):
        basic = compute_image(models.qft_qts(n), method="basic")
        contraction = compute_image(models.qft_qts(n),
                                    method="contraction", k1=4, k2=4)
        assert contraction.stats.max_nodes < basic.stats.max_nodes

    def test_addition_no_worse_than_basic_on_qft(self):
        n = 8
        basic = compute_image(models.qft_qts(n), method="basic")
        addition = compute_image(models.qft_qts(n), method="addition", k=1)
        assert addition.stats.max_nodes <= basic.stats.max_nodes
