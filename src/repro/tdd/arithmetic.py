"""Pointwise TDD arithmetic: addition, scaling, conjugation.

All functions operate on raw :class:`~repro.tdd.node.Edge` values inside
one manager; the index-set bookkeeping lives on the :class:`TDD`
wrapper.  Addition is memoised in the manager's ``_add_cache`` with a
symmetric key, exploiting commutativity.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.tdd import weights as wt
from repro.tdd.manager import TDDManager
from repro.tdd.node import Edge, Node


def slice_pair(manager: TDDManager, edge: Edge, level: int) -> Tuple[Edge, Edge]:
    """The (x=0, x=1) cofactors of ``edge`` w.r.t. the index at ``level``.

    Assumes ``level <= edge.node.level``: either the edge branches on
    exactly this level, or it does not depend on it at all.
    """
    node = edge.node
    if node.level != level:
        return edge, edge
    low = manager.make_edge(edge.weight * node.low.weight, node.low.node)
    high = manager.make_edge(edge.weight * node.high.weight, node.high.node)
    return low, high


def add_edges(manager: TDDManager, a: Edge, b: Edge) -> Edge:
    """Pointwise sum of two edges over the union of their index supports."""
    if a.is_zero:
        return manager.make_edge(b.weight, b.node)
    if b.is_zero:
        return manager.make_edge(a.weight, a.node)
    if a.node is b.node:
        return manager.make_edge(a.weight + b.weight, a.node)
    # Raw-float keys: rounding here could alias two different weights
    # onto one cache entry and silently return a wrong sum.
    ka = (a.weight.real, a.weight.imag, id(a.node))
    kb = (b.weight.real, b.weight.imag, id(b.node))
    key = ("add", ka, kb) if ka <= kb else ("add", kb, ka)
    cached = manager._add_cache.get(key)
    if cached is not None:
        return cached
    level = min(a.node.level, b.node.level)
    a0, a1 = slice_pair(manager, a, level)
    b0, b1 = slice_pair(manager, b, level)
    result = manager.make_node(level,
                               add_edges(manager, a0, b0),
                               add_edges(manager, a1, b1))
    manager._add_cache[key] = result
    return result


def scale_edge(manager: TDDManager, edge: Edge, factor: complex) -> Edge:
    """``factor`` times the tensor of ``edge``."""
    return manager.make_edge(edge.weight * factor, edge.node)


def negate_edge(manager: TDDManager, edge: Edge) -> Edge:
    return scale_edge(manager, edge, -1)


def conjugate_edge(manager: TDDManager, edge: Edge) -> Edge:
    """Entry-wise complex conjugate of the tensor of ``edge``."""
    memo: Dict[int, Edge] = {}

    def conj_node(node: Node) -> Edge:
        if node.is_terminal:
            return Edge(1 + 0j, node)
        cached = memo.get(id(node))
        if cached is not None:
            return cached
        low = _conj_edge(node.low)
        high = _conj_edge(node.high)
        result = manager.make_node(node.level, low, high)
        memo[id(node)] = result
        return result

    def _conj_edge(e: Edge) -> Edge:
        if e.is_zero:
            return manager.zero_edge()
        inner = conj_node(e.node)
        return manager.make_edge(e.weight.conjugate() * inner.weight,
                                 inner.node)

    return _conj_edge(edge)
