"""The :class:`ModelChecker` facade and the uniform :class:`CheckResult`.

A checker bundles a QTS with one validated
:class:`~repro.mc.config.CheckerConfig` — the single source of truth
for engine configuration (backend, image method, execution strategy,
worker pool, per-method parameters) — and exposes **one verb for every
specification**: :meth:`ModelChecker.check` takes a temporal spec
(text like ``"AG (inv & ~bad)"`` or an AST from
:mod:`repro.mc.logic`) and returns a :class:`CheckResult` carrying the
verdict, the violating/witness subspace and its dimension, the
reachability trace, the kernel cost profile and the config echo — the
same shape on the symbolic TDD backend and the dense statevector
reference.

The older fine-grained checks (:meth:`image`, :meth:`reachable`,
:meth:`check_invariant`, :meth:`check_safety`,
:meth:`cross_validate`) remain and are implemented on the same
machinery.  The legacy keyword constructor
(``ModelChecker(qts, method=..., k1=..., backend=...)``) still works
but emits a :class:`DeprecationWarning` — pass a ``CheckerConfig``
instead::

    config = CheckerConfig(method="contraction",
                           method_params={"k1": 4, "k2": 4})
    result = ModelChecker(qts, config).check("AG inv")
    assert result.holds

See ``examples/quickstart.py`` and ``examples/reachability_grover.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.config import CHECK_EPS
from repro.errors import SpecError
from repro.image.base import ImageResult
from repro.mc.backends import CrossValidation, cross_validate, make_backend
from repro.mc.config import CheckerConfig, coerce_config
from repro.mc.invariants import invariant_holds
from repro.mc.logic import (Always, Atomic, Eventually, Proposition,
                            TemporalSpec)
from repro.mc.reachability import ReachabilityTrace
from repro.subspace.subspace import Subspace
from repro.systems.qts import QuantumTransitionSystem
from repro.utils.stats import StatsRecorder


@dataclass
class CheckResult:
    """The uniform outcome of :meth:`ModelChecker.check`.

    One shape for every spec kind and every backend:

    * ``holds`` / ``verdict`` — the boolean verdict and its string form;
    * ``witness`` — for a violated ``AG`` spec, the span of the
      reachable directions that escape the property; for a satisfied
      ``EF`` spec, the span of the reachable components inside the
      target (``None`` when there is nothing to show);
    * ``dimensions`` / ``iterations`` / ``converged`` — the
      reachability trace behind a temporal verdict;
    * ``stats`` — the kernel cost profile (wall time, peak nodes,
      cache hit/miss, GC, sliced-strategy counters);
    * ``config`` — the exact engine configuration that produced this
      result, echoed back for artifacts and reproducibility.
    """

    spec: str
    kind: str                       # "AG" | "EF" | "now"
    holds: bool
    model: str
    config: CheckerConfig
    reachable_dimension: int = 0
    dimensions: List[int] = field(default_factory=list)
    iterations: int = 0
    converged: bool = True
    witness: Optional[Subspace] = None
    stats: StatsRecorder = field(default_factory=StatsRecorder)

    @property
    def verdict(self) -> str:
        return "holds" if self.holds else "violated"

    @property
    def witness_dimension(self) -> int:
        return self.witness.dimension if self.witness is not None else 0

    @property
    def seconds(self) -> float:
        return self.stats.seconds

    def as_dict(self) -> dict:
        """A flat JSON-able summary (sweep artifacts, CSV rows)."""
        out = {"spec": self.spec, "kind": self.kind,
               "verdict": self.verdict, "holds": self.holds,
               "model": self.model,
               "reachable_dimension": self.reachable_dimension,
               "witness_dimension": self.witness_dimension,
               "iterations": self.iterations,
               "converged": self.converged,
               "config": self.config.as_dict()}
        out.update(self.stats.as_dict())
        return out

    def __repr__(self) -> str:
        return (f"CheckResult({self.spec!r}: {self.verdict}, "
                f"reachable dim={self.reachable_dimension}, "
                f"witness dim={self.witness_dimension})")


class ModelChecker:
    """Model checking driver for one quantum transition system."""

    def __init__(self, qts: QuantumTransitionSystem,
                 config: Union[CheckerConfig, str, None] = None,
                 **legacy) -> None:
        if isinstance(config, str):
            # the pre-config positional spelling ModelChecker(qts, "basic")
            legacy.setdefault("method", config)
            config = None
        self.qts = qts
        self.config = coerce_config(config, legacy, owner="ModelChecker")
        self.backend = make_backend(self.config)

    # legacy attribute echoes -----------------------------------------
    @property
    def method(self) -> str:
        return self.config.method

    @property
    def strategy(self) -> str:
        return self.config.strategy

    @property
    def jobs(self) -> Optional[int]:
        return self.config.jobs

    @property
    def params(self) -> dict:
        return dict(self.config.method_params)

    # ------------------------------------------------------------------
    def image(self, subspace: Optional[Subspace] = None) -> ImageResult:
        """One-step image ``T(S)`` with run statistics."""
        return self.backend.compute_image(self.qts, subspace)

    def reachable(self, max_iterations: int = 0,
                  frontier: bool = False) -> ReachabilityTrace:
        """The reachable subspace from the initial space."""
        return self.backend.reachable(self.qts,
                                      max_iterations=max_iterations,
                                      frontier=frontier)

    def cross_validate(self, subspace: Optional[Subspace] = None,
                       tol: float = 1e-7, spec=None) -> CrossValidation:
        """Compare this checker's computation against the dense reference.

        Without ``spec``: one image per backend; with ``spec``: one
        full :meth:`check` per backend (verdicts must agree).
        """
        if self.config.backend == "tdd":
            tdd_config = self.config
        else:
            tdd_config = CheckerConfig()
        return cross_validate(self.qts, subspace, tol=tol, spec=spec,
                              config=tdd_config,
                              max_qubits=self.config.max_qubits or None)

    # ------------------------------------------------------------------
    # the unified specification check
    # ------------------------------------------------------------------
    def check(self, spec, initial: Optional[Subspace] = None,
              max_iterations: int = 0, frontier: bool = False,
              tol: float = CHECK_EPS) -> CheckResult:
        """Check a temporal specification; one verb, one result shape.

        ``spec`` is a spec string (``"AG inv"``, ``"EF target"``,
        ``"AG (inv & ~bad)"`` — parsed by
        :func:`repro.mc.specs.parse_spec`) or an AST from
        :mod:`repro.mc.logic`.  Named atoms resolve against the
        subspaces the model registered (plus ``init``).  Semantics:

        * ``AG φ`` — the reachable space from ``initial`` (default
          ``S0``) is contained in ``[[φ]]``; on violation the result
          carries the escaping directions as ``witness``;
        * ``EF φ`` — some reachable direction has a component in
          ``[[φ]]`` (above ``tol``); when it holds the overlap
          components are the ``witness``;
        * a bare proposition — ``initial`` (default ``S0``) is
          contained in ``[[φ]]`` *now*, no reachability involved.

        Runs on whichever backend this checker is configured for; the
        verdicts are backend-independent by construction (both engines
        return the same TDD-backed subspaces).
        """
        from repro.mc.specs import parse_spec, resolve, to_text
        if isinstance(spec, str):
            spec = parse_spec(spec)
        elif not isinstance(spec, (Proposition, TemporalSpec)):
            raise SpecError(f"check() takes a spec string or AST, "
                            f"got {type(spec).__name__}")
        spec = resolve(spec, self.qts)
        text = to_text(spec)
        space = self.qts.space

        if isinstance(spec, TemporalSpec):
            target = spec.inner.denote(space)
            trace = self.backend.reachable(self.qts, initial=initial,
                                           max_iterations=max_iterations,
                                           frontier=frontier)
            reached = trace.subspace
            if isinstance(spec, Always):
                holds = target.contains(reached, tol)
                witness = None if holds else _escaping_directions(
                    reached, target, tol)
                kind = Always.keyword
            else:
                # verdict and witness from the same criterion: some
                # reachable basis vector has a component in the target
                # above tol
                witness = _overlap_witness(reached, target, tol)
                holds = witness is not None
                kind = Eventually.keyword
            return CheckResult(
                spec=text, kind=kind, holds=holds,
                model=self.qts.name, config=self.config,
                reachable_dimension=reached.dimension,
                dimensions=list(trace.dimensions),
                iterations=trace.iterations,
                converged=trace.converged,
                witness=witness, stats=trace.stats)

        # a bare proposition: satisfaction of the initial space, now
        target = spec.denote(space)
        start = initial if initial is not None else self.qts.initial
        holds = target.contains(start, tol)
        witness = None if holds else _escaping_directions(start, target, tol)
        return CheckResult(
            spec=text, kind="now", holds=holds,
            model=self.qts.name, config=self.config,
            reachable_dimension=start.dimension,
            dimensions=[start.dimension],
            witness=witness)

    # ------------------------------------------------------------------
    # subspace-level checks, reimplemented on top of check()
    # ------------------------------------------------------------------
    def check_invariant(self, subspace: Optional[Subspace] = None,
                        strict: bool = False) -> bool:
        """Does the system stay inside ``S`` (``T(S) <= S``)?

        Equivalent to checking ``AG S`` from initial space ``S``, and
        one fixpoint round decides it (``S v T(S) <= S`` iff
        ``T(S) <= S``), so this costs a single image computation like
        the direct comparison did.  ``strict`` requires ``T(S) = S``;
        equality needs the image itself, so that path compares one
        image directly (same single-image cost).
        """
        if subspace is None:
            subspace = self.qts.initial
        if strict:
            image = self.backend.compute_image(self.qts, subspace).subspace
            return invariant_holds(image, subspace, strict)
        return self.check(Always(Atomic(subspace, "S")), initial=subspace,
                          max_iterations=1).holds

    def check_image_equals(self, expected: Subspace,
                           subspace: Optional[Subspace] = None) -> bool:
        image = self.backend.compute_image(self.qts, subspace).subspace
        return image.equals(expected)

    def check_safety(self, bound: Subspace,
                     max_iterations: int = 0) -> bool:
        """Is every reachable state inside ``bound``?  (``AG bound``)"""
        return self.check(Always(Atomic(bound, "bound")),
                          max_iterations=max_iterations).holds

    def __repr__(self) -> str:
        return (f"ModelChecker({self.qts.name!r}, method={self.method!r}, "
                f"backend={self.backend.name!r})")


# ----------------------------------------------------------------------
# witness construction
# ----------------------------------------------------------------------
def _witness_span(reached: Subspace, target: Subspace, tol: float,
                  inside: bool) -> Optional[Subspace]:
    """The span of each reached basis vector's component w.r.t. target.

    ``inside=True`` keeps the projections onto the target (the overlap
    witness of a satisfied ``EF``); ``inside=False`` keeps the
    residuals outside it (the escaping directions of a violated
    ``AG``).  Components with norm below ``tol`` are noise and are
    dropped; ``None`` means nothing survived.
    """
    components = []
    for vector in reached.basis:
        projected = target.project_state(vector)
        component = projected if inside else vector - projected
        norm = component.norm()
        if norm > tol:
            components.append(component.scaled(1.0 / norm))
    if not components:
        return None
    return reached.space.span(components)


def _escaping_directions(reached: Subspace, target: Subspace,
                         tol: float) -> Optional[Subspace]:
    return _witness_span(reached, target, tol, inside=False)


def _overlap_witness(reached: Subspace, target: Subspace,
                     tol: float) -> Optional[Subspace]:
    return _witness_span(reached, target, tol, inside=True)
