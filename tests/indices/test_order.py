"""Index orders."""

import pytest

from repro.errors import IndexError_
from repro.indices.index import Index, wire
from repro.indices.order import IndexOrder, require_same_order


class TestRegistration:
    def test_levels_increase(self):
        order = IndexOrder()
        assert order.register(Index("a")) == 0
        assert order.register(Index("b")) == 1

    def test_idempotent(self):
        order = IndexOrder()
        order.register(Index("a"))
        assert order.register(Index("a")) == 0
        assert len(order) == 1

    def test_unknown_raises(self):
        order = IndexOrder()
        with pytest.raises(IndexError_):
            order.level(Index("ghost"))

    def test_contains_and_index_at(self):
        order = IndexOrder([Index("a"), Index("b")])
        assert Index("a") in order
        assert Index("z") not in order
        assert order.index_at(1) == Index("b")

    def test_sorted_and_levels_of(self):
        order = IndexOrder([Index("a"), Index("b"), Index("c")])
        assert order.sorted([Index("c"), Index("a")]) == [Index("a"),
                                                          Index("c")]
        assert order.levels_of([Index("c"), Index("a")]) == [0, 2]


class TestPolicies:
    def test_qubit_major(self):
        indices = [wire(1, 0), wire(0, 1), wire(0, 0), wire(1, 2)]
        order = IndexOrder.qubit_major(indices)
        names = [order.index_at(i).name for i in range(4)]
        assert names == ["x0_0", "x0_1", "x1_0", "x1_2"]

    def test_time_major(self):
        indices = [wire(1, 0), wire(0, 1), wire(0, 0), wire(1, 2)]
        order = IndexOrder.time_major(indices)
        names = [order.index_at(i).name for i in range(4)]
        assert names == ["x0_0", "x1_0", "x0_1", "x1_2"]

    def test_coordinate_free_indices_sort_last(self):
        order = IndexOrder.qubit_major([Index("zz"), wire(0, 0)])
        assert order.index_at(0).name == "x0_0"


class TestRequireSameOrder:
    def test_same_object_ok(self):
        order = IndexOrder()
        require_same_order(order, order)

    def test_different_objects_rejected(self):
        with pytest.raises(IndexError_):
            require_same_order(IndexOrder(), IndexOrder())
