"""Dense reference simulation substrate.

Statevector and density-matrix simulation plus dense subspace algebra.
Everything here is exponential in the qubit count and exists to
cross-check the TDD image computation on small systems — it is the
"ground truth" backend the test suite compares against.
"""

from repro.sim.statevector import (apply_gate, run_circuit, circuit_unitary,
                                   basis_state_vector, uniform_state)
from repro.sim.density import apply_kraus, channel_matrices, support_basis
from repro.sim.subspace_dense import DenseSubspace

__all__ = [
    "apply_gate", "run_circuit", "circuit_unitary",
    "basis_state_vector", "uniform_state",
    "apply_kraus", "channel_matrices", "support_basis",
    "DenseSubspace",
]
