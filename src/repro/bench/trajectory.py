"""Perf-trajectory snapshots: scalar vs batched kernel, per PR.

``BENCH_PR<n>.json`` (committed at the repo root, one per PR — the
label comes from ``--snapshot``) records, for the
smoke-sized multi-Kraus Table-1 families, the wall-clock *median* over
repeated image computations under the scalar per-branch loop and under
the batched weight kernel, plus the (deterministic) top-level
contraction counts.  The snapshot is the baseline the CI
``bench-compare`` step guards: a change that erodes the batched path's
advantage fails the build.

Absolute seconds are machine-specific, so the comparison is over
*portable* quantities only:

* the batched contraction count must not exceed the committed one
  (exactly reproducible — a regression here means the batched kernel
  stopped covering a family in one invocation);
* the measured speedup ``scalar_median / batched_median`` must stay
  within ``tolerance`` (default 20%) of the committed speedup — both
  runs of the ratio execute on the *same* machine, so the ratio
  travels between hosts even though the medians do not.

Run:  ``python -m repro.bench.trajectory --write BENCH_PR7.json``
      ``python -m repro.bench.trajectory --compare BENCH_PR7.json``
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from typing import Callable, Dict, List, Optional

from repro.image.engine import compute_image
from repro.systems import models

#: smoke-sized Table-1 families where batching has work to do (every
#: one is multi-Kraus; unitary families take the scalar path anyway)
FAMILIES: Dict[str, Callable] = {
    "bitflip": lambda: models.bitflip_qts(),
    "qrw4": lambda: models.qrw_qts(4, 0.1, steps=2),
    "qrw5": lambda: models.qrw_qts(5, 0.1, steps=2),
}

DEFAULT_REPEATS = 5
DEFAULT_TOLERANCE = 0.20

#: the label stamped into freshly written snapshots — bump per PR
SNAPSHOT_LABEL = "PR7"


def measure_family(builder: Callable, repeats: int = DEFAULT_REPEATS,
                   method: str = "basic") -> dict:
    """Median wall clock + contraction count, scalar and batched.

    Every repeat builds a fresh QTS (construction time included,
    matching the Table-1 methodology); the contraction count is
    deterministic and only recorded once per mode.
    """
    entry: dict = {}
    for mode, batched in (("scalar", False), ("batched", True)):
        times: List[float] = []
        for _ in range(repeats):
            result = compute_image(builder(), method=method,
                                   batched=batched)
            times.append(result.stats.seconds)
        entry[mode] = {
            "median_seconds": statistics.median(times),
            "contractions": result.stats.contractions,
        }
        entry["dimension"] = result.dimension
    entry["speedup"] = (entry["scalar"]["median_seconds"]
                        / max(entry["batched"]["median_seconds"], 1e-9))
    return entry


def measure(repeats: int = DEFAULT_REPEATS,
            snapshot: str = SNAPSHOT_LABEL) -> dict:
    return {
        "snapshot": snapshot,
        "repeats": repeats,
        "families": {name: measure_family(builder, repeats)
                     for name, builder in FAMILIES.items()},
    }


def compare(current: dict, committed: dict,
            tolerance: float = DEFAULT_TOLERANCE) -> List[str]:
    """The regressions of ``current`` against a committed snapshot.

    Returns human-readable failure lines (empty = no regression).
    Families present only on one side are skipped: the snapshot is a
    floor for what it measured, not a schema lock.
    """
    failures: List[str] = []
    for name, base in committed.get("families", {}).items():
        entry = current.get("families", {}).get(name)
        if entry is None:
            continue
        got = entry["batched"]["contractions"]
        want = base["batched"]["contractions"]
        if got > want:
            failures.append(
                f"{name}: batched contractions {got} > committed {want}")
        floor = base["speedup"] * (1 - tolerance)
        if entry["speedup"] < floor:
            failures.append(
                f"{name}: speedup {entry['speedup']:.2f}x below "
                f"{floor:.2f}x (committed {base['speedup']:.2f}x "
                f"- {tolerance:.0%})")
    return failures


def format_snapshot(snapshot: dict) -> str:
    lines = [f"{'family':<10} {'scalar[s]':>10} {'batched[s]':>11} "
             f"{'speedup':>8} {'contr s/b':>10}"]
    for name, entry in snapshot["families"].items():
        lines.append(
            f"{name:<10} {entry['scalar']['median_seconds']:>10.4f} "
            f"{entry['batched']['median_seconds']:>11.4f} "
            f"{entry['speedup']:>7.2f}x "
            f"{entry['scalar']['contractions']:>5}/"
            f"{entry['batched']['contractions']}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.trajectory",
        description="Scalar-vs-batched perf snapshot (write) and "
                    "regression gate (compare).")
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument("--write", metavar="PATH",
                       help="measure and write a snapshot JSON")
    group.add_argument("--compare", metavar="PATH",
                       help="measure and compare against a committed "
                            "snapshot; exit 1 on regression")
    parser.add_argument("--repeats", type=int, default=DEFAULT_REPEATS)
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE,
                        help="allowed fractional speedup erosion "
                             "(default 0.20)")
    parser.add_argument("--snapshot", default=SNAPSHOT_LABEL,
                        help="label stamped into a written snapshot "
                             f"(default {SNAPSHOT_LABEL})")
    args = parser.parse_args(argv)
    snapshot = measure(repeats=args.repeats, snapshot=args.snapshot)
    print(format_snapshot(snapshot))
    if args.write:
        with open(args.write, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.write}")
        return 0
    with open(args.compare, "r", encoding="utf-8") as handle:
        committed = json.load(handle)
    failures = compare(snapshot, committed, tolerance=args.tolerance)
    if failures:
        print("bench-compare FAILED:")
        for line in failures:
            print(f"  {line}")
        return 1
    print(f"bench-compare OK against {args.compare}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
