"""Quantum operations as sets of Kraus circuits.

A quantum operation ``T_sigma = { E_j }`` is stored as one
:class:`~repro.circuits.circuit.QuantumCircuit` per Kraus operator
(paper, Section III.A): unitary operations have a single unitary
circuit, measurement branches of dynamic circuits carry projector
gates, and noise channels carry scaled Kraus gates.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.errors import SystemError_


class QuantumOperation:
    """A named quantum operation given by Kraus circuits."""

    def __init__(self, symbol: str,
                 kraus_circuits: Sequence[QuantumCircuit]) -> None:
        kraus_circuits = list(kraus_circuits)
        if not kraus_circuits:
            raise SystemError_(f"operation {symbol!r} needs at least one "
                               f"Kraus circuit")
        widths = {c.num_qubits for c in kraus_circuits}
        if len(widths) != 1:
            raise SystemError_(f"operation {symbol!r}: Kraus circuits act "
                               f"on different qubit counts {widths}")
        self.symbol = symbol
        self.kraus_circuits = kraus_circuits
        self._adjoint: "QuantumOperation" = None

    @property
    def num_qubits(self) -> int:
        return self.kraus_circuits[0].num_qubits

    @property
    def num_kraus(self) -> int:
        return len(self.kraus_circuits)

    # ------------------------------------------------------------------
    def kraus_matrices(self) -> List[np.ndarray]:
        """Dense Kraus matrices (reference backend, small systems)."""
        from repro.sim.statevector import circuit_unitary
        return [circuit_unitary(c) for c in self.kraus_circuits]

    def is_trace_nonincreasing(self, tol: float = 1e-7) -> bool:
        """Check ``sum_j E_j^dagger E_j <= I`` (valid quantum operation)."""
        matrices = self.kraus_matrices()
        total = sum(e.conj().T @ e for e in matrices)
        values = np.linalg.eigvalsh(total)
        return bool(values.max() <= 1.0 + tol)

    def adjoint(self, symbol: str = "") -> "QuantumOperation":
        """The adjoint operation ``T_sigma^dagger = { E_j^dagger }``.

        Each Kraus circuit is inverted (gates reversed and daggered),
        which is exactly the Kraus family of the adjoint map — the
        transition relation of *backward* (preimage) analysis.  The
        result is cached and its own adjoint points back here, so
        ``op.adjoint().adjoint() is op``.
        """
        if self._adjoint is None:
            out = QuantumOperation(symbol or f"{self.symbol}~",
                                   [c.inverse() for c in self.kraus_circuits])
            out._adjoint = self
            self._adjoint = out
        return self._adjoint

    @staticmethod
    def unitary(symbol: str, circuit: QuantumCircuit) -> "QuantumOperation":
        """The closed-system case: one unitary Kraus circuit."""
        return QuantumOperation(symbol, [circuit])

    @staticmethod
    def identity(symbol: str, num_qubits: int) -> "QuantumOperation":
        """The identity operation (empty circuit)."""
        return QuantumOperation(symbol, [QuantumCircuit(num_qubits,
                                                        "identity")])

    def then(self, other: "QuantumOperation",
             symbol: str = "") -> "QuantumOperation":
        """Sequential composition ``other ∘ self``.

        The Kraus operators of a composition are all pairwise products,
        realised as circuit concatenations: ``{F_j E_i}`` for Kraus
        circuits ``E_i`` of this operation and ``F_j`` of ``other``.
        """
        if other.num_qubits != self.num_qubits:
            raise SystemError_("qubit count mismatch in composition")
        circuits = [mine.compose(theirs)
                    for mine in self.kraus_circuits
                    for theirs in other.kraus_circuits]
        return QuantumOperation(symbol or f"{other.symbol}*{self.symbol}",
                                circuits)

    def power(self, exponent: int, symbol: str = "") -> "QuantumOperation":
        """``self`` composed with itself ``exponent`` times."""
        if exponent < 1:
            raise SystemError_("exponent must be >= 1")
        out = self
        for _ in range(exponent - 1):
            out = out.then(self)
        out.symbol = symbol or f"{self.symbol}^{exponent}"
        return out

    def __repr__(self) -> str:
        return (f"QuantumOperation({self.symbol!r}, "
                f"kraus={self.num_kraus}, qubits={self.num_qubits})")
