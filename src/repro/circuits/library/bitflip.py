"""The 3-qubit bit-flip error-correction circuit (paper, Fig. 3).

Six qubits: data qubits 0-2 carry the (possibly corrupted) codeword,
ancillas 3-5 start in |0> and collect the syndrome through six CX
gates.  Measuring the ancillas yields one of the four outcomes
000, 101, 110, 011, identifying no error or a flip on data qubit
1, 2, 3 respectively, and the correction X is applied accordingly —
a *dynamic* circuit, modelled as four Kraus circuits (one per
measurement branch, Section III.A.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.circuits.circuit import QuantumCircuit

#: Measurement outcome -> data qubit to correct (None = no correction).
#: Outcome bits are (ancilla3, ancilla4, ancilla5).
BITFLIP_OUTCOMES: Dict[Tuple[int, int, int], Optional[int]] = {
    (0, 0, 0): None,  # no error
    (1, 0, 1): 0,     # flip on data qubit 0
    (1, 1, 0): 1,     # flip on data qubit 1
    (0, 1, 1): 2,     # flip on data qubit 2
}

#: (data qubit, ancilla) pairs of the six syndrome CX gates.
_SYNDROME_PAIRS = [(0, 3), (1, 3), (1, 4), (2, 4), (0, 5), (2, 5)]


def bitflip_syndrome_circuit() -> QuantumCircuit:
    """The unitary syndrome-extraction part U (six CX gates)."""
    circuit = QuantumCircuit(6, "bitflip_syndrome")
    for data, ancilla in _SYNDROME_PAIRS:
        circuit.cx(data, ancilla)
    return circuit


def bitflip_kraus_circuits() -> List[QuantumCircuit]:
    """One Kraus circuit per measurement outcome.

    Each circuit is ``(correction (x) |m><m|) U``: syndrome extraction,
    ancilla projectors onto the outcome, then the classically
    controlled X correction — e.g. ``T_101 = (X_1 (x) I (x) I (x)
    |101><101|) U`` in the paper's notation.

    After the measurement each branch also *resets* its ancillas to
    |0> (an X per measured 1, classically controlled on the known
    outcome).  The paper leaves this implicit: its claimed property
    ``T(span{|100>, |010>, |001>}) = span{|000>}`` holds on the full
    six-qubit space only if the syndrome register is returned to
    |000>, as any real QEC cycle does before the next round.
    """
    circuits: List[QuantumCircuit] = []
    for outcome, correction in BITFLIP_OUTCOMES.items():
        label = "".join(str(b) for b in outcome)
        circuit = bitflip_syndrome_circuit()
        circuit.name = f"bitflip_T{label}"
        for ancilla, bit in zip((3, 4, 5), outcome):
            circuit.proj(ancilla, bit)
        if correction is not None:
            circuit.x(correction)
        for ancilla, bit in zip((3, 4, 5), outcome):
            if bit:
                circuit.x(ancilla)
        circuits.append(circuit)
    return circuits
