"""Model checking on quantum transition systems.

The front door is :class:`~repro.mc.checker.ModelChecker` configured by
one :class:`~repro.mc.config.CheckerConfig` and driven by
:meth:`~repro.mc.checker.ModelChecker.check`, which evaluates temporal
specifications (``"AG (inv & ~bad)"``, ``"EF target"`` — see
:mod:`repro.mc.specs`) over the Birkhoff-von Neumann proposition
algebra of :mod:`repro.mc.logic` and returns one uniform
:class:`~repro.mc.checker.CheckResult` on either backend (symbolic TDD
or dense statevector).  Reachability fixpoints, invariants and
cross-validation ride on the same machinery.
"""

from repro.mc.reachability import (ReachabilityCache, ReachabilityTrace,
                                   reachable_space)
from repro.mc.drivers import (DRIVERS, FixpointDriver, FrontierDriver,
                              OpShardedDriver, SequentialDriver,
                              make_driver, tree_join)
from repro.mc.invariants import (is_invariant, image_equals, image_contained_in)
from repro.mc.config import BACKENDS, CheckerConfig
from repro.mc.backends import (Backend, CrossValidation,
                               DenseStatevectorBackend, TDDBackend,
                               cross_validate, make_backend)
from repro.mc.checker import CheckResult, ModelChecker
from repro.mc.logic import (Always, Atomic, Eventually, Join, Meet, Name,
                            Not, Proposition, TemporalSpec,
                            check_always, check_eventually_overlaps,
                            satisfies)
from repro.mc.specs import parse_spec, resolve, to_text
from repro.mc.witness import WitnessTrace, extract_witness_trace

__all__ = [
    "reachable_space", "ReachabilityCache", "ReachabilityTrace",
    "DRIVERS", "FixpointDriver", "SequentialDriver", "OpShardedDriver",
    "FrontierDriver", "make_driver", "tree_join",
    "is_invariant", "image_equals", "image_contained_in",
    "Backend", "BACKENDS", "CheckerConfig", "CrossValidation",
    "DenseStatevectorBackend", "TDDBackend",
    "cross_validate", "make_backend",
    "CheckResult", "ModelChecker",
    "Always", "Atomic", "Eventually", "Join", "Meet", "Name", "Not",
    "Proposition", "TemporalSpec",
    "check_always", "check_eventually_overlaps", "satisfies",
    "parse_spec", "resolve", "to_text",
    "WitnessTrace", "extract_witness_trace",
]
