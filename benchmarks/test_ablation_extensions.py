"""Ablation benches on the extension workloads and the hybrid method.

Beyond the paper's five families: phase estimation (QFT-heavy),
W-state preparation (controlled rotations), the Cuccaro adder (deep
CX/CCX ripple) and hidden shift (diagonal-layer heavy).  Each runs the
paper's contraction parameters plus the hybrid slice+block scheme.
"""

import pytest

from repro.systems import models


class TestExtensionFamilies:
    @pytest.mark.parametrize("method,params", [
        ("basic", {}),
        ("contraction", {"k1": 4, "k2": 4}),
    ])
    def test_qpe8(self, image_bench, method, params):
        result = image_bench(lambda: models.qpe_qts(8, 0.625), method,
                             **params)
        assert result.dimension == 1

    @pytest.mark.parametrize("method,params", [
        ("basic", {}),
        ("contraction", {"k1": 4, "k2": 4}),
    ])
    def test_wstate12(self, image_bench, method, params):
        result = image_bench(lambda: models.w_state_qts(12), method,
                             **params)
        assert result.dimension == 1

    @pytest.mark.parametrize("method,params", [
        ("basic", {}),
        ("contraction", {"k1": 4, "k2": 4}),
    ])
    def test_adder4(self, image_bench, method, params):
        result = image_bench(lambda: models.adder_qts(4, 5, 9), method,
                             **params)
        assert result.dimension == 1

    @pytest.mark.parametrize("method,params", [
        ("basic", {}),
        ("contraction", {"k1": 4, "k2": 4}),
    ])
    def test_hiddenshift12(self, image_bench, method, params):
        result = image_bench(lambda: models.hidden_shift_qts(12), method,
                             **params)
        assert result.dimension == 1


class TestHybridMethod:
    @pytest.mark.parametrize("k", [0, 1, 2])
    def test_hybrid_on_grover(self, image_bench, k):
        result = image_bench(
            lambda: models.grover_qts(8, iterations=2), "hybrid",
            k=k, k1=4, k2=4)
        assert result.dimension == 1

    def test_hybrid_nodes_no_worse_than_contraction(self):
        from repro.image.engine import compute_image
        contraction = compute_image(models.grover_qts(8, iterations=2),
                                    method="contraction", k1=4, k2=4)
        hybrid = compute_image(models.grover_qts(8, iterations=2),
                               method="hybrid", k=1, k1=4, k2=4)
        # slicing the top index cannot blow up the block diagrams
        assert hybrid.stats.max_nodes <= 2 * contraction.stats.max_nodes


class TestFrontierReachability:
    @pytest.mark.parametrize("frontier", [False, True])
    def test_qrw_reachability(self, benchmark, frontier):
        from repro.mc.reachability import reachable_space

        def run():
            return reachable_space(models.qrw_qts(4, 0.2),
                                   method="contraction", k1=4, k2=4,
                                   frontier=frontier)

        trace = benchmark.pedantic(run, rounds=1, iterations=1)
        benchmark.extra_info["iterations"] = trace.iterations
        benchmark.extra_info["dimension"] = trace.dimension
        assert trace.converged
