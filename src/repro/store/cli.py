"""The ``repro cache`` verb: manage a persistent result store.

Subcommands (all take ``--store DIR``, default ``.repro-store``):

* ``ls``     — one line per entry (key prefix, model shape, dimension,
  size, hit count, last hit),
* ``stats``  — entry/byte totals, lifetime hits, quarantine and
  eviction counters, schema version,
* ``gc``     — evict least-recently-hit entries down to
  ``--max-bytes`` and sweep orphaned blob/temp files,
* ``export`` — write every (integrity-checked) entry to one JSON
  bundle,
* ``import`` — merge a bundle written by ``export`` (existing entries
  are skipped; the store stays content-addressed).

The store itself is populated by ``repro check/reach --store DIR`` and
``repro sweep --store DIR`` — this verb never computes fixpoints, it
only curates the ones already on disk.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.store.store import ResultStore
from repro.utils.tables import format_table

DEFAULT_STORE_DIR = ".repro-store"


def _format_bytes(count: int) -> str:
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return (f"{value:.1f} {unit}" if unit != "B"
                    else f"{int(value)} B")
        value /= 1024
    return f"{int(count)} B"  # pragma: no cover — unreachable


def _format_when(stamp: float) -> str:
    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(stamp))


def _cmd_ls(store: ResultStore, args) -> int:
    rows = store.ls()
    if not rows:
        print(f"store {store.root}: empty")
        return 0
    table = [[row["key"][:12], f"{row['num_qubits']}q",
              row["direction"], str(row["bound"]),
              str(row["dimension"]), str(row["iterations"]),
              _format_bytes(row["bytes"]), str(row["hits"]),
              _format_when(row["last_hit"])]
             for row in rows]
    print(format_table(["key", "qubits", "dir", "bound", "dim",
                        "iters", "size", "hits", "last hit"], table))
    print(f"{len(rows)} entries, "
          f"{_format_bytes(store.total_bytes())} total")
    return 0


def _cmd_stats(store: ResultStore, args) -> int:
    stats = store.stats()
    print(f"store          = {stats.root}")
    print(f"schema version = {stats.schema_version}")
    print(f"entries        = {stats.entries} "
          f"({_format_bytes(stats.total_bytes)})")
    print(f"lifetime hits  = {stats.total_hits}")
    print(f"quarantined    = {stats.quarantined}")
    print(f"evictions      = {stats.evictions}")
    return 0


def _cmd_gc(store: ResultStore, args) -> int:
    report = store.gc(max_bytes=args.max_bytes)
    print(f"gc: {report.evicted} entries evicted "
          f"({_format_bytes(report.bytes_freed)} freed), "
          f"{report.orphans_removed} orphan files removed")
    print(f"store now {_format_bytes(report.bytes_after)} "
          f"(was {_format_bytes(report.bytes_before)})")
    return 0


def _cmd_export(store: ResultStore, args) -> int:
    count = store.export_file(args.out)
    print(f"exported {count} entries to {args.out}")
    return 0


def _cmd_import(store: ResultStore, args) -> int:
    imported, skipped = store.import_file(args.input)
    print(f"imported {imported} entries from {args.input} "
          f"({skipped} skipped)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Manage the persistent, content-addressed result "
                    "store that 'repro check/reach/sweep --store DIR' "
                    "read and populate.")
    sub = parser.add_subparsers(dest="cache_command", required=True)

    def add(name: str, func, help_text: str) -> argparse.ArgumentParser:
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--store", default=DEFAULT_STORE_DIR,
                         metavar="DIR",
                         help=f"store directory (default "
                              f"{DEFAULT_STORE_DIR})")
        cmd.set_defaults(func=func)
        return cmd

    add("ls", _cmd_ls, "list stored fixpoints, most recently hit first")
    add("stats", _cmd_stats,
        "entry/byte totals, quarantine and eviction counters")
    gc = add("gc", _cmd_gc,
             "evict LRU entries to a byte budget, sweep orphans")
    gc.add_argument("--max-bytes", type=int, default=None,
                    dest="max_bytes",
                    help="byte budget to evict down to (least recently "
                         "hit first); omit to only sweep orphans")
    export = add("export", _cmd_export,
                 "write all entries to one JSON bundle")
    export.add_argument("--out", required=True,
                        help="bundle file to write")
    imp = add("import", _cmd_import,
              "merge a bundle written by 'repro cache export'")
    imp.add_argument("--input", required=True,
                     help="bundle file to read")

    args = parser.parse_args(argv)
    with ResultStore(args.store) as store:
        return args.func(store, args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
