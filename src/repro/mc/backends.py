"""Pluggable computation backends for model checking.

The :class:`~repro.mc.checker.ModelChecker` (and the CLI) can run every
check on one of two interchangeable engines:

* ``tdd`` — the symbolic TDD kernel (the paper's algorithms; scales
  with diagram size, not Hilbert-space dimension), or
* ``dense`` — the :mod:`repro.sim` statevector reference (explicitly
  exponential; Kraus matrices applied to dense basis vectors, subspaces
  closed by SVD).

Both are configured through one validated
:class:`~repro.mc.config.CheckerConfig` and return the same result
types (``ImageResult`` / ``ReachabilityTrace`` over TDD-backed
subspaces), so results cross-validate structurally:
:func:`cross_validate` runs an image — or a full temporal-spec check —
on both backends and compares the outcomes.  This is the
production-style guard rail for the symbolic engine: any divergence on
a small instance pinpoints a kernel bug before it ships at a scale
where the dense oracle can no longer follow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Union

from repro.errors import ConfigError, ReproError
from repro.image.base import ImageResult
from repro.image.engine import compute_image, validate_direction
from repro.mc.config import BACKENDS, CheckerConfig, _warn_legacy
from repro.mc.drivers import DEFAULT_DRIVER, resolve_driver, tree_join
from repro.mc.reachability import ReachabilityTrace, reachable_space
from repro.subspace.subspace import Subspace
from repro.systems.qts import QuantumTransitionSystem
from repro.utils.stats import StatsRecorder
from repro.utils.timing import Stopwatch

#: dense simulation is exponential; refuse silly sizes loudly
DENSE_MAX_QUBITS = 14


class Backend(Protocol):
    """One engine that can compute images and reachable spaces.

    ``direction``/``bound`` select forward or backward (preimage)
    analysis and depth-limited fixpoints, ``driver`` the fixpoint
    schedule (:mod:`repro.mc.drivers`); ``None`` means "use the
    engine's configured default" (forward / unbounded / sequential for
    engines without a config).  ``warm_start`` seeds the fixpoint with
    a subspace known to lie inside the true reachable space — served
    by the in-memory :class:`~repro.mc.reachability.ReachabilityCache`
    or the disk-backed :class:`~repro.store.ResultStore`; both key on
    content fingerprints, so a seed computed by either backend (or in
    another process) warm-starts the other.
    """

    name: str

    def compute_image(self, qts: QuantumTransitionSystem,
                      subspace: Optional[Subspace] = None,
                      direction: Optional[str] = None) -> ImageResult:
        """``T(S)`` — or the preimage ``T^dagger(S)`` — with run stats."""
        ...

    def reachable(self, qts: QuantumTransitionSystem,
                  initial: Optional[Subspace] = None,
                  max_iterations: int = 0,
                  frontier: bool = False,
                  direction: Optional[str] = None,
                  bound: Optional[int] = None,
                  driver: Optional[str] = None,
                  warm_start: Optional[Subspace] = None
                  ) -> ReachabilityTrace:
        """The reachability fixpoint from ``initial`` (default ``S0``)."""
        ...


class TDDBackend:
    """The symbolic backend: delegates to the image/mc engine.

    Construct it from a :class:`~repro.mc.config.CheckerConfig`
    (``TDDBackend(config)``) or through the legacy keyword spelling
    (``TDDBackend(method=..., strategy=..., jobs=..., **params)``).
    """

    name = "tdd"

    def __init__(self, method: Union[str, CheckerConfig] = "contraction",
                 strategy: str = "monolithic",
                 jobs: Optional[int] = None,
                 slice_depth: Optional[int] = None,
                 **params) -> None:
        if isinstance(method, CheckerConfig):
            if (strategy != "monolithic" or jobs is not None
                    or slice_depth is not None or params):
                raise ConfigError("TDDBackend takes either a CheckerConfig "
                                  "or the legacy keyword arguments, "
                                  "not both")
            if method.backend != "tdd":
                raise ConfigError(f"TDDBackend needs a tdd config, got "
                                  f"backend={method.backend!r}")
            self.config = method
        else:
            kwargs = dict(method=method, strategy=strategy, jobs=jobs,
                          **params)
            if slice_depth is not None:
                kwargs["slice_depth"] = slice_depth
            self.config = CheckerConfig.from_kwargs(backend="tdd", **kwargs)

    # legacy attribute echoes -----------------------------------------
    @property
    def method(self) -> str:
        return self.config.method

    @property
    def strategy(self) -> str:
        return self.config.strategy

    @property
    def jobs(self) -> Optional[int]:
        return self.config.jobs

    @property
    def slice_depth(self) -> int:
        return self.config.slice_depth

    @property
    def params(self) -> dict:
        return dict(self.config.method_params)

    # ------------------------------------------------------------------
    def compute_image(self, qts: QuantumTransitionSystem,
                      subspace: Optional[Subspace] = None,
                      direction: Optional[str] = None) -> ImageResult:
        cfg = self.config
        if direction is not None and direction != cfg.direction:
            cfg = cfg.replace(direction=direction)
        return compute_image(qts, subspace, config=cfg)

    def reachable(self, qts: QuantumTransitionSystem,
                  initial: Optional[Subspace] = None,
                  max_iterations: int = 0,
                  frontier: bool = False,
                  direction: Optional[str] = None,
                  bound: Optional[int] = None,
                  driver: Optional[str] = None,
                  warm_start: Optional[Subspace] = None
                  ) -> ReachabilityTrace:
        cfg = self.config
        return reachable_space(
            qts, cfg.method, initial=initial,
            max_iterations=max_iterations,
            frontier=frontier, strategy=cfg.strategy,
            jobs=cfg.jobs, slice_depth=cfg.slice_depth,
            direction=cfg.direction if direction is None else direction,
            bound=cfg.bound if bound is None else bound,
            driver=cfg.driver if driver is None else driver,
            warm_start=warm_start,
            batched=cfg.batched,
            **cfg.method_params)

    def __repr__(self) -> str:
        return (f"TDDBackend(method={self.method!r}, "
                f"strategy={self.strategy!r})")


class DenseStatevectorBackend:
    """The dense reference backend (exponential; small instances only).

    Images are computed with explicit Kraus matrices on dense basis
    vectors (:class:`~repro.sim.subspace_dense.DenseSubspace`); the
    resulting orthonormal basis is lifted back into TDD states so the
    result type matches the symbolic backend exactly.
    """

    name = "dense"

    def __init__(self, max_qubits: int = DENSE_MAX_QUBITS,
                 driver: str = DEFAULT_DRIVER) -> None:
        self.max_qubits = max_qubits
        #: the fixpoint schedule used when a call passes driver=None
        self.driver = driver

    # ------------------------------------------------------------------
    def _check_size(self, qts: QuantumTransitionSystem) -> None:
        if qts.num_qubits > self.max_qubits:
            raise ReproError(
                f"dense backend refuses {qts.num_qubits} qubits "
                f"(> {self.max_qubits}); it is exponential — use the "
                f"tdd backend, or raise max_qubits explicitly")

    @staticmethod
    def _kraus_matrices(qts: QuantumTransitionSystem) -> list:
        return [matrix for op in qts.operations
                for matrix in op.kraus_matrices()]

    @staticmethod
    def _to_dense(subspace: Subspace):
        from repro.sim.subspace_dense import DenseSubspace
        dim = 2 ** subspace.space.num_qubits
        vectors = [v.to_numpy().reshape(-1) for v in subspace.basis]
        return DenseSubspace.from_vectors(vectors, dim)

    @staticmethod
    def _to_subspace(qts: QuantumTransitionSystem, dense) -> Subspace:
        states = [qts.space.from_amplitudes(dense.basis[:, column])
                  for column in range(dense.dimension)]
        return qts.space.span(states)

    # ------------------------------------------------------------------
    def compute_image(self, qts: QuantumTransitionSystem,
                      subspace: Optional[Subspace] = None,
                      direction: Optional[str] = None) -> ImageResult:
        self._check_size(qts)
        if subspace is None:
            subspace = qts.initial
        backward = direction == "backward"
        stats = StatsRecorder()
        stats.extra["backend"] = self.name
        watch = Stopwatch().start()
        kraus = self._kraus_matrices(qts)
        source = self._to_dense(subspace)
        dense = source.preimage(kraus) if backward else source.image(kraus)
        result = self._to_subspace(qts, dense)
        stats.seconds = watch.stop()
        stats.observe_nodes(result.projector.size())
        return ImageResult(result, stats)

    def reachable(self, qts: QuantumTransitionSystem,
                  initial: Optional[Subspace] = None,
                  max_iterations: int = 0,
                  frontier: bool = False,
                  direction: Optional[str] = None,
                  bound: Optional[int] = None,
                  driver: Optional[str] = None,
                  warm_start: Optional[Subspace] = None
                  ) -> ReachabilityTrace:
        self._check_size(qts)
        direction = validate_direction(direction or "forward")
        driver_name = resolve_driver(
            driver if driver is not None else self.driver, frontier)
        backward = direction == "backward"
        bound = bound or 0
        current = initial if initial is not None else qts.initial
        if current.dimension == 0:
            raise ReproError("reachability from the zero subspace is "
                             "trivial; set an initial space first")
        if warm_start is not None:
            current = current.join(warm_start)
        # the full Kraus family plus its per-operation grouping: the
        # opsharded schedule images each group separately and
        # tree-reduces the partial spans (Proposition 1 makes the two
        # equal; the SVD basis is recomputed either way)
        per_op = [op.kraus_matrices() for op in qts.operations]
        kraus = [matrix for group in per_op for matrix in group]
        dense = self._to_dense(current)
        trace = ReachabilityTrace(subspace=current,
                                  dimensions=[dense.dimension],
                                  direction="backward" if backward
                                  else "forward",
                                  bound=bound)
        trace.stats.extra["backend"] = self.name
        if backward:
            trace.stats.extra["direction"] = "backward"
        if driver_name != "sequential":
            trace.stats.extra["driver"] = driver_name
        limit = max_iterations if max_iterations > 0 else 2 ** qts.num_qubits
        if bound > 0:
            limit = min(limit, bound)

        def image_of(source):
            return (source.preimage(kraus) if backward
                    else source.image(kraus))

        from repro.sim.subspace_dense import DenseSubspace
        watch = Stopwatch().start()
        frontier_dense = dense
        for _ in range(limit):
            if driver_name == "opsharded":
                parts = [dense.preimage(group) if backward
                         else dense.image(group) for group in per_op]
                grown = tree_join([dense] + parts)
            elif driver_name == "frontier":
                grown = dense.join(image_of(frontier_dense))
            else:
                grown = dense.join(image_of(dense))
            trace.iterations += 1
            trace.dimensions.append(grown.dimension)
            converged = grown.dimension == dense.dimension
            if driver_name == "frontier" and not converged:
                # the new directions: residuals of the grown basis
                # against the previous space (rank = the growth)
                residual = grown.basis - dense.projector() @ grown.basis
                frontier_dense = DenseSubspace.from_vectors(
                    residual.T, grown.dim)
            dense = grown
            if converged:
                break
        else:
            trace.converged = False
        trace.subspace = self._to_subspace(qts, dense)
        trace.stats.observe_nodes(trace.subspace.projector.size())
        trace.stats.seconds = watch.stop()
        return trace

    def __repr__(self) -> str:
        return f"DenseStatevectorBackend(max_qubits={self.max_qubits})"


def make_backend(config: Union[CheckerConfig, str] = "tdd",
                 method: Optional[str] = None, **params) -> Backend:
    """Instantiate a backend from a :class:`CheckerConfig`.

    The legacy spelling ``make_backend(name, method=..., **params)``
    still works (with the old drop-mismatched-params tolerance) but
    emits a :class:`DeprecationWarning`.
    """
    if isinstance(config, CheckerConfig):
        if method is not None or params:
            raise ConfigError("make_backend takes either a CheckerConfig "
                              "or the legacy name/keyword arguments, "
                              "not both")
        cfg = config
    else:
        if config not in BACKENDS:
            raise ConfigError(f"unknown backend {config!r}; "
                              f"choose from {BACKENDS}")
        if method is not None or params:
            _warn_legacy("make_backend(name, method=..., **params)")
        cfg = CheckerConfig.from_kwargs(
            backend=config, method=method or "contraction", **params)
    if cfg.backend == "tdd":
        return TDDBackend(cfg)
    return DenseStatevectorBackend(
        max_qubits=cfg.max_qubits if cfg.max_qubits is not None
        else DENSE_MAX_QUBITS,
        driver=cfg.driver)


# ----------------------------------------------------------------------
# cross-validation
# ----------------------------------------------------------------------
@dataclass
class CrossValidation:
    """Outcome of comparing the same computation on two backends.

    For an image comparison the dimensions are ``dim T(S)`` per
    backend; for a spec comparison (``cross_validate(..., spec=...)``)
    they are the reachable-space dimensions and the verdicts are
    recorded as well.
    """

    tdd_dimension: int
    dense_dimension: int
    agree: bool
    tdd_seconds: float
    dense_seconds: float
    spec: Optional[str] = None
    tdd_verdict: Optional[str] = None
    dense_verdict: Optional[str] = None
    tdd_trace_length: Optional[int] = None
    dense_trace_length: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.agree

    def __repr__(self) -> str:
        status = "agree" if self.agree else "DISAGREE"
        if self.spec is not None:
            return (f"CrossValidation({status} on {self.spec!r}: "
                    f"tdd={self.tdd_verdict}, dense={self.dense_verdict})")
        return (f"CrossValidation({status}: tdd dim={self.tdd_dimension}, "
                f"dense dim={self.dense_dimension})")


def cross_validate(qts: QuantumTransitionSystem,
                   subspace: Optional[Subspace] = None,
                   method: str = "contraction",
                   tol: float = 1e-7,
                   spec=None,
                   config: Optional[CheckerConfig] = None,
                   **params) -> CrossValidation:
    """Run the same computation on both backends and compare.

    Without ``spec``: one image ``T(S)`` per backend; agreement means
    equal dimension *and* mutual containment of the two subspaces
    (projector equality up to ``tol``).

    With ``spec`` (a spec string or AST, see :mod:`repro.mc.specs`):
    one full :meth:`~repro.mc.checker.ModelChecker.check` per backend;
    agreement means identical verdicts and reachable dimensions.

    ``config`` fixes the symbolic engine's configuration; the legacy
    ``method``/``params`` spelling keeps working (mixed dense options
    like ``max_qubits`` are routed to the dense backend).
    """
    from repro.mc.checker import ModelChecker
    if config is None:
        tdd_config = CheckerConfig.from_kwargs(
            backend="tdd", method=method, **params)
    else:
        if config.backend != "tdd":
            raise ConfigError("cross_validate config must describe the "
                              "tdd engine; the dense side is implicit")
        tdd_config = config
    dense_config = CheckerConfig(backend="dense",
                                 max_qubits=params.get("max_qubits"),
                                 direction=tdd_config.direction,
                                 bound=tdd_config.bound,
                                 driver=tdd_config.driver)

    if spec is not None:
        symbolic = ModelChecker(qts, tdd_config).check(spec)
        dense = ModelChecker(qts, dense_config).check(spec)
        agree = (symbolic.verdict == dense.verdict
                 and symbolic.reachable_dimension
                 == dense.reachable_dimension
                 and symbolic.trace_length == dense.trace_length)
        return CrossValidation(
            tdd_dimension=symbolic.reachable_dimension,
            dense_dimension=dense.reachable_dimension,
            agree=agree,
            tdd_seconds=symbolic.stats.seconds,
            dense_seconds=dense.stats.seconds,
            spec=symbolic.spec,
            tdd_verdict=symbolic.verdict,
            dense_verdict=dense.verdict,
            tdd_trace_length=symbolic.trace_length,
            dense_trace_length=dense.trace_length)

    symbolic = make_backend(tdd_config).compute_image(
        qts, subspace, direction=tdd_config.direction)
    dense = make_backend(dense_config).compute_image(
        qts, subspace, direction=tdd_config.direction)
    agree = (symbolic.subspace.dimension == dense.subspace.dimension
             and symbolic.subspace.equals(dense.subspace, tol))
    return CrossValidation(
        tdd_dimension=symbolic.subspace.dimension,
        dense_dimension=dense.subspace.dimension,
        agree=agree,
        tdd_seconds=symbolic.stats.seconds,
        dense_seconds=dense.stats.seconds)
