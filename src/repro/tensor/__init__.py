"""Dense tensors and tensor networks.

The dense backend (:class:`DenseTensor`) is the *reference oracle* for
the TDD path: every TDD computation on a small system can be replayed
densely and compared entry-by-entry.  :class:`TensorNetwork` is generic
over any tensor implementation exposing ``indices`` /
``contract(other, sum_over)`` / ``slice(assignment)`` — i.e. it drives
both :class:`DenseTensor` and :class:`~repro.tdd.tdd.TDD` values — and
is the engine underneath all three image computation algorithms.
"""

from repro.tensor.dense import DenseTensor
from repro.tensor.network import TensorNetwork
from repro.tensor.graph import IndexGraph

__all__ = ["DenseTensor", "TensorNetwork", "IndexGraph"]
