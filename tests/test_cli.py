"""Command-line interface."""

import pytest

from repro.cli import main


class TestImage:
    def test_grover(self, capsys):
        assert main(["image", "grover", "--size", "4"]) == 0
        out = capsys.readouterr().out
        assert "dim(T(S0)) = 1" in out
        assert "max #node" in out

    def test_bitflip_basic(self, capsys):
        assert main(["image", "bitflip", "--method", "basic"]) == 0
        assert "dim(T(S0)) = 1" in capsys.readouterr().out

    def test_addition_method(self, capsys):
        assert main(["image", "ghz", "--size", "5", "--method",
                     "addition", "--k", "2"]) == 0


class TestReach:
    def test_qrw(self, capsys):
        assert main(["reach", "qrw", "--size", "3", "--steps", "1"]) == 0
        out = capsys.readouterr().out
        assert "converged  = True" in out

    def test_frontier_flag(self, capsys):
        assert main(["reach", "qrw", "--size", "3", "--frontier"]) == 0
        assert "frontier=True" in capsys.readouterr().out


class TestInvariant:
    def test_grover_invariant_exit_zero(self, capsys):
        code = main(["invariant", "grover", "--size", "4",
                     "--initial", "invariant", "--strict"])
        assert code == 0
        assert "True" in capsys.readouterr().out

    def test_grover_plus_exit_one(self, capsys):
        code = main(["invariant", "grover", "--size", "4"])
        assert code == 1

    def test_qpe_model(self, capsys):
        assert main(["image", "qpe", "--size", "3",
                     "--phase", "0.625"]) == 0

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["image", "nonsense"])
