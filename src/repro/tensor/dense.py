"""Dense tensors with named binary indices.

:class:`DenseTensor` mirrors the :class:`~repro.tdd.tdd.TDD` interface
(``indices``, ``contract``, ``slice``, ``product``, ``to_numpy``) on a
plain ndarray, so any algorithm written against that protocol can be
executed densely for validation.
"""

from __future__ import annotations

import string
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple, Union

import numpy as np

from repro.errors import TDDError
from repro.indices.index import Index

IndexLike = Union[Index, str]

_LETTERS = string.ascii_letters


def _as_index(value: IndexLike) -> Index:
    return value if isinstance(value, Index) else Index(value)


class DenseTensor:
    """An ndarray over named binary indices (axis *i* = ``indices[i]``)."""

    __slots__ = ("array", "_indices")

    def __init__(self, array: np.ndarray, indices: Sequence[Index]) -> None:
        array = np.asarray(array, dtype=complex)
        indices = tuple(indices)
        if array.shape != (2,) * len(indices):
            raise TDDError(f"array shape {array.shape} does not match "
                           f"{len(indices)} binary indices")
        if len({i.name for i in indices}) != len(indices):
            raise TDDError("duplicate index labels")
        self.array = array
        self._indices = indices

    # ------------------------------------------------------------------
    @property
    def indices(self) -> Tuple[Index, ...]:
        return self._indices

    @property
    def index_names(self) -> Tuple[str, ...]:
        return tuple(i.name for i in self._indices)

    @property
    def rank(self) -> int:
        return len(self._indices)

    def to_numpy(self) -> np.ndarray:
        return self.array

    # ------------------------------------------------------------------
    def contract(self, other: "DenseTensor",
                 sum_over: Iterable[IndexLike]) -> "DenseTensor":
        """einsum-based contraction over ``sum_over``.

        Shared indices not in ``sum_over`` stay free (aligned
        elementwise), matching TDD contraction semantics.  A summed
        index absent from both operands contributes a factor 2.
        """
        sum_names = {_as_index(i).name for i in sum_over}
        present = set(self.index_names) | set(other.index_names)
        phantom = sum_names - present
        letters: Dict[str, str] = {}

        def letter(name: str) -> str:
            if name not in letters:
                if len(letters) >= len(_LETTERS):
                    raise TDDError("dense contraction supports at most "
                                   f"{len(_LETTERS)} distinct indices")
                letters[name] = _LETTERS[len(letters)]
            return letters[name]

        spec_a = "".join(letter(n) for n in self.index_names)
        spec_b = "".join(letter(n) for n in other.index_names)
        out_indices: List[Index] = []
        seen = set()
        for idx in self._indices + other._indices:
            if idx.name not in sum_names and idx.name not in seen:
                seen.add(idx.name)
                out_indices.append(idx)
        spec_out = "".join(letter(i.name) for i in out_indices)
        result = np.einsum(f"{spec_a},{spec_b}->{spec_out}",
                           self.array, other.array)
        result = result * (2 ** len(phantom))
        return DenseTensor(result, out_indices)

    def product(self, other: "DenseTensor") -> "DenseTensor":
        return self.contract(other, ())

    def slice(self, assignment: Mapping[IndexLike, int]) -> "DenseTensor":
        """Fix some indices to constants."""
        fixed = {_as_index(k).name: v for k, v in assignment.items()}
        unknown = set(fixed) - set(self.index_names)
        if unknown:
            raise TDDError(f"cannot slice on non-free indices {unknown}")
        selector: List[object] = []
        remaining: List[Index] = []
        for idx in self._indices:
            if idx.name in fixed:
                bit = fixed[idx.name]
                if bit not in (0, 1):
                    raise ValueError("slice value must be 0 or 1")
                selector.append(bit)
            else:
                selector.append(slice(None))
                remaining.append(idx)
        return DenseTensor(self.array[tuple(selector)], remaining)

    # ------------------------------------------------------------------
    def scaled(self, factor: complex) -> "DenseTensor":
        return DenseTensor(self.array * factor, self._indices)

    def conj(self) -> "DenseTensor":
        return DenseTensor(self.array.conj(), self._indices)

    def rename(self, mapping: Mapping[IndexLike, IndexLike]) -> "DenseTensor":
        full = {_as_index(k).name: _as_index(v) for k, v in mapping.items()}
        new = [full.get(i.name, i) for i in self._indices]
        return DenseTensor(self.array, new)

    def __add__(self, other: "DenseTensor") -> "DenseTensor":
        if set(self.index_names) != set(other.index_names):
            raise TDDError("dense addition requires identical index sets")
        aligned = other.transpose_like(self._indices)
        return DenseTensor(self.array + aligned.array, self._indices)

    def transpose_like(self, indices: Sequence[Index]) -> "DenseTensor":
        """Reorder axes to match ``indices`` (same set required)."""
        order = {i.name: pos for pos, i in enumerate(self._indices)}
        perm = [order[i.name] for i in indices]
        return DenseTensor(np.transpose(self.array, perm), tuple(indices))

    def allclose(self, other: "DenseTensor", tol: float = 1e-8) -> bool:
        if set(self.index_names) != set(other.index_names):
            return False
        return np.allclose(self.array,
                           other.transpose_like(self._indices).array,
                           atol=tol)

    def __repr__(self) -> str:
        return f"DenseTensor(rank={self.rank}, indices={self.index_names})"
