"""Bernstein-Vazirani circuits.

``n - 1`` data qubits plus one oracle ancilla (last qubit).  The oracle
computes the inner product with the hidden string via one CX per set
bit.  With the ancilla prepared in |1> the circuit maps |0...0>|1> to
|s>|1>.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.errors import CircuitError


def bernstein_vazirani(num_qubits: int,
                       secret: Optional[Sequence[int]] = None
                       ) -> QuantumCircuit:
    """The BV circuit on ``num_qubits`` (last qubit = oracle ancilla).

    ``secret`` defaults to the all-ones string, which maximises the
    oracle size (the convention giving the paper's linear #node rows).
    """
    if num_qubits < 2:
        raise CircuitError("BV needs at least 1 data qubit + 1 ancilla")
    data = num_qubits - 1
    ancilla = num_qubits - 1
    if secret is None:
        secret = [1] * data
    secret = list(secret)
    if len(secret) != data:
        raise CircuitError(f"secret length {len(secret)} != {data}")
    circuit = QuantumCircuit(num_qubits, f"bv{num_qubits}")
    for q in range(data):
        circuit.h(q)
    circuit.h(ancilla)
    for q, bit in enumerate(secret):
        if bit:
            circuit.cx(q, ancilla)
    for q in range(data):
        circuit.h(q)
    circuit.h(ancilla)
    return circuit
