"""Subspace property checks built on image computation.

These are the checks the paper's case studies perform: invariance
``T(S) = S`` for the Grover subspace (Section III.A.1), image equality
against an expected subspace for the bit-flip corrector (III.A.2) and
image containment for the noisy walk (III.A.3).
"""

from __future__ import annotations

from typing import Optional

from repro.image.engine import compute_image
from repro.subspace.subspace import Subspace
from repro.systems.qts import QuantumTransitionSystem


def image_of(qts: QuantumTransitionSystem,
             subspace: Optional[Subspace] = None,
             method: str = "basic", **params) -> Subspace:
    return compute_image(qts, subspace, method, **params).subspace


def invariant_holds(image: Subspace, subspace: Subspace,
                    strict: bool = False) -> bool:
    """The invariance comparison on an already-computed image.

    Shared by the method-level entry points here and the backend-aware
    :class:`~repro.mc.checker.ModelChecker`, so the semantics cannot
    drift between the two.
    """
    if strict:
        return image.equals(subspace)
    return subspace.contains(image)


def is_invariant(qts: QuantumTransitionSystem,
                 subspace: Optional[Subspace] = None,
                 method: str = "basic", strict: bool = False,
                 **params) -> bool:
    """``T(S) <= S`` (or ``T(S) = S`` when ``strict``)."""
    if subspace is None:
        subspace = qts.initial
    image = image_of(qts, subspace, method, **params)
    return invariant_holds(image, subspace, strict)


def image_equals(qts: QuantumTransitionSystem, expected: Subspace,
                 subspace: Optional[Subspace] = None,
                 method: str = "basic", **params) -> bool:
    """``T(S) = expected``."""
    image = image_of(qts, subspace, method, **params)
    return image.equals(expected)


def image_contained_in(qts: QuantumTransitionSystem, bound: Subspace,
                       subspace: Optional[Subspace] = None,
                       method: str = "basic", **params) -> bool:
    """``T(S) <= bound`` (safety: one step never leaves ``bound``)."""
    image = image_of(qts, subspace, method, **params)
    return bound.contains(image)
