"""The index graph of Section V.A, including the paper's Fig. 5."""

from repro.circuits.library import grover_iteration
from repro.circuits.network import circuit_to_dense_network
from repro.indices.index import Index
from repro.tensor.graph import IndexGraph


class TestBasicGraph:
    def test_clique_per_tensor(self):
        g = IndexGraph.from_index_groups([
            [Index("a"), Index("b"), Index("c")],
        ])
        assert g.degree(Index("a")) == 2
        assert g.edge_count() == 3

    def test_shared_index_accumulates_degree(self):
        g = IndexGraph.from_index_groups([
            [Index("a"), Index("b")],
            [Index("b"), Index("c")],
        ])
        assert g.degree(Index("b")) == 2
        assert g.degree(Index("a")) == 1

    def test_self_loop_ignored(self):
        g = IndexGraph()
        g.add_edge(Index("a"), Index("a"))
        assert g.degree(Index("a")) == 0

    def test_highest_degree_excludes(self):
        g = IndexGraph.from_index_groups([
            [Index("a"), Index("b")],
            [Index("b"), Index("c")],
            [Index("b"), Index("d")],
        ])
        top = g.highest_degree(1)
        assert top == [Index("b")]
        top = g.highest_degree(1, exclude=[Index("b")])
        assert top[0] != Index("b")

    def test_highest_degree_tie_break_by_name(self):
        g = IndexGraph.from_index_groups([
            [Index("z"), Index("a")],
        ])
        assert g.highest_degree(2) == [Index("a"), Index("z")]


class TestGroverFig5:
    """The paper's Fig. 5: the Grover-iteration index graph."""

    def test_grover3_highest_degree_indices(self):
        # Fig. 5 (for the 3-qubit iteration of Fig. 2): the highest
        # degree vertices are x1^1, x2^1 and x1^3 (1-based). In our
        # 0-based naming these are x0_1, x1_1 and x0_3... the precise
        # winners depend on the diffusion decomposition; what must hold
        # is that the top vertices are *internal* oracle/diffusion
        # indices, not circuit inputs/outputs.
        circuit = grover_iteration(3)
        network, inputs, outputs = circuit_to_dense_network(circuit)
        graph = IndexGraph.from_tensors(network.tensors)
        boundary = set(inputs) | set(outputs)
        top = graph.highest_degree(3, exclude=boundary)
        assert len(top) == 3
        for index in top:
            assert index not in boundary
            # every sliced candidate is well-connected
            assert graph.degree(index) >= 3

    def test_grover_graph_covers_all_indices(self):
        circuit = grover_iteration(4)
        network, inputs, outputs = circuit_to_dense_network(circuit)
        graph = IndexGraph.from_tensors(network.tensors)
        all_indices = set()
        for tensor in network.tensors:
            all_indices.update(tensor.indices)
        assert set(graph.vertices) == all_indices

    def test_control_reuse_concentrates_degree(self):
        # The CCX oracle control wires keep one index across the gate,
        # so oracle control indices touch both the oracle clique and
        # the neighbouring Hadamard tensors.
        circuit = grover_iteration(3)
        network, inputs, outputs = circuit_to_dense_network(circuit)
        graph = IndexGraph.from_tensors(network.tensors)
        degrees = graph.degrees()
        max_degree = max(degrees.values())
        assert max_degree >= 4
