"""Declarative batch experiment runner.

A *sweep* is a list of fully-described benchmark configurations
(:class:`RunSpec`: circuit family × size × image method × backend ×
execution strategy), executed by :func:`run_sweep`:

* configurations fan out over a :mod:`concurrent.futures` process pool
  (``jobs > 1``) — every run builds its QTS inside its own worker, so
  runs are isolated and the measured time includes transition-TDD
  construction, matching the paper's methodology;
* every run records the full kernel cost profile through
  :class:`~repro.utils.stats.StatsRecorder` (time, peak nodes, cache
  hit/miss, GC activity, sliced-strategy counters);
* results stream into a JSON artifact after every completed run and a
  CSV at the end, and a sweep is *resumable*: re-running against the
  same artifact directory skips configurations whose ``run_id`` is
  already recorded.

``table1``/``table2`` are thin wrappers over this module (their grids
are just sweep specs), and the CLI exposes it as ``python -m repro
sweep`` — see :func:`main` for the spec-file format.
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import sys
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.errors import ReproError
from repro.mc.backends import BACKENDS, make_backend
from repro.image.engine import METHODS
from repro.image.sliced import DEFAULT_SLICE_DEPTH, STRATEGIES
from repro.systems import models
from repro.utils.tables import format_table

#: the flat column schema of the CSV artifact (and of every record)
CSV_COLUMNS = (
    "run_id", "label", "model", "size", "method", "backend", "strategy",
    "jobs", "slice_depth", "dimension", "seconds", "max_nodes",
    "contractions", "additions", "cache_hits", "cache_misses",
    "cache_hit_rate", "cache_evictions", "slices", "parallel_tasks",
    "gc_runs", "nodes_reclaimed", "peak_live_nodes", "live_nodes",
    "failed", "error",
)


# ----------------------------------------------------------------------
# specs
# ----------------------------------------------------------------------
@dataclass
class RunSpec:
    """One fully-described benchmark configuration.

    ``method_params`` are image-method parameters (``k``/``k1``/``k2``/
    ``order_policy``); ``model_params`` go to the circuit builder
    (``iterations``, ``steps``, ``noise_probability``, ...).  ``jobs``
    is the *intra-run* slice-pool width of the sliced strategy — the
    sweep-level fan-out is a separate argument to :func:`run_sweep`.
    """

    model: str
    size: int
    method: str = "contraction"
    backend: str = "tdd"
    strategy: str = "monolithic"
    jobs: int = 1
    slice_depth: int = DEFAULT_SLICE_DEPTH
    method_params: dict = field(default_factory=dict)
    model_params: dict = field(default_factory=dict)
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.model not in models.MODEL_BUILDERS:
            raise ReproError(f"unknown model {self.model!r}; choose from "
                             f"{sorted(models.MODEL_BUILDERS)}")
        if self.method not in METHODS:
            raise ReproError(f"unknown method {self.method!r}; "
                             f"choose from {METHODS}")
        if self.backend not in BACKENDS:
            raise ReproError(f"unknown backend {self.backend!r}; "
                             f"choose from {BACKENDS}")
        if self.strategy not in STRATEGIES:
            raise ReproError(f"unknown strategy {self.strategy!r}; "
                             f"choose from {STRATEGIES}")
        if self.label is None:
            self.label = f"{self.model}{self.size}"

    # ------------------------------------------------------------------
    @property
    def run_id(self) -> str:
        """Deterministic identity of this configuration (resume key)."""
        def fmt(params: dict) -> str:
            return ",".join(f"{k}={params[k]}" for k in sorted(params))
        parts = [f"{self.model}{self.size}", self.method, self.backend,
                 self.strategy]
        if self.strategy != "monolithic":
            parts.append(f"jobs={self.jobs},depth={self.slice_depth}")
        if self.method_params:
            parts.append(fmt(self.method_params))
        if self.model_params:
            parts.append(fmt(self.model_params))
        return "/".join(parts)

    def as_dict(self) -> dict:
        return {"model": self.model, "size": self.size,
                "method": self.method, "backend": self.backend,
                "strategy": self.strategy, "jobs": self.jobs,
                "slice_depth": self.slice_depth,
                "method_params": dict(self.method_params),
                "model_params": dict(self.model_params),
                "label": self.label}

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        return cls(**data)


@dataclass
class SweepSpec:
    """A named list of runs — the unit :func:`run_sweep` executes."""

    name: str
    runs: List[RunSpec]

    # ------------------------------------------------------------------
    @classmethod
    def from_axes(cls, name: str,
                  model_names: Sequence[str],
                  sizes: Sequence[int],
                  methods: Sequence[str] = ("contraction",),
                  backends: Sequence[str] = ("tdd",),
                  strategies: Sequence[str] = ("monolithic",),
                  jobs_per_run: int = 1,
                  slice_depth: int = DEFAULT_SLICE_DEPTH,
                  method_params: Optional[Dict[str, dict]] = None,
                  model_params: Optional[dict] = None) -> "SweepSpec":
        """The cartesian product of the given axes.

        ``method_params`` maps a method name to its parameter dict
        (e.g. ``{"contraction": {"k1": 4, "k2": 4}}``);
        ``model_params`` applies to every run.
        """
        method_params = method_params or {}
        runs = [RunSpec(model=model, size=size, method=method,
                        backend=backend, strategy=strategy,
                        jobs=jobs_per_run, slice_depth=slice_depth,
                        method_params=dict(method_params.get(method, {})),
                        model_params=dict(model_params or {}))
                for model in model_names
                for size in sizes
                for method in methods
                for backend in backends
                for strategy in strategies]
        return cls(name=name, runs=runs)

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        """Parse a declarative spec.

        Either an explicit run list::

            {"name": "mine", "runs": [{"model": "ghz", "size": 4, ...}]}

        or axes to take the product of::

            {"name": "tiny", "models": ["ghz", "bv"], "sizes": [3, 4],
             "methods": ["basic"], "strategies": ["monolithic", "sliced"],
             "method_params": {"contraction": {"k1": 4, "k2": 4}}}
        """
        name = data.get("name", "sweep")
        if "runs" in data:
            return cls(name=name,
                       runs=[RunSpec.from_dict(r) for r in data["runs"]])
        try:
            model_names = data["models"]
            sizes = data["sizes"]
        except KeyError as missing:
            raise ReproError(f"sweep spec needs either 'runs' or the "
                             f"'models'/'sizes' axes (missing {missing})")
        return cls.from_axes(
            name, model_names, sizes,
            methods=data.get("methods", ("contraction",)),
            backends=data.get("backends", ("tdd",)),
            strategies=data.get("strategies", ("monolithic",)),
            jobs_per_run=data.get("jobs_per_run", 1),
            slice_depth=data.get("slice_depth", DEFAULT_SLICE_DEPTH),
            method_params=data.get("method_params"),
            model_params=data.get("model_params"))

    @classmethod
    def from_json_file(cls, path: str) -> "SweepSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def as_dict(self) -> dict:
        return {"name": self.name,
                "runs": [run.as_dict() for run in self.runs]}


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def execute_run(spec: RunSpec) -> dict:
    """Run one configuration in-process and return its flat record.

    Builds a fresh QTS (construction time is part of the measurement),
    computes one image on the requested backend/strategy, and flattens
    the :class:`~repro.utils.stats.StatsRecorder` profile into the
    :data:`CSV_COLUMNS` schema.
    """
    record = dict(spec.as_dict())
    del record["method_params"], record["model_params"]
    record["run_id"] = spec.run_id
    record["failed"] = False
    record["error"] = ""
    try:
        qts = models.build_model(spec.model, spec.size, **spec.model_params)
        backend = make_backend(spec.backend, method=spec.method,
                               strategy=spec.strategy, jobs=spec.jobs,
                               slice_depth=spec.slice_depth,
                               **spec.method_params)
        result = backend.compute_image(qts)
    except Exception as exc:  # a failed cell must not sink the sweep
        record["failed"] = True
        record["error"] = f"{type(exc).__name__}: {exc}"
        for column in CSV_COLUMNS:
            record.setdefault(column, 0)
        return record
    record["dimension"] = result.dimension
    stats = result.stats.as_dict()
    for column in CSV_COLUMNS:
        if column not in record:
            record[column] = stats.get(column, 0)
    return record


def _execute_payload(payload: dict) -> dict:
    """Process-pool entry point (a :class:`RunSpec` as a plain dict)."""
    return execute_run(RunSpec.from_dict(payload))


@dataclass
class SweepResult:
    """Outcome of :func:`run_sweep`, in spec order."""

    spec: SweepSpec
    records: List[dict]
    skipped: int = 0
    json_path: Optional[str] = None
    csv_path: Optional[str] = None

    @property
    def failed(self) -> List[dict]:
        return [r for r in self.records if r.get("failed")]


def _artifact_paths(spec: SweepSpec, out_dir: str):
    return (os.path.join(out_dir, f"{spec.name}.json"),
            os.path.join(out_dir, f"{spec.name}.csv"))


def _load_existing(json_path: str) -> Dict[str, dict]:
    if not os.path.exists(json_path):
        return {}
    with open(json_path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    return {record["run_id"]: record for record in data.get("records", [])}


def _write_json(json_path: str, spec: SweepSpec,
                by_id: Dict[str, dict]) -> None:
    # temp-file + rename: a sweep killed mid-write must not corrupt the
    # artifact it would later resume from
    payload = {"name": spec.name, "spec": spec.as_dict(),
               "records": list(by_id.values())}
    tmp_path = json_path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    os.replace(tmp_path, json_path)


def write_csv(csv_path: str, records: Iterable[dict]) -> None:
    with open(csv_path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(CSV_COLUMNS),
                                extrasaction="ignore")
        writer.writeheader()
        for record in records:
            writer.writerow(record)


def run_sweep(spec: SweepSpec, jobs: int = 1,
              out_dir: Optional[str] = None, resume: bool = True,
              progress: Optional[Callable[[str], None]] = None
              ) -> SweepResult:
    """Execute a sweep, optionally fanning runs out over a process pool.

    ``jobs`` is the number of *concurrent configurations*; each one
    runs :func:`execute_run` in its own worker process.  With
    ``out_dir`` set, the JSON artifact is rewritten after every
    completed run and ``resume=True`` (the default) skips run ids
    already present in it — a killed sweep continues where it stopped.
    """
    say = progress if progress is not None else (lambda _msg: None)
    json_path = csv_path = None
    by_id: Dict[str, dict] = {}
    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
        json_path, csv_path = _artifact_paths(spec, out_dir)
        if resume:
            by_id = _load_existing(json_path)
    wanted = {run.run_id for run in spec.runs}
    # keep only this spec's records, and retry failed cells instead of
    # resuming into a permanently-red sweep
    by_id = {rid: rec for rid, rec in by_id.items()
             if rid in wanted and not rec.get("failed")}
    pending = [run for run in spec.runs if run.run_id not in by_id]
    skipped = len(spec.runs) - len(pending)
    if skipped:
        say(f"resume: {skipped} of {len(spec.runs)} runs already recorded")

    def record_done(record: dict) -> None:
        by_id[record["run_id"]] = record
        if json_path is not None:
            _write_json(json_path, spec, by_id)
        state = "FAILED " + record["error"] if record["failed"] else (
            f"dim={record['dimension']} {record['seconds']:.2f}s")
        say(f"[{len(by_id)}/{len(spec.runs)}] {record['run_id']}: {state}")

    if jobs > 1 and len(pending) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {pool.submit(_execute_payload, run.as_dict()): run
                       for run in pending}
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining,
                                       return_when=FIRST_COMPLETED)
                for future in done:
                    record_done(future.result())
    else:
        for run in pending:
            record_done(execute_run(run))

    records = [by_id[run.run_id] for run in spec.runs]
    if csv_path is not None:
        write_csv(csv_path, records)
    return SweepResult(spec=spec, records=records, skipped=skipped,
                       json_path=json_path, csv_path=csv_path)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def format_records(records: Sequence[dict]) -> str:
    headers = ["run", "dim", "time [s]", "max#node", "cache hit%",
               "live/peak", "slices"]
    rows = []
    for record in records:
        if record.get("failed"):
            rows.append([record["run_id"], "-", "-", "-", "-", "-", "-"])
            continue
        rows.append([
            record["run_id"], str(record["dimension"]),
            f"{record['seconds']:.2f}", str(record["max_nodes"]),
            f"{100 * record['cache_hit_rate']:.0f}%",
            f"{record['live_nodes']}/{record['peak_live_nodes']}",
            str(record["slices"])])
    return format_table(headers, rows)


def _csv_ints(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part]


def _csv_names(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description="Batch experiment runner: fan a declarative sweep "
                    "spec (models x sizes x methods x backends x "
                    "strategies) over a process pool with resumable "
                    "JSON/CSV artifacts.")
    parser.add_argument("--spec", help="JSON sweep spec file (see "
                                       "SweepSpec.from_dict)")
    parser.add_argument("--name", default="sweep",
                        help="sweep name (artifact file stem)")
    parser.add_argument("--models", type=_csv_names, default=[],
                        help="comma-separated model names (axes mode)")
    parser.add_argument("--sizes", type=_csv_ints, default=[],
                        help="comma-separated qubit counts (axes mode)")
    parser.add_argument("--methods", type=_csv_names,
                        default=["contraction"])
    parser.add_argument("--backends", type=_csv_names, default=["tdd"])
    parser.add_argument("--strategies", type=_csv_names,
                        default=["monolithic"])
    parser.add_argument("--jobs", type=int, default=1,
                        help="concurrent configurations (process pool)")
    parser.add_argument("--out", default=None,
                        help="artifact directory (JSON + CSV; enables "
                             "resume)")
    parser.add_argument("--no-resume", action="store_true",
                        help="ignore existing artifacts, recompute all")
    args = parser.parse_args(argv)

    if args.spec:
        spec = SweepSpec.from_json_file(args.spec)
    elif args.models and args.sizes:
        spec = SweepSpec.from_axes(
            args.name, args.models, args.sizes, methods=args.methods,
            backends=args.backends, strategies=args.strategies,
            method_params={"contraction": {"k1": 4, "k2": 4},
                           "addition": {"k": 1},
                           "hybrid": {"k": 1, "k1": 4, "k2": 4}})
    else:
        parser.error("provide --spec FILE, or --models and --sizes")

    result = run_sweep(spec, jobs=args.jobs, out_dir=args.out,
                       resume=not args.no_resume, progress=print)
    print(f"Sweep {spec.name!r}: {len(result.records)} runs "
          f"({result.skipped} resumed, {len(result.failed)} failed)")
    print(format_records(result.records))
    if result.json_path:
        print(f"artifacts: {result.json_path}, {result.csv_path}")
    return 1 if result.failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
