"""Declarative batch experiment runner.

A *sweep* is a list of fully-described configurations
(:class:`RunSpec`: circuit family × size × one validated
:class:`~repro.mc.config.CheckerConfig` × an optional property spec),
executed by :func:`run_sweep`:

* configurations fan out over a :mod:`concurrent.futures` process pool
  (``jobs > 1``) — every run builds its QTS inside its own worker, so
  runs are isolated and the measured time includes transition-TDD
  construction, matching the paper's methodology;
* a run either benchmarks one image computation (``spec=None``) or
  checks a temporal specification (``spec="AG inv"`` — see
  :mod:`repro.mc.specs`) and records the verdict, witness dimension
  and reachability trace alongside the kernel cost profile;
* results stream into a JSON artifact after every completed run and a
  CSV at the end, and a sweep is *resumable*: re-running against the
  same artifact directory skips configurations whose ``run_id`` is
  already recorded.

``table1``/``table2`` are thin wrappers over this module (their grids
are just sweep specs), and the CLI exposes it as ``python -m repro
sweep`` — see :func:`main` for the spec-file format.  The legacy flat
keyword spelling of :class:`RunSpec` (``method=``/``backend=``/...)
still works — and old artifacts still resume — but new code should
pass a ``config``.
"""

from __future__ import annotations

import argparse
import csv
import itertools
import json
import os
import sys
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import (Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence)

from repro.errors import ReproError
from repro.image.sliced import DEFAULT_SLICE_DEPTH
from repro.mc.checker import ModelChecker
from repro.mc.config import CheckerConfig, _warn_legacy
from repro.mc.reachability import ReachabilityCache
from repro.store import ResultStore
from repro.systems import models
from repro.utils.tables import format_table

#: the flat column schema of the CSV artifact (and of every record)
CSV_COLUMNS = (
    "run_id", "label", "model", "size", "method", "backend", "strategy",
    "jobs", "slice_depth", "driver", "direction", "bound", "spec",
    "verdict", "witness_dimension", "trace_length", "trace_valid",
    "iterations", "converged", "cache_warm", "store_hit", "dimension",
    "seconds",
    "max_nodes", "contractions", "additions", "cache_hits",
    "cache_misses", "cache_hit_rate", "add_hit_rate", "cont_hit_rate",
    "cache_evictions", "slices",
    "parallel_tasks", "pool_fallbacks", "gc_runs", "nodes_reclaimed",
    "peak_live_nodes", "live_nodes", "failed", "error",
)

#: RunSpec keyword arguments that predate CheckerConfig
_LEGACY_FIELDS = ("method", "backend", "strategy", "jobs", "slice_depth",
                  "method_params")


# ----------------------------------------------------------------------
# specs
# ----------------------------------------------------------------------
class RunSpec:
    """One fully-described configuration: model + size + config + spec.

    ``config`` is the validated engine configuration
    (:class:`~repro.mc.config.CheckerConfig`); ``spec`` an optional
    property to check (text, e.g. ``"AG inv"`` — without one the run
    benchmarks a single image computation); ``model_params`` go to the
    circuit builder (``iterations``, ``steps``, ``noise_probability``,
    ...).  The old flat keywords (``method=``/``backend=``/
    ``strategy=``/``jobs=``/``slice_depth=``/``method_params=``) are
    accepted with a :class:`DeprecationWarning`.
    """

    def __init__(self, model: str, size: int,
                 config: Optional[CheckerConfig] = None,
                 spec: Optional[str] = None,
                 model_params: Optional[Mapping] = None,
                 label: Optional[str] = None,
                 **legacy) -> None:
        unknown = set(legacy) - set(_LEGACY_FIELDS)
        if unknown:
            raise ReproError(f"unknown RunSpec arguments "
                             f"{sorted(unknown)}")
        if legacy:
            if config is not None:
                raise ReproError("RunSpec takes either config= or the "
                                 "legacy method/backend keywords, "
                                 "not both")
            _warn_legacy(f"RunSpec with keyword arguments "
                         f"{sorted(legacy)}")
            config = CheckerConfig.from_kwargs(**legacy)
        if model not in models.MODEL_BUILDERS:
            raise ReproError(f"unknown model {model!r}; choose from "
                             f"{sorted(models.MODEL_BUILDERS)}")
        self.model = model
        self.size = size
        self.config = config if config is not None else CheckerConfig()
        self.spec = spec
        self.model_params = dict(model_params or {})
        self.label = label if label is not None else f"{model}{size}"

    # legacy attribute echoes -----------------------------------------
    @property
    def method(self) -> str:
        return self.config.method

    @property
    def backend(self) -> str:
        return self.config.backend

    @property
    def strategy(self) -> str:
        return self.config.strategy

    @property
    def jobs(self) -> int:
        return self.config.jobs or 1

    @property
    def slice_depth(self) -> int:
        return self.config.slice_depth

    @property
    def method_params(self) -> dict:
        return dict(self.config.method_params)

    @property
    def direction(self) -> str:
        return self.config.direction

    @property
    def bound(self) -> int:
        return self.config.bound

    @property
    def driver(self) -> str:
        return self.config.driver

    # ------------------------------------------------------------------
    @property
    def run_id(self) -> str:
        """Deterministic identity of this configuration (resume key).

        Kept format-compatible with pre-config artifacts so existing
        sweeps resume across the API change.  (Exception: dense rows —
        their configs no longer carry the method/strategy knobs the
        dense backend never honoured, so legacy dense cells recompute
        once instead of resuming.)
        """
        def fmt(params: dict) -> str:
            return ",".join(f"{k}={params[k]}" for k in sorted(params))
        parts = [f"{self.model}{self.size}", self.method, self.backend,
                 self.strategy]
        if self.strategy != "monolithic":
            parts.append(f"jobs={self.jobs},depth={self.slice_depth}")
        if self.driver != "sequential":
            parts.append(f"driver={self.driver}")
        if self.direction != "forward":
            parts.append(f"dir={self.direction}")
        if self.bound:
            parts.append(f"bound={self.bound}")
        if self.method_params:
            parts.append(fmt(self.method_params))
        if self.model_params:
            parts.append(fmt(self.model_params))
        if self.spec is not None:
            parts.append(f"check[{self.spec}]")
        return "/".join(parts)

    def as_dict(self) -> dict:
        return {"model": self.model, "size": self.size,
                "config": self.config.as_dict(),
                "spec": self.spec,
                "model_params": dict(self.model_params),
                "label": self.label}

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunSpec":
        """Parse either the config form or the legacy flat form.

        Legacy flat dicts (``{"model": ..., "method": ..., "jobs": 1,
        ...}`` — the pre-config artifact/spec-file schema) convert
        silently so existing spec files keep working.
        """
        data = dict(data)
        if "config" in data:
            config = CheckerConfig.from_dict(data.pop("config"))
            return cls(config=config, **data)
        legacy = {name: data.pop(name) for name in _LEGACY_FIELDS
                  if name in data}
        config = CheckerConfig.from_kwargs(**legacy)
        return cls(config=config, **data)

    def __eq__(self, other) -> bool:
        return (isinstance(other, RunSpec)
                and other.model == self.model and other.size == self.size
                and other.config == self.config and other.spec == self.spec
                and other.model_params == self.model_params
                and other.label == self.label)

    def __repr__(self) -> str:
        return f"RunSpec({self.run_id!r})"


@dataclass
class SweepSpec:
    """A named list of runs — the unit :func:`run_sweep` executes."""

    name: str
    runs: List[RunSpec]

    # ------------------------------------------------------------------
    @classmethod
    def from_axes(cls, name: str,
                  model_names: Sequence[str],
                  sizes: Sequence[int],
                  methods: Sequence[str] = ("contraction",),
                  backends: Sequence[str] = ("tdd",),
                  strategies: Sequence[str] = ("monolithic",),
                  specs: Sequence[Optional[str]] = (None,),
                  directions: Sequence[str] = ("forward",),
                  bounds: Sequence[int] = (0,),
                  drivers: Sequence[str] = ("sequential",),
                  jobs_per_run: int = 1,
                  slice_depth: int = DEFAULT_SLICE_DEPTH,
                  method_params: Optional[Dict[str, dict]] = None,
                  model_params: Optional[dict] = None) -> "SweepSpec":
        """The cartesian product of the given axes.

        ``method_params`` maps a method name to its parameter dict
        (e.g. ``{"contraction": {"k1": 4, "k2": 4}}``);
        ``model_params`` applies to every run; ``specs`` adds
        property-check rows (``None`` = plain image benchmark);
        ``directions``/``bounds`` cross the grid with backward
        (preimage) analysis and depth-limited fixpoints; ``drivers``
        with the fixpoint schedules of :mod:`repro.mc.drivers`.  The
        dense backend ignores methods and strategies, so crossing it
        with those axes would duplicate work — duplicate
        configurations are dropped (by ``run_id``).
        """
        method_params = method_params or {}
        runs: List[RunSpec] = []
        seen = set()
        cells = itertools.product(model_names, sizes, specs, backends,
                                  methods, strategies, directions, bounds,
                                  drivers)
        for (model, size, spec_text, backend, method, strategy,
             direction, bound, driver) in cells:
            if spec_text is None:
                # a plain image benchmark is a single step — a fixpoint
                # bound or schedule cannot affect it, so crossing those
                # axes in would only duplicate the measurement (the
                # run_id dedup below then collapses the copies)
                bound = 0
                driver = "sequential"
            if backend == "dense":
                config = CheckerConfig(backend="dense",
                                       direction=direction, bound=bound,
                                       driver=driver)
            else:
                sliced = strategy == "sliced"
                config = CheckerConfig(
                    method=method, strategy=strategy,
                    jobs=(jobs_per_run if sliced and jobs_per_run > 1
                          else None),
                    slice_depth=(slice_depth if sliced
                                 else DEFAULT_SLICE_DEPTH),
                    method_params=dict(method_params.get(method, {})),
                    direction=direction, bound=bound, driver=driver)
            run = RunSpec(model=model, size=size, config=config,
                          spec=spec_text,
                          model_params=dict(model_params or {}))
            if run.run_id in seen:
                continue
            seen.add(run.run_id)
            runs.append(run)
        return cls(name=name, runs=runs)

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        """Parse a declarative spec.

        Either an explicit run list::

            {"name": "mine", "runs": [{"model": "ghz", "size": 4,
             "config": {"method": "basic"}, "spec": "AG init"}]}

        (legacy flat run dicts remain accepted) or axes to take the
        product of::

            {"name": "tiny", "models": ["ghz", "bv"], "sizes": [3, 4],
             "methods": ["basic"], "strategies": ["monolithic", "sliced"],
             "specs": ["AG init"],
             "method_params": {"contraction": {"k1": 4, "k2": 4}}}
        """
        name = data.get("name", "sweep")
        if "runs" in data:
            return cls(name=name,
                       runs=[RunSpec.from_dict(r) for r in data["runs"]])
        try:
            model_names = data["models"]
            sizes = data["sizes"]
        except KeyError as missing:
            raise ReproError(f"sweep spec needs either 'runs' or the "
                             f"'models'/'sizes' axes (missing {missing})")
        return cls.from_axes(
            name, model_names, sizes,
            methods=data.get("methods", ("contraction",)),
            backends=data.get("backends", ("tdd",)),
            strategies=data.get("strategies", ("monolithic",)),
            specs=data.get("specs", (None,)),
            directions=data.get("directions", ("forward",)),
            bounds=data.get("bounds", (0,)),
            drivers=data.get("drivers", ("sequential",)),
            jobs_per_run=data.get("jobs_per_run", 1),
            slice_depth=data.get("slice_depth", DEFAULT_SLICE_DEPTH),
            method_params=data.get("method_params"),
            model_params=data.get("model_params"))

    @classmethod
    def from_json_file(cls, path: str) -> "SweepSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def as_dict(self) -> dict:
        return {"name": self.name,
                "runs": [run.as_dict() for run in self.runs]}


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def execute_run(spec: RunSpec,
                reach_cache: Optional[ReachabilityCache] = None) -> dict:
    """Run one configuration in-process and return its flat record.

    Builds a fresh QTS (construction time is part of the measurement),
    then either computes one image on the configured backend or — when
    the run carries a property ``spec`` — checks it through
    :meth:`~repro.mc.checker.ModelChecker.check`, and flattens the
    outcome into the :data:`CSV_COLUMNS` schema.

    ``reach_cache`` warm-starts the reachability fixpoint behind
    property-check rows: the reachable subspace depends only on the
    transition relation, the fixpoint seed, the direction and the
    bound — not on the image method, execution strategy or driver — so
    a sweep crossing those axes pays the iteration ladder once per
    (model, size, spec, direction) cell and replays it from the cache
    for every other configuration.  Warm rows carry
    ``cache_warm=True``; rows whose fixpoint was served by a
    *persistent* :class:`~repro.store.ResultStore` (``run_sweep``'s
    ``store_dir``) additionally carry ``store_hit=True`` — a re-run
    over an already-populated store recomputes no fixpoint at all.
    """
    record = {"model": spec.model, "size": spec.size,
              "method": spec.method, "backend": spec.backend,
              "strategy": spec.strategy, "jobs": spec.jobs,
              "slice_depth": spec.slice_depth, "label": spec.label,
              "driver": spec.driver, "direction": spec.direction,
              "bound": spec.bound, "spec": spec.spec or "",
              "verdict": "", "cache_warm": False, "store_hit": False,
              "run_id": spec.run_id, "failed": False, "error": ""}
    try:
        qts = models.build_model(spec.model, spec.size, **spec.model_params)
        checker = ModelChecker(qts, spec.config)
        if spec.spec is not None:
            result = checker.check(spec.spec, reach_cache=reach_cache)
            record["verdict"] = result.verdict
            record["witness_dimension"] = result.witness_dimension
            record["trace_length"] = result.trace_length
            record["trace_valid"] = (result.witness_trace.valid
                                     if result.witness_trace is not None
                                     else False)
            record["iterations"] = result.iterations
            record["converged"] = result.converged
            record["cache_warm"] = bool(
                result.stats.extra.get("cache_warm", False))
            record["store_hit"] = (
                result.stats.extra.get("cache_source") == "disk")
            record["dimension"] = result.reachable_dimension
            stats = result.stats.as_dict()
        else:
            result = checker.image()
            record["dimension"] = result.dimension
            stats = result.stats.as_dict()
    except Exception as exc:  # a failed cell must not sink the sweep
        record["failed"] = True
        record["error"] = f"{type(exc).__name__}: {exc}"
        for column in CSV_COLUMNS:
            record.setdefault(column, 0)
        return record
    for column in CSV_COLUMNS:
        if column not in record:
            record[column] = stats.get(column, 0)
    return record


#: per-worker-process warm-start cache: pool workers outlive single
#: runs, so configurations landing on the same worker share fixpoints
_WORKER_REACH_CACHE = ReachabilityCache()

#: per-worker-process handles on persistent stores, keyed by directory
#: (one SQLite connection per process; all workers share the same
#: on-disk store, so fixpoints flow *between* workers too)
_WORKER_STORES: Dict[str, ResultStore] = {}


def _worker_store(store_dir: str) -> ResultStore:
    store = _WORKER_STORES.get(store_dir)
    if store is None:
        store = _WORKER_STORES[store_dir] = ResultStore(store_dir)
    return store


def _execute_payload(payload: dict, warm_start: bool = True,
                     store_dir: Optional[str] = None) -> dict:
    """Process-pool entry point (a :class:`RunSpec` as a plain dict)."""
    if not warm_start:
        cache = None
    elif store_dir is not None:
        cache = _worker_store(store_dir)
    else:
        cache = _WORKER_REACH_CACHE
    return execute_run(RunSpec.from_dict(payload), reach_cache=cache)


@dataclass
class SweepResult:
    """Outcome of :func:`run_sweep`, in spec order."""

    spec: SweepSpec
    records: List[dict]
    skipped: int = 0
    json_path: Optional[str] = None
    csv_path: Optional[str] = None

    @property
    def failed(self) -> List[dict]:
        return [r for r in self.records if r.get("failed")]


def _artifact_paths(spec: SweepSpec, out_dir: str):
    return (os.path.join(out_dir, f"{spec.name}.json"),
            os.path.join(out_dir, f"{spec.name}.csv"))


def _load_existing(json_path: str) -> Dict[str, dict]:
    if not os.path.exists(json_path):
        return {}
    with open(json_path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    return {record["run_id"]: record for record in data.get("records", [])}


def _write_json(json_path: str, spec: SweepSpec,
                by_id: Dict[str, dict]) -> None:
    # temp-file + rename: a sweep killed mid-write must not corrupt the
    # artifact it would later resume from
    payload = {"name": spec.name, "spec": spec.as_dict(),
               "records": list(by_id.values())}
    tmp_path = json_path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
    os.replace(tmp_path, json_path)


def write_csv(csv_path: str, records: Iterable[dict]) -> None:
    with open(csv_path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(CSV_COLUMNS),
                                extrasaction="ignore")
        writer.writeheader()
        for record in records:
            writer.writerow(record)


def run_sweep(spec: SweepSpec, jobs: int = 1,
              out_dir: Optional[str] = None, resume: bool = True,
              progress: Optional[Callable[[str], None]] = None,
              warm_start: bool = True,
              store_dir: Optional[str] = None) -> SweepResult:
    """Execute a sweep, optionally fanning runs out over a process pool.

    ``jobs`` is the number of *concurrent configurations*; each one
    runs :func:`execute_run` in its own worker process.  With
    ``out_dir`` set, the JSON artifact is rewritten after every
    completed run and ``resume=True`` (the default) skips run ids
    already present in it — a killed sweep continues where it stopped.

    ``warm_start=True`` (the default) shares reachability fixpoints
    between property-check rows that differ only in image method,
    execution strategy or driver (see
    :class:`~repro.mc.reachability.ReachabilityCache`); warm rows carry
    ``cache_warm=True``.  Pass ``warm_start=False`` (CLI:
    ``--no-warm-start``) when the sweep's purpose is to *benchmark* the
    fixpoint itself — a warm-started row measures one confirming round,
    not the configured engine's full iteration ladder.

    ``store_dir`` (CLI: ``--store DIR``) replaces the sweep-lifetime
    in-memory cache with a persistent
    :class:`~repro.store.ResultStore` at that directory: fixpoints
    survive across sweep invocations and flow between pool workers, so
    a re-run over a populated store performs *zero* fixpoint
    recomputations for unchanged (system, seed, direction, bound)
    keys.  Rows served from disk carry ``store_hit=True``.
    """
    say = progress if progress is not None else (lambda _msg: None)
    json_path = csv_path = None
    by_id: Dict[str, dict] = {}
    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
        json_path, csv_path = _artifact_paths(spec, out_dir)
        if resume:
            by_id = _load_existing(json_path)
    wanted = {run.run_id for run in spec.runs}
    # keep only this spec's records, and retry failed cells instead of
    # resuming into a permanently-red sweep
    by_id = {rid: rec for rid, rec in by_id.items()
             if rid in wanted and not rec.get("failed")}
    pending = [run for run in spec.runs if run.run_id not in by_id]
    skipped = len(spec.runs) - len(pending)
    if skipped:
        say(f"resume: {skipped} of {len(spec.runs)} runs already recorded")

    def record_done(record: dict) -> None:
        by_id[record["run_id"]] = record
        if json_path is not None:
            _write_json(json_path, spec, by_id)
        if record["failed"]:
            state = "FAILED " + record["error"]
        elif record.get("verdict"):
            state = (f"{record['verdict']} "
                     f"(reachable dim={record['dimension']}) "
                     f"{record['seconds']:.2f}s")
        else:
            state = f"dim={record['dimension']} {record['seconds']:.2f}s"
        say(f"[{len(by_id)}/{len(spec.runs)}] {record['run_id']}: {state}")

    if jobs > 1 and len(pending) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {pool.submit(_execute_payload, run.as_dict(),
                                   warm_start, store_dir): run
                       for run in pending}
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining,
                                       return_when=FIRST_COMPLETED)
                for future in done:
                    record_done(future.result())
    else:
        # one warm-start cache per sweep — or, with store_dir, the
        # persistent store: runs differing only in method/strategy/
        # driver reuse each other's fixpoints, and with the store they
        # also reuse every previous invocation's
        reach_cache = close_me = None
        if warm_start and store_dir is not None:
            reach_cache = close_me = ResultStore(store_dir)
        elif warm_start:
            reach_cache = ReachabilityCache()
        try:
            for run in pending:
                record_done(execute_run(run, reach_cache=reach_cache))
        finally:
            if close_me is not None:
                close_me.close()

    records = [by_id[run.run_id] for run in spec.runs]
    if csv_path is not None:
        write_csv(csv_path, records)
    return SweepResult(spec=spec, records=records, skipped=skipped,
                       json_path=json_path, csv_path=csv_path)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def format_records(records: Sequence[dict]) -> str:
    headers = ["run", "dim", "verdict", "time [s]", "max#node",
               "cache hit%", "live/peak", "slices"]
    rows = []
    for record in records:
        if record.get("failed"):
            rows.append([record["run_id"], "-", "-", "-", "-", "-", "-",
                         "-"])
            continue
        rows.append([
            record["run_id"], str(record["dimension"]),
            record.get("verdict") or "-",
            f"{record['seconds']:.2f}", str(record["max_nodes"]),
            f"{100 * record['cache_hit_rate']:.0f}%",
            f"{record['live_nodes']}/{record['peak_live_nodes']}",
            str(record["slices"])])
    return format_table(headers, rows)


def _csv_ints(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part]


def _csv_names(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description="Batch experiment runner: fan a declarative sweep "
                    "spec (models x sizes x methods x backends x "
                    "strategies x property specs) over a process pool "
                    "with resumable JSON/CSV artifacts.")
    parser.add_argument("--spec", help="JSON sweep spec file (see "
                                       "SweepSpec.from_dict)")
    parser.add_argument("--name", default="sweep",
                        help="sweep name (artifact file stem)")
    parser.add_argument("--models", type=_csv_names, default=[],
                        help="comma-separated model names (axes mode)")
    parser.add_argument("--sizes", type=_csv_ints, default=[],
                        help="comma-separated qubit counts (axes mode)")
    parser.add_argument("--methods", type=_csv_names,
                        default=["contraction"])
    parser.add_argument("--backends", type=_csv_names, default=["tdd"])
    parser.add_argument("--strategies", type=_csv_names,
                        default=["monolithic"])
    parser.add_argument("--check", action="append", default=[],
                        dest="checks", metavar="SPEC",
                        help="property spec to check on every "
                             "model/size cell (repeatable), e.g. "
                             "--check \"AG init\"")
    parser.add_argument("--directions", type=_csv_names,
                        default=["forward"],
                        help="comma-separated analysis directions "
                             "(forward,backward)")
    parser.add_argument("--bounds", type=_csv_ints, default=[0],
                        help="comma-separated fixpoint depth bounds "
                             "(0 = saturation)")
    parser.add_argument("--drivers", type=_csv_names,
                        default=["sequential"],
                        help="comma-separated fixpoint drivers "
                             "(sequential,opsharded,frontier)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="concurrent configurations (process pool)")
    parser.add_argument("--out", default=None,
                        help="artifact directory (JSON + CSV; enables "
                             "resume)")
    parser.add_argument("--no-resume", action="store_true",
                        help="ignore existing artifacts, recompute all")
    parser.add_argument("--no-warm-start", action="store_true",
                        help="disable fixpoint reuse between check rows "
                             "(use when benchmarking the fixpoint "
                             "itself; warm rows measure one confirming "
                             "round, not the full iteration ladder)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        dest="store_dir",
                        help="persistent result-store directory: "
                             "fixpoints warm-start from it across "
                             "sweep invocations and are written back; "
                             "rows served from disk carry "
                             "store_hit=True (see 'repro cache')")
    args = parser.parse_args(argv)

    if args.spec:
        spec = SweepSpec.from_json_file(args.spec)
    elif args.models and args.sizes:
        spec = SweepSpec.from_axes(
            args.name, args.models, args.sizes, methods=args.methods,
            backends=args.backends, strategies=args.strategies,
            specs=(args.checks or [None]),
            directions=args.directions, bounds=args.bounds,
            drivers=args.drivers,
            method_params={"contraction": {"k1": 4, "k2": 4},
                           "addition": {"k": 1},
                           "hybrid": {"k": 1, "k1": 4, "k2": 4}})
    else:
        parser.error("provide --spec FILE, or --models and --sizes")

    result = run_sweep(spec, jobs=args.jobs, out_dir=args.out,
                       resume=not args.no_resume, progress=print,
                       warm_start=not args.no_warm_start,
                       store_dir=args.store_dir)
    print(f"Sweep {spec.name!r}: {len(result.records)} runs "
          f"({result.skipped} resumed, {len(result.failed)} failed)")
    print(format_records(result.records))
    if result.json_path:
        print(f"artifacts: {result.json_path}, {result.csv_path}")
    return 1 if result.failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
