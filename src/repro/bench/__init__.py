"""Benchmark harness: Table I / Table II regeneration and the batch
sweep runner (declarative specs, process-pool fan-out, resumable
JSON/CSV artifacts — see :mod:`repro.bench.sweep`)."""

from repro.bench.runner import BenchRow, run_image_benchmark
from repro.bench.sweep import (RunSpec, SweepResult, SweepSpec,
                               execute_run, run_sweep)
from repro.bench import table1, table2

# repro.bench.smoke is a CLI entry point (`python -m repro.bench.smoke`);
# importing it eagerly here would trigger the runpy double-import warning.

__all__ = ["BenchRow", "run_image_benchmark",
           "RunSpec", "SweepResult", "SweepSpec", "execute_run",
           "run_sweep", "table1", "table2"]
