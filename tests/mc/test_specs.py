"""The spec text language: parsing, precedence, round-trips, errors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecError
from repro.mc.logic import (Always, Atomic, Eventually, Join, Meet, Name,
                            Not)
from repro.mc.specs import parse_spec, resolve, to_text
from repro.systems import models


class TestParsing:
    def test_bare_atom(self):
        assert parse_spec("inv") == Name("inv")

    def test_temporal_wrappers(self):
        assert parse_spec("AG inv") == Always(Name("inv"))
        assert parse_spec("EF target") == Eventually(Name("target"))

    def test_connectives(self):
        assert parse_spec("a & b") == Meet(Name("a"), Name("b"))
        assert parse_spec("a | b") == Join(Name("a"), Name("b"))
        assert parse_spec("~a") == Not(Name("a"))

    def test_issue_example(self):
        spec = parse_spec("AG (inv & ~bad)")
        assert spec == Always(Meet(Name("inv"), Not(Name("bad"))))

    def test_whitespace_insensitive(self):
        assert parse_spec("AG(a&~b)") == parse_spec("AG ( a & ~ b )")


class TestBoundedOperators:
    def test_bounded_wrappers(self):
        assert parse_spec("AG[<=3] inv") == Always(Name("inv"), bound=3)
        assert parse_spec("EF[<=1] target") == \
            Eventually(Name("target"), bound=1)

    def test_bound_whitespace_insensitive(self):
        assert parse_spec("AG [ <= 12 ] a") == parse_spec("AG[<=12] a")

    def test_bound_distinguishes_specs(self):
        assert parse_spec("AG[<=2] a") != parse_spec("AG[<=3] a")
        assert parse_spec("AG[<=2] a") != parse_spec("AG a")

    def test_bounded_round_trip(self):
        for text in ("AG[<=3] (inv & ~bad)", "EF[<=1] target",
                     "AG[<=10] a"):
            spec = parse_spec(text)
            assert to_text(spec) == text
            assert parse_spec(to_text(spec)) == spec

    def test_bounded_resolution_preserves_bound(self):
        qts = models.grover_qts(3)
        resolved = resolve(parse_spec("EF[<=2] marked"), qts)
        assert isinstance(resolved, Eventually)
        assert resolved.bound == 2
        assert isinstance(resolved.inner, Atomic)

    @pytest.mark.parametrize("text", [
        "AG[<=0] a",      # zero bound is ambiguous with "unbounded"
        "AG[3] a",        # missing <=
        "AG[<=] a",       # missing count
        "AG[<=x] a",      # non-numeric count
        "AG[<=3 a",       # unclosed bracket
        "AG <=3 a",       # bound without brackets
        "a[<=3]",         # bound on a bare proposition
    ])
    def test_malformed_bounds_rejected(self, text):
        with pytest.raises(SpecError):
            parse_spec(text)

    def test_ast_bound_validation(self):
        with pytest.raises(SpecError):
            Always(Name("a"), bound=0)
        with pytest.raises(SpecError):
            Eventually(Name("a"), bound=-2)
        with pytest.raises(SpecError):
            Always(Name("a"), bound="three")


class TestPrecedence:
    def test_meet_binds_tighter_than_join(self):
        assert parse_spec("a & b | c") == \
            Join(Meet(Name("a"), Name("b")), Name("c"))
        assert parse_spec("a | b & c") == \
            Join(Name("a"), Meet(Name("b"), Name("c")))

    def test_not_binds_tightest(self):
        assert parse_spec("~a & b") == Meet(Not(Name("a")), Name("b"))
        assert parse_spec("~(a & b)") == Not(Meet(Name("a"), Name("b")))

    def test_parentheses_override(self):
        assert parse_spec("a & (b | c)") == \
            Meet(Name("a"), Join(Name("b"), Name("c")))

    def test_left_associativity(self):
        assert parse_spec("a & b & c") == \
            Meet(Meet(Name("a"), Name("b")), Name("c"))

    def test_double_negation_parses(self):
        assert parse_spec("~~a") == Not(Not(Name("a")))


class TestErrors:
    @pytest.mark.parametrize("text,fragment", [
        ("", "empty"),
        ("a &", "end of spec"),
        ("a & & b", "'&'"),
        ("(a | b", "')'"),
        ("a b", "position"),
        ("AG", "end of spec"),
        ("a @ b", "'@'"),
        ("AG EF a", "outermost"),
        ("a & AG b", "outermost"),
    ])
    def test_message_mentions_the_problem(self, text, fragment):
        with pytest.raises(SpecError) as excinfo:
            parse_spec(text)
        assert fragment in str(excinfo.value)

    def test_error_carries_position(self):
        with pytest.raises(SpecError, match="position 4"):
            parse_spec("a & ?")

    def test_non_string_rejected(self):
        with pytest.raises(SpecError, match="string"):
            parse_spec(42)


# ----------------------------------------------------------------------
# property tests: round-trip through to_text
# ----------------------------------------------------------------------
_names = st.sampled_from(["p", "q", "inv", "marked", "bad_states", "x1"])


def _props(depth: int):
    node = st.builds(Name, _names)
    for _ in range(depth):
        node = st.one_of(
            st.builds(Name, _names),
            st.builds(Not, node),
            st.builds(Meet, node, node),
            st.builds(Join, node, node))
    return node


_specs = st.one_of(_props(3), st.builds(Always, _props(2)),
                   st.builds(Eventually, _props(2)))


class TestRoundTrip:
    @settings(max_examples=200, deadline=None)
    @given(_specs)
    def test_parse_inverts_to_text(self, spec):
        assert parse_spec(to_text(spec)) == spec

    @settings(max_examples=100, deadline=None)
    @given(_specs)
    def test_to_text_is_stable(self, spec):
        assert to_text(parse_spec(to_text(spec))) == to_text(spec)


class TestResolution:
    def test_names_bind_to_registered_subspaces(self):
        qts = models.grover_qts(3)
        spec = resolve(parse_spec("AG (inv | marked)"), qts)
        atom = spec.inner.left
        assert isinstance(atom, Atomic)
        assert atom.subspace is qts.named_subspace("inv")

    def test_init_always_resolves(self):
        qts = models.ghz_qts(3)
        spec = resolve(parse_spec("EF init"), qts)
        assert spec.inner.subspace is qts.initial

    def test_unknown_name_lists_available_atoms(self):
        qts = models.grover_qts(3)
        with pytest.raises(Exception, match="available atoms.*inv"):
            resolve(parse_spec("AG nonsense"), qts)

    def test_resolution_is_idempotent(self):
        qts = models.grover_qts(3)
        once = resolve(parse_spec("AG ~inv"), qts)
        assert resolve(once, qts) == once

    def test_unresolved_name_cannot_denote(self):
        qts = models.ghz_qts(3)
        with pytest.raises(SpecError, match="unresolved"):
            Name("zero").denote(qts.space)


class TestRegistry:
    def test_register_rejects_bad_names(self):
        qts = models.ghz_qts(3)
        sub = qts.space.span([qts.space.basis_state([0, 0, 0])])
        for bad in ("AG", "EF", "init", "1bad", "a-b", ""):
            with pytest.raises(Exception):
                qts.register_subspace(bad, sub)

    def test_register_rejects_foreign_space(self):
        qts1 = models.ghz_qts(3)
        qts2 = models.ghz_qts(3)
        with pytest.raises(Exception, match="different state space"):
            qts1.register_subspace("other", qts2.initial)

    def test_builders_register_atoms(self):
        assert models.grover_qts(3).named_subspace("inv").dimension == 2
        assert models.ghz_qts(3).named_subspace("target").dimension == 1
        assert models.bitflip_qts().named_subspace("codeword").dimension == 1
        assert models.qrw_qts(3).named_subspace("start").dimension == 1
