"""The batch experiment runner: specs, execution, artifacts, resume."""

import csv
import json

import pytest

from repro.bench.runner import BenchRow
from repro.bench.sweep import (CSV_COLUMNS, RunSpec, SweepSpec,
                               execute_run, format_records, run_sweep)
from repro.bench import table1, table2
from repro.errors import ReproError
from repro.mc.config import CheckerConfig


def tiny_spec(name="tiny", strategies=("monolithic",)):
    return SweepSpec.from_axes(name, ["ghz", "bv"], [3],
                               methods=["basic"], strategies=strategies)


class TestRunSpec:
    def test_defaults_and_label(self):
        spec = RunSpec(model="ghz", size=4)
        assert spec.label == "ghz4"
        assert spec.method == "contraction"
        assert spec.run_id == "ghz4/contraction/tdd/monolithic"

    def test_run_id_includes_params(self):
        spec = RunSpec(model="grover", size=5, method="contraction",
                       method_params={"k1": 2, "k2": 3},
                       model_params={"iterations": 2})
        assert spec.run_id == ("grover5/contraction/tdd/monolithic/"
                               "k1=2,k2=3/iterations=2")

    def test_run_id_distinguishes_strategies(self):
        mono = RunSpec(model="ghz", size=3)
        sliced = RunSpec(model="ghz", size=3, strategy="sliced", jobs=4)
        assert mono.run_id != sliced.run_id

    def test_dict_round_trip(self):
        spec = RunSpec(model="qrw", size=5, method="addition",
                       method_params={"k": 2},
                       model_params={"steps": 2})
        assert RunSpec.from_dict(spec.as_dict()) == spec

    @pytest.mark.parametrize("field,value", [
        ("model", "nonsense"), ("method", "nonsense"),
        ("backend", "nonsense"), ("strategy", "nonsense")])
    def test_validation(self, field, value):
        kwargs = {"model": "ghz", "size": 3, field: value}
        with pytest.raises(ReproError):
            RunSpec(**kwargs)


class TestRunSpecConfigForm:
    def test_config_form_does_not_warn(self):
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            spec = RunSpec(model="ghz", size=4,
                           config=CheckerConfig(method="basic"))
        assert spec.method == "basic"
        assert spec.run_id == "ghz4/basic/tdd/monolithic"

    def test_legacy_kwargs_warn(self):
        with pytest.warns(DeprecationWarning):
            RunSpec(model="ghz", size=4, method="basic")

    def test_config_plus_legacy_rejected(self):
        with pytest.raises(ReproError, match="not both"):
            RunSpec(model="ghz", size=4, config=CheckerConfig(),
                    method="basic")

    def test_run_id_format_survives_the_api_change(self):
        # resume keys must match pre-config artifacts
        legacy_style = RunSpec(
            model="grover", size=5,
            config=CheckerConfig(method="contraction", strategy="sliced",
                                 jobs=4,
                                 method_params={"k1": 2, "k2": 3}),
            model_params={"iterations": 2})
        assert legacy_style.run_id == (
            "grover5/contraction/tdd/sliced/jobs=4,depth=2/"
            "k1=2,k2=3/iterations=2")

    def test_spec_run_id_and_round_trip(self):
        run = RunSpec(model="grover", size=3,
                      config=CheckerConfig(method="basic"),
                      spec="AG inv")
        assert run.run_id.endswith("check[AG inv]")
        assert RunSpec.from_dict(run.as_dict()) == run

    def test_from_dict_accepts_legacy_flat_schema(self):
        # the pre-config artifact/spec-file schema still parses
        run = RunSpec.from_dict({
            "model": "ghz", "size": 4, "method": "basic",
            "backend": "tdd", "strategy": "monolithic", "jobs": 1,
            "slice_depth": 2, "method_params": {}, "model_params": {},
            "label": "ghz4"})
        assert run.method == "basic"
        assert run.run_id == "ghz4/basic/tdd/monolithic"


class TestSweepSpec:
    def test_axes_product(self):
        spec = SweepSpec.from_axes("s", ["ghz", "bv"], [3, 4],
                                   methods=["basic", "contraction"],
                                   strategies=["monolithic", "sliced"])
        assert len(spec.runs) == 2 * 2 * 2 * 2
        assert len({run.run_id for run in spec.runs}) == len(spec.runs)

    def test_from_dict_axes(self):
        spec = SweepSpec.from_dict({
            "name": "tiny", "models": ["ghz"], "sizes": [3],
            "methods": ["contraction"],
            "method_params": {"contraction": {"k1": 2, "k2": 2}}})
        assert spec.runs[0].method_params == {"k1": 2, "k2": 2}

    def test_from_dict_explicit_runs(self):
        spec = SweepSpec.from_dict({
            "name": "mine",
            "runs": [{"model": "ghz", "size": 3, "method": "basic"}]})
        assert spec.runs[0].model == "ghz"

    def test_from_dict_missing_axes(self):
        with pytest.raises(ReproError):
            SweepSpec.from_dict({"name": "broken"})

    def test_json_file_round_trip(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(tiny_spec().as_dict()))
        spec = SweepSpec.from_json_file(str(path))
        assert [r.run_id for r in spec.runs] == \
            [r.run_id for r in tiny_spec().runs]

    def test_specs_axis_adds_property_rows(self):
        spec = SweepSpec.from_axes("s", ["grover"], [3],
                                   methods=["basic"],
                                   specs=[None, "AG inv"])
        assert len(spec.runs) == 2
        assert spec.runs[0].spec is None
        assert spec.runs[1].spec == "AG inv"

    def test_dense_runs_deduplicated_across_methods(self):
        # the dense backend ignores methods/strategies: crossing it
        # with those axes must not duplicate work
        spec = SweepSpec.from_axes("s", ["ghz"], [3],
                                   methods=["basic", "contraction"],
                                   backends=["tdd", "dense"])
        dense = [r for r in spec.runs if r.backend == "dense"]
        assert len(dense) == 1
        assert len([r for r in spec.runs if r.backend == "tdd"]) == 2

    def test_from_dict_specs_axis(self):
        spec = SweepSpec.from_dict({
            "name": "props", "models": ["grover"], "sizes": [3],
            "methods": ["basic"], "specs": ["EF marked"]})
        assert spec.runs[0].spec == "EF marked"


class TestExecuteRun:
    def test_record_schema(self):
        record = execute_run(RunSpec(model="ghz", size=3, method="basic"))
        assert set(CSV_COLUMNS) <= set(record)
        assert record["dimension"] == 1
        assert record["seconds"] > 0
        assert not record["failed"]

    def test_sliced_strategy_record(self):
        record = execute_run(RunSpec(model="qrw", size=4,
                                     method="basic", strategy="sliced",
                                     model_params={"steps": 2}))
        assert record["slices"] > 0

    def test_failure_is_captured_not_raised(self):
        # the dense backend refuses large systems — a failed cell must
        # produce a record, not sink the sweep
        record = execute_run(RunSpec(model="ghz", size=20,
                                     method="basic", backend="dense"))
        assert record["failed"]
        assert "ReproError" in record["error"]

    def test_property_check_record(self):
        record = execute_run(RunSpec(
            model="grover", size=3, config=CheckerConfig(method="basic"),
            spec="AG inv"))
        assert record["verdict"] == "holds"
        assert record["spec"] == "AG inv"
        assert record["dimension"] == 2      # the reachable dimension
        assert record["converged"] is True
        assert not record["failed"]

    def test_violated_check_record(self):
        record = execute_run(RunSpec(
            model="grover", size=3, config=CheckerConfig(method="basic"),
            spec="AG marked"))
        assert record["verdict"] == "violated"
        assert record["witness_dimension"] >= 1

    def test_check_record_on_dense_backend(self):
        record = execute_run(RunSpec(
            model="grover", size=3,
            config=CheckerConfig(backend="dense"), spec="AG inv"))
        assert record["verdict"] == "holds"
        assert record["backend"] == "dense"

    def test_direction_bound_and_trace_columns(self):
        record = execute_run(RunSpec(
            model="grover", size=3,
            config=CheckerConfig(method="basic", direction="backward",
                                 bound=2),
            spec="AG plus"))
        assert record["direction"] == "backward"
        assert record["bound"] == 2
        assert record["verdict"] == "violated"
        assert record["trace_length"] == 1
        assert record["trace_valid"] is True
        assert "backward" in record["run_id"]
        assert "bound=2" in record["run_id"]

    def test_image_record_has_default_trace_columns(self):
        record = execute_run(RunSpec(model="ghz", size=3,
                                     method="basic"))
        assert record["direction"] == "forward"
        assert record["bound"] == 0
        assert record["trace_length"] == 0
        assert record["pool_fallbacks"] == 0


class TestDirectionAxes:
    def test_from_axes_crosses_directions_and_bounds(self):
        spec = SweepSpec.from_axes(
            "dirs", ["grover"], [3], methods=("basic",),
            directions=("forward", "backward"), bounds=(0, 2),
            specs=("AG plus",))
        assert len(spec.runs) == 4
        ids = {run.run_id for run in spec.runs}
        assert len(ids) == 4
        assert any("dir=backward" in rid for rid in ids)
        assert any("bound=2" in rid for rid in ids)

    def test_forward_unbounded_run_id_unchanged(self):
        # legacy artifacts must still resume: default direction/bound
        # leave the pre-existing run_id format untouched
        run = RunSpec(model="ghz", size=4,
                      config=CheckerConfig(method="basic"))
        assert run.run_id == "ghz4/basic/tdd/monolithic"

    def test_from_dict_direction_axes(self):
        spec = SweepSpec.from_dict({
            "name": "d", "models": ["ghz"], "sizes": [3],
            "methods": ["basic"], "directions": ["backward"],
            "bounds": [1], "specs": ["AG init"]})
        assert spec.runs[0].direction == "backward"
        assert spec.runs[0].bound == 1

    def test_bounds_axis_skipped_for_image_rows(self):
        # a plain image benchmark is one step: crossing the bounds axis
        # in would record the same measurement under distinct run_ids
        spec = SweepSpec.from_axes("b", ["ghz"], [3], methods=("basic",),
                                   bounds=(0, 2, 4))
        assert len(spec.runs) == 1
        assert spec.runs[0].bound == 0


class TestRunSweep:
    def test_inline_order_and_artifacts(self, tmp_path):
        result = run_sweep(tiny_spec(), out_dir=str(tmp_path))
        assert [r["model"] for r in result.records] == ["ghz", "bv"]
        data = json.loads((tmp_path / "tiny.json").read_text())
        assert len(data["records"]) == 2
        with open(tmp_path / "tiny.csv", newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert [row["run_id"] for row in rows] == \
            [r["run_id"] for r in result.records]

    def test_resume_skips_recorded_runs(self, tmp_path):
        spec = tiny_spec()
        first = run_sweep(spec, out_dir=str(tmp_path))
        assert first.skipped == 0
        second = run_sweep(spec, out_dir=str(tmp_path))
        assert second.skipped == 2
        # resumed records are identical to the stored ones
        assert [r["seconds"] for r in second.records] == \
            [r["seconds"] for r in first.records]

    def test_partial_artifact_resumes_remaining(self, tmp_path):
        spec = tiny_spec()
        # simulate a sweep killed after its first run
        half = SweepSpec(name=spec.name, runs=spec.runs[:1])
        run_sweep(half, out_dir=str(tmp_path))
        result = run_sweep(spec, out_dir=str(tmp_path))
        assert result.skipped == 1
        assert len(result.records) == 2

    def test_resume_retries_failed_runs(self, tmp_path):
        # a dense run over the size guard fails; the failure must be
        # recorded but retried (not resumed) on the next invocation
        bad = RunSpec(model="ghz", size=20, method="basic",
                      backend="dense")
        spec = SweepSpec(name="redo", runs=[bad])
        first = run_sweep(spec, out_dir=str(tmp_path))
        assert first.records[0]["failed"]
        second = run_sweep(spec, out_dir=str(tmp_path))
        assert second.skipped == 0  # failed cell was re-attempted

    def test_no_resume_recomputes(self, tmp_path):
        spec = tiny_spec()
        run_sweep(spec, out_dir=str(tmp_path))
        result = run_sweep(spec, out_dir=str(tmp_path), resume=False)
        assert result.skipped == 0

    def test_stale_artifact_entries_dropped(self, tmp_path):
        spec = tiny_spec()
        run_sweep(spec, out_dir=str(tmp_path))
        shrunk = SweepSpec(name=spec.name, runs=spec.runs[:1])
        result = run_sweep(shrunk, out_dir=str(tmp_path))
        assert len(result.records) == 1

    def test_parallel_fan_out(self, tmp_path):
        result = run_sweep(tiny_spec(), jobs=2, out_dir=str(tmp_path))
        assert len(result.records) == 2
        assert not result.failed
        # spec order preserved regardless of completion order
        assert [r["model"] for r in result.records] == ["ghz", "bv"]

    def test_progress_messages(self):
        messages = []
        run_sweep(tiny_spec(), progress=messages.append)
        assert len(messages) == 2

    def test_format_records_table(self):
        result = run_sweep(tiny_spec())
        text = format_records(result.records)
        assert "ghz3/basic/tdd/monolithic" in text

    def test_property_check_sweep_resumes_and_emits_verdict_csv(
            self, tmp_path):
        # the acceptance scenario: a sweep spec JSON containing a
        # property check resumes and its CSV carries verdict columns
        spec_path = tmp_path / "props.json"
        spec_path.write_text(json.dumps({
            "name": "props", "models": ["grover"], "sizes": [3],
            "methods": ["basic"], "specs": ["AG inv", "AG marked"]}))
        spec = SweepSpec.from_json_file(str(spec_path))
        out_dir = tmp_path / "artifacts"
        first = run_sweep(spec, out_dir=str(out_dir))
        assert [r["verdict"] for r in first.records] == \
            ["holds", "violated"]
        again = run_sweep(SweepSpec.from_json_file(str(spec_path)),
                          out_dir=str(out_dir))
        assert again.skipped == 2
        assert [r["verdict"] for r in again.records] == \
            ["holds", "violated"]
        with open(out_dir / "props.csv", newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert [row["verdict"] for row in rows] == ["holds", "violated"]
        assert rows[0]["spec"] == "AG inv"
        assert rows[1]["witness_dimension"] != "0"


class TestDriverAxisAndWarmStart:
    def test_csv_columns_stable(self):
        # the artifact schema is a compatibility contract: downstream
        # dashboards parse these columns by name and position
        assert CSV_COLUMNS == (
            "run_id", "label", "model", "size", "method", "backend",
            "strategy", "jobs", "slice_depth", "driver", "direction",
            "bound", "spec", "verdict", "witness_dimension",
            "trace_length", "trace_valid", "iterations", "converged",
            "cache_warm", "store_hit", "dimension", "seconds",
            "max_nodes",
            "contractions", "additions", "cache_hits", "cache_misses",
            "cache_hit_rate", "add_hit_rate", "cont_hit_rate",
            "cache_evictions", "slices",
            "parallel_tasks", "pool_fallbacks", "gc_runs",
            "nodes_reclaimed", "peak_live_nodes", "live_nodes",
            "failed", "error",
        )

    def test_driver_axis_crosses_check_rows(self):
        spec = SweepSpec.from_axes(
            "d", ["grover"], [3], methods=("basic",),
            drivers=("sequential", "opsharded", "frontier"),
            specs=("AG inv",))
        assert len(spec.runs) == 3
        assert {run.driver for run in spec.runs} == \
            {"sequential", "opsharded", "frontier"}
        assert any("driver=opsharded" in run.run_id for run in spec.runs)

    def test_default_driver_keeps_run_id_format(self):
        # legacy artifacts must still resume
        run = RunSpec(model="ghz", size=4,
                      config=CheckerConfig(method="basic"))
        assert run.run_id == "ghz4/basic/tdd/monolithic"

    def test_drivers_collapse_for_image_rows(self):
        # a plain image benchmark runs no fixpoint: the driver axis
        # would only duplicate the measurement
        spec = SweepSpec.from_axes(
            "d", ["ghz"], [3], methods=("basic",),
            drivers=("sequential", "opsharded", "frontier"))
        assert len(spec.runs) == 1
        assert spec.runs[0].driver == "sequential"

    def test_execute_run_records_driver_and_cache_columns(self):
        record = execute_run(RunSpec(
            model="grover", size=3,
            config=CheckerConfig(method="basic", driver="opsharded"),
            spec="AG inv"))
        assert record["driver"] == "opsharded"
        assert record["cache_warm"] is False
        assert record["verdict"] == "holds"

    def test_image_record_driver_defaults(self):
        record = execute_run(RunSpec(model="ghz", size=3,
                                     config=CheckerConfig(method="basic")))
        assert record["driver"] == "sequential"
        assert record["cache_warm"] is False

    def test_sweep_warm_starts_config_cells(self, tmp_path):
        # the acceptance scenario: two configurations differing only in
        # the image method share one reachability fixpoint — the second
        # row is warm-started with an unchanged reachable dimension
        spec = SweepSpec.from_axes(
            "warm", ["grover"], [3],
            methods=("basic", "contraction"), specs=("AG inv",),
            method_params={"contraction": {"k1": 2, "k2": 2}})
        result = run_sweep(spec, out_dir=str(tmp_path))
        assert [r["cache_warm"] for r in result.records] == [False, True]
        assert [r["verdict"] for r in result.records] == \
            ["holds", "holds"]
        assert len({r["dimension"] for r in result.records}) == 1
        with open(tmp_path / "warm.csv", newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert [row["cache_warm"] for row in rows] == ["False", "True"]
        assert [row["driver"] for row in rows] == \
            ["sequential", "sequential"]

    def test_no_warm_start_keeps_rows_cold(self, tmp_path):
        # benchmarking sweeps must be able to opt out: every row then
        # pays its own full iteration ladder
        spec = SweepSpec.from_axes(
            "cold", ["grover"], [3],
            methods=("basic", "contraction"), specs=("AG inv",),
            method_params={"contraction": {"k1": 2, "k2": 2}})
        result = run_sweep(spec, out_dir=str(tmp_path), warm_start=False)
        assert [r["cache_warm"] for r in result.records] == [False, False]

    def test_warm_rows_keyed_per_direction(self, tmp_path):
        # backward rows must not reuse the forward fixpoint (different
        # seed and transition relation): each direction warms only its
        # own repeats
        spec = SweepSpec.from_axes(
            "dirs", ["grover"], [3],
            methods=("basic", "contraction"), specs=("AG plus",),
            directions=("forward", "backward"),
            method_params={"contraction": {"k1": 2, "k2": 2}})
        result = run_sweep(spec, out_dir=str(tmp_path))
        by_direction = {}
        for record in result.records:
            by_direction.setdefault(record["direction"], []).append(
                record["cache_warm"])
        assert by_direction["forward"] == [False, True]
        assert by_direction["backward"] == [False, True]


class TestResultStoreSweep:
    def _spec(self, name):
        return SweepSpec.from_axes(
            name, ["grover", "ghz"], [3], methods=("basic",),
            specs=("AG init",))

    def test_populated_store_recomputes_no_fixpoints(self, tmp_path):
        # the acceptance scenario: a sweep re-run over a populated
        # store performs zero fixpoint recomputations — every check
        # row is a disk hit that collapses to one confirming iteration
        store_dir = str(tmp_path / "store")
        run_sweep(self._spec("first"), out_dir=str(tmp_path / "a"),
                  store_dir=store_dir)
        run_sweep(self._spec("second"), out_dir=str(tmp_path / "b"),
                  store_dir=store_dir)
        with open(tmp_path / "b" / "second.csv", newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        for row in rows:
            assert row["store_hit"] == "True"
            assert row["cache_warm"] == "True"
            assert row["iterations"] == "1"
            assert row["converged"] == "True"

    def test_store_survives_process_pool(self, tmp_path):
        # pool workers open their own per-process handle on the same
        # directory; the second (parallel) sweep must still hit
        store_dir = str(tmp_path / "store")
        run_sweep(self._spec("first"), out_dir=str(tmp_path / "a"),
                  store_dir=store_dir)
        result = run_sweep(self._spec("second"), jobs=2,
                           out_dir=str(tmp_path / "b"),
                           store_dir=store_dir)
        assert [r["store_hit"] for r in result.records] == [True, True]
        assert [r["iterations"] for r in result.records] == [1, 1]

    def test_rows_without_store_never_claim_disk_hits(self, tmp_path):
        result = run_sweep(self._spec("plain"),
                           out_dir=str(tmp_path / "a"))
        assert [r["store_hit"] for r in result.records] == \
            [False, False]

    def test_no_warm_start_bypasses_the_store(self, tmp_path):
        store_dir = str(tmp_path / "store")
        run_sweep(self._spec("first"), out_dir=str(tmp_path / "a"),
                  store_dir=store_dir)
        result = run_sweep(self._spec("second"), warm_start=False,
                           out_dir=str(tmp_path / "b"),
                           store_dir=store_dir)
        assert [r["store_hit"] for r in result.records] == \
            [False, False]

    def test_memory_warm_rows_are_not_disk_hits(self, tmp_path):
        # two configs sharing one in-memory fixpoint: cache_warm is
        # True but store_hit must stay False when no store is attached
        spec = SweepSpec.from_axes(
            "warm", ["grover"], [3],
            methods=("basic", "contraction"), specs=("AG inv",),
            method_params={"contraction": {"k1": 2, "k2": 2}})
        result = run_sweep(spec, out_dir=str(tmp_path))
        assert [r["cache_warm"] for r in result.records] == \
            [False, True]
        assert [r["store_hit"] for r in result.records] == \
            [False, False]


class TestBenchRowAdapter:
    def test_from_record(self):
        record = execute_run(RunSpec(model="ghz", size=3, method="basic",
                                     label="GHZ3"))
        row = BenchRow.from_record(record)
        assert row.benchmark == "GHZ3"
        assert row.method == "basic"
        assert row.dimension == 1
        assert not row.timed_out

    def test_from_failed_record(self):
        row = BenchRow.from_record({"label": "X", "method": "basic",
                                    "failed": True})
        assert row.timed_out
        assert row.metric_cells() == ("-", "-", "-", "-")


class TestTablesThroughSweep:
    """table1/table2 are thin wrappers over the sweep runner."""

    def test_table1_spec_excludes_skipped_cells(self):
        spec = table1.table1_spec("small", families=["Grover"])
        # Grover small sizes are 6 and 8; no skip rule fires
        assert len(spec.runs) == 2 * len(table1.TABLE1_METHODS)
        assert all(run.model == "grover" for run in spec.runs)
        assert all(run.model_params == {"iterations": 2}
                   for run in spec.runs)

    def test_table1_rows_keep_layout(self):
        rows = table1.table1_rows(scale="small", families=["GHZ"])
        labels = {row.benchmark for row in rows}
        assert all(label.startswith("GHZ") for label in labels)
        assert len(rows) == len(labels) * len(table1.TABLE1_METHODS)

    def test_table1_resumable(self, tmp_path):
        rows = table1.table1_rows(scale="small", families=["QRW"],
                                  out_dir=str(tmp_path))
        again = table1.table1_rows(scale="small", families=["QRW"],
                                   out_dir=str(tmp_path))
        assert [r.seconds for r in rows] == [r.seconds for r in again]

    def test_table2_grid_shape(self):
        grid = table2.sweep_stats(num_qubits=4, kmax=2, iterations=1)
        assert len(grid) == 2 and len(grid[0]) == 2
        assert grid[0][0]["seconds"] > 0
        assert grid[1][1]["label"] == "k2x2"

    def test_table2_seconds_view(self):
        grid = table2.sweep(num_qubits=4, kmax=2, iterations=1)
        assert all(isinstance(cell, float) for row in grid for cell in row)
