"""Subspace distance and angle metrics.

Quantitative comparisons between subspaces, used by the test oracles
and by anyone checking *how far* an implementation diverges rather
than just whether it does:

* ``projector_distance`` — Frobenius distance of the projectors,
  computed entirely with TDD operations (works at any width),
* ``principal_angles`` — the canonical angles between two subspaces
  (dense; small systems only),
* ``subspace_fidelity`` — ``tr(P1 P2) / max(dim)``, a normalised
  overlap in [0, 1].
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.errors import SubspaceError
from repro.subspace.subspace import Subspace


def projector_distance(first: Subspace, second: Subspace) -> float:
    """``||P1 - P2||_F`` via TDD arithmetic (no dense expansion).

    ``||P1 - P2||_F^2 = tr(P1) + tr(P2) - 2 tr(P1 P2)``
                      = dim1 + dim2 - 2 * overlap.
    """
    if first.space is not second.space:
        raise SubspaceError("subspaces live in different state spaces")
    value = (first.dimension + second.dimension
             - 2.0 * first.overlap(second))
    return math.sqrt(max(0.0, value))


def subspace_fidelity(first: Subspace, second: Subspace) -> float:
    """Normalised overlap ``tr(P1 P2) / max(dim1, dim2)`` in [0, 1].

    1 iff the subspaces are equal; 0 iff orthogonal.  The zero
    subspace has fidelity 1 with itself and 0 with everything else.
    """
    if first.space is not second.space:
        raise SubspaceError("subspaces live in different state spaces")
    top = max(first.dimension, second.dimension)
    if top == 0:
        return 1.0
    return min(1.0, first.overlap(second) / top)


def principal_angles(first: Subspace, second: Subspace) -> List[float]:
    """Canonical angles (radians, ascending) between two subspaces.

    Dense computation (SVD of the cross-basis Gram matrix); intended
    for systems small enough for ``to_dense``.
    """
    if first.space is not second.space:
        raise SubspaceError("subspaces live in different state spaces")
    if first.is_zero() or second.is_zero():
        return []
    a = np.stack([v.to_numpy().reshape(-1) for v in first.basis], axis=1)
    b = np.stack([v.to_numpy().reshape(-1) for v in second.basis], axis=1)
    singular = np.linalg.svd(a.conj().T @ b, compute_uv=False)
    singular = np.clip(singular, 0.0, 1.0)
    return [float(math.acos(s)) for s in sorted(singular, reverse=True)]


def chordal_distance(first: Subspace, second: Subspace) -> float:
    """``sqrt(sum sin^2(theta_i))`` over principal angles (dense)."""
    angles = principal_angles(first, second)
    return math.sqrt(sum(math.sin(a) ** 2 for a in angles))
