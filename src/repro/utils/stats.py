"""Statistics recording for image computation runs.

The paper's Table I reports, per benchmark and method, the wall-clock
time and the *maximum node count over all TDDs generated* during the
image computation.  :class:`StatsRecorder` collects those two
quantities plus the kernel instrumentation the refactored TDD core
exposes: operation-cache hit/miss counts, garbage-collection activity
and the peak/post-GC live-node population of the manager's unique
table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class StatsRecorder:
    """Mutable record of the cost of one image computation run."""

    #: Maximum size (number of nodes, including the terminal) over all
    #: TDDs produced during the run.
    max_nodes: int = 0
    #: Number of top-level TDD contractions performed.
    contractions: int = 0
    #: Number of top-level TDD additions performed.
    additions: int = 0
    #: Wall-clock seconds (filled in by the caller).
    seconds: float = 0.0
    #: Operation-cache lookups answered from / missing the memo tables.
    cache_hits: int = 0
    cache_misses: int = 0
    #: Per-table breakdown of the same lookups: the addition and
    #: contraction caches behave very differently under batching, so
    #: the combined rate hides which table earns its memory.
    add_hits: int = 0
    add_misses: int = 0
    cont_hits: int = 0
    cont_misses: int = 0
    #: Bounded-cache evictions during the run.
    cache_evictions: int = 0
    #: Cofactor subproblems executed by the sliced strategy.
    slices: int = 0
    #: Cofactor subproblems shipped to the worker pool.
    parallel_tasks: int = 0
    #: Cofactor batches that were meant for the pool but ran inline
    #: (pool unavailable or broken mid-batch) — nonzero means the run
    #: quietly lost parallelism.
    pool_fallbacks: int = 0
    #: Garbage collection: number of collect() runs and nodes freed.
    gc_runs: int = 0
    nodes_reclaimed: int = 0
    #: High-water mark of the manager's unique table during the run.
    peak_live_nodes: int = 0
    #: Unique-table population after the final (post-run) collection.
    live_nodes: int = 0
    #: Free-form counters (e.g. number of partition blocks).
    extra: dict = field(default_factory=dict)

    def observe_tdd(self, tdd) -> None:
        """Record the size of a freshly produced TDD."""
        size = tdd.size()
        if size > self.max_nodes:
            self.max_nodes = size

    def observe_nodes(self, count: int) -> None:
        if count > self.max_nodes:
            self.max_nodes = count

    # ------------------------------------------------------------------
    @property
    def cache_hit_rate(self) -> float:
        """Fraction of memo lookups answered from the caches."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def add_hit_rate(self) -> float:
        """Hit rate of the addition memo table alone."""
        total = self.add_hits + self.add_misses
        return self.add_hits / total if total else 0.0

    @property
    def cont_hit_rate(self) -> float:
        """Hit rate of the contraction memo table alone."""
        total = self.cont_hits + self.cont_misses
        return self.cont_hits / total if total else 0.0

    def record_manager(self, manager,
                       baseline: Optional[Dict[str, int]] = None) -> None:
        """Snapshot a manager's kernel counters into this recorder.

        ``baseline`` is an earlier :meth:`TDDManager.cache_counters`
        snapshot; passing it makes the cache/GC numbers deltas for this
        run rather than manager lifetime totals.  Peak and current live
        nodes are always absolute (the unique table is shared state).
        """
        counters = manager.cache_counters()
        base = baseline or {}
        self.cache_hits = counters["hits"] - base.get("hits", 0)
        self.cache_misses = counters["misses"] - base.get("misses", 0)
        self.add_hits = counters["add_hits"] - base.get("add_hits", 0)
        self.add_misses = (counters["add_misses"]
                           - base.get("add_misses", 0))
        self.cont_hits = counters["cont_hits"] - base.get("cont_hits", 0)
        self.cont_misses = (counters["cont_misses"]
                            - base.get("cont_misses", 0))
        self.cache_evictions = (counters["evictions"]
                                - base.get("evictions", 0))
        self.gc_runs = counters["gc_runs"] - base.get("gc_runs", 0)
        self.nodes_reclaimed = (counters["nodes_reclaimed"]
                                - base.get("nodes_reclaimed", 0))
        self.peak_live_nodes = manager.peak_live_nodes
        self.live_nodes = manager.live_nodes

    def merge(self, other: "StatsRecorder") -> None:
        """Fold another recorder (e.g. from a sub-computation) into this one."""
        self.max_nodes = max(self.max_nodes, other.max_nodes)
        self.contractions += other.contractions
        self.additions += other.additions
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.add_hits += other.add_hits
        self.add_misses += other.add_misses
        self.cont_hits += other.cont_hits
        self.cont_misses += other.cont_misses
        self.cache_evictions += other.cache_evictions
        self.slices += other.slices
        self.parallel_tasks += other.parallel_tasks
        self.pool_fallbacks += other.pool_fallbacks
        self.gc_runs += other.gc_runs
        self.nodes_reclaimed += other.nodes_reclaimed
        self.peak_live_nodes = max(self.peak_live_nodes,
                                   other.peak_live_nodes)
        self.live_nodes = max(self.live_nodes, other.live_nodes)

    def as_dict(self) -> dict:
        out = {
            "max_nodes": self.max_nodes,
            "contractions": self.contractions,
            "additions": self.additions,
            "seconds": self.seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "add_hits": self.add_hits,
            "add_misses": self.add_misses,
            "add_hit_rate": self.add_hit_rate,
            "cont_hits": self.cont_hits,
            "cont_misses": self.cont_misses,
            "cont_hit_rate": self.cont_hit_rate,
            "cache_evictions": self.cache_evictions,
            "slices": self.slices,
            "parallel_tasks": self.parallel_tasks,
            "pool_fallbacks": self.pool_fallbacks,
            "gc_runs": self.gc_runs,
            "nodes_reclaimed": self.nodes_reclaimed,
            "peak_live_nodes": self.peak_live_nodes,
            "live_nodes": self.live_nodes,
        }
        out.update(self.extra)
        return out
