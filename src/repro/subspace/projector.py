"""Projector utilities: application and basis decomposition.

``basis_decompose`` implements Section IV.A of the paper: given the
projector TDD ``P`` of a subspace, repeatedly locate the leftmost
non-zero *column* (an assignment of the ket indices reached through the
leftmost non-zero path of the diagram), normalise it into a basis
vector ``|v>``, and deflate ``P <- P - |v><v|``.  Because ``P`` is a
projector, every non-zero column is an eigenvector-combination lying in
the subspace, and the deflation terminates after exactly ``dim``
rounds.
"""

from __future__ import annotations

from typing import List

from repro.config import GS_EPS
from repro.errors import SubspaceError
from repro.subspace.subspace import StateSpace, Subspace
from repro.tdd.slicing import first_nonzero_assignment
from repro.tdd.tdd import TDD


def apply_projector(space: StateSpace, projector: TDD, state: TDD) -> TDD:
    """``P |state>`` for a projector tensor P[bra, ket]."""
    result = projector.contract(state, space.kets)
    return result.rename(dict(zip(space.bras, space.kets)))


def basis_decompose(space: StateSpace, projector: TDD,
                    tol: float = GS_EPS,
                    max_dim: int = 0) -> Subspace:
    """Recover a :class:`Subspace` from a projector TDD (paper §IV.A).

    ``projector`` must be (numerically) a projector over
    ``(space.bras, space.kets)``.  ``max_dim`` bounds the number of
    extracted vectors (0 = no bound) as a safety net against
    non-projector input.
    """
    manager = space.manager
    ket_levels = frozenset(manager.level(k) for k in space.kets)
    limit = max_dim if max_dim > 0 else 2 ** space.num_qubits

    out = Subspace(space)
    current = projector
    for _ in range(limit):
        # Frobenius norm of what remains: a projector has norm
        # sqrt(dim), so anything below tol is cancellation residue.
        if current.is_zero or current.norm() <= tol:
            break
        assignment = first_nonzero_assignment(current.root, ket_levels)
        if assignment is None:
            break
        # complete the partial assignment with zeros
        bits = {}
        for ket in space.kets:
            bits[ket] = assignment.get(manager.level(ket), 0)
        column = current.slice(bits)
        # the column lives on the bras; bring it to the kets
        column = column.rename(dict(zip(space.bras, space.kets)))
        norm = column.norm()
        if norm <= tol:
            raise SubspaceError("non-zero path led to a negligible column; "
                                "input is not a projector")
        vector = column.scaled(1.0 / norm)
        added = out.add_state(vector, tol=tol)
        if added is None:
            raise SubspaceError("extracted column already contained; "
                                "input is not a projector")
        # deflate:  P <- P - |v><v|
        outer = vector.rename(dict(zip(space.kets, space.bras))).product(
            vector.conj())
        current = current - outer
    else:
        if not current.is_zero and current.norm() > tol:
            raise SubspaceError("basis decomposition did not terminate: "
                                "input is not a projector")
    return out
