"""QuantumTransitionSystem construction and index registration."""

import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.errors import SystemError_
from repro.systems.operations import QuantumOperation
from repro.systems.qts import QuantumTransitionSystem


def simple_qts(n=2):
    op = QuantumOperation.unitary("u", QuantumCircuit(n).h(0).cx(0, 1))
    return QuantumTransitionSystem(n, [op])


class TestValidation:
    def test_needs_operations(self):
        with pytest.raises(SystemError_):
            QuantumTransitionSystem(2, [])

    def test_width_mismatch(self):
        op = QuantumOperation.unitary("u", QuantumCircuit(3).h(0))
        with pytest.raises(SystemError_):
            QuantumTransitionSystem(2, [op])

    def test_duplicate_symbols(self):
        op1 = QuantumOperation.unitary("u", QuantumCircuit(2).h(0))
        op2 = QuantumOperation.unitary("u", QuantumCircuit(2).x(0))
        with pytest.raises(SystemError_):
            QuantumTransitionSystem(2, [op1, op2])


class TestIndexOrder:
    def test_ket_bra_interleaved(self):
        qts = simple_qts()
        m = qts.manager
        for q in range(qts.num_qubits):
            ket_level = m.level(qts.space.kets[q])
            bra_level = m.level(qts.space.bras[q])
            assert bra_level == ket_level + 1

    def test_all_circuit_indices_registered(self):
        qts = simple_qts()
        for circuit in qts.all_kraus_circuits():
            for idx in circuit.all_wire_indices():
                assert idx in qts.manager.order

    def test_qubit_major_order(self):
        qts = simple_qts()
        m = qts.manager
        # every index of qubit 0 sorts before every index of qubit 1
        q0_levels = [m.level(i) for i in m.order.sorted(
            [i for i in qts.space.kets if i.qubit == 0])]
        q1_levels = [m.level(i) for i in m.order.sorted(
            [i for i in qts.space.kets if i.qubit == 1])]
        assert max(q0_levels) < min(q1_levels)


class TestInitialSpace:
    def test_set_initial_basis_states(self):
        qts = simple_qts()
        qts.set_initial_basis_states([[0, 0], [1, 1]])
        assert qts.initial.dimension == 2

    def test_set_initial_states(self):
        qts = simple_qts()
        qts.set_initial_states([qts.space.basis_state([0, 1])])
        assert qts.initial.dimension == 1

    def test_operation_lookup(self):
        qts = simple_qts()
        assert qts.operation("u").symbol == "u"
        with pytest.raises(SystemError_):
            qts.operation("missing")

    def test_symbols(self):
        qts = simple_qts()
        assert qts.symbols == ["u"]
