"""Properties of image computation itself.

The load-bearing guarantees: the three algorithms agree with each other
and with dense linear algebra on random circuits, and the image
operator is linear over joins (Proposition 1 of the paper).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits.library import random_circuit
from repro.image.engine import compute_image
from repro.systems.operations import QuantumOperation
from repro.systems.qts import QuantumTransitionSystem

from tests.helpers import (assert_subspace_matches_dense,
                           dense_image_oracle)

N_QUBITS = 3


def random_qts(seed: int, num_states: int = 1) -> QuantumTransitionSystem:
    circuit = random_circuit(N_QUBITS, 10, seed=seed)
    op = QuantumOperation.unitary("u", circuit)
    qts = QuantumTransitionSystem(N_QUBITS, [op])
    rng = np.random.default_rng(seed + 1000)
    states = [qts.space.from_amplitudes(
        rng.normal(size=2 ** N_QUBITS) + 1j * rng.normal(size=2 ** N_QUBITS))
        for _ in range(num_states)]
    qts.set_initial_states(states)
    return qts


class TestMethodAgreement:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=10)
    def test_all_methods_match_oracle(self, seed):
        expected = dense_image_oracle(random_qts(seed))
        for method, params in (("basic", {}), ("addition", {"k": 1}),
                               ("contraction", {"k1": 2, "k2": 2})):
            result = compute_image(random_qts(seed), method=method,
                                   **params)
            assert_subspace_matches_dense(result.subspace, expected)

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=8)
    def test_multi_state_subspaces(self, seed):
        expected = dense_image_oracle(random_qts(seed, num_states=2))
        result = compute_image(random_qts(seed, num_states=2),
                               method="contraction", k1=2, k2=2)
        assert_subspace_matches_dense(result.subspace, expected)


class TestImageLaws:
    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=8)
    def test_image_distributes_over_join(self, seed):
        """Proposition 1(1): T(S1 v S2) = T(S1) v T(S2)."""
        qts = random_qts(seed, num_states=2)
        s1 = qts.space.span([qts.initial.basis[0]])
        s2 = qts.space.span([qts.initial.basis[1]])
        joint = compute_image(qts, subspace=s1.join(s2),
                              method="basic").subspace
        separate = compute_image(qts, subspace=s1, method="basic").subspace \
            .join(compute_image(qts, subspace=s2, method="basic").subspace)
        assert joint.equals(separate)

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=8)
    def test_unitary_preserves_dimension(self, seed):
        qts = random_qts(seed, num_states=2)
        image = compute_image(qts, method="basic").subspace
        assert image.dimension == qts.initial.dimension

    @given(st.integers(min_value=0, max_value=10 ** 6))
    @settings(max_examples=5)
    def test_image_monotone(self, seed):
        """S1 <= S2 implies T(S1) <= T(S2)."""
        qts = random_qts(seed, num_states=2)
        small = qts.space.span([qts.initial.basis[0]])
        big = qts.initial
        image_small = compute_image(qts, subspace=small,
                                    method="basic").subspace
        image_big = compute_image(qts, subspace=big,
                                  method="basic").subspace
        assert image_big.contains(image_small)
