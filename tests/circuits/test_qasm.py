"""OpenQASM 2.0 subset import/export."""

import math

import numpy as np
import pytest

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.qasm import parse_qasm, to_qasm
from repro.errors import CircuitError
from repro.sim.statevector import circuit_unitary

BELL = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cx q[0], q[1];
"""


class TestParse:
    def test_bell(self):
        circuit = parse_qasm(BELL)
        assert circuit.num_qubits == 2
        assert [g.name for g in circuit.gates] == ["h", "cx"]

    def test_angles_with_pi(self):
        text = ('OPENQASM 2.0;\nqreg q[1];\n'
                'rz(pi/4) q[0];\nu1(2*pi/8) q[0];\n')
        circuit = parse_qasm(text)
        assert circuit.num_gates == 2
        u = circuit_unitary(circuit)
        # rz(pi/4) * p(pi/4) up to global phase
        expect = np.diag([np.exp(-1j * math.pi / 8),
                          np.exp(1j * math.pi / 8)]) @ \
            np.diag([1, np.exp(1j * math.pi / 4)])
        ratio = u @ np.linalg.inv(expect)
        assert np.allclose(ratio, ratio[0, 0] * np.eye(2), atol=1e-9)

    def test_comments_and_barrier_ignored(self):
        text = ('OPENQASM 2.0;\n// a comment\nqreg q[2];\n'
                'barrier q[0], q[1];\nx q[1]; // trailing\n')
        circuit = parse_qasm(text)
        assert [g.name for g in circuit.gates] == ["x"]

    def test_ccx_and_swap(self):
        text = ('OPENQASM 2.0;\nqreg q[3];\n'
                'ccx q[0], q[1], q[2];\nswap q[0], q[2];\n')
        circuit = parse_qasm(text)
        assert [g.name for g in circuit.gates] == ["ccx", "swap"]

    def test_missing_header(self):
        with pytest.raises(CircuitError):
            parse_qasm("qreg q[2];\nh q[0];")

    def test_unknown_gate(self):
        with pytest.raises(CircuitError):
            parse_qasm('OPENQASM 2.0;\nqreg q[1];\nfoo q[0];')

    def test_measure_rejected(self):
        with pytest.raises(CircuitError):
            parse_qasm('OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\n'
                       'measure q[0] -> c[0];')

    def test_bad_angle_expression(self):
        with pytest.raises(CircuitError):
            parse_qasm('OPENQASM 2.0;\nqreg q[1];\n'
                       'rz(__import__("os")) q[0];')


class TestEmit:
    def test_round_trip_semantics(self):
        circuit = (QuantumCircuit(3).h(0).cx(0, 1)
                   .cp(math.pi / 4, 1, 2).ccx(0, 1, 2)
                   .rz(0.7, 1).rx(1.1, 2).ry(-0.4, 0)
                   .s(0).t(1).z(2).swap(0, 2))
        text = to_qasm(circuit)
        parsed = parse_qasm(text)
        u1 = circuit_unitary(circuit)
        u2 = circuit_unitary(parsed)
        ratio = u1 @ u2.conj().T
        assert np.allclose(ratio, ratio[0, 0] * np.eye(8), atol=1e-8)

    def test_emit_library_circuits(self):
        from repro.circuits.library import ghz_circuit, qft_circuit
        for circuit in (ghz_circuit(4), qft_circuit(4)):
            text = to_qasm(circuit)
            parsed = parse_qasm(text)
            u1 = circuit_unitary(circuit)
            u2 = circuit_unitary(parsed)
            assert np.allclose(u1, u2, atol=1e-8)

    def test_projector_gate_rejected(self):
        circuit = QuantumCircuit(1).proj(0, 0)
        with pytest.raises(CircuitError):
            to_qasm(circuit)

    def test_wide_cnx_rejected(self):
        circuit = QuantumCircuit(4).cnx([0, 1, 2], 3)
        with pytest.raises(CircuitError):
            to_qasm(circuit)
