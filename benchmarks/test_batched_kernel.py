"""Batched weight kernel — scalar loop vs one invocation per family.

The headline acceptance metric of the batched kernel: applying a
multi-Kraus family through the stacked vector-weight operator reduces
the number of top-level apply invocations (contractions) by at least
the family width.  Wall clocks for both modes land in the benchmark
JSON so the per-PR trajectory records where the crossover sits (on
smoke-sized families the numpy per-node constants eat the win; see
``repro.bench.trajectory``).
"""

import pytest

from repro.image.engine import compute_image
from repro.systems import models

FAMILIES = {
    "bitflip": lambda: models.bitflip_qts(),
    "qrw4": lambda: models.qrw_qts(4, 0.1, steps=2),
}


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("batched", [False, True],
                         ids=["scalar", "batched"])
def test_family_image(image_bench, family, batched):
    result = image_bench(FAMILIES[family], "basic", batched=batched)
    assert result.dimension > 0


@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_apply_invocation_reduction_at_least_family_width(family):
    builder = FAMILIES[family]
    width = len(builder().all_kraus_circuits())
    assert width > 1
    scalar = compute_image(builder(), method="basic", batched=False)
    batched = compute_image(builder(), method="basic", batched=True)
    assert batched.dimension == scalar.dimension
    assert (scalar.stats.contractions
            >= width * batched.stats.contractions)
